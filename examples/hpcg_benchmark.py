"""HPCG benchmark walk-through (the paper's SV-B evaluation).

Runs the full benchmark numerically at laptop scale for every
optimization variant, then projects node-level GFLOPS on the paper's
Table I machines with the calibrated performance model, printing the
Fig. 5-style comparison.

Run:  python examples/hpcg_benchmark.py
"""

from repro.hpcg import (
    best_allocation,
    build_hpcg_model,
    model_hpcg_gflops,
    run_hpcg,
)
from repro.simd import INTEL_XEON, KUNPENG_920, THUNDER_X2
from repro.utils.tables import format_table

VARIANTS = ("reference", "mkl", "arm", "cpo", "sell", "dbsr")


def main() -> None:
    # --- Functional correctness: every variant runs the same math.
    print("Functional HPCG runs (16^3 local domain, 3 MG levels):")
    for v in ("reference", "cpo", "dbsr"):
        r = run_hpcg(nx=16, variant=v, n_levels=3, max_iters=50,
                     tol=1e-9, bsize=8, n_workers=4)
        print(f"  {v:10s} iters={r.iterations:3d} "
              f"relres={r.final_relres:.2e} "
              f"credited GFLOP={r.flops / 1e9:.2f}")

    # --- Performance projection at the paper's 192^3 local domain.
    print("\nBuilding per-variant kernel-count models (nx=16)...")
    models = {v: build_hpcg_model(nx=16, variant=v, n_levels=3,
                                  bsize=8, n_workers=8)
              for v in VARIANTS}

    for machine in (INTEL_XEON, KUNPENG_920, THUNDER_X2):
        rows = []
        for v in VARIANTS:
            p, t, g = best_allocation(machine, models[v])
            g_single = model_hpcg_gflops(machine, models[v], 1,
                                         machine.cores)
            rows.append((v, f"P{p}xT{t}", f"{g:.1f}",
                         f"{g_single:.1f}"))
        print()
        print(format_table(
            ["variant", "best alloc", "GFLOPS",
             "GFLOPS (P=1, all threads)"],
            rows, title=f"Fig 5/6 projection: {machine.name}"))


if __name__ == "__main__":
    main()
