"""Quickstart: the DBSR pipeline in ~40 lines.

Builds a 3-D Poisson problem, applies the paper's vectorized BMC
reordering, stores the matrix in DBSR, and solves the two triangular
systems of an ILU(0) preconditioner with the gather-free vector kernel
of Algorithm 2.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.formats import DBSRMatrix
from repro.grids import poisson_problem
from repro.ilu import ilu0_apply_dbsr, ilu0_factorize_dbsr
from repro.ordering import build_vbmc
from repro.solvers import preconditioned_richardson


def main() -> None:
    # 1. A structured-grid problem: 16^3 grid, 27-point stencil.
    problem = poisson_problem((16, 16, 16), "27pt")
    print(f"problem: n={problem.n}, nnz={problem.matrix.nnz}")

    # 2. Vectorized BMC reordering (SIII-A): 4^3 blocks, vector
    #    length 8. Same-color blocks are grouped 8 at a time and their
    #    points interleaved so SIMD lanes line up.
    vbmc = build_vbmc(problem.grid, problem.stencil,
                      block_dims=(4, 4, 4), bsize=8)
    print(f"ordering: {vbmc.n_colors} colors, "
          f"{vbmc.schedule.n_groups} vector groups, "
          f"padded {vbmc.n_orig} -> {vbmc.n_padded}")

    # 3. DBSR storage (SIII-B): one diagonal per tile.
    reordered = vbmc.apply_matrix(problem.matrix)
    dbsr = DBSRMatrix.from_csr(reordered, bsize=8)
    rep = dbsr.memory_report(offset_itemsize=1)
    csr_rep = problem.matrix.memory_report()
    print(f"storage: DBSR {rep.total_bytes} B vs CSR "
          f"{csr_rep.total_bytes} B "
          f"({rep.total_bytes / csr_rep.total_bytes:.2f}x), "
          f"{dbsr.n_tiles} tiles, {rep.padding_values} padded zeros")

    # 4. Block ILU(0) factorization (Algorithm 4) + smoothing solves
    #    (Algorithm 2) inside a Richardson iteration.
    factors = ilu0_factorize_dbsr(dbsr)

    def precondition(r):
        return vbmc.restrict(ilu0_apply_dbsr(factors, vbmc.extend(r)))

    x, hist = preconditioned_richardson(
        problem.matrix, problem.rhs, precondition, tol=1e-10,
        maxiter=200)
    err = np.abs(x - problem.exact).max()
    print(f"solve: {hist.iterations} iterations, final residual "
          f"{hist.final_residual:.2e}, max error {err:.2e}")
    assert hist.converged and err < 1e-6


if __name__ == "__main__":
    main()
