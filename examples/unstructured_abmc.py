"""DBSR beyond structured grids — the paper's future work, working.

Builds an *unstructured* SPD system (a random geometric graph
Laplacian — no grid anywhere), orders it with the algebraic block
multi-color ordering (ABMC), stores it in DBSR, and solves with the
block ILU(0) pipeline. Also shows the roofline analysis and the
HPCG-style symmetry validation on the way.

Run:  python examples/unstructured_abmc.py
"""

import numpy as np

from repro.analysis import arithmetic_intensity, roofline_point
from repro.formats import CSRMatrix, DBSRMatrix
from repro.formats.io import write_matrix_market
from repro.ilu import ilu0_apply_dbsr, ilu0_factorize_dbsr
from repro.kernels.counts import sptrsv_csr_counts, sptrsv_dbsr_counts
from repro.kernels.sptrsv_csr import split_triangular
from repro.ordering import build_abmc
from repro.simd import INTEL_XEON
from repro.solvers import preconditioned_richardson
from repro.utils.rng import make_rng


def random_geometric_laplacian(n: int = 300, radius: float = 0.12):
    """SPD graph Laplacian of a random geometric graph in the unit
    square — an honest unstructured matrix."""
    rng = make_rng(99)
    pts = rng.random((n, 2))
    d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
    adj = (d2 < radius * radius) & ~np.eye(n, dtype=bool)
    dense = -adj.astype(float)
    np.fill_diagonal(dense, adj.sum(axis=1) + 1.0)  # shifted Laplacian
    return CSRMatrix.from_dense(dense)


def main() -> None:
    A = random_geometric_laplacian()
    print(f"unstructured system: n={A.n_rows}, nnz={A.nnz}, "
          f"avg degree={A.nnz / A.n_rows:.1f}")

    # ABMC: aggregate -> color -> lane-group (no geometry needed).
    abmc = build_abmc(A, block_size=16, bsize=4)
    print(f"ABMC: {len(abmc.blocks)} blocks, {abmc.n_colors} colors, "
          f"padded {abmc.n_orig} -> {abmc.n_padded}")

    Ap = abmc.apply_matrix(A)
    dbsr = DBSRMatrix.from_csr(Ap, 4)
    rep = dbsr.memory_report(offset_itemsize=1)
    print(f"DBSR: {dbsr.n_tiles} tiles "
          f"({dbsr.n_tiles / (dbsr.nnz / 4):.2f}x the structured-grid "
          f"ideal - irregular graphs fragment tiles), "
          f"{rep.total_bytes} B vs CSR "
          f"{A.memory_report().total_bytes} B")

    # Roofline placement: even fragmented DBSR moves fewer bytes/flop.
    L, D, U = split_triangular(Ap)
    ai_csr = arithmetic_intensity(sptrsv_csr_counts(L), INTEL_XEON)
    ai_dbsr = arithmetic_intensity(
        sptrsv_dbsr_counts(DBSRMatrix.from_csr(L, 4), divide=True),
        INTEL_XEON)
    pt = roofline_point(sptrsv_csr_counts(L), INTEL_XEON)
    print(f"roofline: SpTRSV intensity CSR {ai_csr:.3f} vs DBSR "
          f"{ai_dbsr:.3f} flop/B "
          f"({'memory' if pt.memory_bound else 'compute'}-bound on "
          f"{INTEL_XEON.name})")

    # Solve with block ILU(0).
    f = ilu0_factorize_dbsr(dbsr)
    b = A.matvec(np.ones(A.n_rows))
    x, hist = preconditioned_richardson(
        A, b,
        lambda r: abmc.restrict(ilu0_apply_dbsr(f, abmc.extend(r))),
        tol=1e-10, maxiter=300)
    print(f"solve: {hist.iterations} iterations, "
          f"max|x-1| = {np.abs(x - 1).max():.2e}")
    assert hist.converged

    # Round-trip through MatrixMarket for good measure.
    import io

    buf = io.StringIO()
    write_matrix_market(A, buf, comment="random geometric Laplacian")
    print(f"mtx export: {len(buf.getvalue().splitlines())} lines")


if __name__ == "__main__":
    main()
