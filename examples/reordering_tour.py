"""Reordering tour — the paper's Fig. 2, reproduced in ASCII.

Walks the exact example of the paper: an 8x8 grid with a 9-point
stencil, showing (a) the lexicographic matrix, (b) classic BMC with
4x4 blocks, (c) vectorized BMC with vector length 4, and (d) the DBSR
tile structure, plus the distributed-run substrate for good measure.

Run:  python examples/reordering_tour.py
"""

import numpy as np

from repro.cluster import build_distributed, distributed_spmv
from repro.formats import DBSRMatrix
from repro.grids import StructuredGrid, assemble_csr, box9_2d
from repro.ordering import build_bmc, build_vbmc
from repro.utils.rng import make_rng
from repro.utils.spy import spy, spy_blocks


def main() -> None:
    grid = StructuredGrid((8, 8))
    stencil = box9_2d()
    A = assemble_csr(grid, stencil)

    print("(a) lexicographic ordering (paper Fig. 2a):")
    print(spy(A))

    bmc = build_bmc(grid, stencil, (4, 4))
    print(f"\n(b) classic BMC, 4x4 blocks, {bmc.n_colors} colors "
          "(paper Fig. 2b):")
    print(spy(A.permute(bmc.perm.old_to_new)))

    vb = build_vbmc(grid, stencil, (4, 4), bsize=4)
    Ap = vb.apply_matrix(A)
    print(f"\n(c) vectorized BMC, bsize=4 (paper Fig. 2c): "
          f"{vb.schedule.n_groups} vector groups")
    print(spy(Ap))

    dbsr = DBSRMatrix.from_csr(Ap, 4)
    print(f"\n(d) DBSR tile map, {dbsr.n_tiles} tiles "
          f"(paper Fig. 2d; offsets in "
          f"[{dbsr.blk_offset.min()}, {dbsr.blk_offset.max()}]):")
    print(spy_blocks(dbsr))

    # Bonus: the same operator executed across 4 simulated MPI ranks.
    from repro.grids.problems import Problem

    problem = Problem(grid=grid, stencil=stencil, matrix=A,
                      rhs=A.matvec(np.ones(grid.n_points)),
                      exact=np.ones(grid.n_points))
    dist = build_distributed(problem, 4, proc_grid=(2, 2))
    x = make_rng().standard_normal(grid.n_points)
    y = dist.gather(distributed_spmv(dist, dist.scatter(x)))
    print("\ndistributed SpMV over 2x2 ranks: max|diff| vs global =",
          f"{np.abs(y - A.matvec(x)).max():.2e}")
    assert np.allclose(y, A.matvec(x))


if __name__ == "__main__":
    main()
