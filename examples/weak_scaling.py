"""Weak scaling on the Phytium 2000+ cluster model (Fig. 7).

Also demonstrates the functional thread-parallel executor: the color
schedule really does allow concurrent group processing with
bit-identical results.

Run:  python examples/weak_scaling.py
"""

import numpy as np

from repro.cluster import weak_scaling_sweep
from repro.formats import DBSRMatrix
from repro.grids import poisson_problem
from repro.hpcg import build_hpcg_model
from repro.kernels import split_triangular, sptrsv_csr
from repro.ordering import build_vbmc
from repro.parallel import sptrsv_dbsr_lower_parallel
from repro.utils.rng import make_rng
from repro.utils.tables import format_table


def main() -> None:
    # --- Fig. 7: modeled weak scaling, CPO vs DBSR.
    models = {v: build_hpcg_model(nx=16, variant=v, n_levels=3,
                                  bsize=8, n_workers=8)
              for v in ("cpo", "dbsr")}
    sweeps = {v: weak_scaling_sweep(models[v], nx_model=16)
              for v in models}
    rows = []
    for p_cpo, p_dbsr in zip(sweeps["cpo"], sweeps["dbsr"]):
        rows.append((p_dbsr.nodes, p_dbsr.ranks,
                     f"{p_cpo.gflops:.0f}", f"{p_dbsr.gflops:.0f}",
                     f"{p_dbsr.efficiency * 100:.1f}%"))
    print(format_table(
        ["nodes", "ranks", "CPO GFLOPS", "DBSR GFLOPS", "efficiency"],
        rows, title="Fig 7: weak scaling, Phytium 2000+ model "
        "(paper: 6119.2 GFLOPS peak, >90% efficiency)"))

    # --- Functional parallelism: threads produce identical solves.
    problem = poisson_problem((8, 8, 8), "27pt")
    vb = build_vbmc(problem.grid, problem.stencil, (2, 2, 2), 4)
    reordered = vb.apply_matrix(problem.matrix)
    L, D, _ = split_triangular(reordered)
    Ld = DBSRMatrix.from_csr(L, 4)
    b = make_rng().standard_normal(L.n_rows)
    serial = sptrsv_csr(L, D, b)
    print("\nThread-parallel Algorithm 2 (color-barrier executor):")
    for workers in (1, 2, 4, 8):
        x = sptrsv_dbsr_lower_parallel(Ld, b, vb.schedule, diag=D,
                                       n_workers=workers)
        print(f"  {workers} workers: max |diff| vs serial = "
              f"{np.abs(x - serial).max():.2e}")
        assert np.allclose(x, serial)


if __name__ == "__main__":
    main()
