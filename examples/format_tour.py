"""Storage format tour (the paper's Fig. 1 + Fig. 11).

Converts one structured-grid matrix through every storage format in
the library, checks they agree, and prints the byte-exact storage
comparison including DBSR across bsize — the data behind Fig. 11.

Run:  python examples/format_tour.py
"""

import numpy as np

from repro.formats import DBSRMatrix, to_format
from repro.formats.convert import FORMAT_NAMES
from repro.grids import poisson_problem
from repro.ordering import build_vbmc
from repro.utils.rng import make_rng
from repro.utils.tables import format_table


def main() -> None:
    problem = poisson_problem((16, 16, 16), "27pt")
    csr = problem.matrix
    x = make_rng().standard_normal(csr.n_cols)
    ref = csr.matvec(x)

    rows = []
    for name in FORMAT_NAMES:
        m = to_format(csr, name, bsize=8, chunk=8, sigma=32)
        assert np.allclose(m.matvec(x), ref), name
        rep = m.memory_report()
        rows.append((rep.format_name, rep.nnz, rep.padding_values,
                     rep.index_bytes // 1024, rep.value_bytes // 1024,
                     rep.total_bytes // 1024))
    print(format_table(
        ["format", "nnz", "padded zeros", "index KiB", "value KiB",
         "total KiB"],
        rows, title="All formats on the 16^3 27-point operator "
        "(lexicographic ordering)"))

    # Fig. 11: DBSR on the *reordered* matrix across bsize.
    print()
    rows = []
    csr_rep = csr.memory_report()
    for bsize in (1, 2, 4, 8, 16):
        vb = build_vbmc(problem.grid, problem.stencil,
                        (4, 4, 4) if bsize <= 8 else (2, 2, 2), bsize)
        dbsr = DBSRMatrix.from_csr(vb.apply_matrix(csr), bsize)
        rep = dbsr.memory_report(offset_itemsize=1)
        rows.append((bsize, dbsr.n_tiles, rep.padding_values,
                     rep.index_bytes // 1024,
                     rep.total_bytes // 1024,
                     f"{rep.total_bytes / csr_rep.total_bytes:.3f}"))
    print(format_table(
        ["bsize", "tiles", "padded zeros", "index KiB", "total KiB",
         "vs CSR"],
        rows, title=f"Fig 11: DBSR storage vs bsize "
        f"(CSR total = {csr_rep.total_bytes // 1024} KiB)"))


if __name__ == "__main__":
    main()
