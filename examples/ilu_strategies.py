"""ILU(0) parallel strategy shoot-out (the paper's SV-E evaluation).

Prepares every strategy of Fig. 9 on a 3-D Poisson problem, measures
real iteration counts to a shared residual, and prints both the
convergence table and the modeled Fig. 9 speedups on Intel.

Run:  python examples/ilu_strategies.py
"""

from repro.grids import poisson_problem
from repro.ilu import STRATEGY_NAMES, make_strategy
from repro.perfmodel import ilu_smoothing_speedups
from repro.simd import INTEL_XEON
from repro.solvers import preconditioned_richardson
from repro.utils.tables import format_table


def main() -> None:
    problem = poisson_problem((8, 8, 8), "27pt")
    print(f"problem: 8^3 27-point, n={problem.n}")

    # --- Measured convergence at equal residual (tol 1e-8).
    rows = []
    for name in STRATEGY_NAMES:
        s = make_strategy(name, problem, n_workers=8, bsize=4,
                          block_points=8)
        s.factorize()
        _, hist = preconditioned_richardson(
            problem.matrix, problem.rhs, s.apply, tol=1e-8,
            maxiter=400)
        counter = s.smoothing_counter()
        rows.append((name, hist.iterations, s.n_colors,
                     f"{s.parallelism:g}",
                     counter.total_bytes // 1024,
                     "yes" if counter.bytes_gathered == 0 else "no"))
    print()
    print(format_table(
        ["strategy", "iterations", "colors", "parallel units",
         "traffic KiB/apply", "gather-free"],
        rows, title="Convergence & structure at equal residual"))

    # --- Modeled Fig. 9 speedups over the serial solve.
    speedups = ilu_smoothing_speedups(
        problem, INTEL_XEON, thread_counts=(1, 4, 16, 32),
        bsize=4, tol=1e-8, scale=(256 / 8) ** 3, block_points=8)
    rows = [[name] + [f"{v:.2f}" for v in speedups[name]]
            for name in STRATEGY_NAMES if name != "serial"]
    print()
    print(format_table(
        ["strategy", "T=1", "T=4", "T=16", "T=32"], rows,
        title="Fig 9 projection (Intel Xeon, counts scaled to 256^3)"))


if __name__ == "__main__":
    main()
