"""Setuptools entry point.

Package metadata lives here (rather than a ``[project]`` table) because
the offline environment lacks the ``wheel`` package: with a PEP 621
``pyproject.toml`` pip insists on building a wheel for editable
installs, which fails without network access. A plain ``setup.py``
keeps ``pip install -e .`` on the legacy ``develop`` path that works
offline. ``pyproject.toml`` still carries the pytest configuration.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DBSR: an efficient storage format for vectorizing sparse "
        "triangular solvers on structured grids (SC 2024 reproduction)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis", "scipy"],
    },
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": ["dbsr-repro=repro.cli:main"],
    },
)
