"""Sharded-serving benchmark: ``repro shard-bench`` → BENCH_shard.json.

Runs a repeated-structure workload (all four ops, cycling) through a
:class:`~repro.shard.service.ShardedSolveService` and reports the
four claims the sharding layer makes:

1. **Per-shard amortization** — every shard's private
   :class:`~repro.serve.cache.PlanCache` compiles its brick once and
   serves every later request from cache (per-shard hit rate ≥ 90%).
2. **Halo accounting** — measured exchange bytes equal the per-request
   closed form (one exchange per spmv/symgs, zero for the triangular
   block-Jacobi ops), and an interior rank's materialized ghost volume
   equals :func:`repro.cluster.halo.halo_bytes_per_rank` with its
   neighbor set matching
   :func:`repro.cluster.decomp.halo_neighbor_count`.
3. **Bit-identity** — every sharded result equals the reference twin
   (fresh compiles + ordered-CSR kernels) bit-for-bit, and sharded
   SpMV additionally equals the **true global** ``A @ x``.
4. **Parallel headroom** — per-shard
   :func:`~repro.ordering.schedule_stats.schedule_stats` speedup
   bounds, plus their sum as the independent-shard aggregate.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.decomp import halo_neighbor_count
from repro.cluster.halo import halo_bytes_per_rank
from repro.ordering.schedule_stats import schedule_stats
from repro.serve.plan import PlanConfig, structural_fingerprint
from repro.shard.context import ShardContext
from repro.shard.reference import (
    ReferenceExecutor,
    reference_sharded_solve,
)
from repro.shard.service import ShardedSolveService

OPS = ("lower", "upper", "symgs", "spmv")


def _interior_rank(proc_grid: tuple) -> int | None:
    """First rank with interior process coordinates, if any."""
    if any(p < 3 for p in proc_grid):
        return None
    rank = 0
    stride = 1
    for p in proc_grid:
        rank += stride  # coordinate 1 along this axis
        stride *= p
    return rank


def _closed_form_halo(ctx: ShardContext) -> dict | None:
    """Interior-rank ghost volume vs the analytic halo formula."""
    idx = _interior_rank(ctx.proc_grid)
    if idx is None or ctx.grid.ndim != 3 \
            or len(ctx.stencil.offsets) != 27:
        return None
    r = ctx.dist.ranks[idx]
    expected = halo_bytes_per_rank(*r.brick_dims, dtype_bytes=8)
    neighbors = len(r.neighbor_ranks)
    expected_neighbors = halo_neighbor_count(ctx.proc_grid,
                                             interior=True)
    return {
        "interior_rank": idx,
        "brick_dims": list(r.brick_dims),
        "expected_bytes": int(expected),
        "measured_ghost_bytes": int(r.halo_bytes()),
        "bytes_match": bool(r.halo_bytes() == expected),
        "neighbors": neighbors,
        "expected_neighbors": int(expected_neighbors),
        "neighbors_match": bool(neighbors == expected_neighbors),
    }


def collect_bench_shard(nx: int = 9, stencil: str = "27pt",
                        n_ranks: int = 27,
                        proc_grid: tuple | None = None,
                        n_requests: int = 24, max_batch: int = 8,
                        n_workers: int = 2, dtype: str = "f64",
                        machine: str = "kp920",
                        seed: int = 2024) -> dict:
    """Run the sharded workload; return the BENCH_shard report dict.

    The default shape — 9³ grid over a 3×3×3 process grid — keeps an
    interior rank whose 3³ brick makes the analytic halo formula an
    exact equality, not just a bound.
    """
    from repro.grids.grid import StructuredGrid

    config = PlanConfig(bsize=None, n_workers=n_workers, dtype=dtype,
                        machine=machine)
    rng = np.random.default_rng(seed)
    grid = StructuredGrid((nx,) * 3)

    with ShardedSolveService(
            n_ranks=n_ranks, proc_grid=proc_grid, config=config,
            max_batch=max_batch,
            max_pending=max(n_requests + 4, 16)) as service:
        tickets = []
        for i in range(n_requests):
            rhs = rng.standard_normal(grid.n_points)
            op = OPS[i % len(OPS)]
            tickets.append(
                (service.submit(grid, stencil, rhs, op=op), op, rhs))
            if (i + 1) % max_batch == 0:
                service.drain()
        service.drain()
        for t, _, _ in tickets:
            t.result(timeout=0)
        stats = service.stats()
        ctx = service._contexts[tickets[0][0].fingerprint]

        # Bit-identity: serving path vs the reference twin, once per
        # op, plus sharded SpMV vs the true global matvec.
        ref = ReferenceExecutor(ctx)
        identity = {}
        for op in OPS:
            ticket, _, rhs = next(entry for entry in tickets
                                  if entry[1] == op)
            got = ticket.result(timeout=0)
            want = reference_sharded_solve(ctx, op, rhs, executor=ref)
            identity[f"{op}_bitwise_reference"] = bool(
                np.array_equal(got, want))
        ticket, _, rhs = next(e for e in tickets if e[1] == "spmv")
        global_y = ctx.dist.problem.matrix.matvec(
            rhs.astype(config.np_dtype))
        identity["spmv_bitwise_global"] = bool(
            np.array_equal(ticket.result(timeout=0), global_y))

        # Per-shard cache + schedule reporting.
        shard_rows = []
        bounds = []
        for shard, bg, rank in zip(service.shards, ctx.brick_grids,
                                   ctx.dist.ranks):
            plan = shard.cache.peek(
                structural_fingerprint(bg, ctx.stencil, config))
            bound = schedule_stats(
                plan.ordering.schedule).speedup_bound(n_workers)
            bounds.append(bound)
            cstats = shard.cache.stats()
            shard_rows.append({
                "rank": shard.rank,
                "brick_dims": list(rank.brick_dims),
                "n_owned": rank.n_owned,
                "n_ghost": rank.n_ghost,
                "n_neighbors": len(rank.neighbor_ranks),
                "bsize": int(plan.bsize),
                "hit_rate": cstats["hit_rate"],
                "cache": cstats,
                "speedup_bound": bound,
            })

        expected_request_bytes = sum(
            t.metrics["halo_bytes_per_solve"] for t, op, _ in tickets
            if op in ("spmv", "symgs"))
        halo = {
            "measured": stats["halo"],
            "expected_bytes_from_requests": int(expected_request_bytes),
            "bytes_match_requests": bool(
                stats["halo"]["bytes"] == expected_request_bytes),
            "bytes_per_iteration": {
                op: ctx.halo_bytes_per_solve(op, 1) for op in OPS},
            "closed_form": _closed_form_halo(ctx),
        }

    hit_rate_min = min(row["hit_rate"] for row in shard_rows)
    closed = halo["closed_form"]
    gates = {
        "per_shard_hit_rate_ge_90": bool(hit_rate_min >= 0.90),
        "all_bitwise_identical": all(identity.values()),
        "halo_bytes_match_requests": halo["bytes_match_requests"],
        "halo_closed_form_match": bool(
            closed is None
            or (closed["bytes_match"] and closed["neighbors_match"])),
        "no_failed_requests": stats["failed"] == 0,
    }
    return {
        "schema": "dbsr-repro/bench-shard/v1",
        "config": {
            "nx": nx,
            "stencil": stencil,
            "n_ranks": n_ranks,
            "proc_grid": list(ctx.proc_grid),
            "n_requests": n_requests,
            "max_batch": max_batch,
            "n_workers": n_workers,
            "dtype": dtype,
            "machine": machine,
        },
        "shards": shard_rows,
        "per_shard_hit_rate_min": hit_rate_min,
        "halo": halo,
        "identity": identity,
        "schedule": {
            "per_shard_speedup_bound": bounds,
            "aggregate_speedup_bound": float(sum(bounds)),
        },
        "service": {
            k: stats[k] for k in ("submitted", "completed", "failed",
                                  "batches_executed")
        },
        "gates": gates,
        "ok": all(gates.values()),
    }
