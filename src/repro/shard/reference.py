"""Reference executor: the sharded differential-testing twin.

Runs the same decomposition arithmetic as the serving path
(:func:`repro.shard.context.sharded_execute`) but with everything
swapped out underneath: plans are compiled **fresh** (no cache, so a
poisoned cache cannot leak into the reference) and the triangular
kernels are the fallback chain's clean ordered-CSR rungs
(``execute_reference`` — sequential subtraction, no DBSR/SELL, no
tracing, no hooks). Because plan compilation is deterministic and the
DBSR triangular solves are bit-identical to the ordered-CSR reference
(the observe suite's golden guarantee), the serving path must match
this twin bit-for-bit — any divergence is a real defect, not noise.
"""

from __future__ import annotations

import numpy as np

from repro.resilience.fallback import FallbackChain
from repro.serve.plan import compile_plan
from repro.shard.context import (
    ShardContext,
    ShardExecutor,
    permuted_lower_product,
    sharded_execute,
)


class ReferenceExecutor(ShardExecutor):
    """Fresh per-brick plans + clean scalar CSR triangular solves."""

    def __init__(self, ctx: ShardContext):
        self.plans = [compile_plan(bg, ctx.stencil, ctx.config)
                      for bg in ctx.brick_grids]
        self._chain = FallbackChain(cache=None, residual_check=False,
                                    integrity=False)

    def solve(self, i: int, op: str, B: np.ndarray) -> np.ndarray:
        return self._chain.execute_reference(self.plans[i], op, B)

    def lower_product(self, i: int, X: np.ndarray) -> np.ndarray:
        return permuted_lower_product(self.plans[i], X)


def reference_sharded_solve(ctx: ShardContext, op: str, B: np.ndarray,
                            executor: ReferenceExecutor | None = None
                            ) -> np.ndarray:
    """One sharded solve through the reference twin.

    Pass a prebuilt ``executor`` to amortize the fresh compiles across
    several ops/right-hand sides of the same structure.
    """
    if executor is None:
        executor = ReferenceExecutor(ctx)
    return sharded_execute(ctx, op, B, executor)
