"""Sharded solve frontend over the simulated-MPI substrate.

:class:`ShardedSolveService` accepts the exact submit/drain API of
:class:`repro.serve.service.SolveService` (same validation, tickets,
backpressure, deadlines, drain timeouts, coalescing and per-request
error isolation — it *is* a ``SolveService`` subclass) but executes
every request across simulated ranks: the global structure is
decomposed into bricks (:class:`repro.shard.context.ShardContext`),
each :class:`Shard` compiles the brick plan through its **own**
:class:`~repro.serve.cache.PlanCache` (so every shard autotunes its
own ``bsize`` for its brick shape), and the distributed ops run real
:func:`~repro.cluster.functional.halo_exchange` traffic between color
sweeps.

Wiring into the sibling subsystems:

* **observe** — per-rank ``shard.rank`` spans under a ``shard.solve``
  batch span; every halo exchange emits a ``halo.exchange`` event
  carrying ``halo_bytes_per_rank``; the service registry grows
  ``shard.halo_bytes`` / ``shard.halo_messages`` /
  ``shard.exchanges`` counters.
* **resilience** — each shard owns a scoped
  :class:`~repro.resilience.fallback.FallbackChain` over its own
  cache: a poisoned shard heals (invalidate + recompile) or descends
  DBSR→SELL→CSR *locally*, without failing sibling shards or the
  request.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.observe import trace
from repro.resilience.fallback import FallbackChain
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig
from repro.serve.service import RequestError, SolveService
from repro.utils.validation import check_positive
from repro.shard.context import (
    ShardContext,
    ShardExecutor,
    permuted_lower_product,
    sharded_execute,
)


@dataclass
class Shard:
    """One simulated rank's serving state: its cache and its chain."""

    rank: int
    cache: PlanCache
    chain: FallbackChain | None = None

    def stats(self) -> dict:
        return {
            "rank": self.rank,
            "cache": self.cache.stats(),
            "resilience": (self.chain.stats()
                           if self.chain is not None else None),
        }


@dataclass
class _ShardHandle:
    """What ``_plan_for`` resolves per request: the structure's
    decomposition plus this drain's per-shard plans."""

    context: ShardContext
    plans: list

    @property
    def fingerprint(self) -> str:
        return self.context.fingerprint


class _ServiceExecutor(ShardExecutor):
    """Cached plans + per-shard fallback chains, traced per rank."""

    def __init__(self, service: "ShardedSolveService",
                 handle: _ShardHandle):
        self.service = service
        self.handle = handle

    def solve(self, i: int, op: str, B: np.ndarray) -> np.ndarray:
        shard = self.service.shards[i]
        plan = self.handle.plans[i]
        with trace.span("shard.rank", rank=i, op=op,
                        n_owned=int(B.shape[0])):
            if shard.chain is None:
                return plan.execute(op, B)
            result = shard.chain.execute(plan, op, B)
        if result.recompiled:
            # The chain healed the shard by recompiling into its
            # cache; later ops of this very request should use the
            # fresh plan too (peek: no hit/miss accounting).
            fresh = shard.cache.peek(plan.fingerprint)
            if fresh is not None:
                self.handle.plans[i] = fresh
        return result.solution

    def lower_product(self, i: int, X: np.ndarray) -> np.ndarray:
        return permuted_lower_product(self.handle.plans[i], X)


class ShardedSolveService(SolveService):
    """Submit/drain frontend that decomposes every solve over shards.

    Parameters
    ----------
    n_ranks:
        Number of simulated ranks (= shards).
    proc_grid:
        Explicit process grid (its product must equal ``n_ranks``);
        by default the most-cubic grid of the request's arity.
    cache_capacity:
        Per-shard plan-cache capacity.
    resilience:
        ``True`` (default) gives every shard a scoped
        :class:`FallbackChain` over its own cache; ``False`` runs the
        clean path; a callable ``f(cache) -> FallbackChain`` injects a
        custom chain per shard.
    max_contexts:
        LRU bound on cached :class:`ShardContext` decompositions.
    persist_dir:
        Optional directory for per-shard autotune-pick persistence
        (``shard<i>.json`` files).
    """

    def __init__(self, n_ranks: int = 8,
                 proc_grid: tuple | None = None,
                 cache_capacity: int = 8,
                 config: PlanConfig | None = None,
                 max_batch: int = 8, max_pending: int = 64,
                 resilience=True, max_contexts: int = 8,
                 persist_dir: str | None = None):
        super().__init__(config=config, max_batch=max_batch,
                         max_pending=max_pending, resilience=None)
        # The single global plan cache is meaningless here — every
        # shard owns its own. Drop it so nothing compiles through it
        # by accident (stats() and _plan_for are overridden).
        self.cache = None
        self.n_ranks = check_positive(n_ranks, "n_ranks")
        self.proc_grid = tuple(proc_grid) if proc_grid is not None \
            else None
        if self.proc_grid is not None and \
                int(np.prod(self.proc_grid)) != self.n_ranks:
            raise ValueError(
                f"proc_grid {self.proc_grid} does not match "
                f"n_ranks={self.n_ranks}")
        self.shards = []
        for i in range(self.n_ranks):
            cache = PlanCache(
                capacity=check_positive(cache_capacity,
                                        "cache_capacity"),
                persist_path=(os.path.join(persist_dir,
                                           f"shard{i}.json")
                              if persist_dir else None))
            if callable(resilience):
                chain = resilience(cache)
            elif resilience:
                chain = FallbackChain(cache=cache)
            else:
                chain = None
            self.shards.append(Shard(rank=i, cache=cache, chain=chain))
        self.max_contexts = check_positive(max_contexts,
                                           "max_contexts")
        self._contexts: OrderedDict[str, ShardContext] = OrderedDict()
        self._ctx_lock = threading.Lock()
        self._halo_bytes = self.metrics.counter(
            "shard.halo_bytes", "halo bytes moved between shards")
        self._halo_messages = self.metrics.counter(
            "shard.halo_messages",
            "point-to-point halo messages between shards")
        self._exchanges = self.metrics.counter(
            "shard.exchanges", "halo exchange rounds executed")

    # Submission ---------------------------------------------------------
    def submit(self, grid, stencil, rhs, op="lower", config=None,
               deadline=None):
        # Fail undecomposable structures at the submission site, like
        # every other request-shape error.
        self._proc_grid_for(grid)
        return super().submit(grid, stencil, rhs, op=op, config=config,
                              deadline=deadline)

    def _proc_grid_for(self, grid) -> tuple:
        from repro.cluster.functional import default_proc_grid

        pg = self.proc_grid
        if pg is None:
            pg = default_proc_grid(self.n_ranks, grid.ndim)
        if len(pg) != grid.ndim:
            raise RequestError(
                f"process grid {pg} has arity {len(pg)}, request grid "
                f"{grid.dims} has {grid.ndim}")
        for g, p in zip(grid.dims, pg):
            if p > g:
                raise RequestError(
                    f"cannot shard grid {grid.dims} over process grid "
                    f"{pg}: {p} ranks along a {g}-point dimension")
        return pg

    # Plan resolution ----------------------------------------------------
    def _context_for(self, entry) -> ShardContext:
        fp = entry.ticket.fingerprint
        with self._ctx_lock:
            ctx = self._contexts.get(fp)
            if ctx is not None:
                self._contexts.move_to_end(fp)
                return ctx
        ctx = ShardContext(entry.grid, entry.stencil, entry.config,
                           n_ranks=self.n_ranks,
                           proc_grid=self._proc_grid_for(entry.grid))
        with self._ctx_lock:
            self._contexts[fp] = ctx
            self._contexts.move_to_end(fp)
            while len(self._contexts) > self.max_contexts:
                self._contexts.popitem(last=False)
        return ctx

    def _plan_for(self, entry):
        """One cache transaction per request **per shard**; the
        request counts as a cache hit only when every shard hit."""
        with self.session.phase("compile"):
            ctx = self._context_for(entry)
            plans, hits = [], []
            for shard, bg in zip(self.shards, ctx.brick_grids):
                plan, hit = shard.cache.get_or_compile(
                    bg, entry.stencil, entry.config)
                plans.append(plan)
                hits.append(hit)
        return _ShardHandle(context=ctx, plans=plans), all(hits)

    # Execution ----------------------------------------------------------
    def _execute(self, handle: _ShardHandle, op: str,
                 B: np.ndarray) -> np.ndarray:
        ctx = handle.context
        with trace.span("shard.solve", op=op, n_ranks=ctx.n_ranks,
                        proc_grid=str(ctx.proc_grid),
                        fingerprint=ctx.fingerprint[:12]):
            executor = _ServiceExecutor(self, handle)
            return sharded_execute(ctx, op, B, executor,
                                   on_exchange=self._on_exchange)

    def _on_exchange(self, stats: dict) -> None:
        self._exchanges.inc()
        self._halo_bytes.inc(stats["bytes"])
        self._halo_messages.inc(stats["messages"])
        trace.event("halo.exchange", bytes=stats["bytes"],
                    messages=stats["messages"], k=stats["k"],
                    halo_bytes_per_rank=list(stats["per_rank_bytes"]))

    def _request_metrics(self, handle: _ShardHandle, cache_hit: bool,
                         op: str, k: int,
                         batch_seconds: float) -> dict:
        ctx = handle.context
        return {
            "op": op,
            "fingerprint": ctx.fingerprint,
            "batch_k": k,
            "cache_hit": cache_hit,
            "n_ranks": ctx.n_ranks,
            "proc_grid": list(ctx.proc_grid),
            "strategy": self.config.strategy,
            "bsize_per_shard": [int(p.bsize) for p in handle.plans],
            "halo_bytes_per_solve":
                ctx.halo_bytes_per_solve(op, k) // k,
            "seconds": batch_seconds / k,
        }

    # Reporting ----------------------------------------------------------
    def halo_stats(self) -> dict:
        return {
            "exchanges": self._exchanges.value,
            "bytes": self._halo_bytes.value,
            "messages": self._halo_messages.value,
        }

    def stats(self) -> dict:
        """Service + per-shard counter snapshot (a pure view)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "requeued": self._requeued.value,
            "pending": self.n_pending,
            "batches_executed": self.batches_executed,
            "max_batch": self.max_batch,
            "max_pending": self.max_pending,
            "n_ranks": self.n_ranks,
            "contexts": len(self._contexts),
            "halo": self.halo_stats(),
            "shards": [s.stats() for s in self.shards],
            "phases": self.session.phase_report(),
            "metrics": self.metrics.snapshot(),
        }
