"""Shard context: one structure's decomposition + distributed ops.

A :class:`ShardContext` binds a global structure ``(grid, stencil,
config)`` to a simulated rank decomposition
(:func:`repro.cluster.functional.build_distributed`) and exposes the
distributed execution of the four plan ops. The *per-shard kernels*
are injected through a :class:`ShardExecutor`, so the serving path
(cached plans + self-healing fallback chains, traced) and the
reference path (fresh compiles + ordered-CSR rungs, untraced) run the
exact same decomposition arithmetic and can be compared bit-for-bit.

Op semantics over the decomposition:

* ``"spmv"`` — halo exchange, then each rank's interleaved-layout
  matvec. Bit-identical to the **true global** ``A @ x`` (per-row
  summation order matches the global CSR).
* ``"lower"`` / ``"upper"`` — block-Jacobi triangular solves: each
  shard solves its own diagonal block (which equals the global
  matrix's diagonal block exactly — see
  :attr:`repro.cluster.functional.RankDomain.owned_block`).
  No halo traffic.
* ``"symgs"`` — block-Jacobi SYMGS with the HPCG-style mid-sweep
  exchange: forward sweep from a zero guess (``x1 = (L+D)^-1 b``; the
  leading exchange of the zero guess moves only zeros and is elided),
  then **one real halo exchange** of ``x1``, then the backward sweep
  on the corrected right-hand side
  ``b - G @ ghost(x1) - L_local @ x1``.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cluster.functional import (
    DistributedProblem,
    RankDomain,
    build_distributed,
    default_proc_grid,
    halo_exchange_block,
    interleave_full,
)
from repro.grids.assembly import assemble_csr
from repro.grids.grid import StructuredGrid
from repro.grids.problems import Problem
from repro.serve.plan import (
    PLAN_OPS,
    PlanConfig,
    _resolve_stencil,
    structural_fingerprint,
)
from repro.utils.validation import require


class ShardExecutor:
    """Per-shard kernel provider consumed by :func:`sharded_execute`.

    ``solve`` runs one triangular op (``"lower"``/``"upper"``) on shard
    ``i``'s ``(n_owned, k)`` block; ``lower_product`` applies the
    shard's strictly-lower factor (``L_local @ X``) for the SYMGS
    backward-sweep correction. Implementations: the sharded service
    (cached plans, fallback chains, tracing) and the reference path
    (fresh plans, clean ordered-CSR kernels).
    """

    def solve(self, i: int, op: str, B: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def lower_product(self, i: int, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class ShardContext:
    """One structure's decomposition over the simulated rank grid.

    Built once per structural fingerprint and reused by every request
    of that structure (the sharded service keeps a small LRU of these,
    mirroring the plan cache's amortization argument).
    """

    def __init__(self, grid: StructuredGrid, stencil,
                 config: PlanConfig | None = None,
                 n_ranks: int = 8, proc_grid: tuple | None = None):
        self.grid = grid
        self.stencil = _resolve_stencil(stencil)
        self.config = config if config is not None else PlanConfig()
        if proc_grid is None:
            proc_grid = default_proc_grid(n_ranks, grid.ndim)
        self.fingerprint = structural_fingerprint(
            grid, self.stencil, self.config)
        matrix = assemble_csr(grid, self.stencil,
                              dtype=self.config.np_dtype)
        problem = Problem(grid=grid, stencil=self.stencil,
                          matrix=matrix,
                          rhs=np.zeros(grid.n_points,
                                       dtype=self.config.np_dtype))
        self.dist: DistributedProblem = build_distributed(
            problem, int(np.prod(proc_grid)), proc_grid=proc_grid)
        #: One brick grid per rank — the structure each shard's
        #: :class:`~repro.serve.plan.SolvePlan` compiles for.
        self.brick_grids = [StructuredGrid(r.brick_dims)
                            for r in self.dist.ranks]

    @property
    def n_ranks(self) -> int:
        return self.dist.n_ranks

    @property
    def proc_grid(self) -> tuple:
        return self.dist.proc_grid

    # Block plumbing -----------------------------------------------------
    def scatter_block(self, B: np.ndarray) -> list:
        """Split a global ``(n, k)`` block into per-rank owned rows."""
        return [B[r.owned_global] for r in self.dist.ranks]

    def gather_block(self, X_locals: list) -> np.ndarray:
        """Reassemble per-rank ``(n_owned, k)`` blocks globally."""
        k = X_locals[0].shape[1]
        out = np.empty((self.grid.n_points, k),
                       dtype=X_locals[0].dtype)
        for r, x in zip(self.dist.ranks, X_locals):
            out[r.owned_global] = x
        return out

    def exchange(self, X_locals: list, on_exchange=None) -> list:
        """Block halo exchange; reports volumes to ``on_exchange``."""
        ghosts, stats = halo_exchange_block(self.dist, X_locals)
        if on_exchange is not None:
            on_exchange(stats)
        return ghosts

    def halo_bytes_per_solve(self, op: str, k: int = 1,
                             itemsize: int | None = None) -> int:
        """Closed-form halo traffic of one sharded ``op`` over ``k``
        right-hand sides: ``exchanges * sum_r(n_ghost_r) * k * bytes``
        (spmv and symgs each perform exactly one exchange; the
        block-Jacobi triangular ops none)."""
        if itemsize is None:
            itemsize = np.dtype(self.config.np_dtype).itemsize
        exchanges = 1 if op in ("spmv", "symgs") else 0
        ghosts = sum(r.n_ghost for r in self.dist.ranks)
        return exchanges * ghosts * k * itemsize


def ghost_correction(rank: RankDomain,
                     ghosts: np.ndarray) -> np.ndarray:
    """``G @ ghosts`` — neighbor bricks' contribution to owned rows."""
    out = np.zeros((rank.n_owned,) + ghosts.shape[1:],
                   dtype=ghosts.dtype)
    if rank.n_ghost == 0:
        return out
    G = rank.coupling
    for j in range(ghosts.shape[1]):
        out[:, j] = G.matvec(ghosts[:, j])
    return out


def permuted_lower_product(plan, X: np.ndarray) -> np.ndarray:
    """``L_local @ X`` through a plan's permuted strictly-lower CSR.

    Uses the same ``split_triangular(plan.matrix)`` artifacts as the
    fallback chain's CSR rung (cached on the plan), so the serving and
    reference executors compute the identical product bit-for-bit.
    """
    from repro.resilience.fallback import FallbackChain

    L, _, _ = FallbackChain._csr_artifacts(plan)
    Xp = plan.extend(X)
    Yp = np.empty_like(Xp)
    for j in range(Xp.shape[1]):
        Yp[:, j] = L.matvec(Xp[:, j])
    return plan.restrict(Yp)


def sharded_execute(ctx: ShardContext, op: str, B: np.ndarray,
                    executor: ShardExecutor,
                    on_exchange=None) -> np.ndarray:
    """Run one op over the decomposition; returns the global solution.

    ``B`` is a global ``(n,)`` vector or ``(n, k)`` block in the
    original lexicographic ordering, like
    :meth:`repro.serve.plan.SolvePlan.execute`.
    """
    require(op in PLAN_OPS, f"unknown op {op!r}; known: {PLAN_OPS}")
    B = np.asarray(B, dtype=ctx.config.np_dtype)
    single = B.ndim == 1
    require(B.shape[0] == ctx.grid.n_points,
            f"rhs length {B.shape[0]} != problem size "
            f"{ctx.grid.n_points}")
    Bk = B.reshape(ctx.grid.n_points, -1)
    B_locals = ctx.scatter_block(Bk)
    ranks = ctx.dist.ranks

    if op == "spmv":
        ghosts = ctx.exchange(B_locals, on_exchange)
        X_locals = []
        for r, xl, g in zip(ranks, B_locals, ghosts):
            xfull = interleave_full(r, xl, g)
            y = np.empty_like(xl)
            for j in range(xl.shape[1]):
                y[:, j] = r.interleaved.matvec(xfull[:, j])
            X_locals.append(y)
    elif op in ("lower", "upper"):
        X_locals = [executor.solve(i, op, b)
                    for i, b in enumerate(B_locals)]
    else:  # symgs
        x1 = [executor.solve(i, "lower", b)
              for i, b in enumerate(B_locals)]
        ghosts = ctx.exchange(x1, on_exchange)
        X_locals = []
        for i, (r, b, x, g) in enumerate(zip(ranks, B_locals, x1,
                                             ghosts)):
            rhs2 = b - ghost_correction(r, g) \
                - executor.lower_product(i, x)
            X_locals.append(executor.solve(i, "upper", rhs2))

    out = ctx.gather_block(X_locals)
    return out[:, 0] if single else out
