"""Sharded serving on the simulated-MPI substrate.

Turns the single-node serving stack (plan compiler + cache + service,
PRs 2–4) and the verified cluster substrate (:mod:`repro.cluster`)
into one scale-out system: every incoming structured-grid solve is
decomposed into per-rank bricks, each shard compiles and autotunes its
own brick plan through a private plan cache, and the distributed ops
move real halo traffic between color sweeps. See ``docs/sharding.md``.
"""

from repro.shard.bench import collect_bench_shard
from repro.shard.context import (
    ShardContext,
    ShardExecutor,
    sharded_execute,
)
from repro.shard.reference import (
    ReferenceExecutor,
    reference_sharded_solve,
)
from repro.shard.service import Shard, ShardedSolveService

__all__ = [
    "ShardContext",
    "ShardExecutor",
    "sharded_execute",
    "ReferenceExecutor",
    "reference_sharded_solve",
    "Shard",
    "ShardedSolveService",
    "collect_bench_shard",
]
