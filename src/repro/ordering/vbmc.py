"""Vectorized block multi-color ordering (the paper's §III-A, Fig. 2(c)).

Same-color blocks are grouped ``bsize`` at a time; within a group, the
points occupying the same intra-block position across the ``bsize``
blocks receive *consecutive* numbers:

    new_id = group_base + position * bsize + lane

Color priority is preserved, so the iteration (GS/ILU smoothing) visits
the same information per block as classic BMC and the convergence rate
is identical (verified by test). When a color's block count is not a
multiple of ``bsize`` the last group is completed with *virtual blocks*
— padded identity rows that never couple to real unknowns — so the
resulting matrix dimension is a multiple of ``bsize`` and every DBSR
tile has exactly ``bsize`` lanes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil
from repro.ordering.blocks import BlockPartition, partition_grid
from repro.ordering.bmc import color_blocks
from repro.utils.validation import check_positive, require


@dataclass
class ColorSchedule:
    """Parallel schedule over vector groups.

    Group ``t`` covers block-rows ``[t*P, (t+1)*P)`` where ``P`` is
    ``points_per_block``; groups of one color are mutually independent
    (Algorithm 2 line 3's ``#pragma omp parallel for``).

    Attributes
    ----------
    bsize:
        Vector length (lanes per group).
    points_per_block:
        ``P`` — sequential steps within a group.
    color_group_ptr:
        ``n_colors + 1`` pointer; color ``c`` owns groups
        ``[color_group_ptr[c], color_group_ptr[c+1])``.
    """

    bsize: int
    points_per_block: int
    color_group_ptr: np.ndarray

    @property
    def n_colors(self) -> int:
        return len(self.color_group_ptr) - 1

    @property
    def n_groups(self) -> int:
        return int(self.color_group_ptr[-1])

    def groups_of_color(self, color: int) -> range:
        return range(int(self.color_group_ptr[color]),
                     int(self.color_group_ptr[color + 1]))

    def block_rows_of_group(self, group: int) -> range:
        p = self.points_per_block
        return range(group * p, (group + 1) * p)

    def reversed_schedule(self) -> "ColorSchedule":
        """Schedule for backward sweeps (colors in reverse priority).

        The group pointer is unchanged — callers iterate colors from
        ``n_colors - 1`` down and positions from ``P - 1`` down; this
        helper exists to make that intent explicit at call sites.
        """
        return self


@dataclass
class VBMCOrdering:
    """Result of the vectorized BMC reordering.

    Attributes
    ----------
    partition:
        The underlying block partition.
    bsize:
        Vector length.
    block_colors:
        Color per block.
    n_colors:
        Number of block colors.
    schedule:
        The :class:`ColorSchedule` driving parallel kernels.
    old_to_new:
        New (padded) index per original point.
    new_to_old:
        Original point per new index, ``-1`` for virtual padding.
    n_orig, n_padded:
        Original and padded problem sizes.
    """

    partition: BlockPartition
    bsize: int
    block_colors: np.ndarray
    n_colors: int
    schedule: ColorSchedule
    old_to_new: np.ndarray
    new_to_old: np.ndarray
    n_orig: int
    n_padded: int

    @property
    def points_per_block(self) -> int:
        return self.partition.points_per_block

    # Vector mapping ---------------------------------------------------
    def extend(self, vec: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Map an original-order vector into the padded new ordering."""
        vec = np.asarray(vec)
        require(vec.shape == (self.n_orig,), "vector length mismatch")
        out = np.full(self.n_padded, fill, dtype=vec.dtype)
        out[self.old_to_new] = vec
        return out

    def restrict(self, vec: np.ndarray) -> np.ndarray:
        """Map a padded new-order vector back to the original ordering."""
        vec = np.asarray(vec)
        require(vec.shape == (self.n_padded,), "vector length mismatch")
        return vec[self.old_to_new]

    # Matrix mapping ----------------------------------------------------
    def apply_matrix(self, csr: CSRMatrix) -> CSRMatrix:
        """Return the padded, symmetrically permuted matrix.

        Real entries move to their new coordinates; each virtual row
        gets a unit diagonal so triangular solves and ILU remain
        well-posed, and couples to nothing so it never perturbs real
        unknowns.
        """
        require(csr.shape == (self.n_orig, self.n_orig),
                "matrix size mismatch")
        rows = np.repeat(np.arange(self.n_orig), np.diff(csr.indptr))
        new_rows = self.old_to_new[rows]
        new_cols = self.old_to_new[csr.indices]
        virtual = np.flatnonzero(self.new_to_old < 0)
        all_rows = np.concatenate([new_rows, virtual])
        all_cols = np.concatenate([new_cols, virtual])
        all_vals = np.concatenate([
            csr.data, np.ones(len(virtual), dtype=csr.data.dtype)
        ])
        coo = COOMatrix(all_rows, all_cols, all_vals,
                        (self.n_padded, self.n_padded))
        return CSRMatrix.from_coo(coo)

    def validate(self) -> bool:
        """Check group independence: no two blocks in the same group are
        adjacent (they share a color and colors are conflict-free, so
        this follows; the check guards the coloring itself)."""
        coords = self.partition.block_grid.coords_array()
        for color in range(self.n_colors):
            members = np.flatnonzero(self.block_colors == color)
            if len(members) < 2:
                continue
            cc = coords[members]
            # Chebyshev distance >= 2 between same-color blocks.
            for i in range(min(len(members), 64)):  # spot check
                d = np.abs(cc - cc[i]).max(axis=1)
                d[i] = 99
                if d.min() < 2 and not _star_safe(cc, i):
                    return False
        return True


def _star_safe(cc: np.ndarray, i: int) -> bool:
    """Same-color blocks at Chebyshev distance 1 are fine for star
    stencils when they differ in >= 2 axes (diagonal neighbors)."""
    diff = np.abs(cc - cc[i])
    cheb1 = diff.max(axis=1) == 1
    return bool(np.all((diff[cheb1] != 0).sum(axis=1) >= 2))


def build_vbmc(grid: StructuredGrid, stencil: Stencil, block_dims,
               bsize: int) -> VBMCOrdering:
    """Build the vectorized BMC ordering.

    Parameters
    ----------
    grid, stencil:
        Problem geometry and operator.
    block_dims:
        Block extents (must divide the grid dims).
    bsize:
        Vector length. ``bsize=1`` degenerates to classic BMC
        (§III-B: "When bsize = 1, our vectorized BMC will be converted
        to a classic BMC").
    """
    bsize = check_positive(bsize, "bsize")
    partition = partition_grid(grid, block_dims)
    colors = color_blocks(partition, stencil)
    n_colors = int(colors.max()) + 1
    ppb = partition.points_per_block
    table = partition.all_block_point_ids()

    old_to_new = np.empty(grid.n_points, dtype=np.int64)
    new_to_old_parts = []
    color_group_ptr = np.zeros(n_colors + 1, dtype=np.int64)
    new_base = 0
    n_groups = 0
    for color in range(n_colors):
        members = np.flatnonzero(colors == color)
        pad = (-len(members)) % bsize
        lanes_total = len(members) + pad
        groups_here = lanes_total // bsize
        for g in range(groups_here):
            group_blocks = members[g * bsize:(g + 1) * bsize]
            lanes = len(group_blocks)
            # position-major interleave: new = base + pos*bsize + lane
            for lane, blk in enumerate(group_blocks):
                old_to_new[table[blk]] = (
                    new_base + np.arange(ppb) * bsize + lane
                )
            part = np.full(ppb * bsize, -1, dtype=np.int64)
            pos = np.repeat(np.arange(ppb), lanes) * bsize \
                + np.tile(np.arange(lanes), ppb)
            part[pos] = table[group_blocks][
                np.tile(np.arange(lanes), ppb),
                np.repeat(np.arange(ppb), lanes),
            ]
            new_to_old_parts.append(part)
            new_base += ppb * bsize
        n_groups += groups_here
        color_group_ptr[color + 1] = n_groups

    new_to_old = (np.concatenate(new_to_old_parts)
                  if new_to_old_parts else np.zeros(0, dtype=np.int64))
    schedule = ColorSchedule(
        bsize=bsize,
        points_per_block=ppb,
        color_group_ptr=color_group_ptr,
    )
    return VBMCOrdering(
        partition=partition,
        bsize=bsize,
        block_colors=colors,
        n_colors=n_colors,
        schedule=schedule,
        old_to_new=old_to_new,
        new_to_old=new_to_old,
        n_orig=grid.n_points,
        n_padded=new_base,
    )
