"""Color-schedule diagnostics.

The BMC family's performance hinges on three schedule properties the
paper discusses: enough parallel units per color (§II-B), few
synchronization points, and balanced work across units. This module
computes those numbers from a :class:`~repro.ordering.vbmc.ColorSchedule`
so they can be printed, asserted, and fed to the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ordering.vbmc import ColorSchedule


@dataclass
class ScheduleStats:
    """Summary of one color schedule.

    Attributes
    ----------
    n_colors, n_groups:
        Schedule extents.
    groups_per_color:
        Group count per color.
    min_parallelism:
        Smallest color class — the thread-count ceiling.
    balance:
        ``min/max`` groups per color (1.0 = perfectly balanced).
    barriers_per_sweep:
        Synchronizations one forward sweep needs.
    max_speedup:
        Amdahl-style bound: harmonic composition of the per-color
        parallelism for a given worker count (see :meth:`speedup_bound`).
    """

    n_colors: int
    n_groups: int
    groups_per_color: np.ndarray
    min_parallelism: int
    balance: float
    barriers_per_sweep: int

    def speedup_bound(self, workers: int) -> float:
        """Upper bound on sweep speedup with ``workers`` workers.

        Each color runs ``ceil(groups/workers)`` rounds; the bound is
        (total groups) / (total rounds) — exact for unit-cost groups.
        """
        rounds = np.ceil(self.groups_per_color / workers).sum()
        return float(self.n_groups / rounds) if rounds else 1.0

    def rows(self) -> list:
        """Tabular form for reports."""
        return [(c, int(g)) for c, g in
                enumerate(self.groups_per_color)]


def schedule_stats(schedule: ColorSchedule) -> ScheduleStats:
    """Compute diagnostics for ``schedule``."""
    counts = np.diff(schedule.color_group_ptr)
    return ScheduleStats(
        n_colors=schedule.n_colors,
        n_groups=schedule.n_groups,
        groups_per_color=counts,
        min_parallelism=int(counts.min()) if len(counts) else 0,
        balance=(float(counts.min() / counts.max())
                 if len(counts) and counts.max() else 1.0),
        barriers_per_sweep=schedule.n_colors,
    )
