"""Algebraic block multi-color ordering (ABMC) with vector grouping.

The paper's reordering (§III-A) is geometric: it needs a structured
grid. Its related work cites Iwashita et al.'s *algebraic* block
multi-coloring [43], which works from the matrix graph alone, and the
conclusion names unstructured-grid support as future work. This module
implements that extension: an ABMC ordering with the same
``bsize``-lane vector grouping, producing a schedule and padded
permutation interchangeable with the geometric
:class:`~repro.ordering.vbmc.VBMCOrdering`.

Pipeline:

1. **Aggregate** rows into blocks of (up to) ``block_size`` vertices by
   greedy BFS over the matrix graph — connected, cache-friendly blocks.
2. **Color** the block quotient graph greedily so adjacent blocks
   differ.
3. **Group** same-color blocks ``bsize`` at a time and lane-interleave
   their rows, padding ragged blocks and ragged groups with virtual
   rows so every group is a dense ``positions x bsize`` brick.

Same-color blocks never couple, so the DBSR triangular solves of
Algorithm 2 remain correct; on irregular graphs the tiles simply
fragment into more (shorter) diagonals — storage degrades gracefully
while the kernel stays gather-free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.ordering.coloring import greedy_coloring, validate_coloring
from repro.ordering.vbmc import ColorSchedule
from repro.utils.validation import check_positive, require


def aggregate_blocks(csr: CSRMatrix, block_size: int) -> list:
    """Greedy BFS aggregation of the matrix graph into blocks.

    Returns a list of index arrays; every vertex appears in exactly
    one block, blocks have at most ``block_size`` vertices, and each
    block is connected whenever the graph permits.
    """
    check_positive(block_size, "block_size")
    n = csr.n_rows
    assigned = np.full(n, -1, dtype=np.int64)
    blocks = []
    for seed in range(n):
        if assigned[seed] >= 0:
            continue
        block = [seed]
        assigned[seed] = len(blocks)
        queue = deque([seed])
        while queue and len(block) < block_size:
            v = queue.popleft()
            for u in csr.row(v)[0]:
                if len(block) >= block_size:
                    break
                if assigned[u] < 0:
                    assigned[u] = len(blocks)
                    block.append(int(u))
                    queue.append(int(u))
        blocks.append(np.asarray(block, dtype=np.int64))
    return blocks


def block_quotient_graph(csr: CSRMatrix, blocks: list) -> tuple:
    """CSR adjacency of the block quotient graph (no self loops)."""
    n = csr.n_rows
    block_of = np.empty(n, dtype=np.int64)
    for b, members in enumerate(blocks):
        block_of[members] = b
    rows = np.repeat(np.arange(n), np.diff(csr.indptr))
    br = block_of[rows]
    bc = block_of[csr.indices]
    mask = br != bc
    pairs = np.unique(
        np.stack([br[mask], bc[mask]], axis=1), axis=0
    ) if mask.any() else np.zeros((0, 2), dtype=np.int64)
    nb = len(blocks)
    counts = np.bincount(pairs[:, 0], minlength=nb) if len(pairs) \
        else np.zeros(nb, dtype=np.int64)
    indptr = np.zeros(nb + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.lexsort((pairs[:, 1], pairs[:, 0])) if len(pairs) \
        else np.zeros(0, dtype=np.int64)
    indices = pairs[order, 1] if len(pairs) else np.zeros(
        0, dtype=np.int64)
    return indptr, indices, block_of


@dataclass
class ABMCOrdering:
    """Algebraic vectorized block multi-color ordering.

    Interface mirrors :class:`~repro.ordering.vbmc.VBMCOrdering`:
    ``old_to_new`` / ``new_to_old`` index maps (``-1`` marks virtual
    padding rows), a :class:`ColorSchedule`, and the
    ``apply_matrix`` / ``extend`` / ``restrict`` trio.
    """

    blocks: list
    block_colors: np.ndarray
    n_colors: int
    bsize: int
    points_per_block: int
    schedule: ColorSchedule
    old_to_new: np.ndarray
    new_to_old: np.ndarray
    n_orig: int
    n_padded: int

    def extend(self, vec: np.ndarray, fill: float = 0.0) -> np.ndarray:
        vec = np.asarray(vec)
        require(vec.shape == (self.n_orig,), "vector length mismatch")
        out = np.full(self.n_padded, fill, dtype=vec.dtype)
        out[self.old_to_new] = vec
        return out

    def restrict(self, vec: np.ndarray) -> np.ndarray:
        vec = np.asarray(vec)
        require(vec.shape == (self.n_padded,), "vector length mismatch")
        return vec[self.old_to_new]

    def apply_matrix(self, csr: CSRMatrix) -> CSRMatrix:
        require(csr.shape == (self.n_orig, self.n_orig),
                "matrix size mismatch")
        rows = np.repeat(np.arange(self.n_orig), np.diff(csr.indptr))
        new_rows = self.old_to_new[rows]
        new_cols = self.old_to_new[csr.indices]
        virtual = np.flatnonzero(self.new_to_old < 0)
        coo = COOMatrix(
            np.concatenate([new_rows, virtual]),
            np.concatenate([new_cols, virtual]),
            np.concatenate([csr.data,
                            np.ones(len(virtual), dtype=csr.data.dtype)]),
            (self.n_padded, self.n_padded),
        )
        return CSRMatrix.from_coo(coo)


def build_abmc(csr: CSRMatrix, block_size: int = 16,
               bsize: int = 4) -> ABMCOrdering:
    """Build an algebraic vectorized BMC ordering for any sparse matrix.

    Parameters
    ----------
    csr:
        Square sparse matrix (its pattern defines the graph).
    block_size:
        Target vertices per block (ragged blocks are padded to this
        size with virtual rows so lanes align).
    bsize:
        Vector length (blocks per group).
    """
    require(csr.n_rows == csr.n_cols, "matrix must be square")
    check_positive(bsize, "bsize")
    blocks = aggregate_blocks(csr, block_size)
    indptr, indices, _ = block_quotient_graph(csr, blocks)
    colors = greedy_coloring(indptr, indices)
    require(validate_coloring(indptr, indices, colors),
            "internal error: invalid block coloring")
    n_colors = int(colors.max()) + 1 if len(colors) else 0

    ppb = block_size
    old_to_new = np.empty(csr.n_rows, dtype=np.int64)
    new_to_old_parts = []
    color_group_ptr = np.zeros(n_colors + 1, dtype=np.int64)
    new_base = 0
    n_groups = 0
    for color in range(n_colors):
        members = np.flatnonzero(colors == color)
        pad = (-len(members)) % bsize
        groups_here = (len(members) + pad) // bsize
        for g in range(groups_here):
            group_blocks = members[g * bsize:(g + 1) * bsize]
            part = np.full(ppb * bsize, -1, dtype=np.int64)
            for lane, blk in enumerate(group_blocks):
                rows = blocks[blk]
                pos = np.arange(len(rows)) * bsize + lane
                old_to_new[rows] = new_base + pos
                part[pos] = rows
            new_to_old_parts.append(part)
            new_base += ppb * bsize
        n_groups += groups_here
        color_group_ptr[color + 1] = n_groups

    new_to_old = (np.concatenate(new_to_old_parts)
                  if new_to_old_parts else np.zeros(0, dtype=np.int64))
    schedule = ColorSchedule(bsize=bsize, points_per_block=ppb,
                             color_group_ptr=color_group_ptr)
    return ABMCOrdering(
        blocks=blocks, block_colors=colors, n_colors=n_colors,
        bsize=bsize, points_per_block=ppb, schedule=schedule,
        old_to_new=old_to_new, new_to_old=new_to_old,
        n_orig=csr.n_rows, n_padded=new_base,
    )
