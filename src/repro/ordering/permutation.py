"""Permutation objects.

A :class:`Permutation` maps *old* indices to *new* indices. Reordered
solvers permute the matrix once (``P A P^T``), permute ``b`` into the
new ordering, solve, and permute ``x`` back.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, require


class Permutation:
    """A bijection on ``{0, ..., n-1}``.

    Parameters
    ----------
    old_to_new:
        Array where ``old_to_new[i]`` is the new index of old index
        ``i``. Must be a permutation of ``0..n-1``.
    """

    def __init__(self, old_to_new):
        old_to_new = check_1d(
            np.asarray(old_to_new, dtype=np.int64), "old_to_new"
        )
        n = len(old_to_new)
        seen = np.zeros(n, dtype=bool)
        require(old_to_new.min() >= 0 and old_to_new.max() < n,
                "permutation entries out of range")
        seen[old_to_new] = True
        require(bool(seen.all()), "old_to_new is not a bijection")
        self.old_to_new = old_to_new
        self.new_to_old = np.empty(n, dtype=np.int64)
        self.new_to_old[old_to_new] = np.arange(n)

    @property
    def n(self) -> int:
        return len(self.old_to_new)

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        return cls(np.arange(n))

    @classmethod
    def from_new_to_old(cls, new_to_old) -> "Permutation":
        """Build from the inverse mapping (new index -> old index)."""
        new_to_old = np.asarray(new_to_old, dtype=np.int64)
        old_to_new = np.empty(len(new_to_old), dtype=np.int64)
        old_to_new[new_to_old] = np.arange(len(new_to_old))
        return cls(old_to_new)

    def forward(self, vec: np.ndarray) -> np.ndarray:
        """Reorder a vector from old ordering into new ordering."""
        vec = np.asarray(vec)
        require(vec.shape == (self.n,), "vector length mismatch")
        out = np.empty_like(vec)
        out[self.old_to_new] = vec
        return out

    def backward(self, vec: np.ndarray) -> np.ndarray:
        """Reorder a vector from new ordering back to old ordering."""
        vec = np.asarray(vec)
        require(vec.shape == (self.n,), "vector length mismatch")
        out = np.empty_like(vec)
        out[self.new_to_old] = vec
        return out

    def inverse(self) -> "Permutation":
        return Permutation(self.new_to_old.copy())

    def compose(self, other: "Permutation") -> "Permutation":
        """Return the permutation "apply self, then other"."""
        require(self.n == other.n, "size mismatch")
        return Permutation(other.old_to_new[self.old_to_new])

    def __eq__(self, other) -> bool:
        return (isinstance(other, Permutation)
                and np.array_equal(self.old_to_new, other.old_to_new))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Permutation(n={self.n})"
