"""Reordering machinery: multi-color, block multi-color, vectorized BMC.

The paper's pipeline (§III-C) is: (1) pick a BMC scheduling scheme,
(2) reorder the matrix and build the storage structure, (3) solve. This
package owns steps (1) and (2):

* :mod:`~repro.ordering.coloring` — point multi-color (MC) orderings and
  greedy algebraic coloring.
* :mod:`~repro.ordering.blocks` — partitioning a grid into blocks,
  including the FIX (64-point) and AUTO (resource-adaptive) schemes the
  evaluation compares (§V-E).
* :mod:`~repro.ordering.bmc` — classic block multi-color ordering
  (Fig. 2(b)).
* :mod:`~repro.ordering.vbmc` — the paper's vectorized BMC (Fig. 2(c)):
  same-color blocks are grouped ``bsize`` at a time and interleaved so
  that lane-parallel SIMD processing is possible; color priority (and
  therefore the convergence rate) is unchanged.
"""

from repro.ordering.permutation import Permutation
from repro.ordering.coloring import (
    greedy_coloring,
    point_multicolor,
    validate_coloring,
)
from repro.ordering.blocks import (
    BlockPartition,
    auto_block_dims,
    fixed_block_dims,
    partition_grid,
)
from repro.ordering.bmc import BMCOrdering, build_bmc
from repro.ordering.vbmc import ColorSchedule, VBMCOrdering, build_vbmc
from repro.ordering.abmc import ABMCOrdering, build_abmc
from repro.ordering.schedule_stats import ScheduleStats, schedule_stats

__all__ = [
    "Permutation",
    "point_multicolor",
    "greedy_coloring",
    "validate_coloring",
    "BlockPartition",
    "partition_grid",
    "fixed_block_dims",
    "auto_block_dims",
    "BMCOrdering",
    "build_bmc",
    "ColorSchedule",
    "VBMCOrdering",
    "build_vbmc",
    "ABMCOrdering",
    "build_abmc",
    "ScheduleStats",
    "schedule_stats",
]
