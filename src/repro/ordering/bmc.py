"""Classic block multi-color (BMC) ordering (Fig. 2(b)).

The grid is tiled into blocks; blocks are colored so same-colored
blocks are independent; blocks are processed color by color, points
within a block sequentially. Same-color blocks can be assigned to
threads freely — the paper's parallelization baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil, star5_2d, star7_3d, box9_2d, box27_3d
from repro.ordering.blocks import BlockPartition, partition_grid
from repro.ordering.coloring import _is_star, point_multicolor
from repro.ordering.permutation import Permutation
from repro.utils.validation import require


def _block_adjacency_stencil(stencil: Stencil, ndim: int) -> Stencil:
    """Stencil describing which *blocks* are coupled.

    For a reach-1 point stencil, a block can only couple to the
    adjacent blocks reachable by the sign pattern of the point stencil:
    star point stencils induce star block adjacency (2 colors suffice),
    box stencils induce box adjacency (``2^ndim`` colors).
    """
    require(stencil.reach <= 1,
            "BMC block coloring supports reach-1 stencils only")
    if _is_star(stencil):
        return {1: None, 2: star5_2d(), 3: star7_3d()}[ndim] \
            if ndim > 1 else stencil
    return {2: box9_2d(), 3: box27_3d()}[ndim] if ndim > 1 else stencil


def color_blocks(partition: BlockPartition, stencil: Stencil) -> np.ndarray:
    """Color the block grid so adjacent blocks never share a color.

    Colors are compressed to consecutive ids: degenerate block grids
    (e.g. a single block along one axis) would otherwise leave empty
    color classes that inflate barrier counts and break parallelism
    accounting.
    """
    block_stencil = _block_adjacency_stencil(stencil, partition.grid.ndim)
    if block_stencil is None or partition.grid.ndim == 1:
        coords = partition.block_grid.coords_array()
        colors = (coords.sum(axis=1) % 2).astype(np.int64)
    else:
        colors = point_multicolor(partition.block_grid, block_stencil)
    _, compressed = np.unique(colors, return_inverse=True)
    return compressed.astype(np.int64)


@dataclass
class BMCOrdering:
    """Result of a classic BMC reordering.

    Attributes
    ----------
    partition:
        The block partition used.
    block_colors:
        Color id per block (block-grid id order).
    n_colors:
        Number of colors.
    block_order:
        Block ids in processing order (sorted by color, then id).
    color_block_ptr:
        CSR-style pointer: blocks of color ``c`` occupy
        ``block_order[color_block_ptr[c]:color_block_ptr[c+1]]``.
    perm:
        Point permutation (old lexicographic -> new BMC order).
    """

    partition: BlockPartition
    block_colors: np.ndarray
    n_colors: int
    block_order: np.ndarray
    color_block_ptr: np.ndarray
    perm: Permutation

    @property
    def points_per_block(self) -> int:
        return self.partition.points_per_block

    def blocks_of_color(self, color: int) -> np.ndarray:
        lo, hi = self.color_block_ptr[color], self.color_block_ptr[color + 1]
        return self.block_order[lo:hi]


def build_bmc(grid: StructuredGrid, stencil: Stencil,
              block_dims) -> BMCOrdering:
    """Build the classic BMC ordering of Fig. 2(b).

    Points are renumbered color-major: all points of color-0 blocks
    first (block by block, lexicographic within each block), then
    color 1, and so on.
    """
    partition = partition_grid(grid, block_dims)
    colors = color_blocks(partition, stencil)
    n_colors = int(colors.max()) + 1
    order = np.lexsort((np.arange(partition.n_blocks), colors))
    counts = np.bincount(colors, minlength=n_colors)
    ptr = np.zeros(n_colors + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])

    ppb = partition.points_per_block
    old_to_new = np.empty(grid.n_points, dtype=np.int64)
    table = partition.all_block_point_ids()
    new_base = 0
    for b in order:
        old_to_new[table[b]] = new_base + np.arange(ppb)
        new_base += ppb
    return BMCOrdering(
        partition=partition,
        block_colors=colors,
        n_colors=n_colors,
        block_order=order,
        color_block_ptr=ptr,
        perm=Permutation(old_to_new),
    )
