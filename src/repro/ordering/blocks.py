"""Grid block partitioning.

The BMC method's two knobs are the number of colors and the block size
(§II-B). The evaluation uses two partitioning schemes:

* **FIX** — fixed 64-point blocks (Park et al. [19]).
* **AUTO** — resource-adaptive blocks sized so that each color supplies
  enough parallel blocks for every thread/vector lane (Yang et al. [24]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grids.grid import StructuredGrid
from repro.utils.validation import check_positive, require


@dataclass
class BlockPartition:
    """A tiling of a structured grid into equal rectangular blocks.

    Attributes
    ----------
    grid:
        The partitioned grid.
    block_dims:
        Extent of each block per dimension (divides the grid dims).
    block_grid:
        A :class:`StructuredGrid` over the blocks themselves.
    """

    grid: StructuredGrid
    block_dims: tuple
    block_grid: StructuredGrid

    @property
    def points_per_block(self) -> int:
        return int(np.prod(self.block_dims))

    @property
    def n_blocks(self) -> int:
        return self.block_grid.n_points

    def block_point_ids(self, block_id: int) -> np.ndarray:
        """Grid point ids of one block, lexicographic within the block."""
        bc = self.block_grid.coord(block_id)
        base = [c * b for c, b in zip(bc, self.block_dims)]
        # Enumerate block-local coordinates in lexicographic order
        # (x fastest) and map to global ids.
        local = np.arange(self.points_per_block)
        ids = np.zeros(self.points_per_block, dtype=np.int64)
        rem = local
        for axis, bdim in enumerate(self.block_dims):
            coord = base[axis] + rem % bdim
            ids += coord * self.grid.strides[axis]
            rem = rem // bdim
        return ids

    def all_block_point_ids(self) -> np.ndarray:
        """``(n_blocks, points_per_block)`` id table, block id order."""
        out = np.empty((self.n_blocks, self.points_per_block),
                       dtype=np.int64)
        for b in range(self.n_blocks):
            out[b] = self.block_point_ids(b)
        return out


def partition_grid(grid: StructuredGrid, block_dims) -> BlockPartition:
    """Partition ``grid`` into blocks of shape ``block_dims``."""
    block_dims = tuple(check_positive(b, "block dim") for b in block_dims)
    require(len(block_dims) == grid.ndim, "block dims arity mismatch")
    for g, b in zip(grid.dims, block_dims):
        require(g % b == 0, f"grid dim {g} not divisible by block dim {b}")
    block_grid = StructuredGrid(
        tuple(g // b for g, b in zip(grid.dims, block_dims))
    )
    return BlockPartition(grid=grid, block_dims=block_dims,
                          block_grid=block_grid)


def _divisors(n: int):
    return [d for d in range(1, n + 1) if n % d == 0]


def fixed_block_dims(grid: StructuredGrid, target_points: int = 64) -> tuple:
    """FIX scheme: blocks of ~``target_points`` points.

    Picks per-dimension divisors whose product is as close to
    ``target_points`` as possible, preferring near-cubic blocks (the
    4x4x4 shape of Park et al.'s 64-point scheme) — elongated blocks
    starve the parity coloring of whole color classes.
    """
    check_positive(target_points, "target_points")
    best = None
    # Search over divisor tuples; grids are small-dimensional so the
    # search space is tiny.
    def rec(axis, dims_so_far, product):
        nonlocal best
        if axis == grid.ndim:
            aspect = max(dims_so_far) / min(dims_so_far)
            score = (abs(product - target_points), aspect)
            if best is None or score < best[0]:
                best = (score, tuple(dims_so_far))
            return
        for d in _divisors(grid.dims[axis]):
            if product * d <= target_points * 2:
                rec(axis + 1, dims_so_far + [d], product * d)

    rec(0, [], 1)
    require(best is not None, "no feasible block partition")
    return best[1]


def auto_block_dims(grid: StructuredGrid, n_workers: int,
                    bsize: int = 1, n_colors: int = 2) -> tuple:
    """AUTO scheme: smallest blocks such that each color still feeds
    every worker with at least one group of ``bsize`` blocks.

    Parameters
    ----------
    grid:
        Grid to partition.
    n_workers:
        Threads (or threads x desired groups per thread).
    bsize:
        Vector length; each schedulable unit consumes ``bsize`` blocks.
    n_colors:
        Number of block colors the ordering will use.

    Notes
    -----
    Larger blocks converge faster but limit parallelism; the AUTO rule
    from [24] grows blocks until ``blocks_per_color`` would drop below
    ``n_workers * bsize``.
    """
    check_positive(n_workers, "n_workers")
    check_positive(bsize, "bsize")
    needed = n_workers * bsize * n_colors
    best = None
    def rec(axis, dims_so_far, n_blocks):
        nonlocal best
        if axis == grid.ndim:
            if n_blocks >= needed:
                ppb = int(np.prod(dims_so_far))
                aspect = max(dims_so_far) / min(dims_so_far)
                key = (ppb, -aspect)
                if best is None or key > best[0]:
                    best = (key, tuple(dims_so_far))
            return
        for d in _divisors(grid.dims[axis]):
            rec(axis + 1, dims_so_far + [d],
                n_blocks * (grid.dims[axis] // d))

    rec(0, [], 1)
    if best is None:
        # Fall back to unit blocks (max parallelism).
        return tuple(1 for _ in grid.dims)
    return best[1]
