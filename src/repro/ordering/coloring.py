"""Multi-color orderings.

Two flavors, matching the paper's related work:

* Structured point/block coloring for grids: parity-based colorings
  that are provably conflict-free for reach-1 stencils (red-black for
  star stencils, ``2^ndim`` colors for box stencils).
* Greedy algebraic coloring on an arbitrary CSR adjacency (the ABMC
  route, Iwashita et al.), used to cross-check the structured coloring
  and to color block graphs of irregular partitions.
"""

from __future__ import annotations

import numpy as np

from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil
from repro.utils.validation import require


def _is_star(stencil: Stencil) -> bool:
    """True when every offset touches at most one axis (star shape)."""
    return all(
        sum(1 for c in off if c != 0) <= 1 for off in stencil.offsets
    )


def point_multicolor(grid: StructuredGrid, stencil: Stencil) -> np.ndarray:
    """Color grid points so stencil neighbors never share a color.

    Star stencils get the classic red-black 2-coloring (color = parity
    of coordinate sum). Box stencils get the parity-vector coloring
    with ``2^ndim`` colors. Both are exact minimum colorings for
    reach-1 stencils on large grids.

    Returns
    -------
    ndarray
        ``colors[i]`` in ``[0, n_colors)`` per point id.
    """
    require(stencil.reach <= 1,
            "structured coloring supports reach-1 stencils only")
    coords = grid.coords_array()
    if _is_star(stencil):
        return (coords.sum(axis=1) % 2).astype(np.int64)
    colors = np.zeros(grid.n_points, dtype=np.int64)
    for axis in range(grid.ndim):
        colors |= (coords[:, axis] % 2) << axis
    return colors


def greedy_coloring(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """First-fit greedy coloring of an adjacency in CSR form.

    Deterministic (processes vertices in index order), so results are
    reproducible. Self-loops are ignored.
    """
    n = len(indptr) - 1
    colors = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        nbrs = indices[indptr[v]:indptr[v + 1]]
        used = set(colors[u] for u in nbrs if u != v and colors[u] >= 0)
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def validate_coloring(indptr: np.ndarray, indices: np.ndarray,
                      colors: np.ndarray) -> bool:
    """Check that no edge connects same-colored vertices (self-loops ok)."""
    n = len(indptr) - 1
    rows = np.repeat(np.arange(n), np.diff(indptr))
    mask = rows != indices
    return bool(np.all(colors[rows[mask]] != colors[indices[mask]]))


def color_counts(colors: np.ndarray) -> np.ndarray:
    """Number of vertices per color, indexed by color id."""
    return np.bincount(colors)
