"""Persistent solver runtime: pooled execution, accounting, metrics.

The runtime layer makes performance *measurable*: a
:class:`~repro.runtime.session.SolverSession` keeps one thread pool
alive across every color sweep and CG iteration of a solve, merges
per-worker op counters deterministically at color barriers, and times
each phase; :mod:`repro.runtime.metrics` serializes the result to
``BENCH_runtime.json`` (the ``repro bench-runtime`` CLI subcommand).
"""

from repro.runtime.metrics import (
    collect_bench_runtime,
    counter_to_dict,
    write_bench_json,
)
from repro.runtime.session import PhaseRecord, SolverSession

__all__ = [
    "SolverSession",
    "PhaseRecord",
    "collect_bench_runtime",
    "counter_to_dict",
    "write_bench_json",
]
