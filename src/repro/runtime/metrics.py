"""Benchmark metrics collection and JSON emission.

Turns one full runtime run — reorder, convert, sequential + parallel
sweeps, SpMV, SYMGS, and a PCG/V-cycle solve, all executed through a
single :class:`~repro.runtime.session.SolverSession` — into a
machine-readable report: per-kernel op mixes, per-stream bytes,
wall-clock seconds and parallel-vs-sequential speedups, plus the
session's per-phase ledger. ``repro bench-runtime`` serializes it to
``BENCH_runtime.json``, the seed of the repository's bench trajectory.

Per-kernel op mixes come from the closed forms in
:mod:`repro.kernels.counts` (validated against the instrumented engine
twins by the test suite); wall-clock numbers time the *fast* kernels,
best-of-``repeats``, so Python-level jitter is damped.
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np

from repro.simd.counters import OpCounter


def counter_to_dict(c: OpCounter) -> dict:
    """Serialize an :class:`OpCounter` (op mix + per-stream bytes)."""
    return {
        "bsize": c.bsize,
        "ops": {
            "vload": c.vload, "vstore": c.vstore,
            "vgather": c.vgather, "vscatter": c.vscatter,
            "vfma": c.vfma, "vmul": c.vmul, "vadd": c.vadd,
            "vdiv": c.vdiv,
            "sload": c.sload, "sstore": c.sstore,
            "sflop": c.sflop, "sdiv": c.sdiv,
        },
        "bytes": {
            "values": c.bytes_values,
            "index": c.bytes_index,
            "vector": c.bytes_vector,
            "gathered": c.bytes_gathered,
            "total": c.total_bytes,
        },
        "flops": c.flops(),
    }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _kernel_entry(counts: OpCounter, seconds: float,
                  seconds_parallel: float | None = None) -> dict:
    entry = {
        "counts": counter_to_dict(counts),
        "seconds": seconds,
    }
    if seconds_parallel is not None:
        entry["seconds_parallel"] = seconds_parallel
        entry["speedup_vs_sequential"] = (
            seconds / seconds_parallel if seconds_parallel > 0
            else float("nan"))
    return entry


def collect_bench_runtime(nx: int = 8, stencil: str = "27pt",
                          bsize: int = 4, n_workers: int = 4,
                          dtype: str = "f64", repeats: int = 3,
                          pcg_iters: int = 5,
                          backend: str = "numpy-fast",
                          seed: int = 2024) -> dict:
    """Run the benchmark suite through one session; return the report.

    The report covers SpTRSV (lower + upper, sequential and
    pool-parallel), SpMV (CSR and DBSR) and SYMGS (DBSR), plus a short
    MG-preconditioned PCG solve that exercises the ``vcycle`` /
    ``spmv`` phase timers — all on a single shared thread pool.

    ``backend`` names the kernel tier recorded in the config (and
    resolved like :func:`repro.serve.plan.compile_plan` does); the
    report additionally carries a ``backends`` section timing the
    SpTRSV/SpMV/SYMGS plan-op surface through **every** available tier
    on the same artifacts, so the numpy-fast-vs-counted (and, when
    installed, numba) wall-clock ordering is measurable from one run.
    """
    from repro.formats.dbsr import DBSRMatrix
    from repro.grids.problems import poisson_problem
    from repro.kernels.counts import (
        spmv_csr_counts,
        spmv_dbsr_counts,
        sptrsv_dbsr_counts,
        symgs_dbsr_counts,
    )
    from repro.kernels.spmv import spmv
    from repro.kernels.sptrsv_csr import split_triangular
    from repro.kernels.sptrsv_dbsr import (
        sptrsv_dbsr_lower,
        sptrsv_dbsr_upper,
    )
    from repro.kernels.symgs import symgs_dbsr
    from repro.multigrid.hierarchy import build_hierarchy
    from repro.multigrid.smoothers import make_smoother
    from repro.multigrid.vcycle import MGPreconditioner
    from repro.ordering.blocks import auto_block_dims
    from repro.ordering.vbmc import build_vbmc
    from repro.parallel.executor import (
        sptrsv_dbsr_lower_parallel,
        sptrsv_dbsr_upper_parallel,
    )
    from repro.runtime.session import SolverSession
    from repro.solvers.pcg import pcg

    np_dtype = np.float32 if dtype in ("f32", "float32") else np.float64
    problem = poisson_problem((nx,) * 3, stencil, dtype=np_dtype)

    with SolverSession(n_workers=n_workers) as session:
        with session.phase("reorder"):
            block_dims = auto_block_dims(problem.grid, n_workers,
                                         bsize=bsize)
            vb = build_vbmc(problem.grid, problem.stencil, block_dims,
                            bsize)
        with session.phase("convert"):
            Ap = vb.apply_matrix(problem.matrix)
            dbsr = DBSRMatrix.from_csr(Ap, bsize)
            L, D, U = split_triangular(Ap)
            Ld = DBSRMatrix.from_csr(L, bsize)
            Ud = DBSRMatrix.from_csr(U, bsize)

        rng = np.random.default_rng(seed)
        b = rng.standard_normal(Ap.n_rows).astype(np_dtype)
        x0 = np.zeros(Ap.n_rows, dtype=np_dtype)

        kernels = {}

        # SpTRSV — sequential wall-clock vs shared-pool parallel.
        seq_lo = _best_of(lambda: sptrsv_dbsr_lower(Ld, b, diag=D),
                          repeats)
        seq_up = _best_of(lambda: sptrsv_dbsr_upper(Ud, b, diag=D),
                          repeats)
        with session.phase("sweep"):
            par_lo = _best_of(
                lambda: sptrsv_dbsr_lower_parallel(
                    Ld, b, vb.schedule, diag=D, session=session),
                repeats)
            par_up = _best_of(
                lambda: sptrsv_dbsr_upper_parallel(
                    Ud, b, vb.schedule, diag=D, session=session),
                repeats)
        kernels["sptrsv_dbsr_lower"] = _kernel_entry(
            sptrsv_dbsr_counts(Ld, divide=True), seq_lo, par_lo)
        kernels["sptrsv_dbsr_upper"] = _kernel_entry(
            sptrsv_dbsr_counts(Ud, divide=True), seq_up, par_up)

        # SpMV — CSR baseline and gather-free DBSR.
        with session.phase("spmv"):
            t_csr = _best_of(lambda: spmv(problem.matrix, b[:problem.n]),
                             repeats)
            t_dbsr = _best_of(lambda: spmv(dbsr, b), repeats)
        session.tally(spmv_csr_counts(problem.matrix))
        session.tally(spmv_dbsr_counts(dbsr))
        kernels["spmv_csr"] = _kernel_entry(
            spmv_csr_counts(problem.matrix), t_csr)
        kernels["spmv_dbsr"] = _kernel_entry(
            spmv_dbsr_counts(dbsr), t_dbsr)

        # SYMGS — the paper's smoothing kernel.
        diag = Ap.diagonal()
        with session.phase("symgs"):
            t_symgs = _best_of(
                lambda: symgs_dbsr(dbsr, diag,
                                   vb.extend(x0[:vb.n_orig]),
                                   b), repeats)
        session.tally(symgs_dbsr_counts(dbsr))
        kernels["symgs_dbsr"] = _kernel_entry(
            symgs_dbsr_counts(dbsr), t_symgs)

        # Backend tier comparison: the same SpTRSV/SpMV/SYMGS surface
        # through every tier available here, on the same artifacts.
        from repro.backends import (
            available_backends,
            get_backend,
            resolve_backend,
        )

        resolved = resolve_backend(backend)
        Bk = b.reshape(-1, 1)
        tier_seconds = {}
        for tier_name in available_backends():
            be = get_backend(tier_name)
            tier_seconds[tier_name] = {
                "sptrsv_lower": _best_of(
                    lambda: be.sptrsv_dbsr_multi(Ld, Bk, D, True),
                    repeats),
                "spmv": _best_of(
                    lambda: be.spmv_dbsr_multi(dbsr, Bk), repeats),
                "symgs": _best_of(
                    lambda: be.symgs_dbsr_multi(
                        dbsr, diag, np.zeros_like(Bk), Bk), repeats),
            }

        # Short MG-preconditioned PCG: exercises vcycle/spmv phases.
        def factory(grid, stencil_, matrix):
            return make_smoother("dbsr", grid, stencil_, matrix,
                                 bsize=bsize, n_workers=n_workers,
                                 session=session)

        top = build_hierarchy(problem.grid, problem.stencil, factory,
                              n_levels=2, matrix=problem.matrix)
        M = MGPreconditioner(top, session=session)
        _, hist = pcg(problem.matrix, problem.rhs, M, tol=1e-10,
                      maxiter=pcg_iters, session=session)

        report = {
            "schema": "dbsr-repro/bench-runtime/v1",
            "config": {
                "nx": nx,
                "stencil": stencil,
                "bsize": bsize,
                "n_workers": n_workers,
                "dtype": str(np.dtype(np_dtype)),
                "backend": backend,
                "repeats": repeats,
                "seed": seed,
                "n_rows_padded": Ap.n_rows,
                "n_tiles": dbsr.n_tiles,
                "n_colors": vb.n_colors,
            },
            "host": {
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "kernels": kernels,
            "backends": {
                "requested": backend,
                "resolved": resolved.name,
                "available": list(available_backends()),
                "seconds": tier_seconds,
            },
            "phases": session.phase_report(),
            "session": {
                "pools_created": session.pools_created,
                "n_workers": session.n_workers,
                "total_counter": counter_to_dict(session.counter),
            },
            "pcg": {
                "iterations": hist.iterations,
                "converged": bool(hist.converged),
            },
        }
    return report


def write_bench_json(report: dict, path: str) -> str:
    """Write the report as pretty-printed JSON; returns ``path``."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path
