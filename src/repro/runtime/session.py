"""Long-lived solver runtime: one pool, one ledger, phase timers.

A :class:`SolverSession` owns the resources that used to be rebuilt on
every parallel sweep:

* **One shared ``ThreadPoolExecutor``**, created lazily on first use
  and reused across all colors, sweeps, V-cycles and CG iterations.
  ``pools_created`` (and the module-wide
  :data:`repro.parallel.executor.pool_stats`) make the "exactly one
  pool per solve" property assertable by tests.
* **A master :class:`~repro.simd.counters.OpCounter`** into which
  per-group / per-worker counters are merged deterministically (group
  order, on the calling thread, after each color barrier) — the
  parallel path counts the same ops as the sequential counted twins
  instead of racing on a shared counter or not counting at all.
* **Structured phase timers**: ``with session.phase("sweep"): ...``
  records wall-clock seconds, call counts and the counter delta per
  named phase (reorder, convert, sweep, spmv, vcycle, ...), feeding
  the ``BENCH_runtime.json`` emission in
  :mod:`repro.runtime.metrics`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, replace

from repro.observe import trace
from repro.simd.counters import OpCounter
from repro.utils.validation import check_positive


def _counter_delta(after: OpCounter, before: OpCounter) -> OpCounter:
    out = OpCounter(bsize=after.bsize)
    for f in fields(OpCounter):
        if f.name == "bsize":
            continue
        setattr(out, f.name,
                getattr(after, f.name) - getattr(before, f.name))
    return out


@dataclass
class PhaseRecord:
    """Accumulated timing/accounting of one named phase."""

    name: str
    seconds: float = 0.0
    calls: int = 0
    counter: OpCounter = field(default_factory=lambda: OpCounter(bsize=1))

    def add(self, seconds: float, delta: OpCounter) -> None:
        self.seconds += seconds
        self.calls += 1
        self.counter.merge(delta)


class SolverSession:
    """Persistent runtime shared by every kernel of a solve.

    Parameters
    ----------
    n_workers:
        Worker threads of the shared pool.

    Notes
    -----
    The master counter has ``bsize=1`` so kernels of any vector width
    can merge into it; per-kernel widths belong in the per-kernel
    reports (:mod:`repro.runtime.metrics`), the session ledger tracks
    totals (logical ops and exact bytes). The session is a context
    manager; leaving it shuts the pool down.
    """

    def __init__(self, n_workers: int = 2):
        self.n_workers = check_positive(n_workers, "n_workers")
        self._pool = None
        self.pools_created = 0
        self.counter = OpCounter(bsize=1)
        self.phases: dict[str, PhaseRecord] = {}
        self._lock = threading.Lock()
        self._worker_counters: list[OpCounter] = []
        self._tls = threading.local()

    # Pool ----------------------------------------------------------------
    @property
    def pool(self):
        """The shared thread pool (created on first access)."""
        if self._pool is None:
            from repro.parallel.executor import _new_pool

            with self._lock:
                if self._pool is None:
                    self._pool = _new_pool(self.n_workers)
                    self.pools_created += 1
        return self._pool

    def executor(self, schedule):
        """A color-barrier executor bound to the shared pool."""
        from repro.parallel.executor import ColorParallelExecutor

        return ColorParallelExecutor(schedule, self.n_workers,
                                     pool=self.pool)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SolverSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # Op accounting --------------------------------------------------------
    def tally(self, counter: OpCounter) -> None:
        """Merge a finished kernel's counter into the session ledger."""
        with self._lock:
            self.counter.merge(counter)

    def worker_counter(self) -> OpCounter:
        """This thread's private counter (created on first call).

        Worker tasks tally into their thread-local counter without any
        synchronization; :meth:`drain_workers` folds all of them into
        the master ledger at a barrier.
        """
        c = getattr(self._tls, "counter", None)
        if c is None:
            c = OpCounter(bsize=1)
            self._tls.counter = c
            with self._lock:
                self._worker_counters.append(c)
        return c

    def drain_workers(self) -> None:
        """Merge and reset all thread-local counters (deterministic:
        registration order on the calling thread — the totals are
        order-independent sums either way)."""
        with self._lock:
            for c in self._worker_counters:
                self.counter.merge(c)
                for f in fields(OpCounter):
                    if f.name != "bsize":
                        setattr(c, f.name, 0)

    # Phase timers ---------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Time a named phase and record its counter delta.

        Under an installed tracer each phase also opens a
        ``session.<name>`` span carrying the *measured* delta — the
        instrumented-twin tally, which the golden suite cross-checks
        against the closed forms.
        """
        before = replace(self.counter)
        t0 = time.perf_counter()
        with trace.span(f"session.{name}") as sp:
            try:
                yield self
            finally:
                seconds = time.perf_counter() - t0
                delta = _counter_delta(self.counter, before)
                rec = self.phases.get(name)
                if rec is None:
                    rec = self.phases[name] = PhaseRecord(name=name)
                rec.add(seconds, delta)
                if sp is not None:
                    sp.set_counts(delta)

    def timed(self, name: str, fn):
        """Wrap ``fn`` so every call runs inside ``phase(name)``."""

        def wrapped(*args, **kwargs):
            with self.phase(name):
                return fn(*args, **kwargs)

        return wrapped

    # Reporting ------------------------------------------------------------
    def phase_report(self) -> dict:
        """Machine-readable per-phase summary (dict of dicts)."""
        from repro.runtime.metrics import counter_to_dict

        return {
            name: {
                "seconds": rec.seconds,
                "calls": rec.calls,
                "counter": counter_to_dict(rec.counter),
            }
            for name, rec in self.phases.items()
        }
