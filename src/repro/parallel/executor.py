"""Color-barrier thread pool execution.

The executor maps one task per vector group, synchronizing between
colors. Group tasks only read ``x`` entries produced by earlier colors
(the vectorized-BMC independence guarantee), so concurrent execution
within a color is race-free.

Pools can be shared: pass an existing ``ThreadPoolExecutor`` (e.g. the
one owned by a :class:`~repro.runtime.session.SolverSession`) via the
``pool`` argument and the executor will reuse it without ever shutting
it down, so a long-lived runtime pays thread start-up once instead of
per sweep. Pool constructions are tallied in :data:`pool_stats` so
tests can assert how many pools a solve really created.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait

import numpy as np

from repro.observe import trace
from repro.resilience import hooks

from repro.formats.dbsr import DBSRMatrix
from repro.ordering.vbmc import ColorSchedule
from repro.simd.counters import OpCounter
from repro.utils.validation import check_positive, require


class _PoolStats:
    """Instrumentation: how many thread pools were ever constructed."""

    def __init__(self):
        self.created = 0


pool_stats = _PoolStats()


def _new_pool(n_workers: int) -> ThreadPoolExecutor:
    pool_stats.created += 1
    return ThreadPoolExecutor(max_workers=n_workers)


class ColorParallelExecutor:
    """Runs per-group tasks color by color on a thread pool.

    Parameters
    ----------
    schedule:
        The :class:`~repro.ordering.vbmc.ColorSchedule` to follow.
    n_workers:
        Thread count (ignored when ``pool`` is given).
    pool:
        Optional externally-owned ``ThreadPoolExecutor`` to reuse; the
        executor then neither creates nor shuts down any pool.
    """

    def __init__(self, schedule: ColorSchedule, n_workers: int = 2,
                 pool: ThreadPoolExecutor | None = None):
        self.schedule = schedule
        self.n_workers = check_positive(n_workers, "n_workers")
        self._owns_pool = pool is None
        self._pool = pool if pool is not None else _new_pool(self.n_workers)

    @staticmethod
    def _worker_task(task, group):
        """One pooled unit of work (the ``parallel.worker`` fault site)."""
        hooks.fire("parallel.worker", group=group)
        return task(group)

    def _run_color(self, task, groups) -> None:
        """Submit one color's groups; fail fast on the first exception.

        On a task failure every not-yet-started future is cancelled and
        the first (submission-order) exception is re-raised promptly,
        instead of letting the remaining queued work drain first.
        """
        futures = [self._pool.submit(self._worker_task, task, g)
                   for g in groups]
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        if not_done:  # a task failed while work was still queued/running
            for f in not_done:
                f.cancel()
            wait(not_done)  # let already-running tasks finish
        for f in futures:  # surface the first failure in group order
            if not f.cancelled():
                f.result()

    def run_forward(self, task, on_color=None) -> None:
        """Run ``task(group)`` for every group, colors in order.

        ``on_color(color, groups)``, if given, runs on the calling
        thread after each color's barrier — the deterministic merge
        point for per-group/worker op counters.
        """
        for color in range(self.schedule.n_colors):
            groups = self.schedule.groups_of_color(color)
            self._run_color(task, groups)
            trace.event("executor.barrier", color=color,
                        n_groups=len(groups), direction="forward")
            if on_color is not None:
                on_color(color, groups)

    def run_backward(self, task, on_color=None) -> None:
        """Run ``task(group)`` for every group, colors reversed."""
        for color in range(self.schedule.n_colors - 1, -1, -1):
            groups = self.schedule.groups_of_color(color)
            self._run_color(task, groups)
            trace.event("executor.barrier", color=color,
                        n_groups=len(groups), direction="backward")
            if on_color is not None:
                on_color(color, groups)

    def shutdown(self) -> None:
        """Shut down the pool — only if this executor created it."""
        if self._owns_pool:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ColorParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _group_sweep(matrix: DBSRMatrix, xp: np.ndarray, b2: np.ndarray,
                 d2, rows: range, forward: bool,
                 counter: OpCounter | None = None) -> None:
    """Solve the block-rows of one group (sequential positions)."""
    bs = matrix.bsize
    anchors = matrix.anchors + bs
    blk_ptr, values = matrix.blk_ptr, matrix.values
    order = rows if forward else reversed(rows)
    for i in order:
        acc = b2[i].astype(xp.dtype, copy=True)
        for t in range(blk_ptr[i], blk_ptr[i + 1]):
            a = anchors[t]
            acc -= values[t] * xp[a:a + bs]
        if d2 is not None:
            acc /= d2[i]
        xp[bs + i * bs:bs + (i + 1) * bs] = acc
    if counter is not None:
        _tally_group(matrix, rows, divide=d2 is not None, counter=counter)


def _tally_group(matrix: DBSRMatrix, rows: range, divide: bool,
                 counter: OpCounter) -> None:
    """Closed-form Algorithm 2 tallies for one group's block-rows.

    Matches :func:`repro.kernels.counts.sptrsv_dbsr_counts` exactly
    when summed over all groups (plus the kernel-level ``blk_ptr``
    sentinel load charged once per sweep by the caller).
    """
    nr = len(rows)
    k = int(matrix.blk_ptr[rows.stop] - matrix.blk_ptr[rows.start])
    bs = matrix.bsize
    item = matrix.values.itemsize
    counter.vload += 2 * k + nr + (nr if divide else 0)
    counter.vfma += k
    counter.vstore += nr
    counter.vdiv += nr if divide else 0
    counter.sload += 2 * k
    counter.bytes_values += k * bs * item
    counter.bytes_index += (
        k * (matrix.blk_ind.itemsize + matrix.blk_offset.itemsize)
        + nr * matrix.blk_ptr.itemsize)
    counter.bytes_vector += (k + 2 * nr
                             + (nr if divide else 0)) * bs * item


def _sptrsv_parallel(matrix: DBSRMatrix, b: np.ndarray,
                     schedule: ColorSchedule,
                     diag: np.ndarray | None, n_workers: int,
                     forward: bool, session=None,
                     counter: OpCounter | None = None) -> np.ndarray:
    """Shared driver of the forward/backward parallel sweeps."""
    n = matrix.n_rows
    bs = matrix.bsize
    require(b.shape == (n,), "b has wrong length")
    require(schedule.bsize == bs, "schedule bsize mismatch")
    xp = np.zeros(n + 2 * bs, dtype=np.result_type(matrix.values, b))
    b2 = np.asarray(b).reshape(-1, bs)
    d2 = None if diag is None else np.asarray(diag).reshape(-1, bs)

    sink = counter if counter is not None else (
        session.counter if session is not None else None)
    group_counters: dict[int, OpCounter] = {}

    def task(group: int) -> None:
        gc = None
        if sink is not None:
            gc = OpCounter(bsize=bs)
            group_counters[group] = gc
        _group_sweep(matrix, xp, b2, d2,
                     schedule.block_rows_of_group(group),
                     forward=forward, counter=gc)

    on_color = None
    if sink is not None:
        # One sweep-level sentinel blk_ptr load (the +1 of brow+1).
        sink.bytes_index += matrix.blk_ptr.itemsize

        def on_color(color, groups):
            # Deterministic merge point: group order, on the caller's
            # thread, after the color barrier.
            for g in groups:
                gc = group_counters.pop(g, None)
                if gc is not None:
                    sink.merge(gc)

    if session is not None:
        ex = session.executor(schedule)
        run = ex.run_forward if forward else ex.run_backward
        run(task, on_color=on_color)
    else:
        with ColorParallelExecutor(schedule, n_workers) as ex:
            run = ex.run_forward if forward else ex.run_backward
            run(task, on_color=on_color)
    return xp[bs:bs + n].copy()


def sptrsv_dbsr_lower_parallel(lower: DBSRMatrix, b: np.ndarray,
                               schedule: ColorSchedule,
                               diag: np.ndarray | None = None,
                               n_workers: int = 2, session=None,
                               counter: OpCounter | None = None
                               ) -> np.ndarray:
    """Thread-parallel Algorithm 2 (forward); bit-identical to the
    sequential :func:`~repro.kernels.sptrsv_dbsr.sptrsv_dbsr_lower`.

    Pass ``session`` (a :class:`~repro.runtime.session.SolverSession`)
    to reuse its long-lived thread pool and accumulate op counts into
    its counter; pass ``counter`` to collect counts standalone.
    """
    return _sptrsv_parallel(lower, b, schedule, diag, n_workers,
                            forward=True, session=session,
                            counter=counter)


def sptrsv_dbsr_upper_parallel(upper: DBSRMatrix, b: np.ndarray,
                               schedule: ColorSchedule,
                               diag: np.ndarray | None = None,
                               n_workers: int = 2, session=None,
                               counter: OpCounter | None = None
                               ) -> np.ndarray:
    """Thread-parallel backward Algorithm 2."""
    return _sptrsv_parallel(upper, b, schedule, diag, n_workers,
                            forward=False, session=session,
                            counter=counter)
