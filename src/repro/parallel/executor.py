"""Color-barrier thread pool execution.

The executor maps one task per vector group, synchronizing between
colors. Group tasks only read ``x`` entries produced by earlier colors
(the vectorized-BMC independence guarantee), so concurrent execution
within a color is race-free.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from repro.formats.dbsr import DBSRMatrix
from repro.ordering.vbmc import ColorSchedule
from repro.utils.validation import check_positive, require


class ColorParallelExecutor:
    """Runs per-group tasks color by color on a shared thread pool.

    Parameters
    ----------
    schedule:
        The :class:`~repro.ordering.vbmc.ColorSchedule` to follow.
    n_workers:
        Thread count.
    """

    def __init__(self, schedule: ColorSchedule, n_workers: int = 2):
        self.schedule = schedule
        self.n_workers = check_positive(n_workers, "n_workers")
        self._pool = ThreadPoolExecutor(max_workers=self.n_workers)

    def run_forward(self, task) -> None:
        """Run ``task(group)`` for every group, colors in order."""
        for color in range(self.schedule.n_colors):
            futures = [
                self._pool.submit(task, g)
                for g in self.schedule.groups_of_color(color)
            ]
            wait(futures)
            for f in futures:
                f.result()  # surface exceptions

    def run_backward(self, task) -> None:
        """Run ``task(group)`` for every group, colors reversed."""
        for color in range(self.schedule.n_colors - 1, -1, -1):
            futures = [
                self._pool.submit(task, g)
                for g in self.schedule.groups_of_color(color)
            ]
            wait(futures)
            for f in futures:
                f.result()

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ColorParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _group_sweep(matrix: DBSRMatrix, xp: np.ndarray, b2: np.ndarray,
                 d2, rows: range, forward: bool) -> None:
    """Solve the block-rows of one group (sequential positions)."""
    bs = matrix.bsize
    anchors = matrix.anchors + bs
    blk_ptr, values = matrix.blk_ptr, matrix.values
    order = rows if forward else reversed(rows)
    for i in order:
        acc = b2[i].astype(xp.dtype, copy=True)
        for t in range(blk_ptr[i], blk_ptr[i + 1]):
            a = anchors[t]
            acc -= values[t] * xp[a:a + bs]
        if d2 is not None:
            acc /= d2[i]
        xp[bs + i * bs:bs + (i + 1) * bs] = acc


def sptrsv_dbsr_lower_parallel(lower: DBSRMatrix, b: np.ndarray,
                               schedule: ColorSchedule,
                               diag: np.ndarray | None = None,
                               n_workers: int = 2) -> np.ndarray:
    """Thread-parallel Algorithm 2 (forward); bit-identical to the
    sequential :func:`~repro.kernels.sptrsv_dbsr.sptrsv_dbsr_lower`."""
    n = lower.n_rows
    bs = lower.bsize
    require(b.shape == (n,), "b has wrong length")
    require(schedule.bsize == bs, "schedule bsize mismatch")
    xp = np.zeros(n + 2 * bs, dtype=np.result_type(lower.values, b))
    b2 = np.asarray(b).reshape(-1, bs)
    d2 = None if diag is None else np.asarray(diag).reshape(-1, bs)

    def task(group: int) -> None:
        _group_sweep(lower, xp, b2, d2,
                     schedule.block_rows_of_group(group), forward=True)

    with ColorParallelExecutor(schedule, n_workers) as ex:
        ex.run_forward(task)
    return xp[bs:bs + n].copy()


def sptrsv_dbsr_upper_parallel(upper: DBSRMatrix, b: np.ndarray,
                               schedule: ColorSchedule,
                               diag: np.ndarray | None = None,
                               n_workers: int = 2) -> np.ndarray:
    """Thread-parallel backward Algorithm 2."""
    n = upper.n_rows
    bs = upper.bsize
    require(b.shape == (n,), "b has wrong length")
    require(schedule.bsize == bs, "schedule bsize mismatch")
    xp = np.zeros(n + 2 * bs, dtype=np.result_type(upper.values, b))
    b2 = np.asarray(b).reshape(-1, bs)
    d2 = None if diag is None else np.asarray(diag).reshape(-1, bs)

    def task(group: int) -> None:
        _group_sweep(upper, xp, b2, d2,
                     schedule.block_rows_of_group(group), forward=False)

    with ColorParallelExecutor(schedule, n_workers) as ex:
        ex.run_backward(task)
    return xp[bs:bs + n].copy()
