"""Functional thread-parallel execution of color-scheduled kernels.

Demonstrates that the vectorized-BMC schedule really is parallel: all
vector groups of one color are processed concurrently by a thread pool
with a barrier between colors (Algorithm 2's ``#pragma omp parallel
for`` over line 3), and the result is bit-identical to the sequential
sweep. Python threads add overhead rather than speedup on small
problems (the GIL), so the *performance* figures come from
:mod:`repro.perfmodel`; this module establishes correctness of the
parallel schedule itself.
"""

from repro.parallel.executor import (
    ColorParallelExecutor,
    pool_stats,
    sptrsv_dbsr_lower_parallel,
    sptrsv_dbsr_upper_parallel,
)

__all__ = [
    "ColorParallelExecutor",
    "pool_stats",
    "sptrsv_dbsr_lower_parallel",
    "sptrsv_dbsr_upper_parallel",
]
