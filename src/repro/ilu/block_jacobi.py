"""Block-Jacobi ILU(0) — the BJ baseline of Fig. 9/12.

The row range is split into one contiguous chunk per worker; couplings
*between* chunks are discarded and each chunk is ILU(0)-factorized
independently. No synchronization is ever needed (the paper: "the BJ
method maintains a high speedup ratio due to the absence of
synchronization waits"), but every dropped coupling weakens the
preconditioner, so convergence degrades as workers increase — the
effect the evaluation demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.ilu.ilu0_csr import ILUFactors, ilu0_apply_csr, ilu0_factorize_csr
from repro.utils.validation import check_positive, require


@dataclass
class BlockJacobiILU:
    """Per-chunk ILU(0) factors.

    Attributes
    ----------
    bounds:
        Chunk boundaries, length ``n_chunks + 1``.
    factors:
        One :class:`~repro.ilu.ilu0_csr.ILUFactors` per chunk (indices
        local to the chunk).
    dropped_nnz:
        Couplings discarded by the partition (a convergence-loss
        proxy).
    """

    bounds: np.ndarray
    factors: list
    dropped_nnz: int

    @property
    def n_chunks(self) -> int:
        return len(self.bounds) - 1


def _extract_diagonal_block(matrix: CSRMatrix, lo: int, hi: int) -> tuple:
    """Rows ``[lo, hi)`` restricted to columns ``[lo, hi)``, plus the
    number of dropped entries."""
    rows = np.repeat(np.arange(matrix.n_rows), np.diff(matrix.indptr))
    mask = (rows >= lo) & (rows < hi)
    cols = matrix.indices[mask]
    keep = (cols >= lo) & (cols < hi)
    dropped = int(np.count_nonzero(~keep))
    sub_rows = rows[mask][keep] - lo
    sub_cols = cols[keep] - lo
    sub_vals = matrix.data[mask][keep]
    from repro.formats.coo import COOMatrix

    sub = CSRMatrix.from_coo(
        COOMatrix(sub_rows, sub_cols, sub_vals, (hi - lo, hi - lo))
    )
    return sub, dropped


def block_jacobi_ilu0(matrix: CSRMatrix, n_chunks: int,
                      counter=None) -> BlockJacobiILU:
    """Factorize ``matrix`` as ``n_chunks`` independent ILU(0) blocks."""
    check_positive(n_chunks, "n_chunks")
    n = matrix.n_rows
    require(n_chunks <= n, "more chunks than rows")
    bounds = np.linspace(0, n, n_chunks + 1).astype(np.int64)
    factors = []
    dropped = 0
    for c in range(n_chunks):
        sub, d = _extract_diagonal_block(
            matrix, int(bounds[c]), int(bounds[c + 1]))
        factors.append(ilu0_factorize_csr(sub, counter=counter))
        dropped += d
    return BlockJacobiILU(bounds=bounds, factors=factors,
                          dropped_nnz=dropped)


def block_jacobi_apply(bj: BlockJacobiILU, r: np.ndarray) -> np.ndarray:
    """Apply all chunk preconditioners (embarrassingly parallel)."""
    z = np.empty_like(np.asarray(r, dtype=float))
    for c in range(bj.n_chunks):
        lo, hi = int(bj.bounds[c]), int(bj.bounds[c + 1])
        z[lo:hi] = ilu0_apply_csr(bj.factors[c], r[lo:hi])
    return z
