"""Scalar zero fill-in incomplete LU — the paper's Algorithm 3.

The factorization runs in place on a copy of the CSR value array: no
entry outside the original sparsity pattern is ever created. The
result packs ``L`` (unit lower, implicit diagonal) and ``U`` (upper,
explicit diagonal) in the original CSR skeleton, exactly as textbook
IKJ-ordered ILU(0) does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.kernels.sptrsv_csr import (
    sptrsv_csr_ordered,
    sptrsv_csr_upper_ordered,
)
from repro.utils.validation import require


@dataclass
class ILUFactors:
    """ILU(0) factors in CSR form.

    Attributes
    ----------
    factored:
        CSR matrix holding ``L`` strictly below the diagonal (unit
        diagonal implicit) and ``U`` on and above it.
    lower:
        Strictly-lower CSR view (``L`` without the unit diagonal).
    upper:
        Strictly-upper CSR view.
    diag:
        The ``U`` diagonal.
    """

    factored: CSRMatrix
    lower: CSRMatrix
    upper: CSRMatrix
    diag: np.ndarray

    @property
    def n(self) -> int:
        return self.factored.n_rows


def ilu0_factorize_csr(matrix: CSRMatrix, counter=None) -> ILUFactors:
    """Algorithm 3: IKJ-ordered ILU(0) on the CSR pattern of ``matrix``.

    For each row ``i`` and each ``k < i`` in the pattern:
    ``a_ik /= a_kk`` then ``a_ij -= a_ik * a_kj`` for every ``j > k``
    present in both row ``i`` and row ``k``.

    ``counter`` (an :class:`~repro.simd.counters.OpCounter`) tallies the
    scalar work when provided — the Fig. 12 factorization-cost input.
    """
    require(matrix.n_rows == matrix.n_cols, "matrix must be square")
    n = matrix.n_rows
    indptr = matrix.indptr
    indices = matrix.indices
    data = matrix.data.copy()
    # Per-row diagonal position for O(1) pivot lookup.
    diag_pos = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        hits = np.flatnonzero(indices[lo:hi] == i)
        require(len(hits) == 1, f"row {i} lacks a diagonal entry")
        diag_pos[i] = lo + hits[0]

    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        row_cols = indices[lo:hi]
        for p in range(lo, hi):
            k = indices[p]
            if k >= i:
                break
            pivot = data[diag_pos[k]]
            require(pivot != 0, f"zero pivot at row {k}")
            lik = data[p] / pivot
            data[p] = lik
            # Update a_ij for j > k present in both rows.
            k_lo = diag_pos[k] + 1
            k_hi = indptr[k + 1]
            if counter is not None:
                counter.sdiv += 1
                counter.sload += 2 + (k_hi - k_lo)
                counter.sstore += 1
            if k_lo >= k_hi:
                continue
            k_cols = indices[k_lo:k_hi]
            # Positions of row-k columns inside row i (pattern match).
            pos_in_i = np.searchsorted(row_cols, k_cols)
            valid = (pos_in_i < len(row_cols))
            pos_clip = np.minimum(pos_in_i, len(row_cols) - 1)
            valid &= row_cols[pos_clip] == k_cols
            data[lo + pos_clip[valid]] -= lik * data[k_lo:k_hi][valid]
            if counter is not None:
                n_upd = int(np.count_nonzero(valid))
                counter.sflop += 2 * n_upd
                counter.sload += 2 * n_upd
                counter.sstore += n_upd

    factored = CSRMatrix(indptr.copy(), indices.copy(), data,
                         matrix.shape)
    lower = factored.tril(strict=True)
    upper = factored.triu(strict=True)
    return ILUFactors(factored=factored, lower=lower, upper=upper,
                      diag=factored.diagonal())


def ilu0_apply_csr(factors: ILUFactors, r: np.ndarray) -> np.ndarray:
    """Apply the preconditioner: solve ``L U z = r``.

    Forward unit-lower solve then backward upper solve (two SpTRSVs —
    the smoothing-phase kernel the paper's Fig. 9 measures). Both
    sweeps subtract term by term in column order (the ``_ordered``
    twins), so on the same operator this apply is **bit-identical** to
    :func:`repro.ilu.ilu0_dbsr.ilu0_apply_dbsr` and to the served
    :meth:`repro.serve.ilu_plan.ILUPlan.apply` — the reference the
    serving tier's DBSR/CSR rung differential pins with
    ``np.array_equal``.
    """
    y = sptrsv_csr_ordered(factors.lower, factors.diag, r,
                           unit_diag=True)
    return sptrsv_csr_upper_ordered(factors.upper, factors.diag, y)


def split_lu(factors: ILUFactors) -> tuple:
    """Return dense ``(L, U)`` with the unit diagonal made explicit
    (testing helper)."""
    L = factors.lower.to_dense() + np.eye(factors.n)
    U = factors.upper.to_dense() + np.diag(factors.diag)
    return L, U
