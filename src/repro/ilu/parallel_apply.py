"""Thread-parallel application of the DBSR block ILU(0) factors.

Connects the color-barrier executor of :mod:`repro.parallel` to the
factored DBSR skeleton: the forward unit-lower solve runs groups of a
color concurrently (colors ascending), the backward upper solve runs
colors descending — bit-identical to the sequential
:func:`repro.ilu.ilu0_dbsr.ilu0_apply_dbsr` (tested), demonstrating
that the paper's smoothing phase parallelizes exactly as claimed.

Pass a :class:`~repro.runtime.session.SolverSession` to reuse its
long-lived thread pool (one pool for a whole PCG solve instead of one
per preconditioner application) and to tally the sweeps' op counts:
each group task counts into a private counter, merged deterministically
in group order after each color barrier.
"""

from __future__ import annotations

import numpy as np

from repro.ilu.ilu0_dbsr import DBSRILUFactors
from repro.ordering.vbmc import ColorSchedule
from repro.parallel.executor import ColorParallelExecutor
from repro.simd.counters import OpCounter
from repro.utils.validation import require


def ilu0_apply_dbsr_parallel(factors: DBSRILUFactors, r: np.ndarray,
                             schedule: ColorSchedule,
                             n_workers: int = 2, session=None,
                             counter: OpCounter | None = None
                             ) -> np.ndarray:
    """Solve ``L U z = r`` with group-parallel sweeps."""
    m = factors.matrix
    bs = m.bsize
    n = m.n_rows
    require(r.shape == (n,), "r has wrong length")
    require(schedule.bsize == bs, "schedule bsize mismatch")
    blk_ptr = m.blk_ptr
    dia_ptr = factors.dia_ptr
    values = m.values
    anchors = m.anchors + bs
    r2 = np.asarray(r).reshape(-1, bs)
    item = values.itemsize
    idx_item = m.blk_ind.itemsize + m.blk_offset.itemsize

    sink = counter if counter is not None else (
        session.counter if session is not None else None)
    group_counters: dict[int, OpCounter] = {}

    def _group_counter(group: int) -> OpCounter | None:
        if sink is None:
            return None
        gc = OpCounter(bsize=bs)
        group_counters[group] = gc
        return gc

    def on_color(color, groups):
        for g in groups:
            gc = group_counters.pop(g, None)
            if gc is not None:
                sink.merge(gc)

    yp = np.zeros(n + 2 * bs, dtype=np.result_type(values, r))

    def forward_task(group: int) -> None:
        gc = _group_counter(group)
        for i in schedule.block_rows_of_group(group):
            acc = r2[i].astype(yp.dtype, copy=True)
            lo, dp = int(blk_ptr[i]), int(dia_ptr[i])
            for p in range(lo, dp):
                a = anchors[p]
                acc -= values[p] * yp[a:a + bs]
            yp[bs + i * bs:bs + (i + 1) * bs] = acc
            if gc is not None:
                k = dp - lo
                gc.vload += 2 * k + 1  # r plus per-tile vals+y
                gc.vfma += k
                gc.vstore += 1
                gc.sload += 2 * k
                gc.bytes_values += k * bs * item
                gc.bytes_index += k * idx_item + blk_ptr.itemsize
                gc.bytes_vector += (k + 2) * bs * item

    zp = np.zeros_like(yp)

    def backward_task(group: int) -> None:
        gc = _group_counter(group)
        rows = schedule.block_rows_of_group(group)
        for i in reversed(rows):
            acc = yp[bs + i * bs:bs + (i + 1) * bs].copy()
            dp, hi = int(dia_ptr[i]), int(blk_ptr[i + 1])
            for p in range(dp + 1, hi):
                a = anchors[p]
                acc -= values[p] * zp[a:a + bs]
            acc /= values[dp]
            zp[bs + i * bs:bs + (i + 1) * bs] = acc
            if gc is not None:
                k = hi - dp - 1
                gc.vload += 2 * k + 2  # y, per-tile vals+z, diag tile
                gc.vfma += k
                gc.vdiv += 1
                gc.vstore += 1
                gc.sload += 2 * (k + 1)
                gc.bytes_values += (k + 1) * bs * item
                gc.bytes_index += (k + 1) * idx_item + blk_ptr.itemsize
                gc.bytes_vector += (k + 2) * bs * item

    on_color_cb = on_color if sink is not None else None
    if session is not None:
        ex = session.executor(schedule)
        ex.run_forward(forward_task, on_color=on_color_cb)
        ex.run_backward(backward_task, on_color=on_color_cb)
    else:
        with ColorParallelExecutor(schedule, n_workers) as ex:
            ex.run_forward(forward_task, on_color=on_color_cb)
            ex.run_backward(backward_task, on_color=on_color_cb)
    return zp[bs:bs + n].copy()
