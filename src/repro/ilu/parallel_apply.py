"""Thread-parallel application of the DBSR block ILU(0) factors.

Connects the color-barrier executor of :mod:`repro.parallel` to the
factored DBSR skeleton: the forward unit-lower solve runs groups of a
color concurrently (colors ascending), the backward upper solve runs
colors descending — bit-identical to the sequential
:func:`repro.ilu.ilu0_dbsr.ilu0_apply_dbsr` (tested), demonstrating
that the paper's smoothing phase parallelizes exactly as claimed.
"""

from __future__ import annotations

import numpy as np

from repro.ilu.ilu0_dbsr import DBSRILUFactors
from repro.ordering.vbmc import ColorSchedule
from repro.parallel.executor import ColorParallelExecutor
from repro.utils.validation import require


def ilu0_apply_dbsr_parallel(factors: DBSRILUFactors, r: np.ndarray,
                             schedule: ColorSchedule,
                             n_workers: int = 2) -> np.ndarray:
    """Solve ``L U z = r`` with group-parallel sweeps."""
    m = factors.matrix
    bs = m.bsize
    n = m.n_rows
    require(r.shape == (n,), "r has wrong length")
    require(schedule.bsize == bs, "schedule bsize mismatch")
    blk_ptr = m.blk_ptr
    dia_ptr = factors.dia_ptr
    values = m.values
    anchors = m.anchors + bs
    r2 = np.asarray(r).reshape(-1, bs)

    yp = np.zeros(n + 2 * bs, dtype=np.result_type(values, r))

    def forward_task(group: int) -> None:
        for i in schedule.block_rows_of_group(group):
            acc = r2[i].astype(yp.dtype, copy=True)
            for p in range(int(blk_ptr[i]), int(dia_ptr[i])):
                a = anchors[p]
                acc -= values[p] * yp[a:a + bs]
            yp[bs + i * bs:bs + (i + 1) * bs] = acc

    zp = np.zeros_like(yp)

    def backward_task(group: int) -> None:
        rows = schedule.block_rows_of_group(group)
        for i in reversed(rows):
            acc = yp[bs + i * bs:bs + (i + 1) * bs].copy()
            for p in range(int(dia_ptr[i]) + 1, int(blk_ptr[i + 1])):
                a = anchors[p]
                acc -= values[p] * zp[a:a + bs]
            acc /= values[int(dia_ptr[i])]
            zp[bs + i * bs:bs + (i + 1) * bs] = acc

    with ColorParallelExecutor(schedule, n_workers) as ex:
        ex.run_forward(forward_task)
        ex.run_backward(backward_task)
    return zp[bs:bs + n].copy()
