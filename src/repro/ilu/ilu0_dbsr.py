"""Block ILU(0) factorization in DBSR format — the paper's Algorithm 4.

The smallest storage unit is the tile, so factorization becomes a block
algorithm (Fig. 4): for each block-row ``i``, every strictly-lower tile
``A[i,k]`` is divided lane-wise by a *shifted* load of block-row
``k``'s diagonal tile, then every matching right-hand tile pair is
updated with a lane-wise FMA. Tile matching is the paper's line 11:
``blk_ind[r] == blk_ind[q]`` and
``blk_offset[p] + blk_offset[r] == blk_offset[q]``.

Shifted loads read ``bsize`` lanes starting ``blk_offset[p]`` elements
into a tile, so they can cross into the neighboring tile's storage
("interfering data"). The paper's invariant — the corresponding lanes
of tile ``p`` are zero padding — makes the interference harmless; we
additionally mask the division so a zero interfering pivot cannot
manufacture NaNs (a robustness fix over the literal pseudocode; it
changes no stored value).

Because elements inside a tile sit on one diagonal, *no update ever
occurs within a tile* — data flows only between tiles, which is what
makes the whole update lane-parallel (SIMD) per tile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.dbsr import DBSRMatrix
from repro.simd.counters import OpCounter
from repro.utils.validation import require


@dataclass
class DBSRILUFactors:
    """Block ILU(0) factors stored in the original DBSR skeleton.

    Attributes
    ----------
    matrix:
        DBSR matrix whose values hold ``L`` strictly below the diagonal
        (unit diagonal implicit) and ``U`` on/above it.
    dia_ptr:
        Tile index of each block-row's main-diagonal tile.
    """

    matrix: DBSRMatrix
    dia_ptr: np.ndarray

    @property
    def n(self) -> int:
        return self.matrix.n_rows

    @property
    def bsize(self) -> int:
        return self.matrix.bsize

    def diag_vector(self) -> np.ndarray:
        """The ``U`` diagonal as a dense length-``n`` vector."""
        return self.matrix.values[self.dia_ptr].ravel()

    def to_csr_factors(self):
        """Project the block factors onto scalar CSR
        :class:`~repro.ilu.ilu0_csr.ILUFactors`.

        On padded structures the block algorithm produces genuine
        fill-in inside zero-padding lanes, so re-running the *scalar*
        factorization on the padded CSR operator is **not** a bitwise
        reference for these factors. Projecting the factored values
        themselves is: per scalar row the tiles are stored in
        increasing-anchor order, so the CSR columns come out in the
        exact order the DBSR sweeps subtract them, and dropping the
        remaining zero lanes only removes bitwise no-op terms. Applying
        the result through :func:`repro.ilu.ilu0_csr.ilu0_apply_csr`
        therefore matches :func:`ilu0_apply_dbsr` under
        ``np.array_equal`` on every grid, padded or not — this is the
        CSR rung of the serving fallback ladder.
        """
        from repro.ilu.ilu0_csr import ILUFactors

        factored = self.matrix.to_csr()
        return ILUFactors(
            factored=factored,
            lower=factored.tril(strict=True),
            upper=factored.triu(strict=True),
            diag=self.diag_vector(),
        )


def ilu0_factorize_dbsr(matrix: DBSRMatrix,
                        counter: OpCounter | None = None
                        ) -> DBSRILUFactors:
    """Algorithm 4: block ILU(0) on a DBSR matrix.

    Parameters
    ----------
    matrix:
        Full (non-triangular) DBSR matrix, e.g. the vectorized-BMC
        reordered operator. Every block-row must own a main-diagonal
        tile.
    counter:
        Optional tally of the vector operations performed (drives the
        Fig. 12 factorization-cost model).

    Returns
    -------
    DBSRILUFactors
        Factors sharing the input's skeleton (values are copied).
    """
    bs = matrix.bsize
    brow = matrix.brow
    dia_ptr = matrix.dia_ptr
    require(bool(np.all(dia_ptr >= 0)),
            "every block-row needs a main-diagonal tile")
    blk_ptr = matrix.blk_ptr
    blk_ind = matrix.blk_ind
    blk_offset = matrix.blk_offset
    anchors = matrix.anchors

    # Flat value buffer with one tile of zero padding on each side so
    # shifted loads never index out of bounds (the "interfering data"
    # of Fig. 4 reads zeros at the extremes).
    vflat = np.zeros((matrix.n_tiles + 2) * bs, dtype=matrix.values.dtype)
    vflat[bs:bs + matrix.n_tiles * bs] = matrix.values.ravel()

    def shifted_load(tile: int, off: int) -> np.ndarray:
        start = bs + tile * bs + off
        return vflat[start:start + bs]

    def tile_values(tile: int) -> np.ndarray:
        start = bs + tile * bs
        return vflat[start:start + bs]

    c = counter
    for i in range(brow):
        lo, hi = int(blk_ptr[i]), int(blk_ptr[i + 1])
        dp = int(dia_ptr[i])
        # (block column, offset) -> tile lookup for the line-11 match.
        row_lookup = {
            (int(blk_ind[q]), int(blk_offset[q])): q
            for q in range(lo, hi)
        }
        for p in range(lo, dp):
            k = int(blk_ind[p])
            off_p = int(blk_offset[p])
            a_ik = tile_values(p)
            a_kk = shifted_load(int(dia_ptr[k]), off_p)
            # Masked lane-wise division: zero-padding lanes of a_ik
            # stay zero even when the interfering pivot lane is zero.
            np.divide(a_ik, a_kk, out=a_ik, where=a_ik != 0)
            if c is not None:
                c.vload += 2
                c.vdiv += 1
                c.vstore += 1
                c.sload += 2  # blk_ind[p], blk_offset[p]
            for r in range(int(dia_ptr[k]) + 1, int(blk_ptr[k + 1])):
                if c is not None:
                    c.sload += 2  # candidate tile metadata
                q = row_lookup.get(
                    (int(blk_ind[r]), off_p + int(blk_offset[r]))
                )
                if q is None or q <= p:
                    continue
                a_kj = shifted_load(r, off_p)
                a_ij = tile_values(q)
                a_ij -= a_ik * a_kj
                if c is not None:
                    c.vload += 2
                    c.vfma += 1
                    c.vstore += 1

    values = vflat[bs:bs + matrix.n_tiles * bs].reshape(-1, bs).copy()
    factored = DBSRMatrix(
        matrix.blk_ptr.copy(), matrix.blk_ind.copy(),
        matrix.blk_offset.copy(), values, matrix.shape,
        nnz_hint=matrix.nnz,
    )
    return DBSRILUFactors(matrix=factored, dia_ptr=dia_ptr.copy())


@dataclass
class ILU0Schedule:
    """Structural replay schedule for value-only refactorization.

    :func:`ilu0_factorize_dbsr` spends most of its time *finding* the
    line-11 tile matches (per-row dict builds plus a candidate scan
    that mostly misses), all of which depends only on the skeleton.
    The schedule records the outcome once — one entry per eliminated
    lower tile, with the matched update pairs in the exact order the
    factorization performs them — so a value-only repack replays just
    the floating-point ops. Within one eliminated tile the update
    targets are distinct (distinct ``r`` give distinct ``(blk_ind,
    blk_offset)`` and hence distinct ``q``), which is what makes the
    batched fancy-indexed replay bitwise-identical to the scalar loop.

    Attributes
    ----------
    p / off / dia_k:
        Eliminated lower tile, its ``blk_offset``, and the tile index
        of its pivot row's diagonal tile (elimination order).
    upd_ptr / q / r:
        CSR-style update lists: entry ``t`` updates tiles
        ``q[upd_ptr[t]:upd_ptr[t+1]]`` from row-``k`` tiles
        ``r[upd_ptr[t]:upd_ptr[t+1]]``.
    """

    p: np.ndarray
    off: np.ndarray
    dia_k: np.ndarray
    upd_ptr: np.ndarray
    q: np.ndarray
    r: np.ndarray

    @property
    def n_ops(self) -> int:
        return len(self.p)


def build_ilu0_schedule(matrix: DBSRMatrix) -> ILU0Schedule:
    """Resolve Algorithm 4's tile matches once, structurally.

    Runs the same scan order as :func:`ilu0_factorize_dbsr` without
    touching a single value, so replaying the result performs the
    identical floating-point op sequence.
    """
    brow = matrix.brow
    dia_ptr = matrix.dia_ptr
    require(bool(np.all(dia_ptr >= 0)),
            "every block-row needs a main-diagonal tile")
    blk_ptr = matrix.blk_ptr
    blk_ind = matrix.blk_ind
    blk_offset = matrix.blk_offset

    ps, offs, dia_ks, ptr, qs, rs = [], [], [], [0], [], []
    for i in range(brow):
        lo, hi = int(blk_ptr[i]), int(blk_ptr[i + 1])
        dp = int(dia_ptr[i])
        row_lookup = {
            (int(blk_ind[t]), int(blk_offset[t])): t
            for t in range(lo, hi)
        }
        for p in range(lo, dp):
            k = int(blk_ind[p])
            off_p = int(blk_offset[p])
            ps.append(p)
            offs.append(off_p)
            dia_ks.append(int(dia_ptr[k]))
            for r in range(int(dia_ptr[k]) + 1, int(blk_ptr[k + 1])):
                q = row_lookup.get(
                    (int(blk_ind[r]), off_p + int(blk_offset[r]))
                )
                if q is None or q <= p:
                    continue
                qs.append(q)
                rs.append(r)
            ptr.append(len(qs))
    return ILU0Schedule(
        p=np.asarray(ps, dtype=np.int64),
        off=np.asarray(offs, dtype=np.int64),
        dia_k=np.asarray(dia_ks, dtype=np.int64),
        upd_ptr=np.asarray(ptr, dtype=np.int64),
        q=np.asarray(qs, dtype=np.int64),
        r=np.asarray(rs, dtype=np.int64),
    )


def ilu0_refactorize_dbsr(matrix: DBSRMatrix,
                          schedule: ILU0Schedule) -> DBSRILUFactors:
    """Replay a prebuilt schedule over fresh values (Algorithm 4).

    Bitwise-identical to :func:`ilu0_factorize_dbsr` on the skeleton
    the schedule was built from — the repack fast path of the serving
    tier's incremental recompilation (pinned by the property suite).
    """
    bs = matrix.bsize
    vflat = np.zeros((matrix.n_tiles + 2) * bs,
                     dtype=matrix.values.dtype)
    vflat[bs:bs + matrix.n_tiles * bs] = matrix.values.ravel()
    tiles = vflat[bs:bs + matrix.n_tiles * bs].reshape(-1, bs)
    lane = np.arange(bs)

    upd_ptr = schedule.upd_ptr
    for t in range(schedule.n_ops):
        p = int(schedule.p[t])
        off = int(schedule.off[t])
        a_ik = tiles[p]
        start = bs + int(schedule.dia_k[t]) * bs + off
        a_kk = vflat[start:start + bs]
        np.divide(a_ik, a_kk, out=a_ik, where=a_ik != 0)
        lo, hi = int(upd_ptr[t]), int(upd_ptr[t + 1])
        if hi == lo:
            continue
        q = schedule.q[lo:hi]
        r = schedule.r[lo:hi]
        # Shifted loads of every matched row-k tile at once; the
        # targets q are distinct per eliminated tile, so the fancy-
        # indexed subtract performs the same scalar ops as the loop.
        a_kj = vflat[(bs + r * bs + off)[:, None] + lane]
        tiles[q] -= a_ik[None, :] * a_kj

    values = tiles.copy()
    factored = DBSRMatrix(
        matrix.blk_ptr.copy(), matrix.blk_ind.copy(),
        matrix.blk_offset.copy(), values, matrix.shape,
        nnz_hint=matrix.nnz,
    )
    return DBSRILUFactors(matrix=factored,
                          dia_ptr=matrix.dia_ptr.copy())


def ilu0_apply_dbsr(factors: DBSRILUFactors, r: np.ndarray,
                    counter: OpCounter | None = None) -> np.ndarray:
    """Apply the block ILU(0) preconditioner: solve ``L U z = r``.

    Two Algorithm-2 sweeps over the factored skeleton: a forward
    unit-lower solve over tiles before ``dia_ptr`` and a backward solve
    over the diagonal + upper tiles.
    """
    m = factors.matrix
    bs = m.bsize
    n = m.n_rows
    require(r.shape == (n,), "r has wrong length")
    blk_ptr = m.blk_ptr
    dia_ptr = factors.dia_ptr
    values = m.values
    anchors = m.anchors + bs
    c = counter

    # Forward: (L + I) y = r.
    yp = np.zeros(n + 2 * bs, dtype=np.result_type(values, r))
    r2 = np.asarray(r).reshape(-1, bs)
    for i in range(m.brow):
        acc = r2[i].astype(yp.dtype, copy=True)
        for p in range(int(blk_ptr[i]), int(dia_ptr[i])):
            a = anchors[p]
            acc -= values[p] * yp[a:a + bs]
            if c is not None:
                c.vload += 2
                c.vfma += 1
                c.sload += 2
        yp[bs + i * bs:bs + (i + 1) * bs] = acc
        if c is not None:
            c.vload += 1
            c.vstore += 1

    # Backward: (D + U) z = y.
    zp = np.zeros(n + 2 * bs, dtype=yp.dtype)
    for i in range(m.brow - 1, -1, -1):
        acc = yp[bs + i * bs:bs + (i + 1) * bs].copy()
        for p in range(int(dia_ptr[i]) + 1, int(blk_ptr[i + 1])):
            a = anchors[p]
            acc -= values[p] * zp[a:a + bs]
            if c is not None:
                c.vload += 2
                c.vfma += 1
                c.sload += 2
        acc /= values[int(dia_ptr[i])]
        zp[bs + i * bs:bs + (i + 1) * bs] = acc
        if c is not None:
            c.vload += 2
            c.vdiv += 1
            c.vstore += 1
    return zp[bs:bs + n].copy()
