"""Named ILU(0) parallel strategies — the contenders of Figs. 9 and 12.

Every strategy prepares an ILU(0) preconditioner for a structured-grid
problem and exposes a uniform interface:

* ``factorize()``     — build the factors (timed / counted by callers).
* ``apply(r)``        — one preconditioner application ``z = M^{-1} r``
  *in the original lexicographic ordering* (reordering is internal).
* model metadata      — exploitable parallelism, barriers per apply,
  whether the kernel vectorizes, and operation counts — consumed by
  :mod:`repro.perfmodel` to regenerate the paper's speedup figures.

Strategies (names as in §V-E):

========== =========================================================
``serial``   Algorithm 3 on the natural ordering, serial solves.
``bj``       Block Jacobi: one decoupled ILU(0) chunk per worker.
``mc``       Point multi-color reordering + scalar ILU(0).
``bmc-fix``  BMC reordering, fixed 64-point blocks.
``bmc-auto`` BMC reordering, resource-adaptive blocks.
``dbsr-fix`` Vectorized BMC + DBSR block ILU(0) (Alg. 4), FIX blocks.
``dbsr-auto``Same with AUTO blocks.
``simd-fix`` ``dbsr-fix`` with SIMD execution enabled in the model.
``simd-auto````dbsr-auto`` with SIMD execution enabled in the model.
========== =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.grids.problems import Problem
from repro.ilu.block_jacobi import (
    BlockJacobiILU,
    block_jacobi_apply,
    block_jacobi_ilu0,
)
from repro.ilu.ilu0_csr import ILUFactors, ilu0_apply_csr, ilu0_factorize_csr
from repro.ilu.ilu0_dbsr import (
    DBSRILUFactors,
    ilu0_apply_dbsr,
    ilu0_factorize_dbsr,
)
from repro.kernels.counts import sptrsv_csr_counts, sptrsv_dbsr_counts
from repro.ordering.blocks import auto_block_dims, fixed_block_dims
from repro.ordering.bmc import build_bmc
from repro.ordering.vbmc import build_vbmc
from repro.simd.counters import OpCounter
from repro.utils.validation import require

STRATEGY_NAMES = (
    "serial", "bj", "mc", "bmc-fix", "bmc-auto",
    "dbsr-fix", "dbsr-auto", "simd-fix", "simd-auto",
)


@dataclass
class ILUStrategy:
    """A prepared ILU(0) strategy instance.

    Call :meth:`factorize` once, then :meth:`apply` per iteration.
    """

    name: str
    problem: Problem
    n_workers: int
    bsize: int
    vectorized: bool
    # Populated by setup/factorize.
    _perm_forward: object = field(default=None, repr=False)
    _perm_backward: object = field(default=None, repr=False)
    _matrix_reordered: CSRMatrix | None = field(default=None, repr=False)
    _dbsr_matrix: DBSRMatrix | None = field(default=None, repr=False)
    _factors: object = field(default=None, repr=False)
    _bj: BlockJacobiILU | None = field(default=None, repr=False)
    n_colors: int = 1
    parallelism: float = 1.0
    factor_counter: OpCounter | None = field(default=None, repr=False)

    # -- lifecycle ------------------------------------------------------
    def factorize(self) -> None:
        """Build the ILU(0) factors for this strategy."""
        if self._bj is not None or self.name == "bj":
            self.factor_counter = OpCounter(bsize=1)
            self._bj = block_jacobi_ilu0(
                self._matrix_reordered,
                min(self.n_workers, self.problem.n),
                counter=self.factor_counter,
            )
        elif self._dbsr_matrix is not None:
            self.factor_counter = OpCounter(bsize=self.bsize)
            self._factors = ilu0_factorize_dbsr(
                self._dbsr_matrix, counter=self.factor_counter)
        else:
            self.factor_counter = OpCounter(bsize=1)
            self._factors = ilu0_factorize_csr(
                self._matrix_reordered, counter=self.factor_counter)

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Apply ``M^{-1}`` to ``r`` (original ordering in and out)."""
        rp = self._to_internal(r)
        if self._bj is not None:
            zp = block_jacobi_apply(self._bj, rp)
        elif self._dbsr_matrix is not None:
            require(self._factors is not None, "factorize() first")
            zp = ilu0_apply_dbsr(self._factors, rp)
        else:
            require(self._factors is not None, "factorize() first")
            zp = ilu0_apply_csr(self._factors, rp)
        return self._to_original(zp)

    # -- model metadata ---------------------------------------------------
    def smoothing_counter(self) -> OpCounter:
        """Operation counts of one preconditioner application."""
        if self._dbsr_matrix is not None:
            f = self._factors
            lower = _dbsr_part(f, lower=True)
            upper = _dbsr_part(f, lower=False)
            c = sptrsv_dbsr_counts(lower, divide=False)
            c.merge(sptrsv_dbsr_counts(upper, divide=True))
            return c
        if self._bj is not None:
            total = OpCounter(bsize=1)
            for fac in self._bj.factors:
                total.merge(sptrsv_csr_counts(fac.lower, divide=False))
                total.merge(sptrsv_csr_counts(fac.upper, divide=True))
            return total
        f = self._factors
        c = sptrsv_csr_counts(f.lower, divide=False)
        c.merge(sptrsv_csr_counts(f.upper, divide=True))
        return c

    def barriers_per_apply(self) -> int:
        """Color synchronizations per preconditioner application
        (forward + backward sweep)."""
        if self.name == "serial":
            return 0
        if self._bj is not None:
            return 0
        return 2 * self.n_colors

    # -- internals --------------------------------------------------------
    def _to_internal(self, r: np.ndarray) -> np.ndarray:
        if self._perm_forward is None:
            return np.asarray(r)
        return self._perm_forward(r)

    def _to_original(self, z: np.ndarray) -> np.ndarray:
        if self._perm_backward is None:
            return z
        return self._perm_backward(z)


def _dbsr_part(factors: DBSRILUFactors, lower: bool) -> DBSRMatrix:
    """Strictly-lower or diag+upper part of factored DBSR (tile subset)."""
    m = factors.matrix
    keep = []
    for i in range(m.brow):
        lo, hi = int(m.blk_ptr[i]), int(m.blk_ptr[i + 1])
        dp = int(factors.dia_ptr[i])
        keep.extend(range(lo, dp) if lower else range(dp, hi))
    keep = np.asarray(keep, dtype=np.int64)
    counts = np.zeros(m.brow, dtype=np.int64)
    for i in range(m.brow):
        lo, hi = int(m.blk_ptr[i]), int(m.blk_ptr[i + 1])
        dp = int(factors.dia_ptr[i])
        counts[i] = (dp - lo) if lower else (hi - dp)
    blk_ptr = np.zeros(m.brow + 1, dtype=np.int64)
    np.cumsum(counts, out=blk_ptr[1:])
    return DBSRMatrix(
        blk_ptr, m.blk_ind[keep], m.blk_offset[keep],
        m.values[keep], m.shape,
    )


def make_strategy(name: str, problem: Problem, n_workers: int = 1,
                  bsize: int = 8, block_points: int = 64) -> ILUStrategy:
    """Prepare the named strategy for ``problem``.

    Parameters
    ----------
    name:
        One of :data:`STRATEGY_NAMES`.
    problem:
        Structured-grid problem (used for geometry-aware reorderings).
    n_workers:
        Worker count for BJ chunking and AUTO block sizing.
    bsize:
        Vector length for the DBSR/SIMD strategies.
    block_points:
        Target block volume of the FIX schemes (paper: 64).
    """
    name = name.lower()
    require(name in STRATEGY_NAMES, f"unknown strategy {name!r}")
    grid, stencil, A = problem.grid, problem.stencil, problem.matrix

    if name == "serial":
        s = ILUStrategy(name=name, problem=problem, n_workers=1,
                        bsize=1, vectorized=False)
        s._matrix_reordered = A
        s.parallelism = 1.0
        return s

    if name == "bj":
        s = ILUStrategy(name=name, problem=problem, n_workers=n_workers,
                        bsize=1, vectorized=False)
        s._matrix_reordered = A
        s.parallelism = float(n_workers)
        return s

    if name in ("mc", "bmc-fix", "bmc-auto"):
        if name == "mc":
            block_dims = tuple(1 for _ in grid.dims)
        elif name == "bmc-fix":
            block_dims = fixed_block_dims(grid, block_points)
        else:
            block_dims = auto_block_dims(grid, n_workers)
        bmc = build_bmc(grid, stencil, block_dims)
        s = ILUStrategy(name=name, problem=problem, n_workers=n_workers,
                        bsize=1, vectorized=False)
        s._matrix_reordered = A.permute(bmc.perm.old_to_new)
        s._perm_forward = bmc.perm.forward
        s._perm_backward = bmc.perm.backward
        s.n_colors = bmc.n_colors
        counts = np.diff(bmc.color_block_ptr)
        s.parallelism = float(counts.min()) if len(counts) else 1.0
        return s

    # DBSR / SIMD strategies.
    vectorized = name.startswith("simd")
    if name.endswith("fix"):
        block_dims = fixed_block_dims(grid, block_points)
    else:
        block_dims = auto_block_dims(grid, n_workers, bsize=bsize)
    vb = build_vbmc(grid, stencil, block_dims, bsize)
    s = ILUStrategy(name=name, problem=problem, n_workers=n_workers,
                    bsize=bsize, vectorized=vectorized)
    Ap = vb.apply_matrix(A)
    s._matrix_reordered = Ap
    s._dbsr_matrix = DBSRMatrix.from_csr(Ap, bsize)
    s._perm_forward = vb.extend
    s._perm_backward = vb.restrict
    s.n_colors = vb.n_colors
    groups = np.diff(vb.schedule.color_group_ptr)
    s.parallelism = float(groups.min()) if len(groups) else 1.0
    return s
