"""ILU(0) preconditioning (paper §IV).

* :mod:`~repro.ilu.ilu0_csr` — the general scalar ILU(0) factorization
  (Algorithm 3) and triangular application.
* :mod:`~repro.ilu.ilu0_dbsr` — the block ILU(0) factorization in DBSR
  format (Algorithm 4): lane-parallel tile updates with the shifted
  diagonal loads of Fig. 4.
* :mod:`~repro.ilu.block_jacobi` — the BJ baseline: drop inter-block
  couplings, factorize each row-block independently.
* :mod:`~repro.ilu.strategies` — the named parallel strategies of the
  Fig. 9/12 evaluation (BJ, MC, BMC-FIX, BMC-AUTO, DBSR, SIMD).
"""

from repro.ilu.ilu0_csr import (
    ILUFactors,
    ilu0_factorize_csr,
    ilu0_apply_csr,
    split_lu,
)
from repro.ilu.ilu0_dbsr import (
    DBSRILUFactors,
    ilu0_factorize_dbsr,
    ilu0_apply_dbsr,
)
from repro.ilu.block_jacobi import block_jacobi_ilu0, block_jacobi_apply
from repro.ilu.parallel_apply import ilu0_apply_dbsr_parallel
from repro.ilu.strategies import (
    ILUStrategy,
    STRATEGY_NAMES,
    make_strategy,
)

__all__ = [
    "ILUFactors",
    "ilu0_factorize_csr",
    "ilu0_apply_csr",
    "split_lu",
    "DBSRILUFactors",
    "ilu0_factorize_dbsr",
    "ilu0_apply_dbsr",
    "block_jacobi_ilu0",
    "block_jacobi_apply",
    "ilu0_apply_dbsr_parallel",
    "ILUStrategy",
    "STRATEGY_NAMES",
    "make_strategy",
]
