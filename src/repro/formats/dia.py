"""Diagonal (DIA) sparse format.

DIA stores each populated diagonal as a dense row. It is the natural
format for stencil matrices in their *original* lexicographic ordering
(§II-A) and one of the two parents of DBSR, which stores a single DIA
diagonal inside every BCSR tile.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import INDEX_DTYPE, MemoryReport, SparseMatrix
from repro.utils.validation import require


class DIAMatrix(SparseMatrix):
    """Sparse matrix stored by diagonals.

    Parameters
    ----------
    offsets:
        Sorted array of diagonal offsets (``col - row``).
    data:
        Array of shape ``(len(offsets), n_rows)``; ``data[k, i]`` holds
        ``A[i, i + offsets[k]]`` (zero where out of range).
    shape:
        Matrix shape.
    """

    def __init__(self, offsets, data, shape):
        offsets = np.asarray(offsets, dtype=INDEX_DTYPE)
        data = np.asarray(data)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        require(offsets.ndim == 1, "offsets must be 1-D")
        require(data.shape == (len(offsets), n_rows),
                "data must be (n_diags, n_rows)")
        require(len(np.unique(offsets)) == len(offsets),
                "offsets must be unique")
        self.shape = (n_rows, n_cols)
        order = np.argsort(offsets)
        self.offsets = offsets[order]
        self.data = np.ascontiguousarray(data[order])
        self._mask_out_of_range()

    def _mask_out_of_range(self) -> None:
        """Zero slots that fall outside the matrix."""
        n_rows, n_cols = self.shape
        rows = np.arange(n_rows)
        for k, off in enumerate(self.offsets):
            cols = rows + off
            bad = (cols < 0) | (cols >= n_cols)
            self.data[k, bad] = 0.0

    @classmethod
    def from_coo(cls, coo) -> "DIAMatrix":
        """Build from COO, allocating one dense row per used diagonal."""
        offs = np.unique(coo.cols.astype(np.int64) - coo.rows)
        data = np.zeros((len(offs), coo.n_rows), dtype=coo.values.dtype)
        idx = np.searchsorted(offs, coo.cols.astype(np.int64) - coo.rows)
        data[idx, coo.rows] = coo.values
        return cls(offs, data, coo.shape)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def n_diags(self) -> int:
        return len(self.offsets)

    def to_dense(self) -> np.ndarray:
        n_rows, n_cols = self.shape
        dense = np.zeros(self.shape, dtype=self.data.dtype)
        rows = np.arange(n_rows)
        for k, off in enumerate(self.offsets):
            cols = rows + off
            valid = (cols >= 0) & (cols < n_cols)
            dense[rows[valid], cols[valid]] = self.data[k, valid]
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        require(x.shape == (self.n_cols,), "x has wrong length")
        n_rows = self.n_rows
        y = np.zeros(n_rows, dtype=np.result_type(self.data, x))
        for k, off in enumerate(self.offsets):
            # Row range where column i+off is valid.
            lo = max(0, -off)
            hi = min(n_rows, self.n_cols - off)
            if hi > lo:
                y[lo:hi] += self.data[k, lo:hi] * x[lo + off:hi + off]
        return y

    def memory_report(self) -> MemoryReport:
        return MemoryReport(
            format_name="DIA",
            arrays={
                "offsets": self.offsets.nbytes,
                "values": self.data.nbytes,
            },
            nnz=self.nnz,
            stored_values=self.data.size,
            value_itemsize=self.data.itemsize,
        )
