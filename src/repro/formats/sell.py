"""Sliced ELLPACK (SELL) and SELL-C-sigma formats.

SELL is the main vectorization-oriented competitor the paper measures
against (Fig. 8). The matrix is cut into chunks of ``C`` consecutive
rows; each chunk is stored column-major and padded to the length of its
longest row, so a SIMD unit can process ``C`` rows per instruction —
but the ``x`` accesses require a *gather*. SELL-C-sigma additionally
sorts rows by length within windows of ``sigma`` rows to reduce padding
(Kreutzer et al., SISC 2014).
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import INDEX_DTYPE, MemoryReport, SparseMatrix
from repro.utils.validation import check_positive, require


class SELLMatrix(SparseMatrix):
    """Sparse matrix in SELL-C-sigma layout.

    Parameters
    ----------
    csr:
        Source :class:`~repro.formats.csr.CSRMatrix`.
    chunk:
        Chunk height ``C`` (the SIMD width in elements).
    sigma:
        Sorting window; ``1`` gives plain SELL, ``n_rows`` gives fully
        sorted SELL-C-sigma. Must be a multiple of ``chunk`` (or 1).

    Notes
    -----
    Rows are permuted only *within* sigma windows; ``row_order[slot]``
    gives the original row stored in that slot. SpMV output is returned
    in the original row order.
    """

    def __init__(self, csr, chunk: int = 8, sigma: int = 1):
        chunk = check_positive(chunk, "chunk")
        sigma = check_positive(sigma, "sigma")
        require(sigma == 1 or sigma % chunk == 0,
                "sigma must be 1 or a multiple of chunk")
        self.shape = csr.shape
        self.chunk = chunk
        self.sigma = sigma
        n = csr.n_rows
        lengths = np.diff(csr.indptr)

        # sigma-sort: descending row length inside each sigma window.
        row_order = np.arange(n, dtype=INDEX_DTYPE)
        for start in range(0, n, sigma):
            stop = min(start + sigma, n)
            window = np.argsort(-lengths[start:stop], kind="stable")
            row_order[start:stop] = start + window
        self.row_order = row_order

        n_chunks = (n + chunk - 1) // chunk
        self.n_chunks = n_chunks
        widths = np.zeros(n_chunks, dtype=INDEX_DTYPE)
        for ci in range(n_chunks):
            slot_rows = row_order[ci * chunk:(ci + 1) * chunk]
            widths[ci] = lengths[slot_rows].max() if len(slot_rows) else 0
        self.widths = widths
        chunk_ptr = np.zeros(n_chunks + 1, dtype=np.int64)
        np.cumsum(widths.astype(np.int64) * chunk, out=chunk_ptr[1:])
        self.chunk_ptr = chunk_ptr

        total = int(chunk_ptr[-1])
        colidx = np.zeros(total, dtype=INDEX_DTYPE)
        vals = np.zeros(total, dtype=csr.data.dtype)
        for ci in range(n_chunks):
            base = chunk_ptr[ci]
            w = widths[ci]
            for lane in range(chunk):
                slot = ci * chunk + lane
                if slot >= n:
                    continue
                r = row_order[slot]
                cols_r, vals_r = csr.row(r)
                k = len(cols_r)
                # Column-major layout: entry j of lane sits at
                # base + j*chunk + lane.
                pos = base + np.arange(k) * chunk + lane
                colidx[pos] = cols_r
                vals[pos] = vals_r
                # Padding lanes point at the lane's own row (safe gather).
                pad = base + np.arange(k, w) * chunk + lane
                colidx[pad] = min(r, self.n_cols - 1)
        self.colidx = colidx
        self.vals = vals
        self._nnz = csr.nnz

    @property
    def nnz(self) -> int:
        return self._nnz

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.vals.dtype)
        n = self.n_rows
        for ci in range(self.n_chunks):
            base = self.chunk_ptr[ci]
            w = self.widths[ci]
            for lane in range(self.chunk):
                slot = ci * self.chunk + lane
                if slot >= n:
                    continue
                r = self.row_order[slot]
                pos = base + np.arange(w) * self.chunk + lane
                cols = self.colidx[pos]
                v = self.vals[pos]
                nz = v != 0
                dense[r, cols[nz]] = v[nz]
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        require(x.shape == (self.n_cols,), "x has wrong length")
        n = self.n_rows
        y = np.zeros(n, dtype=np.result_type(self.vals, x))
        for ci in range(self.n_chunks):
            base = self.chunk_ptr[ci]
            w = int(self.widths[ci])
            lo = ci * self.chunk
            hi = min(lo + self.chunk, n)
            lanes = hi - lo
            acc = np.zeros(lanes, dtype=y.dtype)
            for j in range(w):
                pos = base + j * self.chunk
                cols = self.colidx[pos:pos + lanes]
                acc += self.vals[pos:pos + lanes] * x[cols]  # gather
            y[self.row_order[lo:hi]] = acc
        return y

    def padding_fraction(self) -> float:
        """Fraction of stored value slots that are padding."""
        total = int(self.chunk_ptr[-1])
        return 0.0 if total == 0 else 1.0 - self.nnz / total

    def memory_report(self) -> MemoryReport:
        name = (f"SELL-{self.chunk}" if self.sigma == 1
                else f"SELL-{self.chunk}-{self.sigma}")
        return MemoryReport(
            format_name=name,
            arrays={
                "chunk_ptr": self.chunk_ptr.nbytes,
                "widths": self.widths.nbytes,
                "row_order": self.row_order.nbytes,
                "col_ind": self.colidx.nbytes,
                "values": self.vals.nbytes,
            },
            nnz=self.nnz,
            stored_values=self.vals.size,
            value_itemsize=self.vals.itemsize,
        )
