"""Diagonal Block Compressed Sparse Row (DBSR) — the paper's format.

DBSR (§III-B) tiles the matrix into ``bsize x bsize`` blocks like BCSR,
but stores only a *single diagonal* per tile in DIA fashion:

* ``blk_ptr``   — CSR-style pointer over block-rows (``brow + 1``).
* ``blk_ind``   — block-column index per tile.
* ``blk_offset``— intra-tile diagonal offset per tile.
* ``values``    — ``(n_tiles, bsize)``; lane ``l`` of tile ``t`` holds
  ``A[browi*bsize + l, anchor + l]`` where
  ``anchor = blk_ind*bsize + blk_offset``.

After the vectorized BMC reordering (§III-A) every tile of a
structured-grid matrix is exactly one such diagonal, so the format is
lossless with only boundary-induced zero padding. Both the row slice of
``b``/``x`` and the ``bsize`` consecutive ``x`` values at ``anchor`` are
contiguous — the *gather-free* property (§III-D).

Offset convention
-----------------
As in the paper, ``blk_offset`` is *signed* in ``(-bsize, bsize)``
(``log2(bsize)`` bits plus a sign bit): ``blk_ind`` names the block
column that contains the tile's non-zero lanes and
``blk_offset = anchor - blk_ind*bsize`` where ``anchor = c - (r %
bsize)`` is the column of lane 0. Tiles are grouped by
``(block_row, block_column, anchor)``, so a tile's non-zero lanes never
straddle block columns — the invariant Algorithm 4's shifted diagonal
loads rely on (Fig. 4). Vector loads of ``x[anchor : anchor + bsize]``
may run past either end of ``x``; :meth:`pad_vector` provides the
zero-padded buffer the paper's "overstore is zero" rule requires.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import INDEX_DTYPE, MemoryReport, SparseMatrix
from repro.utils.validation import check_positive, require


class DBSRMatrix(SparseMatrix):
    """Sparse matrix in diagonal-block CSR layout.

    Use :meth:`from_csr` to construct from an (already reordered)
    CSR matrix.

    Parameters
    ----------
    blk_ptr, blk_ind, blk_offset, values:
        The DBSR arrays described in the module docstring.
    shape:
        Matrix shape; the row dimension must be a multiple of ``bsize``.
    nnz_hint:
        Original non-zero count for padding accounting.
    """

    def __init__(self, blk_ptr, blk_ind, blk_offset, values, shape,
                 nnz_hint=None):
        blk_ptr = np.asarray(blk_ptr, dtype=INDEX_DTYPE)
        blk_ind = np.asarray(blk_ind, dtype=INDEX_DTYPE)
        blk_offset = np.asarray(blk_offset, dtype=INDEX_DTYPE)
        values = np.ascontiguousarray(values)
        require(values.ndim == 2, "values must be (n_tiles, bsize)")
        bsize = values.shape[1]
        n_rows, n_cols = int(shape[0]), int(shape[1])
        require(n_rows % bsize == 0,
                "row dimension must be a multiple of bsize")
        brow = n_rows // bsize
        require(len(blk_ptr) == brow + 1, "blk_ptr length mismatch")
        require(blk_ptr[0] == 0 and blk_ptr[-1] == len(blk_ind),
                "blk_ptr endpoints inconsistent")
        require(len(blk_ind) == len(blk_offset) == len(values),
                "tile array length mismatch")
        if len(blk_offset):
            require(blk_offset.min() > -bsize and blk_offset.max() < bsize,
                    "blk_offset must lie in (-bsize, bsize)")
        self.shape = (n_rows, n_cols)
        self.bsize = bsize
        self.blk_ptr = blk_ptr
        self.blk_ind = blk_ind
        self.blk_offset = blk_offset
        self.values = values
        self._nnz = int(np.count_nonzero(values)) if nnz_hint is None \
            else int(nnz_hint)
        self._dia_ptr = None

    # Construction -----------------------------------------------------
    @classmethod
    def from_csr(cls, csr, bsize: int) -> "DBSRMatrix":
        """Build DBSR tiles from a CSR matrix.

        Works for *any* sparsity pattern; patterns that are not
        single-diagonal-per-tile simply produce more tiles. On a
        vectorized-BMC-reordered structured-grid matrix the tile count
        approaches ``nnz / bsize`` (the paper's ideal).
        """
        bsize = check_positive(bsize, "bsize")
        require(csr.n_rows % bsize == 0,
                "row dimension must be a multiple of bsize")
        rows = np.repeat(np.arange(csr.n_rows, dtype=np.int64),
                         np.diff(csr.indptr))
        cols = csr.indices.astype(np.int64)
        vals = csr.data
        lane = rows % bsize
        browi = rows // bsize
        anchor = cols - lane   # column of lane 0 on this tile diagonal
        colblk = cols // bsize  # block column holding this lane
        # Tile key: (block row, anchor, block column). Splitting by
        # block column keeps each tile's non-zero lanes inside one
        # block, which Algorithm 4's shifted diagonal loads require.
        order = np.lexsort((colblk, anchor, browi))
        browi_s = browi[order]
        anchor_s = anchor[order]
        colblk_s = colblk[order]
        lane_s = lane[order]
        vals_s = vals[order]

        if len(rows):
            new_tile = np.empty(len(rows), dtype=bool)
            new_tile[0] = True
            new_tile[1:] = ((browi_s[1:] != browi_s[:-1])
                            | (anchor_s[1:] != anchor_s[:-1])
                            | (colblk_s[1:] != colblk_s[:-1]))
            tile_id = np.cumsum(new_tile) - 1
            n_tiles = int(tile_id[-1]) + 1
        else:
            new_tile = np.zeros(0, dtype=bool)
            tile_id = np.zeros(0, dtype=np.int64)
            n_tiles = 0

        values = np.zeros((n_tiles, bsize), dtype=vals.dtype)
        values[tile_id, lane_s] = vals_s
        tile_browi = browi_s[new_tile]
        tile_anchor = anchor_s[new_tile]
        blk_ind = colblk_s[new_tile]
        blk_offset = tile_anchor - blk_ind * bsize

        brow = csr.n_rows // bsize
        counts = np.bincount(tile_browi, minlength=brow)
        blk_ptr = np.zeros(brow + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=blk_ptr[1:])
        return cls(blk_ptr, blk_ind, blk_offset, values, csr.shape,
                   nnz_hint=csr.nnz)

    # Derived structure -------------------------------------------------
    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def n_tiles(self) -> int:
        return len(self.blk_ind)

    @property
    def brow(self) -> int:
        return self.n_rows // self.bsize

    @property
    def anchors(self) -> np.ndarray:
        """Global column of lane 0 for every tile (int64)."""
        return (self.blk_ind.astype(np.int64) * self.bsize
                + self.blk_offset)

    @property
    def dia_ptr(self) -> np.ndarray:
        """Tile index of the main-diagonal tile per block-row.

        ``dia_ptr[i]`` points into ``blk_ind``/``values`` at the tile of
        block-row ``i`` whose anchor equals ``i * bsize`` (offset 0 on
        the main diagonal), as required by the block ILU(0) of
        Algorithm 4. ``-1`` where absent.
        """
        if self._dia_ptr is None:
            dia = np.full(self.brow, -1, dtype=np.int64)
            for i in range(self.brow):
                lo, hi = self.blk_ptr[i], self.blk_ptr[i + 1]
                hits = np.flatnonzero(
                    (self.blk_ind[lo:hi] == i)
                    & (self.blk_offset[lo:hi] == 0)
                )
                if len(hits):
                    dia[i] = lo + hits[0]
            self._dia_ptr = dia
        return self._dia_ptr

    def block_row(self, i: int) -> tuple:
        """Return ``(anchors, values)`` views for block-row ``i``."""
        lo, hi = self.blk_ptr[i], self.blk_ptr[i + 1]
        return self.anchors[lo:hi], self.values[lo:hi]

    # Vector padding ----------------------------------------------------
    def pad_vector(self, x: np.ndarray) -> np.ndarray:
        """Return ``x`` with ``bsize`` zero slots on both ends.

        Tile anchors range over ``[-(bsize-1), n_cols-1]`` and vector
        loads span ``bsize`` slots, so a buffer of ``n + 2*bsize`` makes
        every load in-bounds; the paper guarantees the corresponding
        ``values`` lanes are zero, so the extra slots never contribute.
        """
        b = self.bsize
        xp = np.zeros(self.n_cols + 2 * b, dtype=x.dtype)
        xp[b:b + self.n_cols] = x
        return xp

    def unpad_vector(self, xp: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`pad_vector` (returns a copy)."""
        b = self.bsize
        return xp[b:b + self.n_cols].copy()

    # Interface ----------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        b = self.bsize
        anchors = self.anchors
        for i in range(self.brow):
            for t in range(self.blk_ptr[i], self.blk_ptr[i + 1]):
                d = anchors[t]
                for l in range(b):
                    c = d + l
                    v = self.values[t, l]
                    if 0 <= c < self.n_cols and v != 0:
                        dense[i * b + l, c] = v
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Fully vectorized SpMV over the padded x buffer.

        Equivalent to running the gather-free vector loop of Algorithm 2
        for every tile at once: a fancy-indexed contiguous load per tile,
        lane-wise FMA, and a per-block-row reduction.
        """
        x = np.asarray(x)
        require(x.shape == (self.n_cols,), "x has wrong length")
        b = self.bsize
        xp = self.pad_vector(x)
        if self.n_tiles == 0:
            return np.zeros(self.n_rows, dtype=x.dtype)
        # (n_tiles, b) window starts: anchor + pad shift.
        starts = self.anchors + b
        window = starts[:, None] + np.arange(b)
        prod = self.values * xp[window]
        y = np.zeros((self.brow, b),
                     dtype=np.result_type(self.values, x))
        nonempty = np.flatnonzero(np.diff(self.blk_ptr) > 0)
        if len(nonempty):
            y[nonempty] = np.add.reduceat(prod, self.blk_ptr[nonempty],
                                          axis=0)
        return y.ravel()

    def to_csr(self):
        """Convert back to CSR (padding zeros dropped) — the inverse
        of :meth:`from_csr` up to explicit zeros."""
        from repro.formats.coo import COOMatrix
        from repro.formats.csr import CSRMatrix

        b = self.bsize
        anchors = self.anchors
        tile_rows = (np.repeat(np.arange(self.brow),
                               np.diff(self.blk_ptr))[:, None] * b
                     + np.arange(b)[None, :])
        tile_cols = anchors[:, None] + np.arange(b)[None, :]
        vals = self.values
        keep = (vals != 0) & (tile_cols >= 0) & (tile_cols < self.n_cols)
        coo = COOMatrix(tile_rows[keep], tile_cols[keep], vals[keep],
                        self.shape)
        return CSRMatrix.from_coo(coo)

    def transpose(self) -> "DBSRMatrix":
        """Return the transposed matrix in DBSR form.

        The transpose of a diagonal tile is a diagonal tile, so the
        format is closed under transposition; useful for turning a
        lower factor into an upper one on symmetric patterns.
        """
        require(self.n_cols % self.bsize == 0,
                "transpose needs column dim divisible by bsize")
        from repro.formats.csr import CSRMatrix

        csr_t = CSRMatrix.from_coo(self.to_csr().to_coo().transpose())
        return DBSRMatrix.from_csr(csr_t, self.bsize)

    def astype(self, dtype) -> "DBSRMatrix":
        """Return a copy with values cast to ``dtype`` (e.g. float32)."""
        return DBSRMatrix(
            self.blk_ptr.copy(), self.blk_ind.copy(),
            self.blk_offset.copy(), self.values.astype(dtype),
            self.shape, nnz_hint=self._nnz,
        )

    def memory_report(self, offset_itemsize: int = 4) -> MemoryReport:
        """Storage accounting (Fig. 11).

        Parameters
        ----------
        offset_itemsize:
            Bytes used per ``blk_offset`` entry. The paper notes the
            offset fits in ``log2(bsize)`` bits plus sign; pass ``1`` to
            model an int8 packing, ``4`` for plain int (the Fig. 11
            baseline).
        """
        return MemoryReport(
            format_name=f"DBSR(b={self.bsize})",
            arrays={
                "blk_ptr": self.blk_ptr.nbytes,
                "blk_ind": self.blk_ind.nbytes,
                "blk_offset": len(self.blk_offset) * offset_itemsize,
                "values": self.values.nbytes,
            },
            nnz=self.nnz,
            stored_values=self.values.size,
            value_itemsize=self.values.itemsize,
        )
