"""Block Compressed Sparse Row (BCSR) format with dense tiles.

BCSR is the other parent of DBSR. The paper notes (§III-E) that BCSR
"introduces excessive zero-value padding for sparse operations" because
every touched ``bsize × bsize`` tile is stored densely; DBSR fixes this
by keeping only the single populated diagonal per tile. The
:meth:`BCSRMatrix.memory_report` here quantifies that padding.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import INDEX_DTYPE, MemoryReport, SparseMatrix
from repro.utils.validation import check_positive, require


class BCSRMatrix(SparseMatrix):
    """Sparse matrix stored as dense ``bsize x bsize`` tiles in CSR order.

    Parameters
    ----------
    blk_ptr:
        Block-row pointer of length ``n_rows // bsize + 1``.
    blk_ind:
        Block-column index per tile.
    blocks:
        Array of shape ``(n_tiles, bsize, bsize)``.
    shape:
        Matrix shape; both dims must be multiples of ``bsize``.
    nnz_hint:
        Number of original non-zeros (for padding accounting); counted
        from the blocks when omitted.
    """

    def __init__(self, blk_ptr, blk_ind, blocks, shape, nnz_hint=None):
        blk_ptr = np.asarray(blk_ptr, dtype=INDEX_DTYPE)
        blk_ind = np.asarray(blk_ind, dtype=INDEX_DTYPE)
        blocks = np.ascontiguousarray(blocks)
        require(blocks.ndim == 3 and blocks.shape[1] == blocks.shape[2],
                "blocks must be (n_tiles, bsize, bsize)")
        bsize = blocks.shape[1]
        n_rows, n_cols = int(shape[0]), int(shape[1])
        require(n_rows % bsize == 0 and n_cols % bsize == 0,
                "matrix dims must be multiples of bsize")
        brow = n_rows // bsize
        require(len(blk_ptr) == brow + 1, "blk_ptr length mismatch")
        require(blk_ptr[-1] == len(blk_ind) == len(blocks),
                "tile count mismatch")
        self.shape = (n_rows, n_cols)
        self.bsize = bsize
        self.blk_ptr = blk_ptr
        self.blk_ind = blk_ind
        self.blocks = blocks
        self._nnz = int(np.count_nonzero(blocks)) if nnz_hint is None \
            else int(nnz_hint)

    @classmethod
    def from_csr(cls, csr, bsize: int) -> "BCSRMatrix":
        """Tile a CSR matrix into dense ``bsize x bsize`` blocks."""
        bsize = check_positive(bsize, "bsize")
        require(csr.n_rows % bsize == 0 and csr.n_cols % bsize == 0,
                "matrix dims must be multiples of bsize")
        brow = csr.n_rows // bsize
        rows = np.repeat(np.arange(csr.n_rows), np.diff(csr.indptr))
        cols = csr.indices.astype(np.int64)
        browi = rows // bsize
        bcoli = cols // bsize
        key = browi * (csr.n_cols // bsize) + bcoli
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        uniq, starts = np.unique(key_s, return_index=True)
        tile_of_entry = np.searchsorted(uniq, key_s)
        n_tiles = len(uniq)
        blocks = np.zeros((n_tiles, bsize, bsize), dtype=csr.data.dtype)
        blocks[tile_of_entry, rows[order] % bsize, cols[order] % bsize] = \
            csr.data[order]
        tile_browi = (uniq // (csr.n_cols // bsize)).astype(INDEX_DTYPE)
        blk_ind = (uniq % (csr.n_cols // bsize)).astype(INDEX_DTYPE)
        counts = np.bincount(tile_browi, minlength=brow)
        blk_ptr = np.zeros(brow + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=blk_ptr[1:])
        return cls(blk_ptr, blk_ind, blocks, csr.shape, nnz_hint=csr.nnz)

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def n_tiles(self) -> int:
        return len(self.blk_ind)

    @property
    def brow(self) -> int:
        return self.n_rows // self.bsize

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.blocks.dtype)
        b = self.bsize
        for i in range(self.brow):
            for t in range(self.blk_ptr[i], self.blk_ptr[i + 1]):
                j = self.blk_ind[t]
                dense[i * b:(i + 1) * b, j * b:(j + 1) * b] = self.blocks[t]
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        require(x.shape == (self.n_cols,), "x has wrong length")
        b = self.bsize
        # Gather x tiles per block, batched matmul, reduce per block-row.
        xg = x.reshape(-1, b)[self.blk_ind]          # (n_tiles, b)
        prod = np.einsum("tij,tj->ti", self.blocks, xg)
        y = np.zeros((self.brow, b), dtype=prod.dtype)
        nonempty = np.flatnonzero(np.diff(self.blk_ptr) > 0)
        if len(nonempty):
            y[nonempty] = np.add.reduceat(prod, self.blk_ptr[nonempty],
                                          axis=0)
        return y.ravel()

    def memory_report(self) -> MemoryReport:
        return MemoryReport(
            format_name=f"BCSR(b={self.bsize})",
            arrays={
                "blk_ptr": self.blk_ptr.nbytes,
                "blk_ind": self.blk_ind.nbytes,
                "values": self.blocks.nbytes,
            },
            nnz=self.nnz,
            stored_values=self.blocks.size,
            value_itemsize=self.blocks.itemsize,
        )
