"""ELLPACK (ELL) sparse format.

The ancestor of SELL: every row is padded to the global maximum row
length and the matrix is stored column-major, so row `i` of column
slot `j` sits at `j * n + i`. Perfectly regular (one width for the
whole matrix) but ruinously padded when row lengths vary — the problem
SELL's per-chunk widths fix (§II-A lineage). Included for the storage
comparison and as the simplest vector-friendly baseline.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import INDEX_DTYPE, MemoryReport, SparseMatrix
from repro.utils.validation import require


class ELLMatrix(SparseMatrix):
    """Sparse matrix in ELLPACK layout.

    Parameters
    ----------
    csr:
        Source :class:`~repro.formats.csr.CSRMatrix`.
    """

    def __init__(self, csr):
        self.shape = csr.shape
        n = csr.n_rows
        lengths = np.diff(csr.indptr)
        self.width = int(lengths.max()) if n else 0
        self.colidx = np.zeros((self.width, n), dtype=INDEX_DTYPE)
        self.vals = np.zeros((self.width, n), dtype=csr.data.dtype)
        for i in range(n):
            cols, vals = csr.row(i)
            k = len(cols)
            self.colidx[:k, i] = cols
            self.vals[:k, i] = vals
            # Padding slots self-reference for gather safety.
            self.colidx[k:, i] = min(i, self.n_cols - 1)
        self._nnz = csr.nnz

    @property
    def nnz(self) -> int:
        return self._nnz

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.vals.dtype)
        n = self.n_rows
        for j in range(self.width):
            nz = self.vals[j] != 0
            dense[np.arange(n)[nz], self.colidx[j][nz]] = self.vals[j][nz]
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        require(x.shape == (self.n_cols,), "x has wrong length")
        y = np.zeros(self.n_rows, dtype=np.result_type(self.vals, x))
        for j in range(self.width):
            y += self.vals[j] * x[self.colidx[j]]  # full-height gather
        return y

    def padding_fraction(self) -> float:
        total = self.vals.size
        return 0.0 if total == 0 else 1.0 - self.nnz / total

    def memory_report(self) -> MemoryReport:
        return MemoryReport(
            format_name="ELL",
            arrays={
                "col_ind": self.colidx.nbytes,
                "values": self.vals.nbytes,
            },
            nnz=self.nnz,
            stored_values=self.vals.size,
            value_itemsize=self.vals.itemsize,
        )
