"""Abstract base class and memory accounting for sparse formats."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

INDEX_DTYPE = np.int32


@dataclass
class MemoryReport:
    """Byte-exact storage accounting for one sparse matrix instance.

    The paper's Fig. 11 compares CSR and DBSR storage split into index
    bytes and value bytes, with the value bytes further split into
    original non-zeros and zero padding.

    Attributes
    ----------
    format_name:
        Human-readable name of the storage format.
    arrays:
        Bytes per named storage array (e.g. ``row_ptr``, ``values``).
    nnz:
        Number of original non-zero matrix entries stored.
    stored_values:
        Number of value slots actually allocated (>= nnz when the
        format pads).
    value_itemsize:
        Bytes per stored value (8 for float64, 4 for float32).
    """

    format_name: str
    arrays: Dict[str, int] = field(default_factory=dict)
    nnz: int = 0
    stored_values: int = 0
    value_itemsize: int = 8

    @property
    def index_bytes(self) -> int:
        """Total bytes spent on anything that is not a matrix value."""
        return sum(
            b for name, b in self.arrays.items() if name != "values"
        )

    @property
    def value_bytes(self) -> int:
        """Bytes spent on stored values, padding included."""
        return self.arrays.get("values", 0)

    @property
    def padding_values(self) -> int:
        """Number of explicit zero value slots introduced by padding."""
        return self.stored_values - self.nnz

    @property
    def padding_bytes(self) -> int:
        """Bytes wasted on zero padding in the value array."""
        return self.padding_values * self.value_itemsize

    @property
    def total_bytes(self) -> int:
        """Total storage footprint in bytes."""
        return sum(self.arrays.values())

    def as_row(self) -> tuple:
        """Tabular row used by the Fig. 11 benchmark harness."""
        return (
            self.format_name,
            self.index_bytes,
            self.nnz * self.value_itemsize,
            self.padding_bytes,
            self.total_bytes,
        )


class SparseMatrix(abc.ABC):
    """Common interface for all sparse matrix storage formats.

    Subclasses store a square or rectangular sparse matrix and provide
    SpMV, densification, and storage accounting. Construction-time
    validation is thorough; kernels assume valid state.
    """

    shape: tuple

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored original non-zeros."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Return the dense ``(n_rows, n_cols)`` ndarray equivalent."""

    @abc.abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A @ x`` as a new 1-D array."""

    @abc.abstractmethod
    def memory_report(self) -> MemoryReport:
        """Return the byte-exact storage accounting for this instance."""

    # Convenience -----------------------------------------------------
    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(np.asarray(x))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz})"
        )
