"""Coordinate (COO) sparse format.

COO is the interchange format: every other format in the library can be
built from a :class:`COOMatrix`, mirroring its role as the default
``.mtx`` representation the paper describes in §II-A.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import INDEX_DTYPE, MemoryReport, SparseMatrix
from repro.utils.validation import check_1d, require


class COOMatrix(SparseMatrix):
    """Sparse matrix stored as (row, col, value) triplets.

    Duplicate entries are summed on construction, matching the usual
    assembly semantics of finite-difference/finite-element codes.

    Parameters
    ----------
    rows, cols:
        Integer coordinate arrays of equal length.
    values:
        Floating point values, same length as the coordinates.
    shape:
        Matrix shape ``(n_rows, n_cols)``.
    """

    def __init__(self, rows, cols, values, shape):
        rows = check_1d(np.asarray(rows, dtype=INDEX_DTYPE), "rows")
        cols = check_1d(np.asarray(cols, dtype=INDEX_DTYPE), "cols")
        values = check_1d(np.asarray(values), "values")
        require(
            len(rows) == len(cols) == len(values),
            "rows, cols and values must have equal length",
        )
        n_rows, n_cols = int(shape[0]), int(shape[1])
        require(n_rows > 0 and n_cols > 0, "shape must be positive")
        if len(rows):
            require(rows.min() >= 0 and rows.max() < n_rows,
                    "row index out of range")
            require(cols.min() >= 0 and cols.max() < n_cols,
                    "col index out of range")
        self.shape = (n_rows, n_cols)

        # Canonicalize: sort by (row, col) and merge duplicates.
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        if len(rows):
            keys = rows.astype(np.int64) * n_cols + cols
            uniq, inverse = np.unique(keys, return_inverse=True)
            merged = np.zeros(len(uniq), dtype=values.dtype)
            np.add.at(merged, inverse, values)
            self.rows = (uniq // n_cols).astype(INDEX_DTYPE)
            self.cols = (uniq % n_cols).astype(INDEX_DTYPE)
            self.values = merged
        else:
            self.rows, self.cols, self.values = rows, cols, values

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def dtype(self):
        return self.values.dtype

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        dense[self.rows, self.cols] = self.values
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        require(x.shape == (self.n_cols,), "x has wrong length")
        y = np.zeros(self.n_rows, dtype=np.result_type(self.values, x))
        np.add.at(y, self.rows, self.values * x[self.cols])
        return y

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (new canonical COO)."""
        return COOMatrix(
            self.cols, self.rows, self.values,
            (self.n_cols, self.n_rows),
        )

    def memory_report(self) -> MemoryReport:
        return MemoryReport(
            format_name="COO",
            arrays={
                "rows": self.rows.nbytes,
                "cols": self.cols.nbytes,
                "values": self.values.nbytes,
            },
            nnz=self.nnz,
            stored_values=len(self.values),
            value_itemsize=self.values.itemsize,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a dense array, dropping exact zeros."""
        dense = np.asarray(dense)
        require(dense.ndim == 2, "dense must be 2-D")
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], dense.shape)
