"""Compressed Sparse Row (CSR) format.

CSR is the workhorse baseline of the paper (Algorithm 1 SpTRSV, the CPO
HPCG variant, and the Fig. 11 storage comparison all use it).
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import INDEX_DTYPE, MemoryReport, SparseMatrix
from repro.utils.validation import check_1d, require


class CSRMatrix(SparseMatrix):
    """Sparse matrix in compressed sparse row layout.

    Parameters
    ----------
    indptr:
        Row pointer array of length ``n_rows + 1``.
    indices:
        Column indices, sorted within each row.
    data:
        Values aligned with ``indices``.
    shape:
        Matrix shape ``(n_rows, n_cols)``.
    """

    def __init__(self, indptr, indices, data, shape):
        indptr = check_1d(np.asarray(indptr, dtype=INDEX_DTYPE), "indptr")
        indices = check_1d(np.asarray(indices, dtype=INDEX_DTYPE), "indices")
        data = check_1d(np.asarray(data), "data")
        n_rows, n_cols = int(shape[0]), int(shape[1])
        require(len(indptr) == n_rows + 1, "indptr must have n_rows+1 entries")
        require(indptr[0] == 0 and indptr[-1] == len(indices),
                "indptr endpoints inconsistent with indices")
        require(np.all(np.diff(indptr) >= 0), "indptr must be nondecreasing")
        require(len(indices) == len(data), "indices/data length mismatch")
        if len(indices):
            require(indices.min() >= 0 and indices.max() < n_cols,
                    "column index out of range")
        self.shape = (n_rows, n_cols)
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self._sort_rows()

    def _sort_rows(self) -> None:
        """Sort column indices within each row (stable, vectorized)."""
        n = self.n_rows
        row_of = np.repeat(np.arange(n, dtype=np.int64),
                           np.diff(self.indptr))
        order = np.lexsort((self.indices, row_of))
        self.indices = self.indices[order]
        self.data = self.data[order]

    # Construction helpers --------------------------------------------
    @classmethod
    def from_coo(cls, coo) -> "CSRMatrix":
        """Build from a canonical :class:`COOMatrix`."""
        counts = np.bincount(coo.rows, minlength=coo.n_rows)
        indptr = np.zeros(coo.n_rows + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, coo.cols.copy(), coo.values.copy(), coo.shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        from repro.formats.coo import COOMatrix

        return cls.from_coo(COOMatrix.from_dense(dense))

    def to_coo(self):
        from repro.formats.coo import COOMatrix

        rows = np.repeat(
            np.arange(self.n_rows, dtype=INDEX_DTYPE),
            np.diff(self.indptr),
        )
        return COOMatrix(rows, self.indices, self.data, self.shape)

    # Interface --------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def dtype(self):
        return self.data.dtype

    def astype(self, dtype) -> "CSRMatrix":
        """Return a copy with values cast to ``dtype``."""
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(),
            self.data.astype(dtype), self.shape,
        )

    def row(self, i: int) -> tuple:
        """Return ``(cols, vals)`` views of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.data.dtype)
        rows = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        dense[rows, self.indices] = self.data
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        require(x.shape == (self.n_cols,), "x has wrong length")
        prod = self.data * x[self.indices]
        y = np.zeros(self.n_rows, dtype=prod.dtype)
        # reduceat mishandles empty rows; mask them explicitly.
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if len(nonempty):
            sums = np.add.reduceat(prod, self.indptr[nonempty])
            y[nonempty] = sums
        return y

    def diagonal(self) -> np.ndarray:
        """Return the main diagonal as a dense vector (zeros if absent)."""
        n = min(self.shape)
        diag = np.zeros(n, dtype=self.data.dtype)
        rows = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        mask = rows == self.indices
        diag_rows = rows[mask]
        diag[diag_rows[diag_rows < n]] = self.data[mask][diag_rows < n]
        return diag

    def tril(self, strict: bool = False) -> "CSRMatrix":
        """Return the (strictly) lower-triangular part as CSR."""
        return self._tri(lower=True, strict=strict)

    def triu(self, strict: bool = False) -> "CSRMatrix":
        """Return the (strictly) upper-triangular part as CSR."""
        return self._tri(lower=False, strict=strict)

    def _tri(self, lower: bool, strict: bool) -> "CSRMatrix":
        rows = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        if lower:
            mask = self.indices < rows if strict else self.indices <= rows
        else:
            mask = self.indices > rows if strict else self.indices >= rows
        counts = np.bincount(rows[mask], minlength=self.n_rows)
        indptr = np.zeros(self.n_rows + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(indptr, self.indices[mask], self.data[mask],
                         self.shape)

    def permute(self, perm: np.ndarray) -> "CSRMatrix":
        """Return ``P A P^T`` where ``perm`` maps old index -> new index.

        Row *and* column indices are relabeled so that grid reorderings
        (MC/BMC/vectorized BMC) can be applied symmetrically, as the
        paper does in §III-A.
        """
        perm = np.asarray(perm)
        require(perm.shape == (self.n_rows,), "perm has wrong length")
        require(self.n_rows == self.n_cols,
                "symmetric permutation needs a square matrix")
        rows = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        new_rows = perm[rows]
        new_cols = perm[self.indices]
        from repro.formats.coo import COOMatrix

        return CSRMatrix.from_coo(
            COOMatrix(new_rows, new_cols, self.data, self.shape)
        )

    def memory_report(self) -> MemoryReport:
        return MemoryReport(
            format_name="CSR",
            arrays={
                "row_ptr": self.indptr.nbytes,
                "col_ind": self.indices.nbytes,
                "values": self.data.nbytes,
            },
            nnz=self.nnz,
            stored_values=len(self.data),
            value_itemsize=self.data.itemsize,
        )
