"""Sparse matrix storage formats.

Implements every format the paper discusses (Fig. 1) plus the paper's
contribution:

* :class:`~repro.formats.coo.COOMatrix` — coordinate triplets.
* :class:`~repro.formats.csr.CSRMatrix` — compressed sparse row.
* :class:`~repro.formats.dia.DIAMatrix` — diagonal storage.
* :class:`~repro.formats.bcsr.BCSRMatrix` — block CSR with dense tiles.
* :class:`~repro.formats.sell.SELLMatrix` — sliced ELLPACK / SELL-C-σ.
* :class:`~repro.formats.dbsr.DBSRMatrix` — **diagonal block CSR**, the
  paper's format (§III-B): BCSR tiling where each tile stores a single
  (offset) diagonal in DIA fashion.

Each format knows how to construct itself from COO/CSR data, convert to
dense, perform SpMV, and produce a byte-exact :class:`MemoryReport`
(used to regenerate the paper's Fig. 11).
"""

from repro.formats.base import MemoryReport, SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.bcsr import BCSRMatrix
from repro.formats.sell import SELLMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.formats.convert import from_dense, to_format

__all__ = [
    "MemoryReport",
    "SparseMatrix",
    "COOMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "BCSRMatrix",
    "SELLMatrix",
    "DBSRMatrix",
    "from_dense",
    "to_format",
]
