"""Matrix Market (.mtx) I/O.

COO "is the default storage format for .mtx text" (paper §II-A); this
module reads and writes the coordinate MatrixMarket dialect so external
matrices (e.g. SuiteSparse structured-grid problems) can be pushed
through the DBSR pipeline.

Supported: ``matrix coordinate real|integer general|symmetric`` and
``matrix coordinate pattern general|symmetric`` (pattern entries get
value 1.0). Writing always emits ``coordinate real general``.
"""

from __future__ import annotations

import numpy as np

from repro.formats.coo import COOMatrix
from repro.utils.validation import require

_HEADER = "%%MatrixMarket"


def read_matrix_market(path_or_file) -> COOMatrix:
    """Parse a MatrixMarket coordinate file into a :class:`COOMatrix`.

    Parameters
    ----------
    path_or_file:
        File path or an open text-file object.
    """
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file) as fh:
            lines = fh.read().splitlines()
    require(bool(lines), "empty MatrixMarket file")
    header = lines[0].split()
    require(len(header) >= 5 and header[0] == _HEADER,
            "missing MatrixMarket header")
    obj, fmt, field, symmetry = (header[1].lower(), header[2].lower(),
                                 header[3].lower(), header[4].lower())
    require(obj == "matrix", f"unsupported object {obj!r}")
    require(fmt == "coordinate", f"unsupported format {fmt!r}")
    require(field in ("real", "integer", "pattern"),
            f"unsupported field {field!r}")
    require(symmetry in ("general", "symmetric"),
            f"unsupported symmetry {symmetry!r}")

    body = [ln for ln in lines[1:]
            if ln.strip() and not ln.lstrip().startswith("%")]
    require(bool(body), "missing size line")
    n_rows, n_cols, nnz = (int(tok) for tok in body[0].split()[:3])
    entries = body[1:]
    require(len(entries) == nnz,
            f"expected {nnz} entries, found {len(entries)}")

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    for k, line in enumerate(entries):
        tok = line.split()
        rows[k] = int(tok[0]) - 1  # 1-based in the file
        cols[k] = int(tok[1]) - 1
        vals[k] = 1.0 if field == "pattern" else float(tok[2])

    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, rows[:nnz][off]])
        vals = np.concatenate([vals, vals[off]])
    return COOMatrix(rows, cols, vals, (n_rows, n_cols))


def write_matrix_market(matrix, path_or_file,
                        comment: str | None = None) -> None:
    """Write any :class:`~repro.formats.base.SparseMatrix` as
    ``coordinate real general`` MatrixMarket text."""
    coo = matrix if isinstance(matrix, COOMatrix) else _as_coo(matrix)
    lines = [f"{_HEADER} matrix coordinate real general"]
    if comment:
        for ln in comment.splitlines():
            lines.append(f"% {ln}")
    lines.append(f"{coo.n_rows} {coo.n_cols} {coo.nnz}")
    for r, c, v in zip(coo.rows, coo.cols, coo.values):
        lines.append(f"{int(r) + 1} {int(c) + 1} {float(v)!r}")
    text = "\n".join(lines) + "\n"
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w") as fh:
            fh.write(text)


def _as_coo(matrix) -> COOMatrix:
    if hasattr(matrix, "to_coo"):
        return matrix.to_coo()
    return COOMatrix.from_dense(matrix.to_dense())
