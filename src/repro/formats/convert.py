"""Format conversion helpers.

Centralizes the COO-hub conversion paths so callers can move between
formats by name (used by the format-tour example and the Fig. 11
storage sweep).
"""

from __future__ import annotations

import numpy as np

from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.sell import SELLMatrix


def from_dense(dense: np.ndarray) -> CSRMatrix:
    """Build a CSR matrix from a dense array (zeros dropped)."""
    return CSRMatrix.from_dense(np.asarray(dense))


def to_format(csr: CSRMatrix, name: str, **kwargs):
    """Convert ``csr`` to the named format.

    Parameters
    ----------
    csr:
        Source matrix.
    name:
        One of ``"coo"``, ``"csr"``, ``"dia"``, ``"bcsr"``, ``"sell"``,
        ``"sell-c-sigma"``, ``"dbsr"`` (case-insensitive).
    kwargs:
        Format-specific options: ``bsize`` for BCSR/DBSR, ``chunk`` and
        ``sigma`` for SELL variants.
    """
    key = name.lower()
    if key == "coo":
        return csr.to_coo()
    if key == "csr":
        return csr
    if key == "dia":
        return DIAMatrix.from_coo(csr.to_coo())
    if key == "ell":
        return ELLMatrix(csr)
    if key == "bcsr":
        return BCSRMatrix.from_csr(csr, kwargs.get("bsize", 4))
    if key == "sell":
        return SELLMatrix(csr, chunk=kwargs.get("chunk", 8), sigma=1)
    if key in ("sell-c-sigma", "sellcs"):
        chunk = kwargs.get("chunk", 8)
        sigma = kwargs.get("sigma", chunk * 4)
        return SELLMatrix(csr, chunk=chunk, sigma=sigma)
    if key == "dbsr":
        return DBSRMatrix.from_csr(csr, kwargs.get("bsize", 4))
    raise ValueError(f"unknown format name: {name!r}")


FORMAT_NAMES = ("coo", "csr", "dia", "ell", "bcsr", "sell",
                "sell-c-sigma", "dbsr")
