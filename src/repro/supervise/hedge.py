"""Chunk-level retry and straggler-hedging policies.

Two small, deterministic policy objects the gateway consults per chunk
attempt; both are pure bookkeeping — the gateway owns the actual
asyncio choreography.

**RetryPolicy** prices re-dispatch of a chunk whose shard failed
recoverably: capped exponential delays, a bounded attempt count, and
the PR-6 contract that non-recoverable errors
(:data:`~repro.resilience.errors.NON_RECOVERABLE_ERRORS`) are never
retried — they condemn the shard and surface to the caller.

**HedgePolicy** decides *when a chunk has straggled long enough* to
duplicate onto a second shard. It learns the chunk latency
distribution online with two EWMAs (mean and absolute deviation) and
derives a p95-style hedge threshold ``mean + spread_factor * dev`` —
the classic "tied requests" tail-cutting scheme (Dean & Barroso, *The
Tail at Scale*). Duplicating work is only safe because the batched
kernels are bit-identical across shards: whichever attempt finishes
first, the caller observes the same bits, so first-result-wins changes
latency and nothing else.
"""

from __future__ import annotations

from repro.gateway.estimator import Ewma
from repro.utils.validation import check_positive


class RetryPolicy:
    """Bounded retry with capped exponential backoff (per chunk).

    ``max_retries`` counts *re*-dispatches: a chunk is attempted at
    most ``1 + max_retries`` times. ``delay(attempt)`` prices the sleep
    before retry number ``attempt`` (1-based):
    ``min(cap, base * multiplier**(attempt - 1))``.
    """

    def __init__(self, max_retries: int = 2, base_delay: float = 0.02,
                 multiplier: float = 2.0, cap: float = 0.5):
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {max_retries}")
        if not base_delay > 0:
            raise ValueError(
                f"base_delay must be > 0, got {base_delay}")
        self.max_retries = int(max_retries)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.cap = float(cap)

    def delay(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based), capped."""
        check_positive(attempt, "attempt")
        return min(self.cap,
                   self.base_delay * self.multiplier ** (attempt - 1))

    def stats(self) -> dict:
        return {"max_retries": self.max_retries,
                "base_delay": self.base_delay,
                "multiplier": self.multiplier, "cap": self.cap}


class HedgePolicy:
    """EWMA-p95 straggler detector: when to duplicate a slow chunk.

    Tracks chunk latency with a mean EWMA and a mean-absolute-deviation
    EWMA; the hedge delay is ``mean + spread_factor * dev`` clamped to
    ``[min_delay, max_delay]``. Until ``min_samples`` observations have
    arrived :meth:`delay` returns ``None`` — no hedging on a cold
    distribution, where the threshold would be guesswork.
    """

    def __init__(self, alpha: float = 0.3, spread_factor: float = 3.0,
                 min_samples: int = 3, min_delay: float = 0.01,
                 max_delay: float = 2.0):
        check_positive(min_samples, "min_samples")
        if not min_delay > 0:
            raise ValueError(
                f"min_delay must be > 0, got {min_delay}")
        if max_delay < min_delay:
            raise ValueError(
                f"max_delay {max_delay} < min_delay {min_delay}")
        self.spread_factor = float(spread_factor)
        self.min_samples = int(min_samples)
        self.min_delay = float(min_delay)
        self.max_delay = float(max_delay)
        self._mean = Ewma(alpha)
        self._dev = Ewma(alpha)

    def record(self, seconds: float) -> None:
        """Feed one *winning* chunk latency (losers are censored —
        feeding them would inflate the threshold they caused)."""
        seconds = float(seconds)
        mean = self._mean.value
        if mean is not None:
            self._dev.update(abs(seconds - mean))
        else:
            self._dev.update(0.0)
        self._mean.update(seconds)

    def delay(self) -> float | None:
        """Current hedge threshold in seconds, or ``None`` while cold."""
        if self._mean.n < self.min_samples:
            return None
        raw = self._mean.value + self.spread_factor * self._dev.value
        return min(self.max_delay, max(self.min_delay, raw))

    def stats(self) -> dict:
        return {
            "samples": self._mean.n,
            "mean_seconds": self._mean.value,
            "dev_seconds": self._dev.value,
            "delay_seconds": self.delay(),
            "spread_factor": self.spread_factor,
            "min_samples": self.min_samples,
        }
