"""Shard supervisor: probe, quarantine, restart under a budget.

:class:`ShardSupervisor` owns shard *health* the way the elastic
controller owns shard *count*. The division of labor with the plan
tier (:mod:`repro.resilience`) mirrors the two failure domains:

* the **plan tier** degrades a failing *plan* (fallback chains,
  recompile budgets) — the artifact is suspect;
* the **shard tier** replaces a failing *worker* — the artifact is
  fine, the executor is sick (poisoned cache, exhausted resources,
  chaos-injected crash).

The supervisor's loop, all driven from the gateway's event loop:

1. The gateway hands it every shard whose attempt raised
   (:meth:`handle_failure`). A shard condemned as ``defunct`` goes
   straight back to the pool, whose ``release`` reaps it. Anything
   else gets a **canary probe** — a tiny known-answer solve, checked
   bit-for-bit (:class:`~repro.supervise.canary.CanaryProbe`).
2. A shard that fails its probe is **quarantined** (pulled out of
   rotation), closed, and a **restart campaign** starts: sleep by
   capped decorrelated-jitter backoff
   (:class:`~repro.supervise.backoff.DecorrelatedJitterBackoff`),
   build a replacement through ``pool.build_shard()`` (the
   ``pool.spawn`` chaos site lives there), probe it, and only
   **adopt** it into rotation once the probe passes.
3. Every restart *attempt* consumes one slot of a finite
   ``restart_budget`` — the shard-tier analogue of the plan tier's
   recompile budget — so a permanently failing environment converges
   to a smaller pool instead of an infinite restart storm.
"""

from __future__ import annotations

import asyncio

from repro.observe import trace
from repro.supervise.backoff import DecorrelatedJitterBackoff
from repro.supervise.canary import CanaryProbe
from repro.utils.validation import check_positive


class ShardSupervisor:
    """Health-check + quarantine + budgeted-restart policy.

    Parameters
    ----------
    canary:
        The :class:`~repro.supervise.canary.CanaryProbe` shards must
        pass; built lazily from the gateway's config when ``None``.
    backoff_factory:
        Zero-arg callable building one campaign's
        :class:`~repro.supervise.backoff.DecorrelatedJitterBackoff`.
    max_restarts:
        Attempt cap per restart campaign.
    restart_budget:
        Total restart attempts across the supervisor's lifetime.
    """

    def __init__(self, canary: CanaryProbe | None = None, *,
                 backoff_factory=None, max_restarts: int = 3,
                 restart_budget: int = 8):
        self.canary = canary
        self._backoff_factory = (backoff_factory or
                                 DecorrelatedJitterBackoff)
        self.max_restarts = check_positive(max_restarts,
                                           "max_restarts")
        self.restart_budget = check_positive(restart_budget,
                                             "restart_budget")
        self.budget_left = self.restart_budget
        self.pool = None
        self.quarantines = 0
        self.restarts = 0          # successful adoptions
        self.restart_failures = 0  # attempts that did not adopt
        self.releases_healthy = 0  # probed-healthy shards returned
        self.backoff_total = 0.0   # seconds slept across campaigns
        self._campaigns: set = set()
        self._quarantined_counter = None
        self._restarted_counter = None

    def bind(self, pool, metrics=None) -> "ShardSupervisor":
        """Attach to the gateway's pool (the gateway calls this)."""
        self.pool = pool
        if metrics is not None:
            self._quarantined_counter = metrics.counter(
                "gateway.quarantines",
                "shards pulled from rotation by the supervisor")
            self._restarted_counter = metrics.counter(
                "gateway.restarts",
                "replacement shards adopted after a canary pass")
        if self.canary is None:
            # Default probe under the pool's own service config, so the
            # probe path is the traffic path.
            sample = pool._shards[0] if pool._shards else None
            config = getattr(getattr(sample, "service", None),
                             "config", None)
            self.canary = CanaryProbe(config)
        return self

    # Failure intake -----------------------------------------------------
    async def handle_failure(self, shard, exc: BaseException) -> None:
        """Disposition one shard whose chunk attempt raised ``exc``.

        Defunct shards go to ``pool.release`` (which reaps them and
        replenishes ``min_shards``); everything else is canary-probed:
        healthy shards return to rotation — the *chunk* failed, not
        the worker — and unhealthy ones are quarantined and restarted.
        """
        if shard.defunct:
            await self.pool.release(shard)
            return
        healthy, reason = await asyncio.to_thread(self.canary.check,
                                                  shard)
        if healthy:
            self.releases_healthy += 1
            await self.pool.release(shard)
            return
        await self._quarantine(shard, reason)

    async def sweep(self) -> int:
        """Probe every currently idle shard; quarantine the sick ones.

        Returns how many shards were quarantined. Useful as a periodic
        background health pass; chaos tests call it directly.
        """
        sick = 0
        suspects = []
        while True:
            shard = self.pool.try_acquire()
            if shard is None:
                break
            suspects.append(shard)
        for shard in suspects:
            healthy, reason = await asyncio.to_thread(
                self.canary.check, shard)
            if healthy:
                await self.pool.release(shard)
            else:
                sick += 1
                await self._quarantine(shard, reason)
        return sick

    async def _quarantine(self, shard, reason: str) -> None:
        self.quarantines += 1
        if self._quarantined_counter is not None:
            self._quarantined_counter.inc()
        self.pool.quarantine(shard)
        trace.event("supervise.quarantine", shard=shard.index,
                    reason=reason)
        shard.close()
        task = asyncio.get_running_loop().create_task(
            self._restart_campaign(shard.index))
        self._campaigns.add(task)
        task.add_done_callback(self._campaigns.discard)

    # Restart ------------------------------------------------------------
    async def _restart_campaign(self, dead_index: int) -> None:
        """Replace one quarantined shard: backoff → build → probe →
        adopt, bounded by ``max_restarts`` and the global budget."""
        backoff = self._backoff_factory()
        for _attempt in range(self.max_restarts):
            if self.budget_left <= 0:
                trace.event("supervise.budget_exhausted",
                            dead_shard=dead_index)
                return
            self.budget_left -= 1
            delay = backoff.next()
            self.backoff_total += delay
            await asyncio.sleep(delay)
            try:
                shard = self.pool.build_shard()
            except BaseException as exc:  # noqa: BLE001 - chaos spawn
                self.restart_failures += 1
                trace.event("supervise.restart_failed",
                            dead_shard=dead_index, phase="spawn",
                            error=type(exc).__name__)
                continue
            healthy, reason = await asyncio.to_thread(
                self.canary.check, shard)
            if not healthy:
                self.restart_failures += 1
                trace.event("supervise.restart_failed",
                            dead_shard=dead_index, phase="probe",
                            error=reason)
                shard.close()
                continue
            self.pool.adopt(shard)
            self.restarts += 1
            if self._restarted_counter is not None:
                self._restarted_counter.inc()
            self.pool.lifecycle_events.append(
                {"action": "restart", "shard": shard.index,
                 "replaces": dead_index,
                 "n_shards": self.pool.n_shards})
            trace.event("supervise.restart", shard=shard.index,
                        replaces=dead_index)
            return
        trace.event("supervise.campaign_abandoned",
                    dead_shard=dead_index,
                    attempts=self.max_restarts)

    async def drain(self, cancel: bool = False) -> None:
        """Await (or cancel) outstanding restart campaigns.

        The gateway's ``close()`` cancels; tests that want the restart
        to land await with ``cancel=False``.
        """
        tasks = list(self._campaigns)
        if cancel:
            for t in tasks:
                t.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # Introspection ------------------------------------------------------
    def backoff_bound(self) -> float:
        """Worst-case sleep of one full campaign (budget assertion)."""
        return self._backoff_factory().max_total(self.max_restarts)

    def stats(self) -> dict:
        return {
            "quarantines": self.quarantines,
            "restarts": self.restarts,
            "restart_failures": self.restart_failures,
            "releases_healthy": self.releases_healthy,
            "restart_budget": self.restart_budget,
            "budget_left": self.budget_left,
            "backoff_total_seconds": self.backoff_total,
            "campaigns_active": len(self._campaigns),
            "canary": (self.canary.stats()
                       if self.canary is not None else None),
        }
