"""Gateway chaos benchmark: ``repro gateway-chaos-bench``.

Drives the supervised gateway through five phases and emits the
schema-validated ``BENCH_gateway_chaos.json`` report:

1. **clean** — full supervision armed (supervisor + hedge + retry +
   brownout), *no* faults: results stay bit-identical to a direct
   sync solve and no intervention fires (zero quarantines, retries,
   sheds). Supervision that is not needed must be invisible.
2. **crash storm** — armed ``shard_crash`` + ``shard_hang`` faults:
   per-chunk retry re-dispatches crashed chunks; every request still
   resolves bit-identically (recovery rate 1.0, zero lost columns).
3. **poison + restart** — a ``shard_poison`` fault condemns one shard
   and a ``spawn_fail`` fault breaks the first restart attempt: the
   supervisor quarantines on a failed canary, burns one budget slot on
   the broken spawn, and adopts a probed replacement within the
   decorrelated-jitter backoff budget.
4. **hedging identity** — a ``shard_hang`` straggler: the hedge fires
   after its EWMA-p95 delay, the backup shard wins, and the winner's
   answer is bit-identical to the direct solve (the property that
   makes first-result-wins safe at all).
5. **brownout** — a deliberately slow shard and a premium/bulk tenant
   mix: overload degrades the stream chunk, then sheds *bulk* (not
   premium) admissions with typed
   :class:`~repro.gateway.errors.BrownoutShed` + ``retry_after``;
   idle observations recover the stage to normal.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.gateway.errors import BrownoutShed
from repro.gateway.gateway import SolveGateway
from repro.gateway.queues import TenantQuota
from repro.grids.grid import StructuredGrid
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve.plan import PlanConfig
from repro.serve.service import SolveService
from repro.supervise.backoff import DecorrelatedJitterBackoff
from repro.supervise.brownout import BrownoutController
from repro.supervise.canary import CanaryProbe
from repro.supervise.hedge import HedgePolicy, RetryPolicy
from repro.supervise.supervisor import ShardSupervisor

OPS = ("lower", "upper", "symgs")


def _direct(grid, stencil, rhs2d, op, config) -> np.ndarray:
    """Reference: the same columns through a plain sync service."""
    with SolveService(config=config) as svc:
        tickets = [svc.submit(grid, stencil,
                              np.ascontiguousarray(rhs2d[:, j]), op=op)
                   for j in range(rhs2d.shape[1])]
        svc.drain()
        return np.stack([t.result(timeout=0) for t in tickets],
                        axis=1)


def _supervisor(config, seed: int, *, max_restarts: int = 3,
                restart_budget: int = 8) -> ShardSupervisor:
    """A fast-backoff supervisor suitable for a benchmark run."""
    return ShardSupervisor(
        CanaryProbe(config, nx=4, seed=seed),
        backoff_factory=lambda: DecorrelatedJitterBackoff(
            base=0.01, cap=0.05, seed=seed),
        max_restarts=max_restarts, restart_budget=restart_budget)


def _resolution(stats: dict, accepted_columns: int) -> dict:
    resolved = (stats["completed"] + stats["failed"]
                + stats["expired"])
    return {
        "accepted_columns": accepted_columns,
        "completed_columns": stats["completed"],
        "failed_columns": stats["failed"],
        "expired_columns": stats["expired"],
        "no_lost_columns": bool(resolved == accepted_columns),
    }


async def _clean_phase(grid, stencil, config, rng) -> dict:
    """Supervision fully armed, zero faults: it must be invisible."""
    gw = SolveGateway(
        config=config, min_shards=2, max_shards=2, stream_chunk=2,
        supervisor=_supervisor(config, seed=11),
        hedge=HedgePolicy(min_samples=3, max_delay=1.0),
        retry=RetryPolicy(max_retries=2, base_delay=0.01),
        brownout=BrownoutController(degrade_wait=5.0, shed_wait=20.0))
    async with gw:
        cases = []
        for op in OPS:
            rhs = rng.standard_normal((grid.n_points, 3))
            got = await gw.solve(grid, stencil, rhs, op=op)
            want = _direct(grid, stencil, rhs, op, config)
            cases.append({"op": op,
                          "bitwise": bool(np.array_equal(got, want))})
        stats = gw.stats()
    return {
        "cases": cases,
        "all_bitwise": all(c["bitwise"] for c in cases),
        "quarantines": stats["supervisor"]["quarantines"],
        "retries": stats["retries"],
        "sheds": stats["sheds"],
        "resolution": _resolution(stats, 3 * len(OPS)),
    }


async def _crash_storm_phase(grid, stencil, config, rng,
                             n_requests: int, seed: int) -> dict:
    """shard_crash + shard_hang under retry + hedging: lose nothing."""
    requests = [(OPS[i % len(OPS)],
                 rng.standard_normal((grid.n_points, 2)))
                for i in range(n_requests)]
    # References computed before any fault is armed.
    want = [_direct(grid, stencil, rhs, op, config)
            for op, rhs in requests]
    plan = FaultPlan(name="crash-storm", seed=seed, specs=(
        FaultSpec(kind="shard_crash", max_fires=3),
        FaultSpec(kind="shard_hang", delay_seconds=0.25,
                  max_fires=2),
    ))
    gw = SolveGateway(
        config=config, min_shards=2, max_shards=3, stream_chunk=2,
        supervisor=_supervisor(config, seed=seed),
        hedge=HedgePolicy(min_samples=2, spread_factor=2.0,
                          min_delay=0.01, max_delay=0.1),
        retry=RetryPolicy(max_retries=3, base_delay=0.01, cap=0.05))
    with inject(plan) as injector:
        async with gw:
            tickets = [await gw.submit(grid, stencil, rhs, op=op)
                       for op, rhs in requests]
            got = [await t.result() for t in tickets]
            await gw.supervisor.drain(cancel=False)
            stats = gw.stats()
        faults = injector.stats()
    recovered = sum(bool(np.array_equal(g, w))
                    for g, w in zip(got, want))
    return {
        "n_requests": n_requests,
        "faults_injected": faults["injected"],
        "fault_records": faults["records"],
        "recovered": recovered,
        "recovery_rate": recovered / n_requests,
        "retries": stats["retries"],
        "hedges": stats["hedges"],
        "supervisor": stats["supervisor"],
        "resolution": _resolution(stats, 2 * n_requests),
    }


async def _poison_restart_phase(grid, stencil, config, rng,
                                seed: int) -> dict:
    """shard_poison condemns a worker; spawn_fail breaks the first
    restart attempt; the supervisor still refills the pool, within
    its backoff budget."""
    rhs = rng.standard_normal((grid.n_points, 4))
    want = _direct(grid, stencil, rhs, "lower", config)
    plan = FaultPlan(name="poison-restart", seed=seed, specs=(
        FaultSpec(kind="shard_poison", max_fires=1),
        FaultSpec(kind="spawn_fail", max_fires=1),
    ))
    sup = _supervisor(config, seed=seed, max_restarts=3,
                      restart_budget=6)
    gw = SolveGateway(
        config=config, min_shards=2, max_shards=2, stream_chunk=1,
        supervisor=sup,
        retry=RetryPolicy(max_retries=3, base_delay=0.01, cap=0.05))
    with inject(plan) as injector:
        async with gw:
            ticket = await gw.submit(grid, stencil, rhs, op="lower")
            got = await ticket.result()
            await sup.drain(cancel=False)
            stats = gw.stats()
            final_shards = gw.pool.n_shards
        faults = injector.stats()
    sup_stats = stats["supervisor"]
    budget_bound = sup.backoff_bound() * max(1,
                                             sup_stats["quarantines"])
    return {
        "bitwise": bool(np.array_equal(got, want)),
        "faults_injected": faults["injected"],
        "fault_records": faults["records"],
        "quarantines": sup_stats["quarantines"],
        "restarts": sup_stats["restarts"],
        "restart_failures": sup_stats["restart_failures"],
        "budget_left": sup_stats["budget_left"],
        "backoff_total_seconds": sup_stats["backoff_total_seconds"],
        "backoff_budget_bound": budget_bound,
        "within_backoff_budget": bool(
            sup_stats["backoff_total_seconds"] <= budget_bound),
        "final_shards": final_shards,
        "resolution": _resolution(stats, 4),
    }


async def _hedging_phase(grid, stencil, config, rng,
                         seed: int) -> dict:
    """A straggling shard is hedged; the backup's answer is the
    answer — bit-identical to the direct solve."""
    hedge = HedgePolicy(min_samples=2, spread_factor=2.0,
                        min_delay=0.02, max_delay=0.1)
    gw = SolveGateway(config=config, min_shards=2, max_shards=2,
                      stream_chunk=2, hedge=hedge)
    async with gw:
        # Warm the latency distribution so the hedge threshold is live.
        for _ in range(3):
            warm = rng.standard_normal(grid.n_points)
            x = await gw.solve(grid, stencil, warm, op="lower")
            assert np.all(np.isfinite(x))
        rhs = rng.standard_normal((grid.n_points, 2))
        want = _direct(grid, stencil, rhs, "lower", config)
        plan = FaultPlan(name="straggler", seed=seed, specs=(
            FaultSpec(kind="shard_hang", delay_seconds=0.5,
                      max_fires=1),
        ))
        with inject(plan) as injector:
            got = await gw.solve(grid, stencil, rhs, op="lower")
            faults = injector.stats()
        stats = gw.stats()
    return {
        "hedge_delay_seconds": hedge.stats()["delay_seconds"],
        "hang_seconds": 0.5,
        "faults_injected": faults["injected"],
        "hedges": stats["hedges"],
        "hedge_wins": stats["hedge_wins"],
        "bitwise": bool(np.array_equal(got, want)),
        "resolution": _resolution(stats, 3 + 2),
    }


class _SlowService:
    """Wrap a sync service with a fixed drain delay (overload fuel)."""

    def __init__(self, inner, delay: float):
        self._inner = inner
        self._delay = delay
        self.config = inner.config
        self.cache = getattr(inner, "cache", None)

    def submit(self, *args, **kwargs):
        return self._inner.submit(*args, **kwargs)

    def drain(self):
        time.sleep(self._delay)
        return self._inner.drain()

    def close(self):
        self._inner.close()

    def stats(self):
        return self._inner.stats()


async def _brownout_phase(grid, stencil, config, rng) -> dict:
    """Overload a one-shard pool: degrade, then shed bulk (typed,
    with retry_after), keep premium, and recover when idle."""
    brownout = BrownoutController(
        degrade_wait=0.02, shed_wait=0.06, enter_patience=1,
        exit_patience=2, shed_below_weight=1.0,
        retry_after_floor=0.01)
    quotas = {
        "premium": TenantQuota(max_queued=256, max_in_flight=8,
                               weight=2.0),
        "bulk": TenantQuota(max_queued=256, max_in_flight=8,
                            weight=0.5),
    }
    gw = SolveGateway(
        service_factory=lambda: _SlowService(
            SolveService(config=config), delay=0.03),
        config=config, min_shards=1, max_shards=1, stream_chunk=4,
        quotas=quotas, brownout=brownout)
    async with gw:
        # One awaited warm solve seeds the chunk-latency EWMA that
        # prices the queue-wait signal.
        await gw.solve(grid, stencil,
                       rng.standard_normal(grid.n_points),
                       tenant="premium")
        tickets = []
        for _ in range(8):
            tickets.append(await gw.submit(
                grid, stencil,
                rng.standard_normal((grid.n_points, 4)),
                tenant="premium"))
        shed_error = None
        bulk_admitted = 0
        for _ in range(32):
            if brownout.stage != "shed":
                gw.poll()
            try:
                tickets.append(await gw.submit(
                    grid, stencil,
                    rng.standard_normal(grid.n_points),
                    tenant="bulk"))
                bulk_admitted += 1
            except BrownoutShed as exc:
                shed_error = exc
                break
        # Premium outranks the shed bar even in the shed stage.
        premium_during_shed = None
        if brownout.stage == "shed":
            tickets.append(await gw.submit(
                grid, stencil, rng.standard_normal(grid.n_points),
                tenant="premium"))
            premium_during_shed = True
        accepted_columns = 1 + 8 * 4 + bulk_admitted \
            + (1 if premium_during_shed else 0)
        for t in tickets:
            x = await t.result()
            assert np.all(np.isfinite(x))
        await gw.join()
        for _ in range(8):  # idle samples walk the stage back down
            gw.poll()
        stats = gw.stats()
        stage_after_drain = brownout.stage
    transitions = stats["brownout"]["transitions"]
    return {
        "degrade_wait": brownout.degrade_wait,
        "shed_wait": brownout.shed_wait,
        "bulk_admitted_before_shed": bulk_admitted,
        "shed_typed": bool(isinstance(shed_error, BrownoutShed)),
        "shed_retry_after": (None if shed_error is None
                             else shed_error.retry_after),
        "shed_stage": (None if shed_error is None
                       else shed_error.stage),
        "premium_admitted_during_shed": premium_during_shed,
        "sheds": stats["sheds"],
        "transitions": transitions,
        "reached_degraded": any(t["to"] == "degraded"
                                for t in transitions),
        "reached_shed": any(t["to"] == "shed" for t in transitions),
        "recovered_normal": bool(stage_after_drain == "normal"),
        "resolution": _resolution(stats, accepted_columns),
    }


async def _run(nx: int, stencil: str, n_requests: int,
               n_workers: int, machine: str, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    grid = StructuredGrid((nx,) * 3)
    config = PlanConfig(bsize=4, n_workers=n_workers, machine=machine)

    clean = await _clean_phase(grid, stencil, config, rng)
    crash = await _crash_storm_phase(grid, stencil, config, rng,
                                     n_requests, seed)
    poison = await _poison_restart_phase(grid, stencil, config, rng,
                                         seed)
    hedging = await _hedging_phase(grid, stencil, config, rng, seed)
    brownout = await _brownout_phase(grid, stencil, config, rng)

    gates = {
        "clean_bitwise_no_intervention": bool(
            clean["all_bitwise"] and clean["quarantines"] == 0
            and clean["retries"] == 0 and clean["sheds"] == 0),
        "crash_recovery_rate_1": bool(
            crash["recovery_rate"] == 1.0),
        "crash_retried": bool(crash["retries"] > 0),
        "poison_quarantined_and_restarted": bool(
            poison["quarantines"] >= 1 and poison["restarts"] >= 1
            and poison["restart_failures"] >= 1),
        "restart_within_backoff_budget":
            poison["within_backoff_budget"],
        "hedge_winner_bit_identical": bool(
            hedging["hedges"] >= 1 and hedging["hedge_wins"] >= 1
            and hedging["bitwise"]),
        "brownout_shed_typed_with_retry_after": bool(
            brownout["shed_typed"]
            and brownout["shed_retry_after"] is not None
            and brownout["shed_retry_after"] > 0),
        "brownout_spared_premium": bool(
            brownout["premium_admitted_during_shed"] is not False),
        "brownout_recovered": brownout["recovered_normal"],
        "no_lost_columns": all(
            p["resolution"]["no_lost_columns"]
            and p["resolution"]["failed_columns"] == 0
            for p in (clean, crash, poison, hedging, brownout)),
        "all_bitwise": bool(
            clean["all_bitwise"] and poison["bitwise"]
            and hedging["bitwise"]
            and crash["recovery_rate"] == 1.0),
    }
    return {
        "schema": "dbsr-repro/bench-gateway-chaos/v1",
        "config": {
            "nx": nx,
            "stencil": stencil,
            "n_requests": n_requests,
            "n_workers": n_workers,
            "machine": machine,
            "seed": seed,
        },
        "clean": clean,
        "crash_storm": crash,
        "poison_restart": poison,
        "hedging": hedging,
        "brownout": brownout,
        "gates": gates,
        "ok": all(gates.values()),
    }


def collect_bench_gateway_chaos(nx: int = 5, stencil: str = "27pt",
                                n_requests: int = 8,
                                n_workers: int = 2,
                                machine: str = "kp920",
                                seed: int = 2024) -> dict:
    """Run the chaos workload; return the BENCH_gateway_chaos dict.

    Synchronous wrapper (the CLI and tests call it from plain code);
    the phases run sequentially on a private event loop.
    """
    return asyncio.run(_run(nx, stencil, n_requests, n_workers,
                            machine, seed))
