"""Capped exponential backoff with decorrelated jitter.

Restarting a sick shard too eagerly turns one failure into a retry
storm; restarting on a fixed exponential schedule synchronizes every
restarter onto the same instants. The classic fix is *decorrelated
jitter*: each delay is drawn uniformly from ``[base, 3 * previous]``
and capped, so delays grow roughly exponentially **and** decorrelate
across restarters — no two supervisors hammer the factory in lockstep.

The generator is seeded, so a schedule replays bit-for-bit: chaos
tests can assert exactly how long a quarantined shard was allowed to
take to come back.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class DecorrelatedJitterBackoff:
    """Seeded decorrelated-jitter delay sequence.

    Parameters
    ----------
    base:
        First delay and the lower bound of every draw (seconds).
    cap:
        Upper bound on any delay (seconds) — the "capped" part.
    seed:
        RNG seed; the same seed replays the same schedule.
    """

    def __init__(self, base: float = 0.05, cap: float = 2.0,
                 seed: int = 0):
        if not base > 0:
            raise ValueError(f"base must be > 0, got {base}")
        if cap < base:
            raise ValueError(f"cap {cap} < base {base}")
        self.base = float(base)
        self.cap = float(cap)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._last: float | None = None
        #: Total seconds handed out so far (the "backoff budget" a
        #: restart must fit inside).
        self.total = 0.0
        self.draws = 0

    def next(self) -> float:
        """Next delay: ``base`` first, then ``min(cap, U[base, 3*last])``."""
        if self._last is None:
            delay = self.base
        else:
            hi = max(self.base, 3.0 * self._last)
            delay = min(self.cap, float(self._rng.uniform(self.base,
                                                          hi)))
        self._last = delay
        self.total += delay
        self.draws += 1
        return delay

    def reset(self) -> None:
        """Forget the streak (a success ends the escalation)."""
        self._last = None

    def max_total(self, attempts: int) -> float:
        """Worst-case total sleep across ``attempts`` draws.

        Every draw after the first is capped, so the budget bound is
        closed-form: ``base + (attempts - 1) * cap``.
        """
        check_positive(attempts, "attempts")
        return self.base + (attempts - 1) * self.cap

    def stats(self) -> dict:
        return {"base": self.base, "cap": self.cap, "seed": self.seed,
                "draws": self.draws, "total_seconds": self.total}
