"""Shard supervision tier: health checks, restarts, hedging, brownout.

This package makes the gateway/shard tier fault-tolerant end to end,
complementing the *plan*-tier resilience of :mod:`repro.resilience`
(fallback chains, degradation budgets) with *worker*-tier supervision:

* :class:`~repro.supervise.supervisor.ShardSupervisor` — deterministic
  canary probes (bit-checked known-answer solves), quarantine of
  unhealthy shards, and budgeted restart with capped
  decorrelated-jitter backoff.
* :class:`~repro.supervise.hedge.HedgePolicy` /
  :class:`~repro.supervise.hedge.RetryPolicy` — per-chunk straggler
  hedging (EWMA-p95 thresholds, first result wins — safe because the
  batched kernels are bit-identical) and bounded recoverable-failure
  retry.
* :class:`~repro.supervise.brownout.BrownoutController` — staged
  overload degradation: shrink stream chunks first, then shed
  low-weight admissions with a typed
  :class:`~repro.gateway.errors.BrownoutShed` carrying a retry hint.

``repro gateway-chaos-bench`` (:mod:`repro.supervise.bench`) drives
all of it under armed fault plans and emits the schema-validated
``BENCH_gateway_chaos.json`` report.
"""

from repro.gateway.errors import BrownoutShed
from repro.supervise.backoff import DecorrelatedJitterBackoff
from repro.supervise.brownout import BrownoutController
from repro.supervise.canary import CanaryProbe
from repro.supervise.hedge import HedgePolicy, RetryPolicy
from repro.supervise.supervisor import ShardSupervisor

__all__ = [
    "BrownoutController",
    "BrownoutShed",
    "CanaryProbe",
    "DecorrelatedJitterBackoff",
    "HedgePolicy",
    "RetryPolicy",
    "ShardSupervisor",
]
