"""Deterministic known-answer canary probes for shard health.

The batched triangular kernels are deterministic and bit-identical
across shards (one structure, one op, one config ⇒ one exact result —
the same property the gateway bench pins with ``np.array_equal``).
That determinism makes shard health *decidable*: compute a tiny known
answer once through a direct :class:`~repro.serve.service.SolveService`
and a shard is healthy iff it reproduces that answer **bit for bit**.
No tolerance, no flakiness: a canary mismatch is a real fault (poisoned
shard, corrupted cache, broken service), never noise.

The probe is intentionally tiny (a 4³ grid by default — a few hundred
unknowns) so the supervisor can afford to run it on every suspect
shard and on every restart candidate before adoption.
"""

from __future__ import annotations

import numpy as np

from repro.grids.grid import StructuredGrid
from repro.serve.plan import PlanConfig, _resolve_stencil
from repro.serve.service import SolveService
from repro.utils.validation import check_positive


class CanaryProbe:
    """A tiny solve with a precomputed, bit-exact expected answer.

    Parameters
    ----------
    config:
        :class:`~repro.serve.plan.PlanConfig` the probe solves under;
        should match the pool's config so the probe exercises the same
        plan pipeline the real traffic does.
    nx:
        Cube edge of the probe grid (``nx**3`` unknowns).
    stencil, op:
        Structure and kernel the probe exercises.
    seed:
        Seed of the probe RHS — fixed so every probe of every shard
        solves the *same* system.
    """

    def __init__(self, config: PlanConfig | None = None, *,
                 nx: int = 4, stencil: str = "27pt",
                 op: str = "lower", seed: int = 7):
        check_positive(nx, "nx")
        self.config = config if config is not None else PlanConfig()
        self.grid = StructuredGrid((nx,) * 3)
        self.stencil = _resolve_stencil(stencil)
        self.op = op
        rng = np.random.default_rng(seed)
        self.rhs = rng.standard_normal(self.grid.n_points)
        #: Probes run so far (across all shards).
        self.probes = 0
        self.failures = 0
        # The known answer, computed once through the plain sync path.
        with SolveService(config=self.config) as svc:
            ticket = svc.submit(self.grid, self.stencil, self.rhs,
                                op=self.op)
            svc.drain()
            self.expected = ticket.result(timeout=0)

    def check(self, shard) -> tuple[bool, str]:
        """Probe one shard; returns ``(healthy, reason)``.

        Healthy means the shard executed the probe without raising and
        returned the expected answer bit-for-bit. The probe runs
        through the shard's normal ``execute`` path, so it sees
        whatever the next real chunk would see (including armed
        ``gateway.shard`` faults — chaos tests rely on that).
        """
        self.probes += 1
        try:
            out = shard.execute(self.grid, self.stencil, self.op,
                                self.config, [self.rhs])
        except BaseException as exc:  # noqa: BLE001 - any raise = sick
            self.failures += 1
            return False, f"probe raised {type(exc).__name__}: {exc}"
        if len(out) != 1:
            self.failures += 1
            return False, f"probe returned {len(out)} columns, not 1"
        result = out[0]
        if isinstance(result, BaseException):
            self.failures += 1
            return False, (f"probe column failed with "
                           f"{type(result).__name__}: {result}")
        if not np.array_equal(result, self.expected):
            self.failures += 1
            return False, "probe answer is not bit-identical"
        return True, "ok"

    def stats(self) -> dict:
        return {"nx": int(self.grid.dims[0]), "op": self.op,
                "probes": self.probes, "failures": self.failures}
