"""Staged overload brownout: degrade before you drop.

When the backlog grows faster than the pool can drain it, the gateway
has three choices: queue without bound (latency explodes), reject
everything (availability collapses), or **brown out** — shed load in
stages, cheapest degradation first. :class:`BrownoutController`
implements the staged policy:

``normal → degraded → shed`` (and back), driven by queue-wait
observations:

* **normal** — no intervention.
* **degraded** — halve ``stream_chunk`` (smaller dispatch units stream
  first columns sooner and interleave tenants more finely; throughput
  drops a little, tail latency a lot).
* **shed** — additionally refuse admissions from tenants whose
  fair-share weight is below ``shed_below_weight``, with a typed
  :class:`~repro.gateway.errors.BrownoutShed` carrying ``retry_after``
  — never a silent drop, and never a shed of the heavyweight tenants
  the operator priced as important.

Transitions use enter/exit **patience** (consecutive observations past
the threshold), the same observation-counted hysteresis idiom as the
pool's scaling controller, so a noisy queue cannot flap the stage.
Stages step one level at a time in both directions — recovery passes
back through ``degraded`` before reaching ``normal``.
"""

from __future__ import annotations

from repro.utils.validation import check_positive

STAGES = ("normal", "degraded", "shed")


class BrownoutController:
    """Queue-wait-driven staged degradation with hysteresis.

    Parameters
    ----------
    degrade_wait, shed_wait:
        Estimated queue-wait thresholds (seconds) for entering the
        ``degraded`` / ``shed`` stages (``shed_wait`` must be the
        larger).
    enter_patience, exit_patience:
        Consecutive observations past (resp. below) a threshold before
        the stage steps up (resp. down). Exit patience is typically
        larger: entering brownout fast and leaving it slowly prevents
        admit/shed oscillation at the boundary.
    chunk_shrink:
        Divisor applied to ``stream_chunk`` while degraded or worse.
    shed_below_weight:
        Only tenants with fair-share weight strictly below this are
        shed; heavier tenants are still admitted even in ``shed``.
    retry_after_floor:
        Lower bound on the ``retry_after`` hint (seconds).
    """

    def __init__(self, degrade_wait: float = 0.5,
                 shed_wait: float = 2.0, enter_patience: int = 2,
                 exit_patience: int = 3, chunk_shrink: int = 2,
                 shed_below_weight: float = 1.0,
                 retry_after_floor: float = 0.05):
        if not degrade_wait > 0:
            raise ValueError(
                f"degrade_wait must be > 0, got {degrade_wait}")
        if shed_wait < degrade_wait:
            raise ValueError(f"shed_wait {shed_wait} < degrade_wait "
                             f"{degrade_wait}")
        check_positive(enter_patience, "enter_patience")
        check_positive(exit_patience, "exit_patience")
        check_positive(chunk_shrink, "chunk_shrink")
        self.degrade_wait = float(degrade_wait)
        self.shed_wait = float(shed_wait)
        self.enter_patience = int(enter_patience)
        self.exit_patience = int(exit_patience)
        self.chunk_shrink = int(chunk_shrink)
        self.shed_below_weight = float(shed_below_weight)
        self.retry_after_floor = float(retry_after_floor)
        self.stage = "normal"
        self._enter_streak = 0
        self._exit_streak = 0
        self.last_wait = 0.0
        self.observations = 0
        self.sheds = 0
        #: Stage-change history: ``{"from", "to", "queue_wait"}`` dicts.
        self.transitions: list[dict] = []

    def _target(self, wait: float) -> str:
        if wait >= self.shed_wait:
            return "shed"
        if wait >= self.degrade_wait:
            return "degraded"
        return "normal"

    def observe(self, queue_wait: float) -> str:
        """Feed one queue-wait estimate (seconds); returns the stage.

        The stage moves one step toward the target stage only after
        ``enter_patience`` (worsening) or ``exit_patience``
        (recovering) consecutive observations agree.
        """
        wait = float(queue_wait)
        self.last_wait = wait
        self.observations += 1
        here = STAGES.index(self.stage)
        target = STAGES.index(self._target(wait))
        if target > here:
            self._enter_streak += 1
            self._exit_streak = 0
            if self._enter_streak >= self.enter_patience:
                self._step(here + 1, wait)
                self._enter_streak = 0
        elif target < here:
            self._exit_streak += 1
            self._enter_streak = 0
            if self._exit_streak >= self.exit_patience:
                self._step(here - 1, wait)
                self._exit_streak = 0
        else:
            self._enter_streak = 0
            self._exit_streak = 0
        return self.stage

    def _step(self, to: int, wait: float) -> None:
        frm = self.stage
        self.stage = STAGES[to]
        self.transitions.append({"from": frm, "to": self.stage,
                                 "queue_wait": wait})

    # Policy queries (the gateway consults these per admission) --------
    def effective_chunk(self, stream_chunk: int) -> int:
        """Chunk size under the current stage (shrunk when degraded)."""
        if self.stage == "normal":
            return stream_chunk
        return max(1, stream_chunk // self.chunk_shrink)

    def should_shed(self, weight: float) -> bool:
        """True when an admission of this fair-share weight must be
        refused (``shed`` stage and the tenant is below the bar)."""
        return (self.stage == "shed"
                and float(weight) < self.shed_below_weight)

    def retry_after(self, queue_wait: float | None = None) -> float:
        """Retry hint for a shed tenant: the backlog's estimated
        drain time, floored."""
        wait = self.last_wait if queue_wait is None else float(
            queue_wait)
        return max(self.retry_after_floor, wait)

    def shed(self) -> None:
        """Count one refused admission (the gateway calls this as it
        raises :class:`~repro.gateway.errors.BrownoutShed`)."""
        self.sheds += 1

    def stats(self) -> dict:
        return {
            "stage": self.stage,
            "last_queue_wait": self.last_wait,
            "observations": self.observations,
            "sheds": self.sheds,
            "transitions": list(self.transitions),
            "degrade_wait": self.degrade_wait,
            "shed_wait": self.shed_wait,
            "shed_below_weight": self.shed_below_weight,
        }
