"""ILU serving benchmark: value-only repack amortization + gates.

Emitted to ``BENCH_ilu.json`` by ``repro ilu-bench`` and evaluated by
``repro bench all``. Four claims back the ILU serving tier:

1. **Repack amortization** — a warm :meth:`PlanCache.refresh_values`
   (re-scatter DBSR values + numeric ILU(0) re-factorization) must be
   a small fraction of a cold :func:`compile_ilu_plan` (which also
   pays reordering, tiling, autotune, scatter-map derivation). The
   standing gate requires ``refresh <= 0.5 × cold`` on the seed grid.
2. **Bitwise repack** — a repacked plan's factors and permuted
   operator bit-equal a cold compile from the same snapshot
   (``np.array_equal``), so incremental recompilation can never
   drift numerically.
3. **Rung differential** — the served DBSR ``ilu_apply`` bit-equals
   the CSR fallback rung (the scalar sweeps over the projected
   factors), on padded grids included.
4. **Sibling isolation** — invalidating one structure's fingerprint
   never flushes (or even touches) a sibling structure's cached plan.

A service section drives ``op="ilu_apply"`` traffic end to end so the
cache hit rate and phase timings land in the perf references.
"""

from __future__ import annotations

import time

import numpy as np

from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig


def _perturbed(values: np.ndarray, rng, scale: float = 0.05):
    """Multiplicative perturbation: keeps every pivot away from zero."""
    return values * (1.0 + scale * rng.uniform(-1.0, 1.0, values.shape))


def repack_report(grid, stencil: str, config: PlanConfig,
                  n_values: int, seed: int) -> dict:
    """Cold-compile vs value-only-repack timing + bitwise gates."""
    from repro.ilu.ilu0_csr import ilu0_apply_csr
    from repro.serve.ilu_plan import compile_ilu_plan

    rng = np.random.default_rng(seed)
    # Warm the compile pipeline's one-time costs (module imports,
    # machine tables) on a throwaway cache first, so the timed cold
    # compile measures structural work — not interpreter startup —
    # and the amortization ratio is *harder* to pass, not easier.
    compile_ilu_plan(grid, stencil, config)
    cache = PlanCache(capacity=4)
    t0 = time.perf_counter()
    plan, _ = cache.get_or_compile_ilu(grid, stencil, config)
    cold_seconds = time.perf_counter() - t0

    refresh_seconds = []
    repack_bitwise = True
    for _ in range(n_values):
        v = _perturbed(plan.values_src, rng)
        t0 = time.perf_counter()
        fresh, repacked = cache.refresh_values(plan.fingerprint, v)
        refresh_seconds.append(time.perf_counter() - t0)
        cold_twin = compile_ilu_plan(grid, stencil, config, values=v)
        repack_bitwise &= bool(repacked)
        repack_bitwise &= bool(np.array_equal(
            fresh.factors.matrix.values, cold_twin.factors.matrix.values))
        repack_bitwise &= bool(np.array_equal(
            fresh.matrix.data, cold_twin.matrix.data))

    served = cache.peek(plan.fingerprint)
    B = rng.standard_normal((served.n, 4))
    Z = served.apply(B)
    csr_factors = served.factors.to_csr_factors()
    Zr = np.stack(
        [served.restrict(ilu0_apply_csr(csr_factors,
                                        served.extend(B[:, j])))
         for j in range(B.shape[1])], axis=1)
    mean_refresh = float(np.mean(refresh_seconds))
    return {
        "cold_compile_seconds": float(cold_seconds),
        "refresh_seconds_mean": mean_refresh,
        "refresh_seconds_min": float(np.min(refresh_seconds)),
        "n_refreshes": n_values,
        "amortization_ratio": mean_refresh / cold_seconds,
        "refresh_le_half_cold": bool(mean_refresh <= 0.5 * cold_seconds),
        "repack_bitwise_equals_cold": bool(repack_bitwise),
        "apply_bitwise_equals_csr_rung": bool(np.array_equal(Z, Zr)),
        "n": int(served.n),
        "n_padded": int(served.n_padded),
        "cache": cache.stats(),
    }


def sibling_isolation_report(grid, alt_grid, stencil: str,
                             config: PlanConfig, seed: int) -> dict:
    """Fingerprint-scoped invalidation leaves siblings untouched."""
    rng = np.random.default_rng(seed)
    cache = PlanCache(capacity=4)
    plan_a, _ = cache.get_or_compile_ilu(grid, stencil, config)
    plan_b, _ = cache.get_or_compile_ilu(alt_grid, stencil, config)
    # Warm both, then invalidate only A.
    for _ in range(3):
        cache.get_or_compile_ilu(grid, stencil, config)
        cache.get_or_compile_ilu(alt_grid, stencil, config)
    hits_before = cache.hits
    compiles_before = cache.compiles
    cache.invalidate(plan_a.fingerprint)
    sibling_resident = cache.peek(plan_b.fingerprint) is not None
    served_b, hit_b = cache.get_or_compile_ilu(alt_grid, stencil,
                                               config)
    # B must still be the very same cached object — no recompile, no
    # repack — and refreshing A's values must not disturb it either.
    same_object = served_b is plan_b
    v = _perturbed(plan_a.values_src, rng)
    cache.get_or_compile_ilu(grid, stencil, config, values=v)
    still_b = cache.peek(plan_b.fingerprint) is plan_b
    return {
        "sibling_resident_after_invalidate": bool(sibling_resident),
        "sibling_hit_after_invalidate": bool(hit_b and same_object),
        "sibling_untouched_after_refresh": bool(still_b),
        "hits_before": int(hits_before),
        "compiles_before": int(compiles_before),
        "isolated": bool(sibling_resident and hit_b and same_object
                         and still_b),
        "cache": cache.stats(),
    }


def collect_bench_ilu(nx: int = 8, stencil: str = "27pt",
                      n_values: int = 4, n_requests: int = 16,
                      max_batch: int = 8, n_workers: int = 2,
                      dtype: str = "f64", machine: str = "kp920",
                      seed: int = 2024,
                      backend: str = "numpy-fast") -> dict:
    """Run the ILU serving workload + repack sweep; return the report."""
    from repro.grids.grid import StructuredGrid
    from repro.serve.service import SolveService

    config = PlanConfig(strategy="dbsr", bsize=None,
                        n_workers=n_workers, dtype=dtype,
                        machine=machine, backend=backend)
    rng = np.random.default_rng(seed)
    grid = StructuredGrid((nx,) * 3)
    alt_grid = StructuredGrid((max(2, nx - 1),) * 3)

    repack = repack_report(grid, stencil, config, n_values, seed)
    isolation = sibling_isolation_report(grid, alt_grid, stencil,
                                         config, seed)

    cache = PlanCache(capacity=4)
    with SolveService(cache=cache, config=config,
                      max_batch=max_batch,
                      max_pending=max(n_requests + 4, 16)) as service:
        tickets = []
        for _ in range(n_requests):
            rhs = rng.standard_normal(grid.n_points)
            tickets.append(service.submit(grid, stencil, rhs,
                                          op="ilu_apply"))
            if len(tickets) % max_batch == 0:
                service.drain()
        # One value rotation mid-stream: the warm repack path under
        # real traffic.
        plan = cache.peek(
            tickets[0].fingerprint) if tickets else None
        if plan is not None:
            v = _perturbed(plan.values_src, rng)
            tickets.append(service.submit(
                grid, stencil, rng.standard_normal(grid.n_points),
                op="ilu_apply", values=v))
        service.drain()
        for t in tickets:
            t.result(timeout=0)
        service_stats = service.stats()

    cache_stats = service_stats["cache"]
    return {
        "schema": "dbsr-repro/bench-ilu/v1",
        "config": {
            "nx": nx,
            "stencil": stencil,
            "dtype": dtype,
            "n_workers": n_workers,
            "n_requests": len(tickets),
            "n_values": n_values,
            "max_batch": max_batch,
            "machine": machine,
            "backend": backend,
        },
        "repack": repack,
        "sibling_isolation": isolation,
        "service": {
            k: service_stats[k]
            for k in ("submitted", "completed", "failed",
                      "batches_executed")
        },
        "cache": cache_stats,
        "phases": service_stats["phases"],
    }
