"""Multi-RHS batched DBSR kernels — amortizing matrix loads over k solves.

The SELL-C-σ line of work (Kreutzer et al.) and Bramas & Kus's
block-based AVX-512 SpMV both observe that wide-SIMD sparse formats pay
off most when the matrix *values* are loaded once and reused across
multiple right-hand sides. These kernels apply that to DBSR: each tile's
``bsize`` value vector is loaded once per sweep and FMA'd against all
``k`` columns of an ``(n, k)`` RHS block, so value-stream traffic per
solve drops as ``1/k`` while the vector-stream traffic stays linear.

Layout note: the padded working buffers are ``(k, n + 2*bsize)``
RHS-major so every per-RHS slice is contiguous — the gather-free
property of Algorithm 2 survives batching (nothing here indexes with an
array; the gather-lint runs over this module). The public API accepts
``(n, k)`` blocks column-per-RHS, matching how callers stack requests.

Every kernel is bit-identical per column to its unbatched sweep twin in
:mod:`repro.kernels.sptrsv_dbsr` / :mod:`repro.kernels.symgs`:
batching reorders no floating-point operation within a column. SpMV
accumulates each row's tiles as a *sequential* chain in storage order —
the canonical backend-tier rounding sequence — so it matches
:meth:`~repro.formats.dbsr.DBSRMatrix.matvec` (pairwise ``reduceat``
summation) to roundoff rather than bitwise. Instrumented ``*_counted``
twins execute through a :class:`~repro.simd.engine.VectorEngine`;
closed forms live in :func:`repro.kernels.counts.sptrsv_dbsr_multi_counts`.
"""

from __future__ import annotations

import numpy as np

from repro.formats.dbsr import DBSRMatrix
from repro.simd.engine import VectorEngine
from repro.utils.validation import require


def _check_rhs_block(matrix: DBSRMatrix, B: np.ndarray) -> np.ndarray:
    B = np.asarray(B)
    require(B.ndim == 2, "RHS block must be (n, k)")
    require(B.shape[0] == matrix.n_rows, "RHS block has wrong length")
    require(B.shape[1] >= 1, "RHS block must have at least one column")
    return B


def _sptrsv_multi(matrix: DBSRMatrix, B: np.ndarray,
                  diag: np.ndarray | None, forward: bool) -> np.ndarray:
    """Shared forward/backward multi-RHS Algorithm 2 sweep."""
    B = _check_rhs_block(matrix, B)
    n, k = B.shape
    bs = matrix.bsize
    dtype = np.result_type(matrix.values, B)
    # RHS-major padded buffer: Xp[j] is one contiguous padded solution.
    Xp = np.zeros((k, n + 2 * bs), dtype=dtype)
    Bk = np.ascontiguousarray(B.T)
    b3 = Bk.reshape(k, -1, bs)
    d2 = None if diag is None else np.asarray(diag).reshape(-1, bs)
    anchors = matrix.anchors + bs
    blk_ptr, values = matrix.blk_ptr, matrix.values
    rng = range(matrix.brow) if forward \
        else range(matrix.brow - 1, -1, -1)
    for i in rng:
        acc = b3[:, i, :].astype(dtype, copy=True)   # (k, bs)
        for t in range(blk_ptr[i], blk_ptr[i + 1]):
            a = anchors[t]
            # One values[t] load serves all k RHS columns.
            acc -= values[t] * Xp[:, a:a + bs]
        if d2 is not None:
            acc /= d2[i]
        Xp[:, bs + i * bs:bs + (i + 1) * bs] = acc
    return np.ascontiguousarray(Xp[:, bs:bs + n].T)


def sptrsv_dbsr_lower_multi(lower: DBSRMatrix, B: np.ndarray,
                            diag: np.ndarray | None = None) -> np.ndarray:
    """Solve ``(L + D) X = B`` for an ``(n, k)`` RHS block.

    Column ``j`` of the result is bit-identical to
    ``sptrsv_dbsr_lower(lower, B[:, j], diag)``.
    """
    return _sptrsv_multi(lower, B, diag, forward=True)


def sptrsv_dbsr_upper_multi(upper: DBSRMatrix, B: np.ndarray,
                            diag: np.ndarray | None = None) -> np.ndarray:
    """Solve ``(D + U) X = B`` for an ``(n, k)`` RHS block."""
    return _sptrsv_multi(upper, B, diag, forward=False)


def spmv_dbsr_multi(matrix: DBSRMatrix, X: np.ndarray) -> np.ndarray:
    """``Y = A X`` over an ``(n, k)`` block, one tile pass total.

    Each output row is a *sequential* FMA chain over its tiles in
    storage order — the same rounding sequence as Alg. 4's accumulator
    register and the ``numpy-counted`` twin, so every backend tier is
    bit-identical (``np.add.reduceat``'s pairwise summation is not, by
    ~1 ULP on long rows). Per-RHS results therefore match
    :meth:`DBSRMatrix.matvec` to roundoff, not bitwise.
    """
    X = np.asarray(X)
    require(X.ndim == 2 and X.shape[0] == matrix.n_cols,
            "X block must be (n_cols, k)")
    n, k = X.shape
    bs = matrix.bsize
    dtype = np.result_type(matrix.values, X)
    Xp = np.zeros((k, matrix.n_cols + 2 * bs), dtype=X.dtype)
    Xp[:, bs:bs + matrix.n_cols] = X.T
    if matrix.n_tiles == 0:
        return np.zeros((matrix.n_rows, k), dtype=X.dtype)
    starts = matrix.anchors + bs
    window = starts[:, None] + np.arange(bs)
    # (k, n_tiles, bs): one values load broadcast across the k RHS.
    prod = matrix.values[None, :, :] * Xp[:, window]
    Y = np.zeros((k, matrix.brow, bs), dtype=dtype)
    ntiles = np.diff(matrix.blk_ptr)
    # Tile-position sweep: step ``t`` adds every row's ``t``-th tile at
    # once, so each row still accumulates its tiles strictly in order.
    for t in range(int(ntiles.max(initial=0))):
        rows = np.flatnonzero(ntiles > t)
        Y[:, rows] += prod[:, matrix.blk_ptr[rows] + t]
    return np.ascontiguousarray(Y.reshape(k, -1).T)


def symgs_dbsr_multi(matrix: DBSRMatrix, diag: np.ndarray,
                     X: np.ndarray, B: np.ndarray) -> np.ndarray:
    """One SYMGS sweep (forward + backward GS) over ``(n, k)`` blocks.

    Updates ``X`` in place and returns it; column-identical to
    :func:`repro.kernels.symgs.symgs_dbsr` per RHS.
    """
    B = _check_rhs_block(matrix, B)
    require(X.shape == B.shape, "X/B block shape mismatch")
    n, k = B.shape
    bs = matrix.bsize
    dtype = np.result_type(matrix.values, X)
    Xp = np.zeros((k, n + 2 * bs), dtype=dtype)
    Xp[:, bs:bs + n] = X.T
    b3 = np.ascontiguousarray(B.T).reshape(k, -1, bs)
    d2 = np.asarray(diag).reshape(-1, bs)
    anchors = matrix.anchors + bs
    blk_ptr, values = matrix.blk_ptr, matrix.values
    for forward in (True, False):
        rng = range(matrix.brow) if forward \
            else range(matrix.brow - 1, -1, -1)
        for i in rng:
            rowsum = np.zeros((k, bs), dtype=dtype)
            for t in range(blk_ptr[i], blk_ptr[i + 1]):
                a = anchors[t]
                rowsum += values[t] * Xp[:, a:a + bs]
            xi = Xp[:, bs + i * bs:bs + (i + 1) * bs]
            xi += (b3[:, i, :] - rowsum) / d2[i]
    X[:] = Xp[:, bs:bs + n].T
    return X


def ilu_apply_dbsr_multi(factors, B: np.ndarray) -> np.ndarray:
    """Apply block ILU(0): solve ``L U Z = B`` over an ``(n, k)`` block.

    Two Algorithm-2 sweeps over the factored skeleton of a
    :class:`~repro.ilu.ilu0_dbsr.DBSRILUFactors` — a forward unit-lower
    solve over tiles before ``dia_ptr`` and a backward solve over the
    diagonal + upper tiles — with each tile's value vector loaded once
    per sweep and reused across all ``k`` columns. Column ``j`` of the
    result is bit-identical to
    ``ilu0_apply_dbsr(factors, B[:, j])``: batching reorders no
    floating-point operation within a column.
    """
    m = factors.matrix
    B = _check_rhs_block(m, B)
    n, k = B.shape
    bs = m.bsize
    dtype = np.result_type(m.values, B)
    blk_ptr, values = m.blk_ptr, m.values
    dia_ptr = factors.dia_ptr
    anchors = m.anchors + bs
    b3 = np.ascontiguousarray(B.T).reshape(k, -1, bs)

    # Forward: (L + I) Y = B.
    Yp = np.zeros((k, n + 2 * bs), dtype=dtype)
    for i in range(m.brow):
        acc = b3[:, i, :].astype(dtype, copy=True)   # (k, bs)
        for t in range(int(blk_ptr[i]), int(dia_ptr[i])):
            a = anchors[t]
            acc -= values[t] * Yp[:, a:a + bs]
        Yp[:, bs + i * bs:bs + (i + 1) * bs] = acc

    # Backward: (D + U) Z = Y.
    Zp = np.zeros((k, n + 2 * bs), dtype=dtype)
    for i in range(m.brow - 1, -1, -1):
        acc = Yp[:, bs + i * bs:bs + (i + 1) * bs].copy()
        for t in range(int(dia_ptr[i]) + 1, int(blk_ptr[i + 1])):
            a = anchors[t]
            acc -= values[t] * Zp[:, a:a + bs]
        acc /= values[int(dia_ptr[i])]
        Zp[:, bs + i * bs:bs + (i + 1) * bs] = acc
    return np.ascontiguousarray(Zp[:, bs:bs + n].T)


# Instrumented twins ------------------------------------------------------

def _sptrsv_multi_counted(matrix: DBSRMatrix, B: np.ndarray,
                          engine: VectorEngine,
                          diag: np.ndarray | None,
                          forward: bool) -> np.ndarray:
    """Multi-RHS Algorithm 2 through the instrumented vector engine.

    The op stream makes the amortization observable: per tile there is
    exactly **one** ``load_values`` (charged to ``bytes_values``) and
    ``k`` x-loads/FMAs, so the value-stream bytes of a sweep are
    independent of ``k`` while per-solve value bytes fall as ``1/k``.
    """
    B = _check_rhs_block(matrix, B)
    n, k = B.shape
    bs = matrix.bsize
    require(engine.bsize == bs, "engine width must equal bsize")
    dtype = np.result_type(matrix.values, B)
    Xp = np.zeros((k, n + 2 * bs), dtype=dtype)
    Bk = np.ascontiguousarray(B.T)
    anchors = matrix.anchors + bs
    vals_flat = matrix.values.reshape(-1)
    dp = None if diag is None else np.asarray(diag)
    blk_ptr = matrix.blk_ptr
    engine.counter.bytes_index += blk_ptr.itemsize
    rng = range(matrix.brow) if forward \
        else range(matrix.brow - 1, -1, -1)
    for i in rng:
        engine.counter.bytes_index += blk_ptr.itemsize
        accs = [engine.load(Bk[j], i * bs).astype(dtype)
                for j in range(k)]
        for t in range(blk_ptr[i], blk_ptr[i + 1]):
            engine.counter.bytes_index += (
                matrix.blk_ind.itemsize + matrix.blk_offset.itemsize)
            vec_vals = engine.load_values(vals_flat, t * bs)
            a = int(anchors[t])
            for j in range(k):
                vec_x = engine.load(Xp[j], a)
                accs[j] = engine.fnma(accs[j], vec_vals, vec_x)
        if dp is not None:
            vec_d = engine.load(dp, i * bs)
            accs = [engine.div(acc, vec_d) for acc in accs]
        for j in range(k):
            engine.store(Xp[j], bs + i * bs, accs[j])
    return np.ascontiguousarray(Xp[:, bs:bs + n].T)


def sptrsv_dbsr_lower_multi_counted(lower: DBSRMatrix, B: np.ndarray,
                                    engine: VectorEngine,
                                    diag: np.ndarray | None = None
                                    ) -> np.ndarray:
    """Instrumented multi-RHS forward solve (one value load per tile)."""
    return _sptrsv_multi_counted(lower, B, engine, diag, forward=True)


def sptrsv_dbsr_upper_multi_counted(upper: DBSRMatrix, B: np.ndarray,
                                    engine: VectorEngine,
                                    diag: np.ndarray | None = None
                                    ) -> np.ndarray:
    """Instrumented multi-RHS backward solve."""
    return _sptrsv_multi_counted(upper, B, engine, diag, forward=False)


def spmv_dbsr_multi_counted(matrix: DBSRMatrix, X: np.ndarray,
                            engine: VectorEngine) -> np.ndarray:
    """Instrumented multi-RHS DBSR SpMV twin of :func:`spmv_dbsr_multi`.

    Per tile one ``load_values`` serves all ``k`` columns; tallies match
    :func:`repro.kernels.counts.spmv_dbsr_multi_counts` exactly. The
    accumulator starts from an explicit zero register (the FMA chain of
    Algorithm 4), so results equal the fast kernel's ``reduceat`` sums
    under ``np.array_equal`` — the only representable difference is the
    sign of zero on single-tile rows.
    """
    X = np.asarray(X)
    require(X.ndim == 2 and X.shape[0] == matrix.n_cols,
            "X block must be (n_cols, k)")
    n, k = X.shape
    bs = matrix.bsize
    require(engine.bsize == bs, "engine width must equal bsize")
    dtype = np.result_type(matrix.values, X)
    Xp = np.zeros((k, matrix.n_cols + 2 * bs), dtype=X.dtype)
    Xp[:, bs:bs + matrix.n_cols] = X.T
    anchors = matrix.anchors + bs
    vals_flat = matrix.values.reshape(-1)
    blk_ptr = matrix.blk_ptr
    Yk = np.zeros((k, matrix.brow * bs), dtype=dtype)
    engine.counter.bytes_index += blk_ptr.itemsize
    for i in range(matrix.brow):
        engine.counter.bytes_index += blk_ptr.itemsize
        accs = [np.zeros(bs, dtype=dtype) for _ in range(k)]
        for t in range(blk_ptr[i], blk_ptr[i + 1]):
            engine.counter.bytes_index += (
                matrix.blk_ind.itemsize + matrix.blk_offset.itemsize)
            vec_vals = engine.load_values(vals_flat, t * bs)
            a = int(anchors[t])
            for j in range(k):
                vec_x = engine.load(Xp[j], a)
                accs[j] = engine.fma(accs[j], vec_vals, vec_x)
        for j in range(k):
            engine.store(Yk[j], i * bs, accs[j])
    return np.ascontiguousarray(Yk[:, :matrix.n_rows].T)


def ilu_apply_dbsr_multi_counted(factors, B: np.ndarray,
                                 engine: VectorEngine) -> np.ndarray:
    """Instrumented multi-RHS ILU(0) application twin.

    Mirrors :func:`ilu_apply_dbsr_multi` operation for operation — one
    ``load_values`` per tile serves all ``k`` columns in each sweep,
    and the backward sweep charges the diagonal tile's value load
    before the ``k`` lane divisions — so results are **bitwise** equal
    and tallies match
    :func:`repro.kernels.counts.ilu_apply_dbsr_multi_counts` exactly.
    """
    m = factors.matrix
    B = _check_rhs_block(m, B)
    require(bool(np.all(factors.dia_ptr >= 0)),
            "every block-row needs a diagonal tile")
    n, k = B.shape
    bs = m.bsize
    require(engine.bsize == bs, "engine width must equal bsize")
    dtype = np.result_type(m.values, B)
    Bk = np.ascontiguousarray(B.T)
    vals_flat = m.values.reshape(-1)
    anchors = m.anchors + bs
    blk_ptr = m.blk_ptr
    dia_ptr = factors.dia_ptr

    # Forward: (L + I) Y = B.
    Yp = np.zeros((k, n + 2 * bs), dtype=dtype)
    engine.counter.bytes_index += blk_ptr.itemsize
    for i in range(m.brow):
        engine.counter.bytes_index += (
            blk_ptr.itemsize + dia_ptr.itemsize)
        accs = [engine.load(Bk[j], i * bs).astype(dtype)
                for j in range(k)]
        for t in range(int(blk_ptr[i]), int(dia_ptr[i])):
            engine.counter.bytes_index += (
                m.blk_ind.itemsize + m.blk_offset.itemsize)
            vec_vals = engine.load_values(vals_flat, t * bs)
            a = int(anchors[t])
            for j in range(k):
                vec_y = engine.load(Yp[j], a)
                accs[j] = engine.fnma(accs[j], vec_vals, vec_y)
        for j in range(k):
            engine.store(Yp[j], bs + i * bs, accs[j])

    # Backward: (D + U) Z = Y.
    Zp = np.zeros((k, n + 2 * bs), dtype=dtype)
    engine.counter.bytes_index += blk_ptr.itemsize
    for i in range(m.brow - 1, -1, -1):
        engine.counter.bytes_index += (
            blk_ptr.itemsize + dia_ptr.itemsize)
        accs = [engine.load(Yp[j], bs + i * bs).astype(dtype)
                for j in range(k)]
        for t in range(int(dia_ptr[i]) + 1, int(blk_ptr[i + 1])):
            engine.counter.bytes_index += (
                m.blk_ind.itemsize + m.blk_offset.itemsize)
            vec_vals = engine.load_values(vals_flat, t * bs)
            a = int(anchors[t])
            for j in range(k):
                vec_z = engine.load(Zp[j], a)
                accs[j] = engine.fnma(accs[j], vec_vals, vec_z)
        vec_d = engine.load_values(vals_flat, int(dia_ptr[i]) * bs)
        for j in range(k):
            accs[j] = engine.div(accs[j], vec_d)
            engine.store(Zp[j], bs + i * bs, accs[j])
    return np.ascontiguousarray(Zp[:, bs:bs + n].T)


def symgs_dbsr_multi_counted(matrix: DBSRMatrix, diag: np.ndarray,
                             X: np.ndarray, B: np.ndarray,
                             engine: VectorEngine) -> np.ndarray:
    """Instrumented multi-RHS SYMGS twin of :func:`symgs_dbsr_multi`.

    Mirrors the fast kernel's floating-point order exactly — the row
    sum accumulates through FMAs from a zero register and the update is
    ``x += (b - rowsum) / d`` — so batched results are **bitwise**
    equal to :func:`symgs_dbsr_multi`, and tallies match
    :func:`repro.kernels.counts.symgs_dbsr_multi_counts` exactly.

    Like :func:`repro.kernels.symgs_counted.symgs_dbsr_counted`, the
    diagonal tile's contiguous x window *is* the block-row's own x
    slice, so the add-back correction needs no extra load. The
    ``b - rowsum`` subtraction happens on register-resident operands
    (both were just produced by engine ops) and is deliberately left
    untallied, matching the closed form, which models the memory
    streams and the FMA/divide/add mix.
    """
    B = _check_rhs_block(matrix, B)
    require(X.shape == B.shape, "X/B block shape mismatch")
    require(bool(np.all(matrix.dia_ptr >= 0)),
            "every block-row needs a diagonal tile")
    n, k = B.shape
    bs = matrix.bsize
    require(engine.bsize == bs, "engine width must equal bsize")
    dtype = np.result_type(matrix.values, X)
    Xp = np.zeros((k, n + 2 * bs), dtype=dtype)
    Xp[:, bs:bs + n] = X.T
    Bk = np.ascontiguousarray(B.T)
    dp = np.asarray(diag)
    anchors = matrix.anchors + bs
    vals_flat = matrix.values.reshape(-1)
    blk_ptr = matrix.blk_ptr
    dia_ptr = matrix.dia_ptr
    for forward in (True, False):
        rng = range(matrix.brow) if forward \
            else range(matrix.brow - 1, -1, -1)
        engine.counter.bytes_index += blk_ptr.itemsize
        for i in rng:
            engine.counter.bytes_index += blk_ptr.itemsize
            rowsums = [np.zeros(bs, dtype=dtype) for _ in range(k)]
            xi_vecs = [None] * k
            for t in range(int(blk_ptr[i]), int(blk_ptr[i + 1])):
                engine.counter.bytes_index += (
                    matrix.blk_ind.itemsize + matrix.blk_offset.itemsize)
                vec_vals = engine.load_values(vals_flat, t * bs)
                a = int(anchors[t])
                for j in range(k):
                    vec_x = engine.load(Xp[j], a)
                    if t == dia_ptr[i]:
                        xi_vecs[j] = vec_x.copy()
                    rowsums[j] = engine.fma(rowsums[j], vec_vals, vec_x)
            vec_d = engine.load(dp, i * bs)
            for j in range(k):
                bj = engine.load(Bk[j], i * bs)
                corr = engine.div(bj - rowsums[j], vec_d)
                engine.store(Xp[j], bs + i * bs,
                             engine.add(xi_vecs[j], corr))
    X[:] = Xp[:, bs:bs + n].T
    return X
