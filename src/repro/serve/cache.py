"""Structural plan cache — compile once per structure, serve forever.

A :class:`PlanCache` is a thread-safe LRU map from structural
fingerprints (:func:`repro.serve.plan.structural_fingerprint`) to
compiled :class:`~repro.serve.plan.SolvePlan` objects. It is the
serving layer's realization of the paper's amortization argument: the
expensive reorder/convert/autotune pipeline runs on the first request
of a structure and every subsequent request pays only the kernel cost.

Counters (hits, misses, evictions, compiles, compile seconds) make the
amortization measurable — ``repro serve-bench`` reports the hit rate
and the per-request amortized setup time straight from
:meth:`PlanCache.stats`.

Autotune picks can optionally be **persisted** across processes: with a
``persist_path``, every autotuned ``bsize`` is recorded under its
fingerprint in a small JSON file, and later processes (whose caches
start cold) skip the autotune sweep on their first compile of that
structure. Only the pick is persisted, never the plan itself — matrices
re-derive deterministically from the structure.

Two serving-tier extensions share the map:

* **ILU plans** (:class:`~repro.serve.ilu_plan.ILUPlan`) cache under
  their domain-tagged structure hash via :meth:`get_or_compile_ilu`,
  and time-dependent coefficients on a fixed structure take
  :meth:`refresh_values` — a value-only repack that reuses the stored
  permutation/tiling/autotune pick and only re-runs the numeric
  factorization. Invalidation stays **fingerprint-scoped** throughout:
  structural drift on one structure never flushes siblings.
* **Generation-counted invalidation** closes the resurrection race: an
  :meth:`invalidate` landing while a compile for the same fingerprint
  is in flight bumps that fingerprint's generation, and the compile's
  eventual insert is dropped (counted in ``stale_drops``) instead of
  resurrecting the just-poisoned entry.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict

from repro.grids.grid import StructuredGrid
from repro.observe import trace
from repro.serve.plan import (
    PlanConfig,
    SolvePlan,
    compile_plan,
    structural_fingerprint,
)
from repro.utils.validation import check_positive, require

#: Pick-file schema. v2 added the plan's requested ``backend`` to each
#: entry (the fingerprint keying changed with it); files carrying any
#: other schema string — including the old implicit v1 — are ignored
#: with a warning rather than silently half-read.
PICKS_SCHEMA = "dbsr-repro/autotune-picks/v2"


class PlanCache:
    """Thread-safe LRU cache of compiled solve plans.

    Parameters
    ----------
    capacity:
        Maximum number of resident plans; the least-recently-used plan
        is evicted when a compile would exceed it.
    persist_path:
        Optional JSON file remembering autotuned ``bsize`` picks per
        fingerprint across processes. Missing or corrupt files are
        treated as empty (persistence must never break serving).

    Notes
    -----
    Concurrent :meth:`get_or_compile` calls for the *same* fingerprint
    serialize on a per-fingerprint lock so a structure is compiled
    exactly once; calls for different fingerprints compile in parallel.
    """

    def __init__(self, capacity: int = 8,
                 persist_path: str | None = None):
        self.capacity = check_positive(capacity, "capacity")
        self.persist_path = persist_path
        self._plans: OrderedDict[str, SolvePlan] = OrderedDict()
        self._lock = threading.Lock()
        #: fp -> [lock, refcount]; entries exist only while compiles
        #: for that fingerprint are in flight (see get_or_compile), so
        #: the map is bounded by concurrency, not by distinct
        #: structures ever seen.
        self._compile_locks: dict[str, list] = {}
        #: fp -> invalidation generation. Entries exist only while a
        #: compile/refresh for that fingerprint is in flight (same
        #: lifetime as ``_compile_locks``): an invalidate with nothing
        #: in flight has nothing to race, so the map stays bounded.
        self._generations: dict[str, int] = {}
        #: Serializes pick-file writes without blocking ``_lock``.
        self._persist_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compiles = 0
        self.invalidations = 0
        self.compile_seconds = 0.0
        self.refreshes = 0
        self.refresh_seconds = 0.0
        self.stale_drops = 0
        self._picks = self._load_picks()

    # Persistence -------------------------------------------------------
    def _load_picks(self) -> dict:
        """Load the persisted picks, validating the file's schema.

        A file written under a different schema (an older release, or
        some unrelated JSON that happens to carry an ``autotune_picks``
        key) used to be silently half-read, feeding stale ``bsize``
        hints into freshly keyed fingerprints. Now any schema mismatch
        discards the file with a warning — serving proceeds with a cold
        pick store and simply re-autotunes.
        """
        if not self.persist_path or not os.path.exists(self.persist_path):
            return {}
        try:
            with open(self.persist_path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) \
                or data.get("schema") != PICKS_SCHEMA:
            import warnings

            found = data.get("schema") if isinstance(data, dict) \
                else None
            warnings.warn(
                f"ignoring autotune pick file {self.persist_path!r}: "
                f"schema {found!r} != {PICKS_SCHEMA!r}",
                RuntimeWarning, stacklevel=2)
            return {}
        picks = data.get("autotune_picks", {})
        if not isinstance(picks, dict):
            return {}
        return {fp: entry for fp, entry in picks.items()
                if isinstance(entry, dict) and "bsize" in entry}

    def _save_picks(self, picks: dict) -> None:
        """Atomically persist a picks *snapshot*.

        Runs under ``_persist_lock`` only — never ``_lock`` — so slow
        file I/O cannot stall concurrent lookups. Callers snapshot
        ``self._picks`` under ``_lock`` and pass the copy here.
        """
        if not self.persist_path:
            return
        blob = {
            "schema": PICKS_SCHEMA,
            "autotune_picks": picks,
        }
        tmp = f"{self.persist_path}.tmp"
        with self._persist_lock:
            with open(tmp, "w") as fh:
                json.dump(blob, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.persist_path)

    def persisted_bsize(self, fingerprint: str) -> int | None:
        """The persisted autotune pick for a fingerprint, if any."""
        with self._lock:
            entry = self._picks.get(fingerprint)
        return int(entry["bsize"]) if entry else None

    # Core map ----------------------------------------------------------
    def get(self, fingerprint: str) -> SolvePlan | None:
        """Look up a plan; counts a hit or miss and refreshes LRU."""
        with self._lock:
            plan = self._plans.get(fingerprint)
            if plan is None:
                self.misses += 1
            else:
                self._plans.move_to_end(fingerprint)
                self.hits += 1
        trace.event("cache.hit" if plan is not None else "cache.miss",
                    fingerprint=fingerprint[:12])
        return plan

    def peek(self, fingerprint: str) -> SolvePlan | None:
        """Counter-free lookup: no hit/miss accounting, no LRU touch.

        For observers (the sharded service refreshing a healed plan,
        tests) that must not perturb the hit-rate statistics.
        """
        with self._lock:
            return self._plans.get(fingerprint)

    def put(self, plan: SolvePlan) -> None:
        """Insert a plan, evicting LRU entries beyond capacity."""
        evicted = []
        with self._lock:
            self._plans[plan.fingerprint] = plan
            self._plans.move_to_end(plan.fingerprint)
            while len(self._plans) > self.capacity:
                fp, _ = self._plans.popitem(last=False)
                self.evictions += 1
                evicted.append(fp)
        for fp in evicted:
            trace.event("cache.evict", fingerprint=fp[:12])

    def invalidate(self, fingerprint: str) -> bool:
        """Drop a (poisoned) plan; the next request recompiles it.

        Returns whether an entry was actually removed. Used by the
        self-healing fallback chain
        (:class:`repro.resilience.fallback.FallbackChain`) when a
        cached plan fails validation.

        Scope is strictly this fingerprint: siblings keep their entries
        *and* their hit-rate statistics. If a compile or refresh for
        this fingerprint is in flight, its generation is bumped so the
        concurrent worker's eventual ``put`` is dropped instead of
        resurrecting the plan being poisoned right now.
        """
        with self._lock:
            removed = self._plans.pop(fingerprint, None) is not None
            if removed:
                self.invalidations += 1
            if fingerprint in self._compile_locks:
                self._generations[fingerprint] = \
                    self._generations.get(fingerprint, 0) + 1
        if removed:
            trace.event("cache.invalidate", fingerprint=fingerprint[:12])
        return removed

    def verify(self, fingerprint: str | None = None,
               evict_bad: bool = True) -> list:
        """Integrity-check cached plans; returns poisoned fingerprints.

        Runs the structural + digest validators of
        :mod:`repro.resilience.guardrails` over one plan (or all of
        them) and, with ``evict_bad``, invalidates every plan that
        fails so it recompiles on next use.
        """
        from repro.resilience.errors import PlanValidationError
        from repro.resilience.guardrails import validate_plan

        with self._lock:
            fps = [fingerprint] if fingerprint is not None \
                else list(self._plans)
        bad = []
        for fp in fps:
            with self._lock:
                plan = self._plans.get(fp)
            if plan is None:
                continue
            try:
                validate_plan(plan, level="integrity")
            except PlanValidationError:
                bad.append(fp)
                if evict_bad:
                    self.invalidate(fp)
        return bad

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._plans

    # Per-fingerprint serialization --------------------------------------
    def _acquire_flock(self, fp: str) -> list:
        """Refcount-acquire the per-fingerprint compile/refresh lock.

        The entry lives exactly as long as compiles for this
        fingerprint are in flight, so ``_compile_locks`` (and the
        generation map scoped to it) stays bounded by live compiles
        instead of growing with every structure ever requested.
        """
        with self._lock:
            entry = self._compile_locks.get(fp)
            if entry is None:
                entry = self._compile_locks[fp] = [threading.Lock(), 0]
            entry[1] += 1
        return entry

    def _release_flock(self, fp: str, entry: list) -> None:
        with self._lock:
            entry[1] -= 1
            if entry[1] == 0:
                self._compile_locks.pop(fp, None)
                self._generations.pop(fp, None)

    def _guarded_put(self, plan, generation: int) -> bool:
        """Insert unless the fingerprint was invalidated meanwhile.

        ``generation`` is the fingerprint's invalidation generation
        snapshotted *before* the compile/repack started. A concurrent
        :meth:`invalidate` bumps it, in which case this plan is stale —
        built from state the invalidator declared poisoned — and must
        not resurrect the entry. Returns whether the plan was inserted.
        """
        with self._lock:
            if self._generations.get(plan.fingerprint, 0) != generation:
                self.stale_drops += 1
                stale = True
            else:
                stale = False
        if stale:
            trace.event("cache.stale_put_dropped",
                        fingerprint=plan.fingerprint[:12])
            return False
        self.put(plan)
        return True

    # Compile-through ----------------------------------------------------
    def get_or_compile(self, grid: StructuredGrid, stencil,
                       config: PlanConfig | None = None
                       ) -> tuple[SolvePlan, bool]:
        """Return ``(plan, was_hit)`` for a structure, compiling on miss.

        The compile (and its counters) happens under a per-fingerprint
        lock: N concurrent first requests of one structure cost one
        compile, not N.
        """
        config = config if config is not None else PlanConfig()
        fp = structural_fingerprint(grid, stencil, config)
        plan = self.get(fp)
        if plan is not None:
            return plan, True
        entry = self._acquire_flock(fp)
        try:
            with entry[0]:
                return self._compile_locked(grid, stencil, config, fp)
        finally:
            self._release_flock(fp, entry)

    def _compile_locked(self, grid, stencil, config,
                        fp: str) -> tuple[SolvePlan, bool]:
        """Compile-or-coalesce under the per-fingerprint lock."""
        # Double-check: another thread may have compiled meanwhile.
        # Reclassify this request's miss as a hit — it is served
        # from cache, so each get_or_compile contributes exactly
        # one hit-or-miss event.
        with self._lock:
            plan = self._plans.get(fp)
            if plan is not None:
                self._plans.move_to_end(fp)
                self.misses -= 1
                self.hits += 1
            generation = self._generations.get(fp, 0)
        if plan is not None:
            trace.event("cache.coalesced_hit", fingerprint=fp[:12])
            return plan, True
        hint = self.persisted_bsize(fp) if config.bsize is None \
            else None
        t0 = time.perf_counter()
        plan = compile_plan(grid, stencil, config, bsize_hint=hint)
        seconds = time.perf_counter() - t0
        self._record_compile(fp, plan, seconds)
        # Guarded against a concurrent invalidate: inserting would
        # resurrect the plan the invalidator just poisoned. The caller
        # still gets the freshly compiled plan either way.
        self._guarded_put(plan, generation)
        return plan, False

    def _record_compile(self, fp: str, plan, seconds: float) -> None:
        """Count a compile and persist its autotune pick, if any."""
        snapshot = None
        with self._lock:
            self.compiles += 1
            self.compile_seconds += seconds
            if plan.autotuned:
                self._picks[fp] = {
                    "bsize": int(plan.bsize),
                    "block_dims": list(plan.block_dims),
                    "grid": list(plan.grid.dims),
                    "stencil": plan.stencil.name,
                    "backend": plan.config.backend,
                }
                # Snapshot under the lock, write outside it: file
                # I/O must never block concurrent lookups.
                snapshot = dict(self._picks)
        if snapshot is not None:
            self._save_picks(snapshot)

    # ILU compile-through ------------------------------------------------
    def get_or_compile_ilu(self, grid: StructuredGrid, stencil,
                           config: PlanConfig | None = None,
                           values=None, expect_digest: str | None = None
                           ) -> tuple:
        """Return ``(ilu_plan, was_hit)``; structure hits may repack.

        The split fingerprint resolves here: the *structure hash* keys
        the lookup, the *value digest* decides what a hit means.

        * Digest matches (or the caller sent no values) — serve the
          cached factors as-is.
        * ``values`` provided with a different digest — the structure
          is unchanged, so this is still a hit, but the numeric factors
          are refreshed through the cheap :meth:`refresh_values` repack
          (permutation/tiling/autotune all reused).
        * ``expect_digest`` declared without values and the cached plan
          was factorized from something else — raise
          :class:`~repro.resilience.errors.StaleValuesError`; the
          service must never silently solve with old coefficients.
        """
        import numpy as np

        from repro.serve.ilu_plan import (
            ilu_structural_fingerprint,
            value_digest,
        )

        config = config if config is not None else PlanConfig()
        fp = ilu_structural_fingerprint(grid, stencil, config)
        vd = None
        if values is not None:
            values = np.asarray(values,
                                dtype=config.np_dtype).reshape(-1)
            vd = value_digest(values)
            require(expect_digest is None or expect_digest == vd,
                    "expect_digest contradicts the provided values")
        plan = self.get(fp)
        if plan is not None:
            try:
                return self._serve_ilu_hit(plan, fp, values, vd,
                                           expect_digest), True
            except KeyError:
                # LRU-evicted or invalidated between the get() and the
                # repack's residency re-check (plausible under capacity
                # pressure) — recompile below instead of leaking the
                # KeyError to the caller and failing the request.
                pass
        entry = self._acquire_flock(fp)
        try:
            with entry[0]:
                return self._compile_ilu_locked(
                    grid, stencil, config, fp, values, vd, expect_digest,
                    counted_hit=plan is not None)
        finally:
            self._release_flock(fp, entry)

    def _serve_ilu_hit(self, plan, fp: str, values, vd,
                       expect_digest: str | None,
                       flock_held: bool = False):
        """Verify-on-hit: digest compare, then repack or raise.

        ``flock_held`` says the caller already holds this fingerprint's
        compile/refresh lock (``_compile_ilu_locked``'s coalesced-hit
        path); the repack then runs its lock-assumed body directly —
        re-entering :meth:`refresh_values` would self-deadlock on the
        non-reentrant per-fingerprint lock.
        """
        from repro.resilience.errors import StaleValuesError

        if vd is not None and vd != plan.value_digest:
            if flock_held:
                plan, _ = self._refresh_locked(fp, values)
            else:
                plan, _ = self.refresh_values(fp, values)
            return plan
        if expect_digest is not None \
                and expect_digest != plan.value_digest:
            raise StaleValuesError(fp, expect_digest, plan.value_digest)
        return plan

    def _compile_ilu_locked(self, grid, stencil, config, fp: str,
                            values, vd, expect_digest: str | None,
                            counted_hit: bool = False) -> tuple:
        """ILU compile-or-coalesce under the per-fingerprint lock.

        ``counted_hit`` says the caller's lookup already counted a hit
        (the serve-on-hit path fell through here on a KeyError), so a
        coalesced hit must not reclassify a miss that never happened.
        """
        from repro.serve.ilu_plan import compile_ilu_plan

        with self._lock:
            plan = self._plans.get(fp)
            if plan is not None:
                self._plans.move_to_end(fp)
                if not counted_hit:
                    self.misses -= 1
                    self.hits += 1
                    counted_hit = True
        if plan is not None:
            trace.event("cache.coalesced_hit", fingerprint=fp[:12])
            try:
                return self._serve_ilu_hit(plan, fp, values, vd,
                                           expect_digest,
                                           flock_held=True), True
            except KeyError:
                # Invalidated between the double-check and the repack's
                # residency re-check; fall through to a cold compile.
                pass
        if counted_hit:
            # The lookup was counted as a hit but ends in a compile —
            # keep one-hit-or-miss-per-request accounting honest.
            with self._lock:
                self.hits -= 1
                self.misses += 1
        with self._lock:
            generation = self._generations.get(fp, 0)
        hint = self.persisted_bsize(fp) if config.bsize is None \
            else None
        t0 = time.perf_counter()
        plan = compile_ilu_plan(grid, stencil, config, values=values,
                                bsize_hint=hint)
        seconds = time.perf_counter() - t0
        self._record_compile(fp, plan, seconds)
        self._guarded_put(plan, generation)
        if expect_digest is not None \
                and expect_digest != plan.value_digest:
            from repro.resilience.errors import StaleValuesError

            # A cold compile from canonical values cannot satisfy the
            # declared snapshot; the plan stays cached (a resubmit
            # carrying values repacks it) but this request must fail
            # typed rather than solve with the wrong coefficients.
            raise StaleValuesError(fp, expect_digest, plan.value_digest)
        return plan, False

    def refresh_values(self, fingerprint: str, values) -> tuple:
        """Value-only repack of a cached ILU plan; ``(plan, repacked)``.

        The incremental-recompilation fast path: detects an unchanged
        numeric snapshot by digest (returning the cached plan
        untouched), otherwise re-scatters the DBSR value arrays and
        re-runs the numeric ILU(0) factorization under the same
        per-fingerprint lock compiles use — the permutation, tiling and
        autotune pick are all reused, never recomputed. Raises
        ``KeyError`` when the fingerprint is not resident (repack needs
        a skeleton; callers fall back to :meth:`get_or_compile_ilu`).
        """
        import numpy as np

        from repro.serve.ilu_plan import value_digest

        plan = self.peek(fingerprint)
        if plan is None:
            raise KeyError(
                f"no cached plan for {fingerprint[:12]}…; repack needs "
                f"a resident structure (use get_or_compile_ilu)")
        require(getattr(plan, "kind", "") == "ilu",
                f"plan {fingerprint[:12]}… is not an ILU plan")
        values = np.asarray(values,
                            dtype=plan.config.np_dtype).reshape(-1)
        if value_digest(values) == plan.value_digest:
            return plan, False
        entry = self._acquire_flock(fingerprint)
        try:
            with entry[0]:
                return self._refresh_locked(fingerprint, values)
        finally:
            self._release_flock(fingerprint, entry)

    def _refresh_locked(self, fingerprint: str, values) -> tuple:
        """Repack body; the caller holds this fingerprint's flock.

        Residency is re-checked *under* the lock and a ``KeyError``
        raised when the plan is gone — an invalidate or eviction
        landing between the caller's lookup and the lock acquisition
        must never be papered over by repacking from the caller's stale
        plan object (that would resurrect a just-poisoned entry and
        violate the documented not-resident contract). The generation
        is snapshotted *before* that re-check: an invalidate landing
        after the snapshot bumps it (the flock entry is live) and
        :meth:`_guarded_put` drops the repack; one landing before it
        already evicted the plan and trips the KeyError.
        """
        import numpy as np

        from repro.serve.ilu_plan import repack_ilu_plan, value_digest

        with self._lock:
            generation = self._generations.get(fingerprint, 0)
        current = self.peek(fingerprint)
        if current is None:
            raise KeyError(
                f"no cached plan for {fingerprint[:12]}…; it was "
                f"evicted or invalidated before the repack started")
        require(getattr(current, "kind", "") == "ilu",
                f"plan {fingerprint[:12]}… is not an ILU plan")
        values = np.asarray(values,
                            dtype=current.config.np_dtype).reshape(-1)
        # A concurrent refresh may have installed this exact snapshot
        # while we waited on the lock.
        if value_digest(values) == current.value_digest:
            return current, False
        t0 = time.perf_counter()
        fresh = repack_ilu_plan(current, values)
        seconds = time.perf_counter() - t0
        with self._lock:
            self.refreshes += 1
            self.refresh_seconds += seconds
        self._guarded_put(fresh, generation)
        return fresh, True

    # Reporting ----------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up yet).

        Reads both counters under ``_lock`` so a concurrent
        miss→hit reclassification cannot be observed half-applied.
        """
        with self._lock:
            hits, total = self.hits, self.hits + self.misses
        return hits / total if total else 0.0

    def stats(self) -> dict:
        """Machine-readable counter snapshot.

        The whole snapshot is taken under one ``_lock`` acquisition —
        every counter pair is mutually consistent (no torn reads), and
        ``hit_rate`` is derived from the snapshot itself rather than
        re-read.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
            snap = {
                "capacity": self.capacity,
                "size": len(self._plans),
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses)
                if hits + misses else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "compiles": self.compiles,
                "compile_seconds": self.compile_seconds,
                "refreshes": self.refreshes,
                "refresh_seconds": self.refresh_seconds,
                "stale_drops": self.stale_drops,
                "persisted_picks": len(self._picks),
            }
        return snap
