"""ILU(0) serving plans — the paper's second workload, made cacheable.

A :class:`ILUPlan` is to :func:`repro.ilu.ilu0_dbsr.ilu0_factorize_dbsr`
what :class:`~repro.serve.plan.SolvePlan` is to the triangular kernels:
the one-time reorder + DBSR conversion + numeric factorization reified
as a sealed, fingerprinted value, so a long-running service pays the
setup once per *structure* and serves every later preconditioner
application (`L U z = r`) from batched kernels.

The new twist over :class:`SolvePlan` is the **split fingerprint**:

* the *structure hash* — :func:`ilu_structural_fingerprint`, derived
  from the same v2 payload as
  :func:`~repro.serve.plan.structural_fingerprint` plus an ILU workload
  domain tag (so an ILU plan never collides with a triangular plan of
  the same geometry in one :class:`~repro.serve.cache.PlanCache`) —
  keys the cache;
* the *value digest* — :func:`value_digest` over the raw coefficient
  bytes — seals *which* numeric snapshot the factors were computed
  from.

Time-dependent coefficients on a fixed structure hit the cheap path:
:func:`repack_ilu_plan` reuses the stored permutation, tiling and
autotune pick, scatters the new values through precomputed exact
scatter maps (derived once at cold compile from a tagged pass through
the very same ``apply_matrix``/``from_csr`` pipeline, so the repack is
**bitwise identical** to a cold compile with the same values), and only
re-runs the numeric factorization.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil
from repro.ilu.ilu0_dbsr import (
    DBSRILUFactors,
    build_ilu0_schedule,
    ilu0_factorize_dbsr,
    ilu0_refactorize_dbsr,
)
from repro.observe import trace
from repro.resilience import hooks
from repro.resilience.guardrails import seal_plan, validate_plan
from repro.serve.plan import (
    PlanConfig,
    _resolve_stencil,
    structural_fingerprint,
)
from repro.utils.validation import check_positive, require

#: Ops an ILU plan can execute (see :meth:`ILUPlan.execute`).
ILU_OPS = ("ilu_apply",)

#: Workload domain folded into the structure hash so ILU plans and
#: triangular :class:`SolvePlan`\ s of the same geometry never share a
#: cache key.
_ILU_DOMAIN = "ilu0/v1"

#: Scatter-map sentinels: lanes that carry no source coefficient.
_PAD = -1       # DBSR zero-padding lane / never a CSR entry
_VIRTUAL = -2   # virtual padding row's unit diagonal (always 1.0)


def ilu_structural_fingerprint(grid: StructuredGrid,
                               stencil, config: PlanConfig) -> str:
    """Structure hash of an ILU plan (domain-tagged v2 fingerprint)."""
    base = structural_fingerprint(grid, stencil, config)
    return hashlib.sha256(
        f"{base}/{_ILU_DOMAIN}".encode("ascii")).hexdigest()


def value_digest(values: np.ndarray) -> str:
    """SHA-256 over a coefficient array's raw bytes.

    Callers normalize dtype first (the serve path stores coefficients
    in the plan config's dtype), so equal snapshots always hash equal.
    """
    arr = np.ascontiguousarray(values)
    return hashlib.sha256(arr.view(np.uint8)).hexdigest()


@dataclass
class ILUPlan:
    """One structure's compiled + factorized ILU(0) artifacts.

    Attributes
    ----------
    fingerprint:
        The :func:`ilu_structural_fingerprint` this plan answers to.
    value_digest:
        :func:`value_digest` of ``values_src`` — the numeric snapshot
        the factors were computed from.
    values_src:
        Unpermuted assembly-order coefficients (the repack input; also
        what healing recompiles from).
    matrix:
        Permuted + padded operator in CSR with the current values (the
        CSR fallback rung and residual guards read this).
    factors:
        :class:`~repro.ilu.ilu0_dbsr.DBSRILUFactors` sharing the DBSR
        skeleton.
    csr_scatter, dbsr_scatter:
        Exact value scatter maps (source index per stored entry/lane;
        sentinels for padding and virtual unit diagonals) that make
        :func:`repack_ilu_plan` bitwise-identical to a cold compile.
    schedule:
        :class:`~repro.ilu.ilu0_dbsr.ILU0Schedule` — the factorization's
        tile matches resolved once at cold compile, so repacks replay
        only the numeric ops (bitwise-identical to the full loop).
    repack_seconds, refreshed:
        Cost of the last value-only repack and whether this plan object
        came from one (cold compiles report 0.0 / False).
    """

    fingerprint: str
    value_digest: str
    config: PlanConfig
    grid: StructuredGrid
    stencil: Stencil
    bsize: int
    block_dims: tuple
    ordering: object
    matrix: CSRMatrix
    factors: DBSRILUFactors
    values_src: np.ndarray
    csr_scatter: np.ndarray
    dbsr_scatter: np.ndarray
    schedule: object = field(default=None, repr=False, compare=False)
    backend: object = field(default=None, repr=False, compare=False)
    compile_seconds: float = 0.0
    repack_seconds: float = 0.0
    refreshed: bool = False
    autotuned: bool = field(default=False)
    integrity: dict | None = field(default=None, repr=False,
                                   compare=False)

    #: Dispatch tag read by the cache, fallback chain and guardrails.
    kind = "ilu"

    @property
    def n(self) -> int:
        """Original (unpadded) problem size."""
        return self.ordering.n_orig

    @property
    def n_padded(self) -> int:
        return self.ordering.n_padded

    # Vector mapping (mirrors SolvePlan) --------------------------------
    def extend(self, B: np.ndarray) -> np.ndarray:
        """Original-order ``(n,)`` or ``(n, k)`` block -> padded order."""
        B = np.asarray(B)
        single = B.ndim == 1
        cols = B.reshape(self.n, -1)
        out = np.zeros((self.n_padded, cols.shape[1]), dtype=cols.dtype)
        out[self.ordering.old_to_new, :] = cols
        return out[:, 0] if single else out

    def restrict(self, B: np.ndarray) -> np.ndarray:
        """Padded-order block -> original order (inverse of extend)."""
        B = np.asarray(B)
        single = B.ndim == 1
        cols = B.reshape(self.n_padded, -1)
        out = cols[self.ordering.old_to_new, :]
        return out[:, 0] if single else out

    # Execution ---------------------------------------------------------
    def _backend(self):
        if self.backend is None:
            from repro.backends import resolve_backend

            self.backend = resolve_backend(self.config.backend)
        return self.backend

    def execute(self, op: str, B: np.ndarray) -> np.ndarray:
        """Apply the preconditioner (``op`` must be ``"ilu_apply"``)."""
        require(op in ILU_OPS, f"unknown op {op!r}; known: {ILU_OPS}")
        return self.apply(B)

    def apply(self, B: np.ndarray) -> np.ndarray:
        """Solve ``L U Z = B`` over a ``(n,)`` vector or ``(n, k)`` block.

        Dispatch goes through the plan's resolved kernel backend; every
        tier is bit-identical per column to
        :func:`repro.ilu.ilu0_csr.ilu0_apply_csr` run against the
        scalar ILU(0) factorization of the same permuted operator (the
        serve ILU suite pins this across rungs, backends and ``k``).
        """
        backend = self._backend()
        with trace.span("plan.execute", op="ilu_apply",
                        strategy="dbsr", backend=backend.name,
                        fingerprint=self.fingerprint[:12]) as sp:
            hooks.fire("plan.execute", strategy="dbsr", op="ilu_apply",
                       fingerprint=self.fingerprint)
            B = np.asarray(B, dtype=self.config.np_dtype)
            single = B.ndim == 1
            require(B.shape[0] == self.n,
                    f"rhs length {B.shape[0]} != problem size {self.n}")
            Bp = self.extend(B.reshape(self.n, -1))
            if sp is not None:
                sp.attrs["k"] = int(Bp.shape[1])
                sp.set_counts(self.op_counts("ilu_apply",
                                             int(Bp.shape[1])))
            Xp = backend.run(self, "ilu_apply", Bp)
            out = self.restrict(Xp)
            return out[:, 0] if single else out

    def op_counts(self, op: str, k: int = 1):
        """Closed-form op counts of one ``k``-column application."""
        from repro.kernels.counts import ilu_apply_dbsr_multi_counts

        require(op in ILU_OPS, f"unknown op {op!r}; known: {ILU_OPS}")
        return ilu_apply_dbsr_multi_counts(self.factors, k)

    def describe(self) -> dict:
        """JSON-friendly summary (for metrics and persistence)."""
        return {
            "kind": "ilu",
            "fingerprint": self.fingerprint,
            "value_digest": self.value_digest,
            "grid": list(self.grid.dims),
            "stencil": self.stencil.name,
            "dtype": str(np.dtype(self.config.np_dtype)),
            "strategy": self.config.strategy,
            "backend": self.config.backend,
            "backend_resolved": self._backend().name,
            "bsize": self.bsize,
            "autotuned": self.autotuned,
            "block_dims": list(self.block_dims),
            "n": self.n,
            "n_padded": self.n_padded,
            "n_tiles": self.factors.matrix.n_tiles,
            "n_colors": self.ordering.n_colors,
            "compile_seconds": self.compile_seconds,
            "repack_seconds": self.repack_seconds,
            "refreshed": self.refreshed,
        }


# Scatter-map machinery ------------------------------------------------------

def _derive_scatter_maps(ordering, A: CSRMatrix, bsize: int):
    """Exact value-provenance maps via a tagged pipeline pass.

    Runs a CSR twin of ``A`` whose data is ``arange(nnz) + 2`` through
    the *same* ``apply_matrix`` → ``from_csr`` pipeline a cold compile
    uses. Both steps are pure value permutations (virtual padding rows
    get exactly ``1.0``; DBSR padding lanes get exactly ``0.0``), so
    reading the tags back yields, for every permuted-CSR entry and
    every DBSR lane, the index of the source coefficient — or a
    sentinel. The tags ride in float64 regardless of the serving dtype
    so indices up to 2**53 survive exactly.
    """
    nnz = len(A.data)
    tags = np.arange(nnz, dtype=np.float64) + 2.0
    A_tag = CSRMatrix(A.indptr.copy(), A.indices.copy(), tags, A.shape)
    Ap_tag = ordering.apply_matrix(A_tag)
    dbsr_tag = DBSRMatrix.from_csr(Ap_tag, bsize)

    csr_scatter = np.rint(Ap_tag.data).astype(np.int64) - 2
    csr_scatter[np.rint(Ap_tag.data).astype(np.int64) == 1] = _VIRTUAL

    flat = np.rint(dbsr_tag.values.reshape(-1)).astype(np.int64)
    dbsr_scatter = flat - 2
    dbsr_scatter[flat == 0] = _PAD
    dbsr_scatter[flat == 1] = _VIRTUAL
    return csr_scatter, dbsr_scatter, Ap_tag, dbsr_tag


def _scatter_csr_data(csr_scatter: np.ndarray, values_src: np.ndarray,
                      dtype) -> np.ndarray:
    data = np.ones(csr_scatter.shape[0], dtype=dtype)
    real = csr_scatter >= 0
    data[real] = values_src[csr_scatter[real]]
    return data


def _scatter_dbsr_values(dbsr_scatter: np.ndarray,
                         values_src: np.ndarray, bsize: int,
                         dtype) -> np.ndarray:
    flat = np.zeros(dbsr_scatter.shape[0], dtype=dtype)
    real = dbsr_scatter >= 0
    flat[real] = values_src[dbsr_scatter[real]]
    flat[dbsr_scatter == _VIRTUAL] = 1.0
    return flat.reshape(-1, bsize)


def _build_numeric(plan_skeleton: dict, values_src: np.ndarray,
                   dtype, schedule=None) -> tuple:
    """Scatter one value snapshot into (CSR operator, ILU factors).

    With a prebuilt :class:`~repro.ilu.ilu0_dbsr.ILU0Schedule` the
    numeric factorization replays recorded tile matches instead of
    re-running the structural scans — same floating-point ops in the
    same order, so the result is bitwise-identical either way.
    """
    csr_scatter = plan_skeleton["csr_scatter"]
    dbsr_scatter = plan_skeleton["dbsr_scatter"]
    data = _scatter_csr_data(csr_scatter, values_src, dtype)
    matrix = CSRMatrix(plan_skeleton["indptr"].copy(),
                       plan_skeleton["indices"].copy(), data,
                       plan_skeleton["shape"])
    values = _scatter_dbsr_values(dbsr_scatter, values_src,
                                  plan_skeleton["bsize"], dtype)
    dbsr = DBSRMatrix(plan_skeleton["blk_ptr"].copy(),
                      plan_skeleton["blk_ind"].copy(),
                      plan_skeleton["blk_offset"].copy(), values,
                      plan_skeleton["shape"],
                      nnz_hint=plan_skeleton["nnz"])
    if schedule is not None:
        factors = ilu0_refactorize_dbsr(dbsr, schedule)
    else:
        factors = ilu0_factorize_dbsr(dbsr)
    return matrix, factors


def _skeleton_of(plan: ILUPlan) -> dict:
    m = plan.factors.matrix
    return {
        "csr_scatter": plan.csr_scatter,
        "dbsr_scatter": plan.dbsr_scatter,
        "indptr": plan.matrix.indptr,
        "indices": plan.matrix.indices,
        "shape": plan.matrix.shape,
        "bsize": plan.bsize,
        "blk_ptr": m.blk_ptr,
        "blk_ind": m.blk_ind,
        "blk_offset": m.blk_offset,
        "nnz": m.nnz,
    }


# Compilation ---------------------------------------------------------------

def compile_ilu_plan(grid: StructuredGrid, stencil,
                     config: PlanConfig | None = None,
                     values: np.ndarray | None = None,
                     bsize_hint: int | None = None) -> ILUPlan:
    """Cold-compile an ILU(0) plan for one structure.

    Pipeline: autotune ``bsize`` (unless pinned or hinted) → AUTO block
    partition → vectorized BMC coloring + permutation → assembly →
    tagged scatter-map derivation → value scatter → DBSR conversion →
    block ILU(0) numeric factorization → validate + seal.

    Parameters
    ----------
    values:
        Coefficients in unpermuted assembly order (matching
        ``assemble_csr(grid, stencil).data``); ``None`` uses the
        canonical assembled values.
    bsize_hint:
        A previously-autotuned pick; skips the autotune sweep. Ignored
        when ``config.bsize`` is set.
    """
    from repro.grids.assembly import assemble_csr
    from repro.ordering.blocks import auto_block_dims
    from repro.ordering.coloring import _is_star
    from repro.ordering.vbmc import build_vbmc
    from repro.simd.autotune import autotune_bsize

    from repro.backends import resolve_backend

    config = config if config is not None else PlanConfig()
    require(config.strategy == "dbsr",
            "ILU plans require the 'dbsr' strategy (no SELL ILU rung)")
    stencil = _resolve_stencil(stencil)
    fingerprint = ilu_structural_fingerprint(grid, stencil, config)
    np_dtype = config.np_dtype
    backend = resolve_backend(config.backend)

    with trace.span("serve.compile", kind="ilu", strategy="dbsr",
                    backend=backend.name,
                    fingerprint=fingerprint[:12]) as sp:
        t0 = time.perf_counter()
        autotuned = False
        if config.bsize is not None:
            bsize = config.bsize
        elif bsize_hint is not None:
            bsize = check_positive(bsize_hint, "bsize_hint")
        else:
            from repro.experiments.base import machine_by_name

            machine = machine_by_name(config.machine)
            with trace.span("serve.autotune", machine=config.machine,
                            prune=str(config.autotune_prune)):
                bsize = autotune_bsize(
                    grid, stencil, machine, n_workers=config.n_workers,
                    dtype_bytes=int(np.dtype(np_dtype).itemsize),
                    groups_per_worker=config.groups_per_worker,
                    prune=config.autotune_prune)
            autotuned = True

        n_colors = 2 if _is_star(stencil) else 2 ** grid.ndim
        block_dims = auto_block_dims(grid, config.n_workers,
                                     bsize=bsize, n_colors=n_colors)
        ordering = build_vbmc(grid, stencil, block_dims, bsize)
        A = assemble_csr(grid, stencil, dtype=np_dtype)
        if values is None:
            values_src = np.array(A.data, dtype=np_dtype, copy=True)
        else:
            values_src = np.asarray(values,
                                    dtype=np_dtype).reshape(-1).copy()
            require(values_src.shape[0] == A.data.shape[0],
                    f"values must carry {A.data.shape[0]} coefficients "
                    f"(assembly order), got {values_src.shape[0]}")
        digest = value_digest(values_src)

        csr_scatter, dbsr_scatter, Ap_tag, dbsr_tag = \
            _derive_scatter_maps(ordering, A, bsize)
        skeleton = {
            "csr_scatter": csr_scatter,
            "dbsr_scatter": dbsr_scatter,
            "indptr": Ap_tag.indptr,
            "indices": Ap_tag.indices,
            "shape": Ap_tag.shape,
            "bsize": bsize,
            "blk_ptr": dbsr_tag.blk_ptr,
            "blk_ind": dbsr_tag.blk_ind,
            "blk_offset": dbsr_tag.blk_offset,
            "nnz": dbsr_tag.nnz,
        }
        matrix, factors = _build_numeric(skeleton, values_src, np_dtype)
        schedule = build_ilu0_schedule(factors.matrix)

        plan = ILUPlan(
            fingerprint=fingerprint,
            value_digest=digest,
            config=config,
            grid=grid,
            stencil=stencil,
            bsize=bsize,
            block_dims=tuple(block_dims),
            ordering=ordering,
            matrix=matrix,
            factors=factors,
            values_src=values_src,
            csr_scatter=csr_scatter,
            dbsr_scatter=dbsr_scatter,
            schedule=schedule,
            backend=backend,
            compile_seconds=time.perf_counter() - t0,
            autotuned=autotuned,
        )
        if sp is not None:
            sp.attrs["bsize"] = int(bsize)
            sp.attrs["autotuned"] = autotuned
        hooks.fire("serve.compile", plan=plan, fingerprint=fingerprint)
        validate_plan(plan)
        seal_plan(plan)
        return plan


def repack_ilu_plan(plan: ILUPlan, values: np.ndarray) -> ILUPlan:
    """Value-only refresh: reuse the structure, re-factorize the numbers.

    Skips autotune, coloring, assembly and format conversion entirely —
    the stored scatter maps place the new coefficients exactly where a
    cold compile would, so the returned plan's matrix, factors and
    solves are **bitwise identical** to
    ``compile_ilu_plan(..., values=values)`` with the same resolved
    ``bsize`` (the repack amortization gate of ``repro ilu-bench``).
    """
    np_dtype = plan.config.np_dtype
    values_src = np.asarray(values, dtype=np_dtype).reshape(-1).copy()
    require(values_src.shape == plan.values_src.shape,
            f"values shape {values_src.shape} != structure's "
            f"{plan.values_src.shape} (structural drift needs a "
            f"cold compile, not a repack)")
    with trace.span("serve.refresh", kind="ilu",
                    fingerprint=plan.fingerprint[:12]) as sp:
        t0 = time.perf_counter()
        digest = value_digest(values_src)
        matrix, factors = _build_numeric(_skeleton_of(plan),
                                         values_src, np_dtype,
                                         schedule=plan.schedule)
        fresh = ILUPlan(
            fingerprint=plan.fingerprint,
            value_digest=digest,
            config=plan.config,
            grid=plan.grid,
            stencil=plan.stencil,
            bsize=plan.bsize,
            block_dims=plan.block_dims,
            ordering=plan.ordering,
            matrix=matrix,
            factors=factors,
            values_src=values_src,
            csr_scatter=plan.csr_scatter,
            dbsr_scatter=plan.dbsr_scatter,
            schedule=plan.schedule,
            backend=plan.backend,
            compile_seconds=plan.compile_seconds,
            repack_seconds=time.perf_counter() - t0,
            refreshed=True,
            autotuned=plan.autotuned,
        )
        if sp is not None:
            sp.attrs["repack_seconds"] = fresh.repack_seconds
        hooks.fire("serve.refresh", plan=fresh,
                   fingerprint=fresh.fingerprint)
        validate_plan(fresh)
        seal_plan(fresh)
        return fresh


# Preconditioned CG ---------------------------------------------------------

def ilu_pcg(plan: ILUPlan, b: np.ndarray, tol: float = 1e-8,
            maxiter: int = 1000) -> tuple:
    """Precondition-aware CG: solve ``A x = b`` with ``M = L U``.

    Runs :func:`repro.solvers.pcg.pcg` in the plan's permuted + padded
    space (the virtual padding rows form an identity block with zero
    right-hand side, so they never perturb the Krylov iterates) with
    the batched ILU application as the preconditioner; returns
    ``(x, history)`` with ``x`` in the caller's original ordering.
    """
    from repro.serve.batch import ilu_apply_dbsr_multi
    from repro.solvers.pcg import pcg

    b = np.asarray(b, dtype=plan.config.np_dtype)
    require(b.ndim == 1 and b.shape[0] == plan.n,
            f"b must be ({plan.n},), got {b.shape}")
    bp = plan.extend(b)

    def precond(r: np.ndarray) -> np.ndarray:
        return ilu_apply_dbsr_multi(plan.factors, r[:, None])[:, 0]

    xp, history = pcg(plan.matrix, bp, precond, tol=tol,
                      maxiter=maxiter)
    return plan.restrict(xp), history
