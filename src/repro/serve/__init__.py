"""Request-serving layer: compile once, cache, batch, serve.

The paper's one-time preprocessing (BMC reorder + DBSR conversion,
§V) amortized across requests, as a subsystem:

* :mod:`repro.serve.plan` — :func:`compile_plan` /
  :class:`SolvePlan` / :func:`structural_fingerprint`: the expensive
  setup behind a deterministic structural key.
* :mod:`repro.serve.cache` — :class:`PlanCache`: thread-safe LRU with
  hit/miss/eviction/compile counters and JSON-persisted autotune picks.
* :mod:`repro.serve.batch` — multi-RHS batched DBSR kernels that load
  each tile's values once per batch (value bytes per solve ~ 1/k).
  Plans execute them through a kernel *backend tier* selected at
  compile time (see :mod:`repro.backends`).
* :mod:`repro.serve.service` — :class:`SolveService`: submit/drain
  with per-structure coalescing, bounded-queue backpressure, and
  per-request error isolation.
* :mod:`repro.serve.ilu_plan` — :class:`ILUPlan` /
  :func:`compile_ilu_plan`: the ILU(0) preconditioner as a cacheable
  plan with a split (structure hash, value digest) fingerprint, plus
  :func:`repack_ilu_plan` for bitwise value-only refreshes.
* :mod:`repro.serve.bench` / :mod:`repro.serve.ilu_bench` — the
  ``repro serve-bench`` / ``repro ilu-bench`` collections behind
  ``BENCH_serve.json`` / ``BENCH_ilu.json``.
"""

from repro.serve.batch import (
    spmv_dbsr_multi,
    spmv_dbsr_multi_counted,
    sptrsv_dbsr_lower_multi,
    sptrsv_dbsr_lower_multi_counted,
    sptrsv_dbsr_upper_multi,
    sptrsv_dbsr_upper_multi_counted,
    symgs_dbsr_multi,
    symgs_dbsr_multi_counted,
)
from repro.serve.cache import PlanCache
from repro.serve.ilu_plan import (
    ILU_OPS,
    ILUPlan,
    compile_ilu_plan,
    ilu_pcg,
    ilu_structural_fingerprint,
    repack_ilu_plan,
    value_digest,
)
from repro.serve.plan import (
    PLAN_OPS,
    PlanConfig,
    SolvePlan,
    compile_plan,
    structural_fingerprint,
)
from repro.serve.service import (
    Backpressure,
    RequestError,
    SolveService,
    SolveTicket,
)

__all__ = [
    "ILU_OPS",
    "ILUPlan",
    "PLAN_OPS",
    "Backpressure",
    "PlanCache",
    "PlanConfig",
    "RequestError",
    "SolvePlan",
    "SolveService",
    "SolveTicket",
    "compile_ilu_plan",
    "compile_plan",
    "ilu_pcg",
    "ilu_structural_fingerprint",
    "repack_ilu_plan",
    "value_digest",
    "spmv_dbsr_multi",
    "spmv_dbsr_multi_counted",
    "sptrsv_dbsr_lower_multi",
    "sptrsv_dbsr_lower_multi_counted",
    "sptrsv_dbsr_upper_multi",
    "sptrsv_dbsr_upper_multi_counted",
    "structural_fingerprint",
    "symgs_dbsr_multi",
    "symgs_dbsr_multi_counted",
]
