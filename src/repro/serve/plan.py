"""Solve-plan compilation — the serving layer's "compile once" step.

The paper's amortization argument (§V) is that BMC reordering and DBSR
conversion are one-time preprocessing paid once per matrix *structure*
and amortized over many SpTRSV/SYMGS sweeps. A :class:`SolvePlan`
reifies that one-time work as a value: the block partition, the
vectorized-BMC coloring and permutation, the DBSR (or SELL) conversion,
the triangular split, and the autotuned ``bsize`` pick — everything a
request-serving frontend needs to execute a solve with nothing but
kernel calls.

Plans are keyed by a **structural fingerprint**: a SHA-256 digest over
the canonical JSON of the fields that determine the compiled artifacts
(grid dims, stencil signature, dtype, bsize, strategy, worker count,
requested kernel backend).
The digest is deterministic across processes (no Python hash
randomization) and across dict orderings (keys are sorted), so it can
double as a persistence key for autotune picks
(:class:`repro.serve.cache.PlanCache`).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil, stencil_by_name
from repro.observe import trace
from repro.resilience import hooks
from repro.resilience.guardrails import seal_plan, validate_plan
from repro.utils.validation import check_positive, require

#: Kernel families a plan can be compiled for.
STRATEGIES = ("dbsr", "sell")

#: Ops a compiled plan can execute (see :meth:`SolvePlan.execute`).
PLAN_OPS = ("lower", "upper", "spmv", "symgs")


@dataclass(frozen=True)
class PlanConfig:
    """Tunables that select what a plan compiles to.

    Attributes
    ----------
    bsize:
        Vector length; ``None`` lets
        :func:`repro.simd.autotune.autotune_bsize` pick per structure.
    n_workers:
        Worker count the block partition is sized for.
    dtype:
        ``"f64"`` or ``"f32"`` (normalized into the fingerprint).
    strategy:
        ``"dbsr"`` (gather-free batched kernels) or ``"sell"``
        (gather-based comparison kernels).
    machine:
        Short machine name (``intel``/``kp920``/``thunderx2``/
        ``phytium``) feeding the autotuner's lane count.
    groups_per_worker:
        Autotune slack: vector groups each worker should get per color.
    backend:
        Kernel execution tier (see :mod:`repro.backends`): the
        *requested* tier, part of the fingerprint. An unavailable
        optional tier (``numba``) resolves to ``numpy-fast`` at compile
        time with a warning.
    autotune_prune:
        Autotune search mode when ``bsize`` is left to the tuner:
        ``None`` (feasibility rule, the historical default),
        ``"exhaustive"`` (measure every feasible candidate) or
        ``"roofline"`` (measure only the top model-ranked candidates —
        the cold-compile fast path). Deliberately *not* part of the
        structural fingerprint: like ``bsize_hint``, it only steers
        which equally-valid pick the tuner lands on, never the
        compiled artifacts' validity.
    """

    bsize: int | None = None
    n_workers: int = 4
    dtype: str = "f64"
    strategy: str = "dbsr"
    machine: str = "intel"
    groups_per_worker: int = 1
    backend: str = "numpy-fast"
    autotune_prune: str | None = None

    def __post_init__(self):
        # Lazy import: repro.serve.__init__ imports this module at
        # package load, and repro.backends must stay cycle-free.
        from repro.backends import BACKEND_NAMES
        from repro.simd.autotune import PRUNE_MODES

        require(self.strategy in STRATEGIES,
                f"unknown strategy {self.strategy!r}; known: {STRATEGIES}")
        require(self.backend in BACKEND_NAMES,
                f"unknown backend {self.backend!r}; "
                f"known: {BACKEND_NAMES}")
        require(self.autotune_prune in PRUNE_MODES,
                f"unknown autotune_prune {self.autotune_prune!r}; "
                f"known: {PRUNE_MODES}")
        if self.bsize is not None:
            check_positive(self.bsize, "bsize")
        check_positive(self.n_workers, "n_workers")
        check_positive(self.groups_per_worker, "groups_per_worker")

    @property
    def np_dtype(self):
        return np.float32 if self.dtype in ("f32", "float32") \
            else np.float64


def _resolve_stencil(stencil: Stencil | str) -> Stencil:
    return stencil_by_name(stencil) if isinstance(stencil, str) \
        else stencil


def structural_fingerprint(grid: StructuredGrid,
                           stencil: Stencil | str,
                           config: PlanConfig) -> str:
    """Deterministic digest of everything that shapes the compiled plan.

    Two requests with equal fingerprints can share one plan; any field
    that changes the compiled artifacts (dims, stencil, dtype, bsize,
    strategy, worker count) changes the digest.
    """
    stencil = _resolve_stencil(stencil)
    payload = {
        # v2: added the requested kernel backend tier.
        "v": 2,
        "backend": config.backend,
        "grid": [int(d) for d in grid.dims],
        "stencil": {
            "name": stencil.name,
            "offsets": [[int(c) for c in off] for off in stencil.offsets],
            "weights": [float(w) for w in stencil.weights],
        },
        "dtype": str(np.dtype(config.np_dtype)),
        "bsize": "auto" if config.bsize is None else int(config.bsize),
        "strategy": config.strategy,
        "machine": config.machine,
        "n_workers": int(config.n_workers),
        "groups_per_worker": int(config.groups_per_worker),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


@dataclass
class SolvePlan:
    """One structure's compiled solve artifacts.

    Everything here is request-independent: plans are immutable after
    compilation and safe to share across threads (kernels only read the
    matrices; per-request state lives in the caller's buffers).

    Attributes
    ----------
    fingerprint:
        The :func:`structural_fingerprint` this plan answers to.
    config:
        The :class:`PlanConfig` it was compiled under.
    grid, stencil:
        Problem geometry and operator.
    bsize:
        Resolved vector length (autotuned when ``config.bsize`` is
        ``None``).
    block_dims:
        The AUTO block partition extents.
    ordering:
        The :class:`~repro.ordering.vbmc.VBMCOrdering` (permutation,
        schedule, padding).
    matrix:
        Permuted + padded operator in CSR (assembly output).
    dbsr:
        Full operator in DBSR.
    lower, upper:
        Strictly triangular DBSR factors.
    diag:
        Diagonal of the permuted operator.
    sell_lower, sell_upper:
        SELL factors (``strategy == "sell"`` only, else ``None``).
    backend:
        The *resolved* :class:`~repro.backends.KernelBackend` instance
        every :meth:`execute` dispatches through (its ``name`` may
        differ from ``config.backend`` when an optional tier was
        unavailable at compile time).
    compile_seconds:
        Wall-clock cost of this compilation (the quantity the cache
        amortizes).
    """

    fingerprint: str
    config: PlanConfig
    grid: StructuredGrid
    stencil: Stencil
    bsize: int
    block_dims: tuple
    ordering: object
    matrix: CSRMatrix
    dbsr: DBSRMatrix
    lower: DBSRMatrix
    upper: DBSRMatrix
    diag: np.ndarray
    sell_lower: object = None
    sell_upper: object = None
    backend: object = field(default=None, repr=False, compare=False)
    compile_seconds: float = 0.0
    autotuned: bool = field(default=False)
    #: Per-artifact SHA-256 digests sealed at compile time by
    #: :func:`repro.resilience.guardrails.seal_plan`; lets the fallback
    #: chain detect byte-level corruption of cached artifacts.
    integrity: dict | None = field(default=None, repr=False,
                                   compare=False)

    @property
    def n(self) -> int:
        """Original (unpadded) problem size."""
        return self.ordering.n_orig

    @property
    def n_padded(self) -> int:
        return self.ordering.n_padded

    # Vector mapping (multi-RHS aware) ---------------------------------
    def extend(self, B: np.ndarray) -> np.ndarray:
        """Original-order ``(n,)`` or ``(n, k)`` block -> padded order."""
        B = np.asarray(B)
        single = B.ndim == 1
        cols = B.reshape(self.n, -1)
        out = np.zeros((self.n_padded, cols.shape[1]), dtype=cols.dtype)
        out[self.ordering.old_to_new, :] = cols
        return out[:, 0] if single else out

    def restrict(self, B: np.ndarray) -> np.ndarray:
        """Padded-order block -> original order (inverse of extend)."""
        B = np.asarray(B)
        single = B.ndim == 1
        cols = B.reshape(self.n_padded, -1)
        out = cols[self.ordering.old_to_new, :]
        return out[:, 0] if single else out

    # Execution ---------------------------------------------------------
    def _backend(self):
        """The resolved kernel backend (lazily bound for plans that
        were constructed without :func:`compile_plan`)."""
        if self.backend is None:
            from repro.backends import resolve_backend

            self.backend = resolve_backend(self.config.backend)
        return self.backend

    def execute(self, op: str, B: np.ndarray) -> np.ndarray:
        """Run one op over a ``(n,)`` vector or ``(n, k)`` RHS block.

        Ops (all in original ordering; padding is internal):

        * ``"lower"`` — solve ``(L + D) x = b``.
        * ``"upper"`` — solve ``(D + U) x = b``.
        * ``"spmv"``  — ``y = A x``.
        * ``"symgs"`` — one SYMGS sweep from a zero initial guess.

        Dispatch goes through the plan's resolved kernel backend; every
        tier is bit-identical per column to the ``numpy-counted`` twin
        (verified by the serve and golden-trace suites), so results do
        not depend on which tier a plan compiled to.
        """
        require(op in PLAN_OPS, f"unknown op {op!r}; known: {PLAN_OPS}")
        backend = self._backend()
        with trace.span("plan.execute", op=op,
                        strategy=self.config.strategy,
                        backend=backend.name,
                        fingerprint=self.fingerprint[:12]) as sp:
            hooks.fire("plan.execute", strategy=self.config.strategy,
                       op=op, fingerprint=self.fingerprint)
            B = np.asarray(B, dtype=self.config.np_dtype)
            single = B.ndim == 1
            require(B.shape[0] == self.n,
                    f"rhs length {B.shape[0]} != problem size {self.n}")
            Bp = self.extend(B.reshape(self.n, -1))
            if sp is not None:
                sp.attrs["k"] = int(Bp.shape[1])
                sp.set_counts(self.op_counts(op, int(Bp.shape[1])))
            Xp = backend.run(self, op, Bp)
            out = self.restrict(Xp)
            return out[:, 0] if single else out

    def op_counts(self, op: str, k: int = 1):
        """Closed-form op counts of one ``execute(op)`` over ``k`` RHS.

        These are the counts the tracer attributes to ``plan.execute``
        spans; the golden-trace suite asserts they equal the closed
        forms in :mod:`repro.kernels.counts` exactly (they *are* those
        closed forms, routed by the same strategy/op dispatch as
        :meth:`execute`).
        """
        from repro.kernels.counts import (
            spmv_dbsr_multi_counts,
            sptrsv_dbsr_multi_counts,
            sptrsv_sell_counts,
            symgs_dbsr_multi_counts,
        )

        if self.config.strategy == "sell" and op in ("lower", "upper"):
            sell = self.sell_lower if op == "lower" else self.sell_upper
            return sptrsv_sell_counts(sell, divide=True).scaled(k)
        if op == "lower":
            return sptrsv_dbsr_multi_counts(self.lower, k, divide=True)
        if op == "upper":
            return sptrsv_dbsr_multi_counts(self.upper, k, divide=True)
        if op == "spmv":
            return spmv_dbsr_multi_counts(self.dbsr, k)
        return symgs_dbsr_multi_counts(self.dbsr, k)

    def describe(self) -> dict:
        """JSON-friendly summary (for metrics and persistence)."""
        return {
            "fingerprint": self.fingerprint,
            "grid": list(self.grid.dims),
            "stencil": self.stencil.name,
            "dtype": str(np.dtype(self.config.np_dtype)),
            "strategy": self.config.strategy,
            "backend": self.config.backend,
            "backend_resolved": self._backend().name,
            "bsize": self.bsize,
            "autotuned": self.autotuned,
            "block_dims": list(self.block_dims),
            "n": self.n,
            "n_padded": self.n_padded,
            "n_tiles": self.dbsr.n_tiles,
            "n_colors": self.ordering.n_colors,
            "compile_seconds": self.compile_seconds,
        }


def compile_plan(grid: StructuredGrid, stencil: Stencil | str,
                 config: PlanConfig | None = None,
                 bsize_hint: int | None = None) -> SolvePlan:
    """Run the full one-time setup for one structure.

    Pipeline: autotune ``bsize`` (unless pinned by ``config.bsize`` or
    a persisted ``bsize_hint``) → AUTO block partition → vectorized BMC
    coloring + permutation → assembly → DBSR conversion → triangular
    split (and SELL conversion under the ``"sell"`` strategy).

    Parameters
    ----------
    bsize_hint:
        A previously-autotuned pick (e.g. restored from a
        :class:`~repro.serve.cache.PlanCache` persistence file); skips
        the autotune sweep. Ignored when ``config.bsize`` is set.
    """
    from repro.grids.assembly import assemble_csr
    from repro.kernels.sptrsv_csr import split_triangular
    from repro.ordering.blocks import auto_block_dims
    from repro.ordering.coloring import _is_star
    from repro.ordering.vbmc import build_vbmc
    from repro.simd.autotune import autotune_bsize

    from repro.backends import resolve_backend

    config = config if config is not None else PlanConfig()
    stencil = _resolve_stencil(stencil)
    fingerprint = structural_fingerprint(grid, stencil, config)
    np_dtype = config.np_dtype
    # Resolve the kernel tier now, not per-execute: an unavailable
    # optional tier (numba) degrades to numpy-fast here, once, with a
    # warning — while the fingerprint keeps the *requested* name.
    backend = resolve_backend(config.backend)

    with trace.span("serve.compile", strategy=config.strategy,
                    backend=backend.name,
                    fingerprint=fingerprint[:12]) as sp:
        t0 = time.perf_counter()
        autotuned = False
        if config.bsize is not None:
            bsize = config.bsize
        elif bsize_hint is not None:
            bsize = check_positive(bsize_hint, "bsize_hint")
        else:
            from repro.experiments.base import machine_by_name

            machine = machine_by_name(config.machine)
            with trace.span("serve.autotune", machine=config.machine,
                            prune=str(config.autotune_prune)):
                bsize = autotune_bsize(
                    grid, stencil, machine, n_workers=config.n_workers,
                    dtype_bytes=int(np.dtype(np_dtype).itemsize),
                    groups_per_worker=config.groups_per_worker,
                    prune=config.autotune_prune)
            autotuned = True

        n_colors = 2 if _is_star(stencil) else 2 ** grid.ndim
        block_dims = auto_block_dims(grid, config.n_workers, bsize=bsize,
                                     n_colors=n_colors)
        ordering = build_vbmc(grid, stencil, block_dims, bsize)
        A = assemble_csr(grid, stencil, dtype=np_dtype)
        Ap = ordering.apply_matrix(A)
        dbsr = DBSRMatrix.from_csr(Ap, bsize)
        L, D, U = split_triangular(Ap)
        Ld = DBSRMatrix.from_csr(L, bsize)
        Ud = DBSRMatrix.from_csr(U, bsize)

        sell_lower = sell_upper = None
        if config.strategy == "sell":
            from repro.formats.sell import SELLMatrix

            sell_lower = SELLMatrix(L, chunk=bsize)
            sell_upper = SELLMatrix(U, chunk=bsize)

        plan = SolvePlan(
            fingerprint=fingerprint,
            config=config,
            grid=grid,
            stencil=stencil,
            bsize=bsize,
            block_dims=tuple(block_dims),
            ordering=ordering,
            matrix=Ap,
            dbsr=dbsr,
            lower=Ld,
            upper=Ud,
            diag=D,
            sell_lower=sell_lower,
            sell_upper=sell_upper,
            backend=backend,
            compile_seconds=time.perf_counter() - t0,
            autotuned=autotuned,
        )
        if sp is not None:
            sp.attrs["bsize"] = int(bsize)
            sp.attrs["autotuned"] = autotuned
        # Chaos may corrupt the freshly compiled plan here; compile-time
        # validation then rejects it before it can reach a cache or
        # kernel.
        hooks.fire("serve.compile", plan=plan, fingerprint=fingerprint)
        validate_plan(plan)
        seal_plan(plan)
        return plan
