"""Serving benchmark: cache amortization and multi-RHS byte scaling.

Two measurements back the serving layer's claims, both emitted to
``BENCH_serve.json`` by ``repro serve-bench``:

1. **Plan-cache amortization** — a repeated-structure workload (many
   requests over few structures) through a :class:`SolveService`;
   reports hit rate, compile seconds, and amortized setup seconds per
   request.
2. **Batch-width scaling** — the instrumented multi-RHS SpTRSV at
   ``k ∈ {1, 2, 4, 8}``: measured ``OpCounter`` deltas show the
   value-stream bytes per solve falling as ``1/k`` (one tile-value load
   serves every RHS) while results stay bit-identical to ``k``
   independent unbatched solves. Counted tallies are cross-checked
   against the closed forms of
   :func:`repro.kernels.counts.sptrsv_dbsr_multi_counts`.
"""

from __future__ import annotations

import numpy as np

from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig, compile_plan
from repro.serve.service import SolveService


def batch_scaling_report(plan, ks=(1, 2, 4, 8), seed: int = 2024) -> dict:
    """Measured per-solve op mixes of the batched SpTRSV vs ``k``.

    Runs the instrumented multi-RHS lower solve on ``max(ks)`` random
    right-hand sides, slicing the same RHS block per width, and checks
    every batched column bit-equals the unbatched solve of that column.
    """
    from repro.kernels.counts import sptrsv_dbsr_multi_counts
    from repro.kernels.sptrsv_dbsr import sptrsv_dbsr_lower
    from repro.runtime.metrics import counter_to_dict
    from repro.serve.batch import sptrsv_dbsr_lower_multi_counted
    from repro.simd.engine import VectorEngine

    rng = np.random.default_rng(seed)
    n = plan.lower.n_rows
    dtype = plan.config.np_dtype
    B = rng.standard_normal((n, max(ks))).astype(dtype)
    reference = np.stack(
        [sptrsv_dbsr_lower(plan.lower, B[:, j], diag=plan.diag)
         for j in range(B.shape[1])], axis=1)

    widths = []
    prev_value_bytes = None
    for k in sorted(ks):
        engine = VectorEngine(plan.bsize, dtype=dtype)
        X = sptrsv_dbsr_lower_multi_counted(
            plan.lower, B[:, :k], engine, diag=plan.diag)
        bitwise = bool(np.array_equal(X, reference[:, :k]))
        measured = engine.counter
        closed = sptrsv_dbsr_multi_counts(plan.lower, k, divide=True)
        per_solve_value_bytes = measured.bytes_values / k
        entry = {
            "k": k,
            "bitwise_equal_to_unbatched": bitwise,
            "counts_batch": counter_to_dict(measured),
            "value_bytes_per_solve": per_solve_value_bytes,
            "total_bytes_per_solve": measured.total_bytes / k,
            "vector_ops_per_solve": measured.total_vector_ops / k,
            "matches_closed_form": (
                measured.bytes_values == closed.bytes_values
                and measured.total_vector_ops == closed.total_vector_ops
            ),
            "value_bytes_strictly_below_previous": (
                prev_value_bytes is None
                or per_solve_value_bytes < prev_value_bytes
            ),
        }
        prev_value_bytes = per_solve_value_bytes
        widths.append(entry)
    return {
        "kernel": "sptrsv_dbsr_lower_multi",
        "n_rows": n,
        "bsize": plan.bsize,
        "widths": widths,
        "value_bytes_per_solve_decreasing": all(
            w["value_bytes_strictly_below_previous"] for w in widths),
        "all_bitwise_equal": all(
            w["bitwise_equal_to_unbatched"] for w in widths),
    }


def collect_bench_serve(nx: int = 8, stencil: str = "27pt",
                        n_requests: int = 24, max_batch: int = 8,
                        n_workers: int = 2, dtype: str = "f64",
                        machine: str = "kp920",
                        ks=(1, 2, 4, 8), seed: int = 2024,
                        backend: str = "numpy-fast") -> dict:
    """Run the serving workload + batch sweep; return the report dict.

    The workload issues ``n_requests`` solves over a single structure
    (the repeated-structure regime the cache is built for) plus one
    extra structure to exercise a genuine second compile, then drains
    in batches of ``max_batch``. The default autotune machine is the
    KunPeng 920 (2 f64 lanes), whose picks stay non-degenerate on the
    small grids this functional bench runs at.
    """
    from repro.grids.grid import StructuredGrid

    config = PlanConfig(bsize=None, n_workers=n_workers, dtype=dtype,
                        machine=machine, backend=backend)
    cache = PlanCache(capacity=4)
    rng = np.random.default_rng(seed)
    grid = StructuredGrid((nx,) * 3)
    alt_grid = StructuredGrid((max(2, nx // 2),) * 3)

    with SolveService(cache=cache, config=config,
                      max_batch=max_batch,
                      max_pending=max(n_requests + 4, 16)) as service:
        tickets = []
        for _ in range(n_requests):
            rhs = rng.standard_normal(grid.n_points)
            tickets.append(service.submit(grid, stencil, rhs,
                                          op="lower"))
            if len(tickets) % max_batch == 0:
                service.drain()
        # One different structure: a real (expected) cache miss.
        alt_rhs = rng.standard_normal(alt_grid.n_points)
        tickets.append(service.submit(alt_grid, stencil, alt_rhs,
                                      op="lower"))
        service.drain()
        for t in tickets:
            t.result(timeout=0)
        batch_widths = sorted({t.metrics["batch_k"] for t in tickets})
        service_stats = service.stats()

    cache_stats = service_stats["cache"]
    n_total = len(tickets)
    plan = cache.get_or_compile(grid, stencil, config)[0]
    report = {
        "schema": "dbsr-repro/bench-serve/v1",
        "config": {
            "nx": nx,
            "stencil": stencil,
            "dtype": dtype,
            "n_workers": n_workers,
            "n_requests": n_total,
            "max_batch": max_batch,
            "machine": machine,
            "backend": backend,
            "backend_resolved": plan._backend().name,
            "ks": list(sorted(ks)),
            "bsize_autotuned": plan.bsize,
        },
        "cache": cache_stats,
        "amortization": {
            "compile_seconds_total": cache_stats["compile_seconds"],
            "amortized_setup_seconds_per_request":
                cache_stats["compile_seconds"] / n_total,
            "hit_rate": cache_stats["hit_rate"],
        },
        "service": {
            k: service_stats[k]
            for k in ("submitted", "completed", "failed",
                      "batches_executed")
        },
        "phases": service_stats["phases"],
        "batch_widths_observed": batch_widths,
        "batch_scaling": batch_scaling_report(plan, ks=ks, seed=seed),
    }
    return report
