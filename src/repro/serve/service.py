"""Request-serving frontend: submit/drain with per-structure batching.

:class:`SolveService` is the traffic-facing layer on top of the plan
compiler and cache. Callers :meth:`~SolveService.submit` solve requests
(a grid + stencil structure, an op, and a right-hand side) and receive
a :class:`SolveTicket`; :meth:`~SolveService.drain` coalesces pending
requests **per structural fingerprint and op** into ``(n, k)`` RHS
blocks and executes them through the batched kernels of
:mod:`repro.serve.batch`, so the matrix values stream from memory once
per batch instead of once per request.

Design points:

* **Backpressure** — the pending queue is bounded
  (``max_pending``); :meth:`submit` raises :class:`Backpressure` when
  full instead of growing without limit. Callers drain and retry.
* **Error isolation** — a request that fails (bad RHS detected at
  drain time, or a kernel error during its batch) carries its own
  exception on its ticket; batch-mates are re-executed individually so
  one poisoned request cannot fail its neighbors.
* **Metrics** — every ticket carries a per-request metrics dict
  (batch width, cache hit, solve seconds, amortized per-solve op
  counts via :mod:`repro.kernels.counts`), and the service aggregates
  phase timings in a :class:`~repro.runtime.session.SolverSession`
  ledger (``compile`` / ``solve`` phases) for
  :mod:`repro.runtime.metrics`-style reporting.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.grids.grid import StructuredGrid
from repro.observe import trace
from repro.observe.metrics import (
    LATENCY_EDGES,
    WIDTH_EDGES,
    MetricsRegistry,
)
from repro.resilience.errors import (
    DeadlineExceeded,
    DrainTimeout,
    ServiceClosed,
    StaleValuesError,
)
from repro.runtime.session import SolverSession
from repro.serve.cache import PlanCache
from repro.serve.plan import (
    PLAN_OPS,
    PlanConfig,
    SolvePlan,
    structural_fingerprint,
)
from repro.utils.validation import check_positive

#: Ops :meth:`SolveService.submit` accepts: the triangular/SpMV/SymGS
#: plan ops plus the preconditioner apply served by ILU plans.
SERVICE_OPS = PLAN_OPS + ("ilu_apply",)


class Backpressure(RuntimeError):
    """Raised by :meth:`SolveService.submit` when the queue is full."""


class RequestError(ValueError):
    """A request was rejected (bad op, wrong RHS shape, non-finite)."""


@dataclass
class SolveTicket:
    """Handle to one submitted request.

    ``result()`` returns the solution (original ordering) or raises the
    request's own error; ``metrics`` is populated when the request is
    executed.
    """

    request_id: int
    fingerprint: str
    op: str
    metrics: dict = field(default_factory=dict)
    _result: np.ndarray | None = None
    _error: BaseException | None = None
    _done: threading.Event = field(default_factory=threading.Event)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until executed; return the solution or raise."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not drained yet")
        if self._error is not None:
            raise self._error
        return self._result

    def _finish(self, result: np.ndarray | None,
                error: BaseException | None = None) -> None:
        if self._done.is_set():
            # close() racing a drain may try to fail a ticket the
            # drain just completed; first outcome wins.
            return
        if error is not None and hasattr(error, "add_note"):
            # Name the originating request so a bare kernel error read
            # off a ticket is traceable to its op and structure.
            error.add_note(
                f"[request {self.request_id}: op={self.op!r}, "
                f"fingerprint={self.fingerprint[:12]}…]")
        self._result = result
        self._error = error
        self._done.set()


@dataclass
class _Pending:
    ticket: SolveTicket
    grid: StructuredGrid
    stencil: object
    config: PlanConfig
    rhs: np.ndarray
    #: Absolute monotonic expiry (``None`` = no deadline).
    deadline_at: float | None = None
    deadline_seconds: float = 0.0
    #: ILU-only: coefficient snapshot to factorize/repack from.
    values: np.ndarray | None = None
    #: ILU-only: digest the served factors must have been built from.
    expect_digest: str | None = None
    #: Digest component of the coalescing key (``None`` for plan ops).
    group_digest: str | None = None


class SolveService:
    """Batched solve frontend over a :class:`PlanCache`.

    Parameters
    ----------
    cache:
        Plan cache to compile through (a private 8-plan cache by
        default).
    config:
        Default :class:`PlanConfig` for requests that do not pass one.
    max_batch:
        Largest RHS block width ``k`` a single kernel call may carry.
    max_pending:
        Bound on queued (submitted, not yet drained) requests.
    """

    def __init__(self, cache: PlanCache | None = None,
                 config: PlanConfig | None = None,
                 max_batch: int = 8, max_pending: int = 64,
                 resilience=None):
        self.cache = cache if cache is not None else PlanCache()
        self.config = config if config is not None else PlanConfig()
        self.max_batch = check_positive(max_batch, "max_batch")
        self.max_pending = check_positive(max_pending, "max_pending")
        #: Optional :class:`repro.resilience.fallback.FallbackChain`.
        #: ``None`` (the default) keeps the serve path byte-identical
        #: to a build without the resilience subsystem; when set, every
        #: solve goes through validation + the self-healing ladder and
        #: the chain's cache should be this service's cache.
        self.resilience = resilience
        self.session = SolverSession(n_workers=self.config.n_workers)
        self._lock = threading.Lock()
        self._closed = False
        self._pending: list[_Pending] = []
        self._ids = itertools.count()
        #: Unified instrument registry (naming scheme in
        #: ``docs/observability.md``); the legacy ``submitted``/
        #: ``completed``/``failed``/``batches_executed`` attributes are
        #: properties reading straight from it, so the counters survive
        #: any number of :meth:`stats` calls and drain/requeue cycles.
        self.metrics = MetricsRegistry()
        self._submitted = self.metrics.counter(
            "serve.submitted", "requests accepted by submit()")
        self._completed = self.metrics.counter(
            "serve.completed", "requests finished with a solution")
        self._failed = self.metrics.counter(
            "serve.failed", "requests finished with an error")
        self._batches = self.metrics.counter(
            "serve.batches", "coalesced kernel batches executed")
        self._requeued = self.metrics.counter(
            "serve.requeued", "requests re-queued by a drain timeout")
        self._pending_gauge = self.metrics.gauge(
            "serve.pending", "requests submitted but not yet drained")
        self._batch_width = self.metrics.histogram(
            "serve.batch_width", WIDTH_EDGES,
            "RHS columns per executed batch")
        self._drain_seconds = self.metrics.histogram(
            "serve.drain_seconds", LATENCY_EDGES,
            "wall seconds per drain() call")

    # Legacy counter attributes (kept readable for existing callers) -----
    @property
    def submitted(self) -> int:
        return self._submitted.value

    @property
    def completed(self) -> int:
        return self._completed.value

    @property
    def failed(self) -> int:
        return self._failed.value

    @property
    def batches_executed(self) -> int:
        return self._batches.value

    # Submission ---------------------------------------------------------
    def submit(self, grid: StructuredGrid, stencil, rhs: np.ndarray,
               op: str = "lower",
               config: PlanConfig | None = None,
               deadline: float | None = None,
               values: np.ndarray | None = None,
               value_digest: str | None = None) -> SolveTicket:
        """Queue one request; returns its ticket.

        Shape and op validation happens here, synchronously, so a
        malformed request fails at the submission site instead of
        poisoning a batch. Raises :class:`Backpressure` when the
        pending queue is at ``max_pending``.

        ``deadline`` (seconds from now) bounds how stale the request
        may become: a request still queued when its deadline passes is
        failed with
        :class:`~repro.resilience.errors.DeadlineExceeded` at drain
        time instead of being executed.

        ``values``/``value_digest`` are legal only for
        ``op="ilu_apply"``: ``values`` is the coefficient snapshot the
        served factors must be built from (a structure hit with a
        different digest triggers the value-only repack path), while
        ``value_digest`` alone *declares* the expected snapshot — the
        request fails with
        :class:`~repro.resilience.errors.StaleValuesError` at drain
        time if the cached factors were built from anything else.
        """
        config = config if config is not None else self.config
        if op not in SERVICE_OPS:
            raise RequestError(
                f"unknown op {op!r}; known: {SERVICE_OPS}")
        if deadline is not None and deadline <= 0:
            raise RequestError(f"deadline must be > 0, got {deadline}")
        if op != "ilu_apply" and (values is not None
                                  or value_digest is not None):
            raise RequestError(
                "values/value_digest are only valid for op='ilu_apply'")
        rhs = np.asarray(rhs)
        if rhs.ndim != 1 or rhs.shape[0] != grid.n_points:
            raise RequestError(
                f"rhs must be ({grid.n_points},), got {rhs.shape}")
        if op == "ilu_apply":
            from repro.serve.ilu_plan import (
                ilu_structural_fingerprint,
                value_digest as _digest_of,
            )

            fp = ilu_structural_fingerprint(grid, stencil, config)
            if values is not None:
                values = np.asarray(values,
                                    dtype=config.np_dtype).reshape(-1)
                vd = _digest_of(values)
                if value_digest is not None and value_digest != vd:
                    raise RequestError(
                        "value_digest contradicts the provided values")
                value_digest = vd
        else:
            fp = structural_fingerprint(grid, stencil, config)
        ticket = SolveTicket(request_id=next(self._ids),
                             fingerprint=fp, op=op)
        entry = _Pending(ticket=ticket, grid=grid, stencil=stencil,
                         config=config,
                         rhs=rhs.astype(config.np_dtype, copy=True),
                         deadline_at=(time.monotonic() + deadline
                                      if deadline is not None else None),
                         deadline_seconds=deadline or 0.0,
                         values=values,
                         expect_digest=(value_digest if values is None
                                        else None),
                         group_digest=value_digest)
        with self._lock:
            if self._closed:
                raise ServiceClosed()
            if len(self._pending) >= self.max_pending:
                raise Backpressure(
                    f"{self.max_pending} requests pending; drain first")
            self._pending.append(entry)
            n_pending = len(self._pending)
        self._submitted.inc()
        self._pending_gauge.set(n_pending)
        trace.event("serve.submit", request_id=ticket.request_id,
                    op=op, fingerprint=fp[:12])
        return ticket

    @property
    def n_pending(self) -> int:
        with self._lock:
            return len(self._pending)

    # Execution ----------------------------------------------------------
    def drain(self, timeout: float | None = None) -> int:
        """Execute every pending request; returns how many completed.

        Requests are grouped by ``(fingerprint, op)`` — submission
        order is preserved inside a group — and each group is executed
        in ``max_batch``-wide RHS blocks through the structure's
        compiled plan.

        ``timeout`` bounds the whole drain: when the budget runs out
        between batches, the not-yet-executed requests are re-queued
        (a later ``drain`` picks them up, ahead of newer submissions)
        and :class:`~repro.resilience.errors.DrainTimeout` is raised
        naming them. Requests already executed stay executed.
        """
        deadline_at = (time.monotonic() + timeout
                       if timeout is not None else None)
        with self._lock:
            if self._closed:
                raise ServiceClosed()
            pending, self._pending = self._pending, []
            self._pending_gauge.set(len(self._pending))
        if not pending:
            return 0
        t_drain = time.perf_counter()
        try:
            with trace.span("serve.drain",
                            n_requests=len(pending)) as sp:
                n_done = self._drain_groups(pending, deadline_at,
                                            timeout, sp)
        finally:
            self._drain_seconds.observe(time.perf_counter() - t_drain)
        return n_done

    def _drain_groups(self, pending: list, deadline_at: float | None,
                      timeout: float | None, sp) -> int:
        groups: dict[tuple, list[_Pending]] = {}
        for entry in pending:
            # ILU requests also coalesce on the declared value digest:
            # two snapshots of the same structure must not share a
            # batch (each would need different factors).
            key = (entry.ticket.fingerprint, entry.ticket.op,
                   entry.group_digest)
            groups.setdefault(key, []).append(entry)
        n_done = 0
        work: list[tuple[object, str, list[bool], list[_Pending]]] = []
        leftover: list[_Pending] = []
        group_items = list(groups.items())
        for gi, ((fp, op, _vd), entries) in enumerate(group_items):
            if self._closed:
                # close() raced this drain: everything not yet
                # executed (staged batches included) fails typed.
                leftover.extend(e for _, _, _, chunk in work
                                for e in chunk)
                leftover.extend(entries)
                for _, rest in group_items[gi + 1:]:
                    leftover.extend(rest)
                self._fail_closed(leftover)
            if deadline_at is not None \
                    and time.monotonic() > deadline_at:
                # Out of budget before this group even compiled.
                # Earlier groups are staged in `work` but not executed
                # yet — they must be re-queued too, or their tickets
                # would never complete.
                leftover.extend(e for _, _, _, chunk in work
                                for e in chunk)
                leftover.extend(entries)
                for _, rest in group_items[gi + 1:]:
                    leftover.extend(rest)
                self._requeue_and_raise(timeout, leftover)
            trace.event("serve.coalesce", fingerprint=fp[:12], op=op,
                        n_requests=len(entries))
            # One cache transaction per request: the first may compile,
            # coalesced followers count (and are served) as hits — the
            # per-request hit rate is what serve-bench reports.
            try:
                lookups = [self._plan_for(e) for e in entries]
            except StaleValuesError as exc:
                # This group declared a value snapshot the cache cannot
                # honor; its tickets fail typed while every other group
                # (other structures, other snapshots) drains normally.
                trace.event("serve.stale_values", fingerprint=fp[:12],
                            n_requests=len(entries))
                for e in entries:
                    e.ticket._finish(None, exc)
                    self._failed.inc()
                continue
            plan = lookups[0][0]
            hits = [hit for _, hit in lookups]
            for lo in range(0, len(entries), self.max_batch):
                work.append((plan, op, hits[lo:lo + self.max_batch],
                             entries[lo:lo + self.max_batch]))
        for wi, (plan, op, hits, chunk) in enumerate(work):
            if self._closed:
                for _, _, _, rest in work[wi:]:
                    leftover.extend(rest)
                self._fail_closed(leftover)
            if deadline_at is not None \
                    and time.monotonic() > deadline_at:
                for _, _, _, rest in work[wi:]:
                    leftover.extend(rest)
                self._requeue_and_raise(timeout, leftover)
            n_done += self._run_batch(plan, hits, op, chunk)
        if sp is not None:
            sp.attrs["n_groups"] = len(group_items)
            sp.attrs["n_batches"] = len(work)
            sp.attrs["n_done"] = n_done
        return n_done

    def _fail_closed(self, leftover: list) -> None:
        """Fail unexecuted requests with :class:`ServiceClosed`."""
        ids = [e.ticket.request_id for e in leftover]
        for e in leftover:
            e.ticket._finish(None, ServiceClosed([e.ticket.request_id]))
            self._failed.inc()
        trace.event("serve.closed_drop", n_requests=len(leftover))
        raise ServiceClosed(ids)

    def _requeue_and_raise(self, timeout: float,
                           leftover: list) -> None:
        """Put unexecuted requests back (ahead of newer submissions)."""
        with self._lock:
            # Re-queueing into a closed service would leave these
            # tickets forever-pending; fail them typed instead.
            requeued = not self._closed
            if requeued:
                self._pending = leftover + self._pending
                self._pending_gauge.set(len(self._pending))
        if not requeued:
            self._fail_closed(leftover)
        self._requeued.inc(len(leftover))
        trace.event("serve.requeue", n_requests=len(leftover))
        raise DrainTimeout(timeout,
                           [e.ticket.request_id for e in leftover])

    def _plan_for(self, entry: _Pending) -> tuple[SolvePlan, bool]:
        with self.session.phase("compile"):
            if entry.ticket.op == "ilu_apply":
                return self.cache.get_or_compile_ilu(
                    entry.grid, entry.stencil, entry.config,
                    values=entry.values,
                    expect_digest=entry.expect_digest)
            return self.cache.get_or_compile(entry.grid, entry.stencil,
                                             entry.config)

    def _validate(self, plan: SolvePlan, entry: _Pending) -> None:
        """Drain-time per-request checks (cheap, isolates bad RHS)."""
        if entry.deadline_at is not None \
                and time.monotonic() > entry.deadline_at:
            raise DeadlineExceeded(entry.ticket.request_id,
                                   entry.deadline_seconds)
        if not np.all(np.isfinite(entry.rhs)):
            raise RequestError(
                f"request {entry.ticket.request_id}: non-finite rhs")

    def _run_batch(self, plan: SolvePlan, hits: list[bool], op: str,
                   entries: list[_Pending]) -> int:
        """Execute one coalesced batch with per-request isolation."""
        good: list[tuple[_Pending, bool]] = []
        for entry, hit in zip(entries, hits):
            try:
                self._validate(plan, entry)
            except BaseException as exc:  # noqa: BLE001 - per-request
                entry.ticket._finish(None, exc)
                self._failed.inc()
            else:
                good.append((entry, hit))
        if not good:
            return 0
        B = np.stack([e.rhs for e, _ in good], axis=1)
        t0 = time.perf_counter()
        try:
            with self.session.phase("solve"):
                X = self._execute(plan, op, B)
        except BaseException:
            # A kernel-level failure cannot name its culprit; re-run
            # each request alone so only the offender fails.
            return self._run_individually(plan, op, good)
        seconds = time.perf_counter() - t0
        self._batches.inc()
        k = len(good)
        self._batch_width.observe(k)
        for j, (entry, hit) in enumerate(good):
            entry.ticket.metrics = self._request_metrics(
                plan, hit, op, k, seconds)
            entry.ticket._finish(np.ascontiguousarray(X[:, j]))
            self._completed.inc()
        return k

    def _execute(self, plan: SolvePlan, op: str,
                 B: np.ndarray) -> np.ndarray:
        """One solve — native, or through the self-healing ladder."""
        if self.resilience is None:
            return plan.execute(op, B)
        return self.resilience.execute(plan, op, B).solution

    def _run_individually(self, plan: SolvePlan, op: str,
                          entries: list[tuple[_Pending, bool]]) -> int:
        n_done = 0
        for entry, hit in entries:
            t0 = time.perf_counter()
            try:
                with self.session.phase("solve"):
                    x = self._execute(plan, op, entry.rhs)
            except BaseException as exc:  # noqa: BLE001 - per-request
                entry.ticket._finish(None, exc)
                self._failed.inc()
                continue
            entry.ticket.metrics = self._request_metrics(
                plan, hit, op, 1, time.perf_counter() - t0)
            entry.ticket._finish(x)
            self._completed.inc()
            n_done += 1
        return n_done

    def _request_metrics(self, plan: SolvePlan, cache_hit: bool,
                         op: str, k: int, batch_seconds: float) -> dict:
        """Per-request share of one batch's cost."""
        from repro.runtime.metrics import counter_to_dict

        metrics = {
            "op": op,
            "fingerprint": plan.fingerprint,
            "batch_k": k,
            "cache_hit": cache_hit,
            "bsize": plan.bsize,
            "strategy": plan.config.strategy,
            "backend": plan._backend().name,
            "seconds": batch_seconds / k,
        }
        counts = self._op_counts(plan, op, k)
        if counts is not None:
            metrics["counts_per_solve"] = counter_to_dict(
                counts.scaled(1.0 / k))
        return metrics

    @staticmethod
    def _op_counts(plan: SolvePlan, op: str, k: int):
        """Closed-form batch op counts (DBSR strategy only)."""
        from repro.kernels.counts import (
            ilu_apply_dbsr_multi_counts,
            sptrsv_dbsr_multi_counts,
        )

        if plan.config.strategy != "dbsr":
            return None
        if op == "ilu_apply":
            return ilu_apply_dbsr_multi_counts(plan.factors, k)
        if op == "lower":
            return sptrsv_dbsr_multi_counts(plan.lower, k, divide=True)
        if op == "upper":
            return sptrsv_dbsr_multi_counts(plan.upper, k, divide=True)
        return None

    # Reporting ----------------------------------------------------------
    def stats(self) -> dict:
        """Service + cache counter snapshot.

        Every count is read from :attr:`metrics` — the dict is a view,
        not the store, so building it repeatedly (or across a
        ``drain(timeout=)`` requeue cycle) never resets anything.
        """
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "requeued": self._requeued.value,
            "pending": self.n_pending,
            "batches_executed": self.batches_executed,
            "max_batch": self.max_batch,
            "max_pending": self.max_pending,
            "cache": self.cache.stats(),
            "phases": self.session.phase_report(),
            "metrics": self.metrics.snapshot(),
            "resilience": (self.resilience.stats()
                           if self.resilience is not None else None),
        }

    def close(self) -> None:
        """Shut the service down; never leaves a ticket pending.

        Queued requests (and, for a ``drain()`` racing this call, its
        staged-but-unexecuted batches) fail with a typed
        :class:`~repro.resilience.errors.ServiceClosed` carrying their
        request id, so a thread blocked in ``ticket.result()`` raises
        instead of waiting forever. Idempotent.
        """
        with self._lock:
            already = self._closed
            self._closed = True
            pending, self._pending = self._pending, []
            self._pending_gauge.set(0)
        for entry in pending:
            entry.ticket._finish(
                None, ServiceClosed([entry.ticket.request_id]))
            self._failed.inc()
        if pending:
            trace.event("serve.closed_drop", n_requests=len(pending))
        if not already:
            self.session.close()

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
