"""3-D rank decomposition (HPCG's ``GenerateGeometry``)."""

from __future__ import annotations

from repro.utils.validation import check_positive


def decompose_ranks(n_ranks: int) -> tuple:
    """Factor ``n_ranks`` into the most cubic ``(px, py, pz)`` grid.

    Matches HPCG's preference for balanced process grids: among all
    factorizations, minimize the surface-to-volume ratio proxy
    ``px + py + pz``.
    """
    check_positive(n_ranks, "n_ranks")
    best = None
    for px in range(1, n_ranks + 1):
        if n_ranks % px:
            continue
        rem = n_ranks // px
        for py in range(1, rem + 1):
            if rem % py:
                continue
            pz = rem // py
            key = (px + py + pz, max(px, py, pz))
            if best is None or key < best[0]:
                best = (key, (px, py, pz))
    return best[1]


def decompose_ranks_nd(n_ranks: int, ndim: int) -> tuple:
    """Most-cubic factorization of ``n_ranks`` into ``ndim`` factors.

    Generalizes :func:`decompose_ranks` to 2-D (or any arity) process
    grids: among all ordered factorizations ``p_0 * ... * p_{ndim-1}``
    minimize the surface proxy ``sum(p)`` then the largest factor.
    """
    check_positive(n_ranks, "n_ranks")
    check_positive(ndim, "ndim")
    if ndim == 1:
        return (n_ranks,)
    best = None
    for p0 in range(1, n_ranks + 1):
        if n_ranks % p0:
            continue
        rest = decompose_ranks_nd(n_ranks // p0, ndim - 1)
        cand = (p0,) + rest
        key = (sum(cand), max(cand))
        if best is None or key < best[0]:
            best = (key, cand)
    return best[1]


def halo_neighbor_count(proc_grid: tuple, interior: bool = True) -> int:
    """Number of 27-stencil neighbors of a rank (26 for an interior
    rank of a >=3^3 grid; fewer on small/flat grids)."""
    count = 1
    for p in proc_grid:
        count *= 3 if (p >= 3 or not interior) else p
    return count - 1
