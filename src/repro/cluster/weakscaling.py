"""Weak scaling sweep — regenerates Fig. 7.

Per the paper's setup: a Phytium 2000+ cluster, 8 MPI ranks per node
(one per NUMA domain, 8 cores each), local domain 192-cubed per rank,
scaled from 1 to 256 nodes (2048 ranks / 16384 cores). Per-iteration
time is node compute (from the HPCG model) plus halo exchange plus two
latency-bound allreduces; GFLOPS uses the official credited flops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.decomp import decompose_ranks
from repro.cluster.halo import halo_seconds
from repro.hpcg.benchmark import HPCGModel
from repro.hpcg.flops import hpcg_flops_per_iteration
from repro.simd.machine import MachineModel, PHYTIUM_2000


@dataclass(frozen=True)
class NetworkModel:
    """Interconnect parameters.

    Defaults approximate the TH-Express-class fabric of Phytium
    clusters: 10 GB/s injection bandwidth, ~1.5 us latency.
    """

    link_bw_gbs: float = 10.0
    link_latency_us: float = 1.5
    allreduce_latency_us: float = 6.0
    #: Per-doubling load-imbalance/OS-jitter slowdown. Bulk-synchronous
    #: codes run at the speed of the slowest rank; the straggler gap
    #: grows roughly with log2(ranks). 0.8 %/doubling keeps 256-node
    #: efficiency in the >90 % band the paper reports.
    jitter_per_log2: float = 0.008

    def allreduce_seconds(self, n_ranks: int) -> float:
        """Latency-dominated tree allreduce of a few scalars."""
        if n_ranks <= 1:
            return 0.0
        return self.allreduce_latency_us * 1e-6 * math.log2(n_ranks)

    def jitter_factor(self, nodes: int) -> float:
        """Multiplier on per-iteration time from stragglers."""
        if nodes <= 1:
            return 1.0
        return 1.0 + self.jitter_per_log2 * math.log2(nodes)


@dataclass
class WeakScalingPoint:
    """One point of the Fig. 7 curve."""

    nodes: int
    ranks: int
    gflops: float
    efficiency: float
    seconds_per_iteration: float


def weak_scaling_sweep(model: HPCGModel, node_counts=(1, 2, 4, 8, 16, 32,
                                                      64, 128, 256),
                       machine: MachineModel = PHYTIUM_2000,
                       ranks_per_node: int = 8,
                       threads_per_rank: int = 8,
                       nx_local: int = 192,
                       network: NetworkModel | None = None,
                       nx_model: int | None = None) -> list:
    """Model weak scaling of an HPCG variant across nodes.

    Returns a list of :class:`WeakScalingPoint`, efficiency normalized
    to the single-node throughput.
    """
    network = network or NetworkModel()
    nx_model_val = nx_model if nx_model is not None else round(
        model.n_local ** (1 / 3))
    scale = (nx_local / nx_model_val) ** 3
    n_target = int(model.n_local * scale)
    nnz_target = int(model.nnz_local * scale)
    flops_per_rank = hpcg_flops_per_iteration(n_target, nnz_target,
                                              n_levels=4)

    points = []
    base_gflops = None
    for nodes in node_counts:
        ranks = nodes * ranks_per_node
        proc_grid = decompose_ranks(ranks)
        compute = model.node_seconds_per_iteration(
            machine, processes=ranks_per_node,
            threads=threads_per_rank, scale=scale)
        halo = halo_seconds(nx_local, proc_grid,
                            network.link_bw_gbs,
                            network.link_latency_us) if nodes > 1 else 0.0
        allreduce = 2 * network.allreduce_seconds(ranks)
        secs = (compute + halo + allreduce) * network.jitter_factor(nodes)
        gflops = ranks * flops_per_rank / secs / 1e9
        if base_gflops is None:
            base_gflops = gflops / nodes
        eff = gflops / (base_gflops * nodes)
        points.append(WeakScalingPoint(
            nodes=nodes, ranks=ranks, gflops=gflops, efficiency=eff,
            seconds_per_iteration=secs))
    return points
