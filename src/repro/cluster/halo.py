"""Halo exchange volume and time for the 27-point stencil."""

from __future__ import annotations

from repro.cluster.decomp import halo_neighbor_count
from repro.utils.validation import check_positive


def halo_bytes_per_rank(nx: int, ny: int | None = None,
                        nz: int | None = None,
                        dtype_bytes: int = 8) -> int:
    """Bytes a rank sends per halo exchange (27-point, depth-1 halo).

    Six faces, twelve edges and eight corners of the local brick.
    """
    check_positive(nx, "nx")
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    faces = 2 * (nx * ny + ny * nz + nx * nz)
    edges = 4 * (nx + ny + nz)
    corners = 8
    return (faces + edges + corners) * dtype_bytes


def halo_seconds(nx: int, proc_grid: tuple, link_bw_gbs: float,
                 link_latency_us: float, dtype_bytes: int = 8) -> float:
    """Time of one halo exchange for an interior rank.

    Messages to the (up to) 26 neighbors share the rank's injection
    link; each message pays one latency.
    """
    neighbors = halo_neighbor_count(proc_grid)
    volume = halo_bytes_per_rank(nx, dtype_bytes=dtype_bytes)
    return (neighbors * link_latency_us * 1e-6
            + volume / (link_bw_gbs * 1e9))
