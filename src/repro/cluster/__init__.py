"""Distributed weak-scaling model (§V-C, Fig. 7).

The paper scales DBSR-optimized HPCG to a 256-node Phytium 2000+
cluster (2048 MPI ranks x 8 cores). This package substitutes that
cluster with an explicit model: 3-D rank decomposition, 27-point halo
exchange volumes, network latency/bandwidth, and allreduce trees on top
of the per-node compute projection from :mod:`repro.hpcg`.
"""

from repro.cluster.decomp import decompose_ranks, halo_neighbor_count
from repro.cluster.halo import halo_bytes_per_rank, halo_seconds
from repro.cluster.weakscaling import (
    NetworkModel,
    WeakScalingPoint,
    weak_scaling_sweep,
)
from repro.cluster.distributed_solver import (
    distributed_pcg,
    local_ilu_preconditioners,
)
from repro.cluster.functional import (
    DistributedProblem,
    RankDomain,
    build_distributed,
    distributed_dot,
    distributed_residual_norm,
    distributed_spmv,
    halo_exchange,
)

__all__ = [
    "decompose_ranks",
    "halo_neighbor_count",
    "halo_bytes_per_rank",
    "halo_seconds",
    "NetworkModel",
    "WeakScalingPoint",
    "weak_scaling_sweep",
    "DistributedProblem",
    "RankDomain",
    "build_distributed",
    "halo_exchange",
    "distributed_spmv",
    "distributed_dot",
    "distributed_residual_norm",
    "distributed_pcg",
    "local_ilu_preconditioners",
]
