"""Functional distributed execution (sequentially simulated MPI).

The weak-scaling model in :mod:`repro.cluster.weakscaling` prices halo
exchanges analytically; this module *executes* them: the global grid
is decomposed into per-rank bricks (HPCG-style, with uneven tails when
a grid dimension does not divide evenly), each rank holds a local
matrix whose columns reference owned + ghost unknowns, and
:func:`halo_exchange` moves real data between ranks (sequentially — a
simulated communicator).

Two local column layouts coexist, because they serve different
consumers:

* ``matrix`` — **owned-first**: columns ``< n_owned`` are owned
  unknowns, columns ``>= n_owned`` index the ghost region. The
  distributed ILU/PCG solver keys off this split.
* ``interleaved`` — columns merged in **global-id order**
  (``col_global``). Per-row summation order then matches the global
  CSR operator exactly, so :func:`distributed_spmv` is bit-identical
  to ``A @ x`` — not merely close — which is what the sharded serving
  layer's differential tests assert.

Halo exchanges run off precomputed receive plans (one index-gather per
neighbor rank), so each exchange also reports its message count and
byte volume for the observability layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.cluster.decomp import decompose_ranks_nd
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.grids.problems import Problem
from repro.utils.validation import require


def brick_splits(extent: int, parts: int) -> tuple[list, list]:
    """Split ``extent`` grid points into ``parts`` near-equal bricks.

    Returns ``(sizes, starts)``; the first ``extent % parts`` bricks
    get one extra point, so every brick is non-empty as long as
    ``parts <= extent``.
    """
    require(1 <= parts <= extent,
            f"cannot split {extent} points into {parts} bricks")
    base, rem = divmod(extent, parts)
    sizes = [base + 1] * rem + [base] * (parts - rem)
    starts = list(np.cumsum([0] + sizes[:-1]))
    return sizes, starts


@dataclass
class RankDomain:
    """One simulated MPI rank.

    Attributes
    ----------
    rank:
        Rank id (lexicographic in the process grid, x fastest).
    owned_global:
        Global ids of owned points, ascending (local id = position).
    ghost_global:
        Global ids of ghost points this rank reads, ascending.
    ghost_owner:
        Owning rank of each ghost point.
    matrix:
        Local CSR of shape ``(n_owned, n_owned + n_ghost)`` in the
        owned-first layout; columns ``>= n_owned`` index the ghost
        region.
    brick_dims / brick_origin:
        This rank's brick extents and lower corner in the global grid.
    interleaved:
        Same rows as ``matrix`` but with columns in global-id order
        (``col_global``); matvecs through it reproduce the global
        operator bit-for-bit.
    col_global:
        Merged ascending global ids of the interleaved columns.
    own_pos / ghost_pos:
        Positions of the owned / ghost unknowns inside ``col_global``.
    recv_plan:
        Per-neighbor receive plan: ``(owner_rank, src_idx, dst_idx)``
        triples such that ``ghost[dst_idx] = x_owner[src_idx]``.
    """

    rank: int
    owned_global: np.ndarray
    ghost_global: np.ndarray
    ghost_owner: np.ndarray
    matrix: CSRMatrix
    brick_dims: tuple = ()
    brick_origin: tuple = ()
    interleaved: CSRMatrix | None = field(default=None, repr=False)
    col_global: np.ndarray | None = field(default=None, repr=False)
    own_pos: np.ndarray | None = field(default=None, repr=False)
    ghost_pos: np.ndarray | None = field(default=None, repr=False)
    recv_plan: list = field(default_factory=list, repr=False)
    ghost_values: np.ndarray = field(default=None, repr=False)

    @property
    def n_owned(self) -> int:
        return len(self.owned_global)

    @property
    def n_ghost(self) -> int:
        return len(self.ghost_global)

    @property
    def neighbor_ranks(self) -> list:
        """Distinct ranks this rank receives ghost data from."""
        return sorted(int(o) for o in np.unique(self.ghost_owner))

    def halo_bytes(self, dtype_bytes: int = 8) -> int:
        """Bytes received per exchange (one value per ghost)."""
        return self.n_ghost * dtype_bytes

    @cached_property
    def owned_block(self) -> CSRMatrix:
        """The ``(n_owned, n_owned)`` diagonal block of the operator.

        Equals the standalone brick operator
        ``assemble_csr(StructuredGrid(brick_dims), stencil)`` exactly —
        stencil weights depend only on the offset and boundary rows are
        pure truncations, so the sharded block-Jacobi plans act on the
        global matrix's own diagonal blocks.
        """
        m = self.matrix
        rows = np.repeat(np.arange(self.n_owned), np.diff(m.indptr))
        mask = m.indices < self.n_owned
        return CSRMatrix.from_coo(COOMatrix(
            rows[mask], m.indices[mask], m.data[mask].copy(),
            (self.n_owned, self.n_owned)))

    @cached_property
    def coupling(self) -> CSRMatrix:
        """The ``(n_owned, n_ghost)`` off-brick coupling block ``G``.

        ``G @ ghost_values`` is the contribution of neighbor bricks to
        this rank's rows — the term block-Jacobi SYMGS feeds back as a
        right-hand-side correction between sweeps.
        """
        m = self.matrix
        rows = np.repeat(np.arange(self.n_owned), np.diff(m.indptr))
        mask = m.indices >= self.n_owned
        return CSRMatrix.from_coo(COOMatrix(
            rows[mask], m.indices[mask] - self.n_owned,
            m.data[mask].copy(), (self.n_owned, self.n_ghost)))


@dataclass
class DistributedProblem:
    """A problem decomposed over a simulated rank grid."""

    problem: Problem
    proc_grid: tuple
    owner_of: np.ndarray
    ranks: list

    @property
    def n_ranks(self) -> int:
        return len(self.ranks)

    # Vector plumbing ----------------------------------------------------
    def scatter(self, global_vec: np.ndarray) -> list:
        """Split a global vector into per-rank owned slices."""
        return [global_vec[r.owned_global].copy() for r in self.ranks]

    def gather(self, locals_: list) -> np.ndarray:
        """Reassemble per-rank owned slices into a global vector."""
        out = np.empty(self.problem.n, dtype=locals_[0].dtype)
        for r, loc in zip(self.ranks, locals_):
            out[r.owned_global] = loc
        return out


def default_proc_grid(n_ranks: int, ndim: int) -> tuple:
    """Most-cubic ``ndim``-ary process grid for ``n_ranks``."""
    return tuple(sorted(decompose_ranks_nd(n_ranks, ndim),
                        reverse=True))


def build_distributed(problem: Problem, n_ranks: int,
                      proc_grid: tuple | None = None
                      ) -> DistributedProblem:
    """Decompose ``problem`` over ``n_ranks`` simulated ranks.

    Grid dimensions need not divide evenly: uneven remainders go to
    the leading bricks of each dimension (every brick stays non-empty,
    so the only rejection is a process grid with more ranks than
    points along some dimension).
    """
    grid = problem.grid
    if proc_grid is None:
        proc_grid = default_proc_grid(n_ranks, grid.ndim)
    require(len(proc_grid) == grid.ndim, "process grid arity mismatch")
    require(int(np.prod(proc_grid)) == n_ranks,
            "process grid does not match rank count")

    splits = [brick_splits(g, p) for g, p in zip(grid.dims, proc_grid)]
    starts = [np.asarray(st) for _, st in splits]
    coords = grid.coords_array()
    rank_coord = np.stack(
        [np.searchsorted(starts[d], coords[:, d], side="right") - 1
         for d in range(grid.ndim)], axis=1)
    proc_strides = [1]
    for p in proc_grid[:-1]:
        proc_strides.append(proc_strides[-1] * p)
    owner_of = (rank_coord * np.asarray(proc_strides)).sum(axis=1)

    A = problem.matrix
    rows_global = np.repeat(np.arange(problem.n), np.diff(A.indptr))
    ranks = []
    for r in range(n_ranks):
        pc = []
        rr = r
        for p in proc_grid:
            pc.append(rr % p)
            rr //= p
        brick_dims = tuple(splits[d][0][pc[d]]
                           for d in range(grid.ndim))
        brick_origin = tuple(int(starts[d][pc[d]])
                             for d in range(grid.ndim))
        owned = np.flatnonzero(owner_of == r)
        mask = owner_of[rows_global] == r
        sub_rows = rows_global[mask]
        sub_cols = A.indices[mask]
        sub_vals = A.data[mask]
        ghost = np.unique(
            sub_cols[owner_of[sub_cols] != r]).astype(np.int64)
        new_rows = np.searchsorted(owned, sub_rows)
        is_owned_col = owner_of[sub_cols] == r
        new_cols = np.where(
            is_owned_col,
            np.searchsorted(owned, sub_cols),
            len(owned) + np.searchsorted(ghost, sub_cols))
        local = CSRMatrix.from_coo(COOMatrix(
            new_rows, new_cols, sub_vals,
            (len(owned), len(owned) + len(ghost))))
        # Interleaved layout: columns merged in global-id order, so
        # CSR row sums run in exactly the global operator's order.
        col_global = np.sort(np.concatenate([owned, ghost]))
        inter = CSRMatrix.from_coo(COOMatrix(
            new_rows, np.searchsorted(col_global, sub_cols),
            sub_vals.copy(), (len(owned), len(col_global))))
        ranks.append(RankDomain(
            rank=r, owned_global=owned, ghost_global=ghost,
            ghost_owner=owner_of[ghost], matrix=local,
            brick_dims=brick_dims, brick_origin=brick_origin,
            interleaved=inter, col_global=col_global,
            own_pos=np.searchsorted(col_global, owned),
            ghost_pos=np.searchsorted(col_global, ghost),
        ))
    for r in ranks:
        r.recv_plan = _build_recv_plan(r, ranks)
    return DistributedProblem(problem=problem, proc_grid=proc_grid,
                              owner_of=owner_of, ranks=ranks)


def _build_recv_plan(r: RankDomain, ranks: list) -> list:
    """Group a rank's ghosts by owner into gather triples."""
    if r.n_ghost == 0:
        return []
    order = np.argsort(r.ghost_owner, kind="stable")
    owners = r.ghost_owner[order]
    bounds = np.flatnonzero(np.diff(owners)) + 1
    plan = []
    for seg in np.split(order, bounds):
        owner = int(r.ghost_owner[seg[0]])
        src = np.searchsorted(ranks[owner].owned_global,
                              r.ghost_global[seg])
        plan.append((owner, src, seg))
    return plan


def halo_exchange(dist: DistributedProblem, x_locals: list) -> dict:
    """Fill every rank's ghost buffer from the owners' local data.

    Returns exchange statistics: total ``values`` moved, point-to-point
    ``messages`` (one per (receiver, owner) pair), and ``bytes``.
    """
    dtype = np.asarray(x_locals[0]).dtype
    values = messages = 0
    for r in dist.ranks:
        if r.ghost_values is None or \
                r.ghost_values.shape != (r.n_ghost,) or \
                r.ghost_values.dtype != dtype:
            r.ghost_values = np.zeros(r.n_ghost, dtype=dtype)
        for owner, src, dst in r.recv_plan:
            r.ghost_values[dst] = x_locals[owner][src]
            messages += 1
        values += r.n_ghost
    return {"values": values, "messages": messages,
            "bytes": values * dtype.itemsize}


def halo_exchange_block(dist: DistributedProblem,
                        X_locals: list) -> tuple[list, dict]:
    """Block (multi-RHS) halo exchange: ``(n_owned, k)`` per rank in,
    ``(n_ghost, k)`` ghost blocks out, plus per-rank volume stats.

    Unlike :func:`halo_exchange` this does not touch the ranks'
    ``ghost_values`` buffers, so concurrent sharded solves over the
    same decomposition cannot interfere.
    """
    k = int(X_locals[0].shape[1])
    dtype = X_locals[0].dtype
    ghosts, per_rank_bytes = [], []
    messages = 0
    for r in dist.ranks:
        g = np.zeros((r.n_ghost, k), dtype=dtype)
        for owner, src, dst in r.recv_plan:
            g[dst] = X_locals[owner][src]
            messages += 1
        ghosts.append(g)
        per_rank_bytes.append(r.n_ghost * k * dtype.itemsize)
    return ghosts, {"bytes": int(sum(per_rank_bytes)),
                    "messages": messages, "k": k,
                    "per_rank_bytes": per_rank_bytes}


def interleave_full(r: RankDomain, x_owned: np.ndarray,
                    x_ghost: np.ndarray) -> np.ndarray:
    """Merge owned + ghost data into the interleaved column order."""
    shape = (len(r.col_global),) + x_owned.shape[1:]
    xfull = np.empty(shape, dtype=x_owned.dtype)
    xfull[r.own_pos] = x_owned
    if r.n_ghost:
        xfull[r.ghost_pos] = x_ghost
    return xfull


def distributed_spmv(dist: DistributedProblem, x_locals: list) -> list:
    """``A @ x`` executed rank by rank with a preceding halo exchange.

    Bit-identical to the global matvec: each local row's nonzeros sit
    in global column order in the ``interleaved`` matrix, so
    ``np.add.reduceat`` accumulates in the same order as the global
    CSR row.
    """
    halo_exchange(dist, x_locals)
    out = []
    for r, xl in zip(dist.ranks, x_locals):
        xfull = interleave_full(r, xl, r.ghost_values)
        out.append(r.interleaved.matvec(xfull))
    return out


def distributed_dot(x_locals: list, y_locals: list) -> float:
    """Allreduce-style global dot product."""
    return float(sum(float(x @ y)
                     for x, y in zip(x_locals, y_locals)))


def distributed_residual_norm(dist: DistributedProblem, x_locals: list,
                              b_locals: list) -> float:
    """Global ``||b - A x||`` via distributed SpMV + allreduce."""
    y = distributed_spmv(dist, x_locals)
    sq = sum(float(((b - yy) ** 2).sum())
             for b, yy in zip(b_locals, y))
    return float(np.sqrt(sq))
