"""Functional distributed execution (sequentially simulated MPI).

The weak-scaling model in :mod:`repro.cluster.weakscaling` prices halo
exchanges analytically; this module *executes* them: the global grid
is decomposed into per-rank bricks, each rank holds a local matrix
whose columns reference owned + ghost unknowns, and
:func:`halo_exchange` moves real data between ranks (sequentially — a
simulated communicator). Distributed SpMV/dot/residual are verified
bit-for-bit against the global operator, validating both the
decomposition logic and the halo-volume formulas the model uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.decomp import decompose_ranks
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.grids.grid import StructuredGrid
from repro.grids.problems import Problem
from repro.utils.validation import require


@dataclass
class RankDomain:
    """One simulated MPI rank.

    Attributes
    ----------
    rank:
        Rank id (lexicographic in the process grid).
    owned_global:
        Global ids of owned points, ascending (local id = position).
    ghost_global:
        Global ids of ghost points this rank reads, ascending.
    ghost_owner:
        Owning rank of each ghost point.
    matrix:
        Local CSR of shape ``(n_owned, n_owned + n_ghost)``; columns
        ``>= n_owned`` index into the ghost region.
    """

    rank: int
    owned_global: np.ndarray
    ghost_global: np.ndarray
    ghost_owner: np.ndarray
    matrix: CSRMatrix
    ghost_values: np.ndarray = field(default=None, repr=False)

    @property
    def n_owned(self) -> int:
        return len(self.owned_global)

    @property
    def n_ghost(self) -> int:
        return len(self.ghost_global)

    def halo_bytes(self, dtype_bytes: int = 8) -> int:
        """Bytes received per exchange (one value per ghost)."""
        return self.n_ghost * dtype_bytes


@dataclass
class DistributedProblem:
    """A problem decomposed over a simulated rank grid."""

    problem: Problem
    proc_grid: tuple
    owner_of: np.ndarray
    ranks: list

    @property
    def n_ranks(self) -> int:
        return len(self.ranks)

    # Vector plumbing ----------------------------------------------------
    def scatter(self, global_vec: np.ndarray) -> list:
        """Split a global vector into per-rank owned slices."""
        return [global_vec[r.owned_global].copy() for r in self.ranks]

    def gather(self, locals_: list) -> np.ndarray:
        """Reassemble per-rank owned slices into a global vector."""
        out = np.empty(self.problem.n, dtype=locals_[0].dtype)
        for r, loc in zip(self.ranks, locals_):
            out[r.owned_global] = loc
        return out


def build_distributed(problem: Problem, n_ranks: int,
                      proc_grid: tuple | None = None
                      ) -> DistributedProblem:
    """Decompose ``problem`` over ``n_ranks`` simulated ranks.

    The global grid must be divisible by the process grid in every
    dimension (HPCG's constraint).
    """
    grid = problem.grid
    if proc_grid is None:
        pg = decompose_ranks(n_ranks)
        # decompose_ranks is 3-D; trim to the grid's arity.
        pg = tuple(sorted(pg, reverse=True))[:grid.ndim]
        while int(np.prod(pg)) < n_ranks:
            pg = pg + (n_ranks // int(np.prod(pg)),)
        proc_grid = pg
    require(len(proc_grid) == grid.ndim, "process grid arity mismatch")
    require(int(np.prod(proc_grid)) == n_ranks,
            "process grid does not match rank count")
    for g, p in zip(grid.dims, proc_grid):
        require(g % p == 0, f"grid dim {g} not divisible by {p} ranks")

    brick = tuple(g // p for g, p in zip(grid.dims, proc_grid))
    coords = grid.coords_array()
    rank_coord = coords // np.asarray(brick)
    proc_strides = [1]
    for p in proc_grid[:-1]:
        proc_strides.append(proc_strides[-1] * p)
    owner_of = (rank_coord * np.asarray(proc_strides)).sum(axis=1)

    A = problem.matrix
    rows_global = np.repeat(np.arange(problem.n), np.diff(A.indptr))
    ranks = []
    for r in range(n_ranks):
        owned = np.flatnonzero(owner_of == r)
        local_of = {int(g): i for i, g in enumerate(owned)}
        mask = owner_of[rows_global] == r
        sub_rows = rows_global[mask]
        sub_cols = A.indices[mask]
        sub_vals = A.data[mask]
        ghost = np.unique(
            sub_cols[owner_of[sub_cols] != r]).astype(np.int64)
        ghost_of = {int(g): len(owned) + i for i, g in enumerate(ghost)}
        new_rows = np.fromiter(
            (local_of[int(g)] for g in sub_rows), dtype=np.int64,
            count=len(sub_rows))
        new_cols = np.fromiter(
            (local_of.get(int(c), ghost_of.get(int(c), -1))
             for c in sub_cols), dtype=np.int64, count=len(sub_cols))
        local = CSRMatrix.from_coo(COOMatrix(
            new_rows, new_cols, sub_vals,
            (len(owned), len(owned) + len(ghost))))
        ranks.append(RankDomain(
            rank=r, owned_global=owned, ghost_global=ghost,
            ghost_owner=owner_of[ghost], matrix=local,
        ))
    return DistributedProblem(problem=problem, proc_grid=proc_grid,
                              owner_of=owner_of, ranks=ranks)


def halo_exchange(dist: DistributedProblem, x_locals: list) -> None:
    """Fill every rank's ghost buffer from the owners' local data."""
    # Global position lookup per rank for O(1) ghost resolution.
    for r in dist.ranks:
        if r.ghost_values is None or \
                len(r.ghost_values) != r.n_ghost:
            r.ghost_values = np.zeros(r.n_ghost,
                                      dtype=x_locals[0].dtype)
        for k, (g, owner) in enumerate(zip(r.ghost_global,
                                           r.ghost_owner)):
            owner_rank = dist.ranks[int(owner)]
            pos = np.searchsorted(owner_rank.owned_global, g)
            r.ghost_values[k] = x_locals[int(owner)][pos]


def distributed_spmv(dist: DistributedProblem, x_locals: list) -> list:
    """``A @ x`` executed rank by rank with a preceding halo exchange."""
    halo_exchange(dist, x_locals)
    out = []
    for r, xl in zip(dist.ranks, x_locals):
        xfull = np.concatenate([xl, r.ghost_values])
        out.append(r.matrix.matvec(xfull))
    return out


def distributed_dot(x_locals: list, y_locals: list) -> float:
    """Allreduce-style global dot product."""
    return float(sum(float(x @ y)
                     for x, y in zip(x_locals, y_locals)))


def distributed_residual_norm(dist: DistributedProblem, x_locals: list,
                              b_locals: list) -> float:
    """Global ``||b - A x||`` via distributed SpMV + allreduce."""
    y = distributed_spmv(dist, x_locals)
    sq = sum(float(((b - yy) ** 2).sum())
             for b, yy in zip(b_locals, y))
    return float(np.sqrt(sq))
