"""Distributed PCG on the simulated-MPI substrate.

A complete distributed solver built only from the communication
primitives of :mod:`repro.cluster.functional` (halo exchange,
allreduce-style dots): preconditioned CG with a rank-local block-Jacobi
ILU(0) preconditioner — the communication-free preconditioner real
distributed HPCG-class codes use between halo exchanges. Verifies the
whole distributed stack end-to-end against the global solve.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.functional import (
    DistributedProblem,
    distributed_dot,
    distributed_spmv,
)
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.ilu.ilu0_csr import ilu0_apply_csr, ilu0_factorize_csr
from repro.solvers.convergence import ConvergenceHistory


def local_ilu_preconditioners(dist: DistributedProblem) -> list:
    """Rank-local ILU(0) factors of each rank's owned diagonal block.

    Couplings to ghost unknowns are dropped — distributed block
    Jacobi, so applying the preconditioner needs no communication.
    """
    factors = []
    for r in dist.ranks:
        m = r.matrix
        rows = np.repeat(np.arange(m.n_rows), np.diff(m.indptr))
        keep = m.indices < r.n_owned
        local = CSRMatrix.from_coo(COOMatrix(
            rows[keep], m.indices[keep], m.data[keep],
            (r.n_owned, r.n_owned)))
        factors.append(ilu0_factorize_csr(local))
    return factors


def distributed_pcg(dist: DistributedProblem, b_locals: list,
                    tol: float = 1e-8, maxiter: int = 500,
                    precondition: bool = True) -> tuple:
    """Distributed preconditioned CG.

    Parameters
    ----------
    dist:
        The decomposed problem.
    b_locals:
        Per-rank right-hand-side slices.
    precondition:
        Apply the rank-local ILU(0) block-Jacobi preconditioner.

    Returns
    -------
    (x_locals, history)
    """
    factors = local_ilu_preconditioners(dist) if precondition else None

    def apply_m(r_locals: list) -> list:
        if factors is None:
            return [r.copy() for r in r_locals]
        return [ilu0_apply_csr(f, r)
                for f, r in zip(factors, r_locals)]

    x = [np.zeros(r.n_owned) for r in dist.ranks]
    res = [bb.copy() for bb in b_locals]
    bnorm = np.sqrt(distributed_dot(b_locals, b_locals)) or 1.0
    hist = ConvergenceHistory(tol=tol)
    hist.record(np.sqrt(distributed_dot(res, res)))
    z = apply_m(res)
    p = [zz.copy() for zz in z]
    rz = distributed_dot(res, z)
    for _ in range(maxiter):
        rnorm = np.sqrt(distributed_dot(res, res))
        if rnorm / bnorm <= tol:
            hist.converged = True
            break
        Ap = distributed_spmv(dist, p)
        alpha = rz / distributed_dot(p, Ap)
        for xl, pl, rl, apl in zip(x, p, res, Ap):
            xl += alpha * pl
            rl -= alpha * apl
        hist.record(np.sqrt(distributed_dot(res, res)))
        z = apply_m(res)
        rz_new = distributed_dot(res, z)
        beta = rz_new / rz
        for pl, zl in zip(p, z):
            pl[:] = zl + beta * pl
        rz = rz_new
    else:
        hist.converged = (np.sqrt(distributed_dot(res, res))
                          / bnorm <= tol)
    return x, hist
