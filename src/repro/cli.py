"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro.cli hpcg --nx 16 --variant dbsr
    python -m repro.cli ilu --nx 8 --strategy simd-auto --threads 16
    python -m repro.cli storage --nx 16 --bsizes 1,2,4,8,16
    python -m repro.cli weak-scaling --variant dbsr --nodes 1,4,16,64,256
    python -m repro.cli figures fig9
    python -m repro.cli bench all --quick
    python -m repro.cli bench all --update-references
    python -m repro.cli bench-runtime --nx 8 --workers 4
    python -m repro.cli serve-bench --nx 8 --requests 24
    python -m repro.cli ilu-bench --nx 8 --values 4
    python -m repro.cli shard-bench --nx 9 --ranks 27
    python -m repro.cli gateway-bench --nx 6 --requests 18
    python -m repro.cli gateway-chaos-bench --nx 5 --requests 8
    python -m repro.cli chaos-bench --nx 8 --quick
    python -m repro.cli trace --nx 8 --strategy dbsr
    python -m repro.cli solve path/to/matrix.mtx --bsize 4
    python -m repro.cli spy path/to/matrix.mtx
    python -m repro.cli analyze --nx 8 --stencil 7pt

or via the ``dbsr-repro`` console script.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_hpcg(args) -> int:
    from repro.hpcg import (
        best_allocation,
        build_hpcg_model,
        run_hpcg,
    )
    from repro.simd.machine import TABLE1_MACHINES

    if args.validate:
        from repro.hpcg.validation import validate_variant

        report = validate_variant(nx=args.nx, variant=args.variant,
                                  n_levels=args.levels,
                                  bsize=args.bsize,
                                  n_workers=args.workers)
        print(report.summary())
        if not report.passed:
            return 1
    r = run_hpcg(nx=args.nx, variant=args.variant,
                 n_levels=args.levels, max_iters=args.max_iters,
                 tol=args.tol, bsize=args.bsize,
                 n_workers=args.workers)
    print(f"HPCG[{args.variant}] nx={args.nx}: "
          f"iters={r.iterations} relres={r.final_relres:.3e} "
          f"GFLOP={r.flops / 1e9:.3f} converged={r.converged}")
    if args.model:
        model = build_hpcg_model(nx=args.nx, variant=args.variant,
                                 n_levels=args.levels,
                                 bsize=args.bsize,
                                 n_workers=args.workers)
        for m in TABLE1_MACHINES:
            p, t, g = best_allocation(m, model)
            print(f"  {m.name}: best P{p}xT{t} -> {g:.1f} GFLOPS "
                  f"(192^3 projection)")
    return 0


def _cmd_ilu(args) -> int:
    from repro.grids.problems import poisson_problem
    from repro.ilu.strategies import STRATEGY_NAMES, make_strategy
    from repro.solvers.stationary import preconditioned_richardson

    problem = poisson_problem((args.nx,) * 3, args.stencil)
    names = ([args.strategy] if args.strategy != "all"
             else list(STRATEGY_NAMES))
    for name in names:
        s = make_strategy(name, problem, n_workers=args.threads,
                          bsize=args.bsize)
        s.factorize()
        _, hist = preconditioned_richardson(
            problem.matrix, problem.rhs, s.apply, tol=args.tol,
            maxiter=args.max_iters)
        c = s.smoothing_counter()
        print(f"{name:10s} iters={hist.iterations:4d} "
              f"colors={s.n_colors} parallelism={s.parallelism:g} "
              f"traffic={c.total_bytes // 1024}KiB "
              f"gather-free={'yes' if c.bytes_gathered == 0 else 'no'}")
    return 0


def _cmd_storage(args) -> int:
    from repro.grids.problems import poisson_problem
    from repro.perfmodel.bsize_model import storage_sweep
    from repro.utils.tables import format_table

    problem = poisson_problem((args.nx,) * 3, args.stencil)
    bsizes = tuple(int(b) for b in args.bsizes.split(","))
    rows = storage_sweep(problem, bsizes=bsizes, bsize_offset_bytes=1,
                         value_bytes=args.value_bytes)
    print(format_table(
        ["bsize", "CSR B", "DBSR idx B", "DBSR nnz B", "DBSR pad B",
         "DBSR total B"],
        rows, title=f"Storage, {args.nx}^3 {args.stencil} "
        f"({args.value_bytes}-byte values)"))
    return 0


def _cmd_weak_scaling(args) -> int:
    from repro.cluster.weakscaling import weak_scaling_sweep
    from repro.hpcg.benchmark import build_hpcg_model
    from repro.utils.tables import format_table

    model = build_hpcg_model(nx=args.nx, variant=args.variant,
                             n_levels=args.levels, bsize=args.bsize,
                             n_workers=8)
    nodes = tuple(int(n) for n in args.nodes.split(","))
    pts = weak_scaling_sweep(model, node_counts=nodes,
                             nx_model=args.nx)
    print(format_table(
        ["nodes", "ranks", "GFLOPS", "efficiency"],
        [(p.nodes, p.ranks, f"{p.gflops:.1f}",
          f"{p.efficiency * 100:.1f}%") for p in pts],
        title=f"Weak scaling ({args.variant}, Phytium 2000+ model)"))
    return 0


def _cmd_solve(args) -> int:
    from repro.formats.csr import CSRMatrix
    from repro.formats.dbsr import DBSRMatrix
    from repro.formats.io import read_matrix_market
    from repro.ilu.ilu0_dbsr import ilu0_apply_dbsr, ilu0_factorize_dbsr
    from repro.ordering.abmc import build_abmc
    from repro.solvers.stationary import preconditioned_richardson

    csr = CSRMatrix.from_coo(read_matrix_market(args.matrix))
    print(f"matrix: {csr.n_rows}x{csr.n_cols}, nnz={csr.nnz}")
    abmc = build_abmc(csr, block_size=args.block_size,
                      bsize=args.bsize)
    dbsr = DBSRMatrix.from_csr(abmc.apply_matrix(csr), args.bsize)
    print(f"ABMC: {abmc.n_colors} colors, {len(abmc.blocks)} blocks; "
          f"DBSR: {dbsr.n_tiles} tiles")
    f = ilu0_factorize_dbsr(dbsr)
    b = csr.matvec(np.ones(csr.n_rows))
    x, hist = preconditioned_richardson(
        csr, b,
        lambda r: abmc.restrict(ilu0_apply_dbsr(f, abmc.extend(r))),
        tol=args.tol, maxiter=args.max_iters)
    from repro.utils.sparkline import convergence_panel

    print(convergence_panel(hist))
    print(f"max|x-1|={np.abs(x - 1).max():.3e}")
    return 0 if hist.converged else 1


def _cmd_bench_runtime(args) -> int:
    from repro.runtime.metrics import (
        collect_bench_runtime,
        write_bench_json,
    )

    report = collect_bench_runtime(
        nx=args.nx, stencil=args.stencil, bsize=args.bsize,
        n_workers=args.workers, dtype=args.dtype,
        repeats=args.repeats, backend=args.backend,
        seed=args.seed)
    path = write_bench_json(report, args.out)
    ker = report["kernels"]
    for name in sorted(ker):
        entry = ker[name]
        c = entry["counts"]
        line = (f"{name:20s} {entry['seconds'] * 1e3:8.3f} ms  "
                f"{c['bytes']['total'] / 1024:8.1f} KiB  "
                f"{c['flops']:>10d} flops")
        if "speedup_vs_sequential" in entry:
            line += f"  x{entry['speedup_vs_sequential']:.2f} parallel"
        print(line)
    tiers = report["backends"]
    print(f"backend: {tiers['requested']} "
          f"(resolved {tiers['resolved']}; "
          f"available: {', '.join(tiers['available'])})")
    for tier_name, secs in tiers["seconds"].items():
        print(f"  {tier_name:14s} " + "  ".join(
            f"{op} {secs[op] * 1e3:8.3f} ms" for op in sorted(secs)))
    print(f"pools created: {report['session']['pools_created']}")
    print(f"[written to {path}]")
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.runtime.metrics import write_bench_json
    from repro.serve.bench import collect_bench_serve

    report = collect_bench_serve(
        nx=args.nx, stencil=args.stencil, n_requests=args.requests,
        max_batch=args.max_batch, n_workers=args.workers,
        dtype=args.dtype, machine=args.machine,
        seed=args.seed, backend=args.backend)
    path = write_bench_json(report, args.out)
    cache = report["cache"]
    print(f"plan cache: {cache['hits']} hits / {cache['misses']} misses "
          f"(rate {cache['hit_rate'] * 100:.1f}%), "
          f"{cache['compiles']} compiles in "
          f"{cache['compile_seconds'] * 1e3:.1f} ms")
    amort = report["amortization"]
    print(f"amortized setup: "
          f"{amort['amortized_setup_seconds_per_request'] * 1e3:.3f} "
          f"ms/request over {report['config']['n_requests']} requests")
    scaling = report["batch_scaling"]
    for w in scaling["widths"]:
        print(f"k={w['k']:2d}  value B/solve "
              f"{w['value_bytes_per_solve']:10.1f}  total B/solve "
              f"{w['total_bytes_per_solve']:10.1f}  "
              f"bitwise={'yes' if w['bitwise_equal_to_unbatched'] else 'NO'}")
    ok = (scaling["value_bytes_per_solve_decreasing"]
          and scaling["all_bitwise_equal"])
    print(f"value bytes/solve strictly decreasing: "
          f"{'yes' if scaling['value_bytes_per_solve_decreasing'] else 'NO'}")
    print(f"[written to {path}]")
    return 0 if ok else 1


def _cmd_ilu_bench(args) -> int:
    from repro.runtime.metrics import write_bench_json
    from repro.serve.ilu_bench import collect_bench_ilu

    report = collect_bench_ilu(
        nx=args.nx, stencil=args.stencil, n_values=args.values,
        n_requests=args.requests, max_batch=args.max_batch,
        n_workers=args.workers, dtype=args.dtype,
        machine=args.machine, seed=args.seed, backend=args.backend)
    path = write_bench_json(report, args.out)
    rp = report["repack"]
    print(f"cold compile {rp['cold_compile_seconds'] * 1e3:.1f} ms, "
          f"value-only repack "
          f"{rp['refresh_seconds_mean'] * 1e3:.1f} ms mean over "
          f"{rp['n_refreshes']} refreshes "
          f"(ratio {rp['amortization_ratio']:.3f}, gate "
          f"{'pass' if rp['refresh_le_half_cold'] else 'FAIL'})")
    print(f"repack bitwise == cold: "
          f"{'yes' if rp['repack_bitwise_equals_cold'] else 'NO'}; "
          f"DBSR apply bitwise == CSR rung: "
          f"{'yes' if rp['apply_bitwise_equals_csr_rung'] else 'NO'}")
    iso = report["sibling_isolation"]
    print(f"sibling isolation under invalidate+refresh: "
          f"{'yes' if iso['isolated'] else 'NO'}")
    svc = report["service"]
    print(f"service: {svc['completed']}/{svc['submitted']} completed "
          f"in {svc['batches_executed']} batches, "
          f"{svc['failed']} failed")
    print(f"[written to {path}]")
    ok = (rp["refresh_le_half_cold"]
          and rp["repack_bitwise_equals_cold"]
          and rp["apply_bitwise_equals_csr_rung"]
          and iso["isolated"] and svc["failed"] == 0)
    return 0 if ok else 1


def _cmd_shard_bench(args) -> int:
    from repro.runtime.metrics import write_bench_json
    from repro.shard.bench import collect_bench_shard

    report = collect_bench_shard(
        nx=args.nx, stencil=args.stencil, n_ranks=args.ranks,
        n_requests=args.requests, max_batch=args.max_batch,
        n_workers=args.workers, dtype=args.dtype,
        machine=args.machine, seed=args.seed)
    path = write_bench_json(report, args.out)
    cfg = report["config"]
    print(f"sharded {cfg['nx']}^3 {cfg['stencil']} over "
          f"{cfg['n_ranks']} ranks {tuple(cfg['proc_grid'])}: "
          f"{cfg['n_requests']} requests")
    print(f"per-shard cache hit rate >= "
          f"{report['per_shard_hit_rate_min'] * 100:.1f}%")
    halo = report["halo"]
    print(f"halo: {halo['measured']['bytes']} B over "
          f"{halo['measured']['exchanges']} exchanges "
          f"({halo['measured']['messages']} messages), "
          f"matches per-request closed form: "
          f"{'yes' if halo['bytes_match_requests'] else 'NO'}")
    closed = halo["closed_form"]
    if closed is not None:
        print(f"interior rank {closed['interior_rank']}: "
              f"{closed['measured_ghost_bytes']} ghost B vs "
              f"{closed['expected_bytes']} analytic "
              f"({'match' if closed['bytes_match'] else 'MISMATCH'}), "
              f"{closed['neighbors']}/{closed['expected_neighbors']} "
              f"neighbors")
    for name, val in report["identity"].items():
        print(f"identity {name}: {'yes' if val else 'NO'}")
    print(f"aggregate speedup bound: "
          f"{report['schedule']['aggregate_speedup_bound']:.1f}x "
          f"across {cfg['n_ranks']} shards")
    print(f"[written to {path}]")
    return 0 if report["ok"] else 1


def _cmd_gateway_bench(args) -> int:
    from repro.gateway.bench import collect_bench_gateway
    from repro.runtime.metrics import write_bench_json

    report = collect_bench_gateway(
        nx=args.nx, stencil=args.stencil, n_requests=args.requests,
        k_stream=args.k_stream, n_workers=args.workers,
        machine=args.machine, seed=args.seed)
    path = write_bench_json(report, args.out)
    cfg = report["config"]
    print(f"gateway {cfg['nx']}^3 {cfg['stencil']}: "
          f"{report['service']['accepted_requests']} accepted / "
          f"{report['service']['rejected_requests']} rejected, "
          f"{report['service']['completed_columns']} columns solved")
    adm = report["admission"]
    print(f"infeasible deadline rejected pre-compile: "
          f"{'yes' if adm['rejected'] else 'NO'} "
          f"(compile delta {adm['compile_delta']})")
    stream = report["streaming"]
    print(f"streaming: first yield at "
          f"{stream['first_yield_columns_done']}/{stream['k']} "
          f"columns done (chunk={stream['stream_chunk']}), partial "
          f"before complete: "
          f"{'yes' if stream['partial_before_complete'] else 'NO'}")
    scaling = report["scaling"]
    print(f"elastic pool: {scaling['min_shards']} -> "
          f"{scaling['peak_shards']} -> {scaling['final_shards']} "
          f"shards over {len(scaling['events'])} scale events")
    for name, row in report["fairness"].items():
        print(f"tenant {name}: weight {row['weight']:g}, "
              f"pass {row['pass']:.2f}")
    for case in report["identity"]["cases"]:
        if not case["bitwise"]:
            print(f"identity MISMATCH: {case}")
    print(f"all gatewayed solves bitwise-identical: "
          f"{'yes' if report['identity']['all_bitwise'] else 'NO'}")
    print(f"[written to {path}]")
    return 0 if report["ok"] else 1


def _cmd_gateway_chaos_bench(args) -> int:
    from repro.runtime.metrics import write_bench_json
    from repro.supervise.bench import collect_bench_gateway_chaos

    report = collect_bench_gateway_chaos(
        nx=args.nx, stencil=args.stencil, n_requests=args.requests,
        n_workers=args.workers, machine=args.machine,
        seed=args.seed)
    path = write_bench_json(report, args.out)
    clean = report["clean"]
    print(f"clean: bitwise={'yes' if clean['all_bitwise'] else 'NO'} "
          f"quarantines={clean['quarantines']} "
          f"retries={clean['retries']} sheds={clean['sheds']}")
    crash = report["crash_storm"]
    print(f"crash storm: {crash['faults_injected']} faults over "
          f"{crash['n_requests']} requests, recovery "
          f"{crash['recovery_rate'] * 100:.1f}% "
          f"({crash['retries']} retries, {crash['hedges']} hedges)")
    poison = report["poison_restart"]
    print(f"poison+restart: quarantines={poison['quarantines']} "
          f"restarts={poison['restarts']} "
          f"failed_attempts={poison['restart_failures']}, backoff "
          f"{poison['backoff_total_seconds'] * 1e3:.1f} ms <= bound "
          f"{poison['backoff_budget_bound'] * 1e3:.1f} ms: "
          f"{'yes' if poison['within_backoff_budget'] else 'NO'}")
    hedging = report["hedging"]
    print(f"hedging: delay "
          f"{hedging['hedge_delay_seconds'] * 1e3:.1f} ms vs "
          f"{hedging['hang_seconds'] * 1e3:.0f} ms hang -> "
          f"{hedging['hedge_wins']} backup wins, bitwise="
          f"{'yes' if hedging['bitwise'] else 'NO'}")
    brown = report["brownout"]
    print(f"brownout: stages "
          + " -> ".join(t["to"] for t in brown["transitions"])
          + f", {brown['sheds']} sheds "
          f"(typed={'yes' if brown['shed_typed'] else 'NO'}, "
          f"retry_after={brown['shed_retry_after']}), premium kept: "
          f"{'yes' if brown['premium_admitted_during_shed'] is not False else 'NO'}")
    for name, val in report["gates"].items():
        if not val:
            print(f"gate FAILED: {name}")
    print(f"[written to {path}]")
    return 0 if report["ok"] else 1


def _cmd_chaos_bench(args) -> int:
    from repro.resilience.chaos import collect_bench_chaos
    from repro.runtime.metrics import write_bench_json

    report = collect_bench_chaos(nx=args.nx, stencil=args.stencil,
                                 bsize=args.bsize, quick=args.quick,
                                 seed=args.seed)
    path = write_bench_json(report, args.out)
    for s in report["scenarios"]:
        status = ("ok" if s["recovered"] and s["bit_identical"]
                  else "FAIL")
        depth = (f"depth {s['fallback_depth']} ({s['rung']})"
                 if s["recovered"] else "unrecovered")
        print(f"{s['scenario']:28s} {status:4s} {depth:16s} "
              f"+{max(s['added_seconds'], 0.0) * 1e3:7.2f} ms"
              + ("  [recompiled]" if s["recompiled"] else ""))
    breaker = report["circuit_breaker"]
    print(f"recovery rate: {report['recovery_rate'] * 100:.1f}% "
          f"({report['n_scenarios']} scenarios, all bit-identical to "
          f"their rung's clean path)")
    print(f"circuit breaker: opened after "
          f"{breaker['exhausted_failures']} exhausted failures = "
          f"{'yes' if breaker['breaker_opened'] else 'NO'}, "
          f"fails fast while open = "
          f"{'yes' if breaker['fails_fast_when_open'] else 'NO'}")
    print(f"[written to {path}]")
    ok = (report["recovery_rate"] == 1.0
          and breaker["breaker_opened"]
          and breaker["fails_fast_when_open"])
    return 0 if ok else 1


def _cmd_trace(args) -> int:
    from repro.observe.report import (
        collect_bench_trace,
        format_trace_table,
    )
    from repro.observe.schema_check import structural_errors
    from repro.runtime.metrics import write_bench_json

    report = collect_bench_trace(
        nx=args.nx, stencil=args.stencil, bsize=args.bsize,
        strategy=args.strategy, ops=tuple(args.ops.split(",")),
        k=args.k, n_workers=args.workers, dtype=args.dtype,
        seed=args.seed)
    path = write_bench_json(report, args.out)
    print(format_trace_table(report["table"]))
    print(f"spans: {report['n_spans']}, "
          f"submitted {report['service']['submitted']}, "
          f"completed {report['service']['completed']}, "
          f"batches {report['service']['batches_executed']}")
    if args.prometheus:
        print(report["prometheus"], end="")
    problems = structural_errors(report)
    for p in problems:
        print(f"trace report invalid: {p}", file=sys.stderr)
    print(f"[written to {path}]")
    return 1 if problems else 0


def _cmd_bench_all(args) -> int:
    from repro.regress import run_bench_all, summarize

    only = ([s for s in args.only.split(",") if s]
            if args.only else None)
    skip = [s for s in args.skip.split(",") if s] if args.skip else []
    report = run_bench_all(
        quick=args.quick, seed=args.seed, backend=args.backend,
        out=args.out, emit_individual=not args.merged_only,
        only=only, skip=skip, parallel=args.parallel,
        references_dir=args.references_dir,
        machine_id=args.machine_id,
        tolerance_scale=args.tolerance_scale,
        update_references=args.update_references,
        autotune=not args.no_autotune, fault=args.inject_fault)
    print(summarize(report))
    print(f"[written to {args.out}]")
    return 0 if report["ok"] else 1


def _cmd_spy(args) -> int:
    from repro.formats.csr import CSRMatrix
    from repro.formats.io import read_matrix_market
    from repro.utils.spy import spy

    csr = CSRMatrix.from_coo(read_matrix_market(args.matrix))
    print(f"{csr.n_rows}x{csr.n_cols}, nnz={csr.nnz}")
    print(spy(csr, max_size=args.size))
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import (
        arithmetic_intensity,
        gs_iteration_matrix,
        roofline_point,
        spectral_radius,
    )
    from repro.formats.dbsr import DBSRMatrix
    from repro.grids.problems import poisson_problem
    from repro.kernels.counts import (
        sptrsv_csr_counts,
        sptrsv_dbsr_counts,
    )
    from repro.kernels.sptrsv_csr import split_triangular
    from repro.ordering.vbmc import build_vbmc
    from repro.simd.machine import TABLE1_MACHINES

    problem = poisson_problem((args.nx,) * 3, args.stencil)
    vb = build_vbmc(problem.grid, problem.stencil,
                    (2, 2, 2), args.bsize)
    Ap = vb.apply_matrix(problem.matrix)
    print(f"problem: {args.nx}^3 {args.stencil}; "
          f"rho(SYMGS) lexicographic = "
          f"{spectral_radius(gs_iteration_matrix(problem.matrix)):.4f}"
          f", vBMC = {spectral_radius(gs_iteration_matrix(Ap)):.4f}")
    L, D, U = split_triangular(Ap)
    c_csr = sptrsv_csr_counts(L)
    c_dbsr = sptrsv_dbsr_counts(DBSRMatrix.from_csr(L, args.bsize),
                                divide=True)
    for machine in TABLE1_MACHINES:
        ai_c = arithmetic_intensity(c_csr, machine)
        ai_d = arithmetic_intensity(c_dbsr, machine)
        pt = roofline_point(c_dbsr, machine)
        bound = "memory" if pt.memory_bound else "compute"
        print(f"  {machine.name}: SpTRSV intensity CSR {ai_c:.3f} vs "
              f"DBSR {ai_d:.3f} flop/B ({bound}-bound, roof "
              f"{pt.attainable_gflops:.1f} GFLOPS)")
    return 0


def _cmd_figures(args) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    names = (list(ALL_EXPERIMENTS) if args.id == "all"
             else [args.id])
    for name in names:
        mod = ALL_EXPERIMENTS.get(name)
        if mod is None:
            print(f"unknown experiment {name!r}; known: "
                  f"{sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        result = mod.generate()
        render = getattr(mod, "render", None)
        print(render(result) if render else result.render())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.regress.registry import add_common_bench_args, get_emitter

    parser = argparse.ArgumentParser(
        prog="dbsr-repro",
        description="DBSR (SC 2024) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("hpcg", help="run the HPCG benchmark")
    p.add_argument("--nx", type=int, default=16)
    p.add_argument("--variant", default="dbsr")
    p.add_argument("--levels", type=int, default=3)
    p.add_argument("--max-iters", type=int, default=50)
    p.add_argument("--tol", type=float, default=1e-9)
    p.add_argument("--bsize", type=int, default=8)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--model", action="store_true",
                   help="also print Table I GFLOPS projections")
    p.add_argument("--validate", action="store_true",
                   help="run the HPCG symmetry/problem validation "
                        "phase first")
    p.set_defaults(func=_cmd_hpcg)

    p = sub.add_parser("ilu", help="compare ILU(0) strategies")
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--strategy", default="all")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--bsize", type=int, default=4)
    p.add_argument("--tol", type=float, default=1e-8)
    p.add_argument("--max-iters", type=int, default=400)
    p.set_defaults(func=_cmd_ilu)

    p = sub.add_parser("storage", help="Fig. 11 storage table")
    p.add_argument("--nx", type=int, default=16)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--bsizes", default="1,2,4,8,16")
    p.add_argument("--value-bytes", type=int, default=8,
                   choices=(4, 8))
    p.set_defaults(func=_cmd_storage)

    p = sub.add_parser("weak-scaling", help="Fig. 7 cluster model")
    p.add_argument("--nx", type=int, default=16)
    p.add_argument("--variant", default="dbsr")
    p.add_argument("--levels", type=int, default=3)
    p.add_argument("--bsize", type=int, default=8)
    p.add_argument("--nodes", default="1,2,4,8,16,32,64,128,256")
    p.set_defaults(func=_cmd_weak_scaling)

    p = sub.add_parser("figures",
                       help="regenerate a paper table/figure")
    p.add_argument("id", nargs="?", default="all",
                   help="experiment id (table1, fig5..fig12, all)")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("solve",
                       help="solve a MatrixMarket system via "
                            "ABMC + DBSR ILU(0)")
    p.add_argument("matrix", help="path to a .mtx file")
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--bsize", type=int, default=4)
    p.add_argument("--tol", type=float, default=1e-8)
    p.add_argument("--max-iters", type=int, default=500)
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("bench-runtime",
                       help="run the pooled-runtime kernel benchmark "
                            "and emit BENCH_runtime.json")
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--bsize", type=int, default=4)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--dtype", default="f64", choices=("f64", "f32"))
    p.add_argument("--repeats", type=int, default=3)
    add_common_bench_args(p, get_emitter("runtime"))
    p.set_defaults(func=_cmd_bench_runtime)

    p = sub.add_parser("serve-bench",
                       help="run the serving-layer benchmark (plan "
                            "cache + multi-RHS batching) and emit "
                            "BENCH_serve.json")
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--requests", type=int, default=24)
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--dtype", default="f64", choices=("f64", "f32"))
    p.add_argument("--machine", default="kp920",
                   choices=("intel", "kp920", "thunderx2", "phytium"))
    add_common_bench_args(p, get_emitter("serve"))
    p.set_defaults(func=_cmd_serve_bench)

    p = sub.add_parser("ilu-bench",
                       help="run the ILU(0) serving benchmark "
                            "(value-only repack amortization + "
                            "bitwise gates) and emit BENCH_ilu.json")
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--values", type=int, default=4,
                   help="number of coefficient refreshes to time")
    p.add_argument("--requests", type=int, default=16)
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--dtype", default="f64", choices=("f64", "f32"))
    p.add_argument("--machine", default="kp920",
                   choices=("intel", "kp920", "thunderx2", "phytium"))
    add_common_bench_args(p, get_emitter("ilu"))
    p.set_defaults(func=_cmd_ilu_bench)

    p = sub.add_parser("shard-bench",
                       help="run the sharded-serving benchmark "
                            "(per-shard plan caches + halo exchange "
                            "accounting + bit-identity gates) and "
                            "emit BENCH_shard.json")
    p.add_argument("--nx", type=int, default=9)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--ranks", type=int, default=27)
    p.add_argument("--requests", type=int, default=24)
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--dtype", default="f64", choices=("f64", "f32"))
    p.add_argument("--machine", default="kp920",
                   choices=("intel", "kp920", "thunderx2", "phytium"))
    add_common_bench_args(p, get_emitter("shard"))
    p.set_defaults(func=_cmd_shard_bench)

    p = sub.add_parser("gateway-bench",
                       help="run the async front-door benchmark "
                            "(admission control + streaming + "
                            "elastic shards) and emit "
                            "BENCH_gateway.json")
    p.add_argument("--nx", type=int, default=6)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--requests", type=int, default=18)
    p.add_argument("--k-stream", type=int, default=6,
                   help="RHS columns in the streaming request")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--machine", default="kp920",
                   choices=("intel", "kp920", "thunderx2", "phytium"))
    add_common_bench_args(p, get_emitter("gateway"))
    p.set_defaults(func=_cmd_gateway_bench)

    p = sub.add_parser("gateway-chaos-bench",
                       help="run the shard-supervision chaos "
                            "benchmark (canary restarts, hedged "
                            "retries, overload brownout) and emit "
                            "BENCH_gateway_chaos.json")
    p.add_argument("--nx", type=int, default=5)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--requests", type=int, default=8,
                   help="requests in the crash-storm phase")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--machine", default="kp920",
                   choices=("intel", "kp920", "thunderx2", "phytium"))
    add_common_bench_args(p, get_emitter("gateway-chaos"))
    p.set_defaults(func=_cmd_gateway_chaos_bench)

    p = sub.add_parser("chaos-bench",
                       help="run the fault-injection benchmark "
                            "(self-healing fallback chain + circuit "
                            "breaker) and emit BENCH_chaos.json")
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--bsize", type=int, default=4)
    p.add_argument("--quick", action="store_true",
                   help="smaller scenario set (CI smoke)")
    add_common_bench_args(p, get_emitter("chaos"))
    p.set_defaults(func=_cmd_chaos_bench)

    p = sub.add_parser("trace",
                       help="run a traced serving workload (structured "
                            "spans + metrics) and emit "
                            "BENCH_trace.json")
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--bsize", type=int, default=4)
    p.add_argument("--strategy", default="dbsr",
                   choices=("dbsr", "sell"))
    p.add_argument("--ops", default="lower,upper,spmv,symgs",
                   help="comma-separated ops to trace")
    p.add_argument("--k", type=int, default=4,
                   help="requests per op (coalesced into one batch)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--dtype", default="f64", choices=("f64", "f32"))
    p.add_argument("--prometheus", action="store_true",
                   help="also print the Prometheus text exposition")
    add_common_bench_args(p, get_emitter("trace"))
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("bench",
                       help="perf-regression harness: run the whole "
                            "bench fleet through the unified registry")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    pa = bench_sub.add_parser(
        "all",
        help="run every bench emitter, merge into BENCH_all.json, "
             "and judge the perf checks against per-machine "
             "references (exit nonzero on regression)")
    pa.add_argument("--quick", action="store_true",
                    help="small configs (CI smoke)")
    pa.add_argument("--seed", type=int, default=2024,
                    help="workload RNG seed forwarded to every "
                         "emitter that takes one")
    pa.add_argument("--backend", default="numpy-fast",
                    choices=("numpy-counted", "numpy-fast", "numba"),
                    help="kernel backend tier forwarded to emitters "
                         "that take one")
    pa.add_argument("--out", default="BENCH_all.json")
    pa.add_argument("--only", default="",
                    help="comma-separated emitter subset")
    pa.add_argument("--skip", default="",
                    help="comma-separated emitters to skip")
    pa.add_argument("--parallel", action="store_true",
                    help="run non-exclusive emitters concurrently")
    pa.add_argument("--merged-only", action="store_true",
                    help="do not rewrite the individual BENCH_*.json "
                         "artifacts")
    pa.add_argument("--references-dir", default="references")
    pa.add_argument("--machine-id", default=None,
                    help="override the CPU-fingerprint machine id "
                         "(e.g. ci-default)")
    pa.add_argument("--tolerance-scale", type=float, default=1.0,
                    help="widen every perf tolerance band by this "
                         "factor (loose-CI mode)")
    pa.add_argument("--update-references", action="store_true",
                    help="capture/ratchet baselines instead of "
                         "judging against them")
    pa.add_argument("--no-autotune", action="store_true",
                    help="skip the roofline-vs-exhaustive autotune "
                         "differential section")
    pa.add_argument("--inject-fault", default=None,
                    choices=("kernel_delay",),
                    help="arm a synthetic fault for the whole run "
                         "(the check layer must then fail)")
    pa.set_defaults(func=_cmd_bench_all)

    p = sub.add_parser("spy", help="render a .mtx pattern as ASCII")
    p.add_argument("matrix", help="path to a .mtx file")
    p.add_argument("--size", type=int, default=64)
    p.set_defaults(func=_cmd_spy)

    p = sub.add_parser("analyze",
                       help="spectral radii and roofline placement")
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--stencil", default="27pt")
    p.add_argument("--bsize", type=int, default=4)
    p.set_defaults(func=_cmd_analyze)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
