"""Multigrid hierarchy construction.

HPCG builds 4 levels by halving the grid and re-discretizing the
27-point operator on each coarse grid; the hierarchy here does the same
for any stencil (re-discretization, not Galerkin products, matching the
benchmark's ``GenerateCoarseProblem``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.grids.assembly import assemble_csr
from repro.grids.coarsen import coarsen_grid, fine_to_coarse_map
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil
from repro.utils.validation import check_positive, require


@dataclass
class MGLevel:
    """One level of the geometric hierarchy.

    Attributes
    ----------
    grid:
        Level grid.
    matrix:
        Level operator (lexicographic CSR).
    smoother:
        Callable ``smooth(x, b)`` updating ``x`` in place.
    f2c:
        Injection map into the next-coarser level (``None`` on the
        coarsest level).
    coarse:
        The next-coarser :class:`MGLevel` (``None`` on the coarsest).
    """

    grid: StructuredGrid
    matrix: CSRMatrix
    smoother: object
    f2c: np.ndarray | None = None
    coarse: "MGLevel | None" = None

    @property
    def n(self) -> int:
        return self.grid.n_points

    def depth(self) -> int:
        """Number of levels below and including this one."""
        return 1 + (self.coarse.depth() if self.coarse else 0)


def build_hierarchy(grid: StructuredGrid, stencil: Stencil,
                    smoother_factory, n_levels: int = 4,
                    matrix: CSRMatrix | None = None) -> MGLevel:
    """Build an ``n_levels``-deep geometric hierarchy.

    Parameters
    ----------
    grid, stencil:
        Finest-level geometry.
    smoother_factory:
        Callable ``(grid, stencil, matrix) -> smoother`` invoked per
        level (lets the DBSR variant rebuild its reordering per level,
        scaling ``bsize`` to the level size as §V-F suggests).
    n_levels:
        Hierarchy depth (HPCG uses 4). Grid dims must support the
        required halvings.
    matrix:
        Pre-assembled finest operator (assembled if omitted).
    """
    check_positive(n_levels, "n_levels")
    for d in grid.dims:
        require(d % (2 ** (n_levels - 1)) == 0,
                f"dim {d} cannot be halved {n_levels - 1} times")
    if matrix is None:
        matrix = assemble_csr(grid, stencil)
    top = MGLevel(grid=grid, matrix=matrix,
                  smoother=smoother_factory(grid, stencil, matrix))
    level = top
    for _ in range(n_levels - 1):
        coarse_grid = coarsen_grid(level.grid)
        coarse_matrix = assemble_csr(coarse_grid, stencil,
                                     dtype=matrix.data.dtype)
        level.f2c = fine_to_coarse_map(level.grid, coarse_grid)
        level.coarse = MGLevel(
            grid=coarse_grid,
            matrix=coarse_matrix,
            smoother=smoother_factory(coarse_grid, stencil,
                                      coarse_matrix),
        )
        level = level.coarse
    return top


def hierarchy_levels(top: MGLevel) -> list:
    """Flatten the hierarchy into a finest-first list."""
    out = []
    lvl = top
    while lvl is not None:
        out.append(lvl)
        lvl = lvl.coarse
    return out
