"""Pluggable SYMGS smoothers for the multigrid hierarchy.

Each smoother is a callable ``smooth(x, b) -> x`` updating ``x`` in
place in the level's *lexicographic* ordering; reordered smoothers
(BMC, vectorized BMC + DBSR) permute internally, which is the paper's
step (2)-(3) split: the storage structure is built once and reused
every application.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.formats.sell import SELLMatrix
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil
from repro.kernels.counts import (
    symgs_csr_counts,
    symgs_dbsr_counts,
    symgs_sell_counts,
)
from repro.kernels.symgs import symgs_csr, symgs_dbsr
from repro.kernels.symgs_sell import symgs_sell
from repro.ordering.blocks import auto_block_dims
from repro.ordering.bmc import build_bmc
from repro.ordering.vbmc import build_vbmc
from repro.simd.counters import OpCounter


class CSRSymgsSmoother:
    """Reference SYMGS on the natural (or BMC-permuted) CSR matrix.

    Parameters
    ----------
    matrix:
        The level operator.
    bmc:
        Optional :class:`~repro.ordering.bmc.BMCOrdering`; when given,
        smoothing runs in BMC order (the CPO variant).
    """

    def __init__(self, matrix: CSRMatrix, bmc=None):
        self.bmc = bmc
        if bmc is None:
            self.matrix = matrix
            self.n_colors = 1
            self.parallelism = 1.0
        else:
            self.matrix = matrix.permute(bmc.perm.old_to_new)
            self.n_colors = bmc.n_colors
            counts = np.diff(bmc.color_block_ptr)
            self.parallelism = float(counts.min())
        self.diag = self.matrix.diagonal()

    def __call__(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.bmc is None:
            return symgs_csr(self.matrix, self.diag, x, b)
        perm = self.bmc.perm
        xp = perm.forward(x)
        symgs_csr(self.matrix, self.diag, xp, perm.forward(b))
        x[:] = perm.backward(xp)
        return x

    def op_counts(self) -> OpCounter:
        """Counts for one SYMGS application."""
        return symgs_csr_counts(self.matrix)

    def barriers(self) -> int:
        return 0 if self.bmc is None else 2 * self.n_colors


class DBSRSymgsSmoother:
    """The paper's smoother: vectorized BMC + DBSR SYMGS.

    Parameters
    ----------
    grid, stencil:
        Level geometry (drives the reordering).
    matrix:
        Level operator in lexicographic CSR.
    bsize:
        Vector length.
    block_dims:
        Block extents; AUTO-sized from ``n_workers`` when omitted.
    n_workers:
        Worker count for AUTO block sizing.
    session:
        Optional :class:`~repro.runtime.session.SolverSession`; every
        application is then timed under its ``"symgs"`` phase and its
        op counts are tallied into the session ledger.
    """

    def __init__(self, grid: StructuredGrid, stencil: Stencil,
                 matrix: CSRMatrix, bsize: int = 8,
                 block_dims=None, n_workers: int = 1, session=None):
        if block_dims is None:
            block_dims = auto_block_dims(grid, n_workers, bsize=bsize)
        self.vbmc = build_vbmc(grid, stencil, block_dims, bsize)
        reordered = self.vbmc.apply_matrix(matrix)
        self.dbsr = DBSRMatrix.from_csr(reordered, bsize)
        self.diag = reordered.diagonal()
        self.bsize = bsize
        self.n_colors = self.vbmc.n_colors
        groups = np.diff(self.vbmc.schedule.color_group_ptr)
        self.parallelism = float(groups.min()) if len(groups) else 1.0
        self.session = session

    def __call__(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.session is None:
            return self._smooth(x, b)
        with self.session.phase("symgs"):
            out = self._smooth(x, b)
            self.session.tally(self.op_counts())
        return out

    def _smooth(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        xp = self.vbmc.extend(x)
        bp = self.vbmc.extend(b)
        symgs_dbsr(self.dbsr, self.diag, xp, bp)
        x[:] = self.vbmc.restrict(xp)
        return x

    def op_counts(self) -> OpCounter:
        return symgs_dbsr_counts(self.dbsr)

    def barriers(self) -> int:
        return 2 * self.n_colors


class SELLSymgsSmoother:
    """SELL-format SYMGS (Park et al. / Fig. 8).

    Uses the same vectorized-BMC ordering as the DBSR smoother (chunk
    rows must be mutually independent) but stores the matrix in SELL,
    so the sweeps execute the genuine gather-based chunk kernel of
    :func:`~repro.kernels.symgs_sell.symgs_sell`.
    """

    def __init__(self, grid: StructuredGrid, stencil: Stencil,
                 matrix: CSRMatrix, chunk: int = 8, n_workers: int = 1):
        block_dims = auto_block_dims(grid, n_workers, bsize=chunk)
        self.vbmc = build_vbmc(grid, stencil, block_dims, chunk)
        reordered = self.vbmc.apply_matrix(matrix)
        self.sell = SELLMatrix(reordered, chunk=chunk, sigma=1)
        self.diag = reordered.diagonal()
        self.n_colors = self.vbmc.n_colors
        groups = np.diff(self.vbmc.schedule.color_group_ptr)
        self.parallelism = float(groups.min()) if len(groups) else 1.0

    def __call__(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        xp = self.vbmc.extend(x)
        symgs_sell(self.sell, self.diag, xp, self.vbmc.extend(b))
        x[:] = self.vbmc.restrict(xp)
        return x

    def op_counts(self) -> OpCounter:
        return symgs_sell_counts(self.sell)

    def barriers(self) -> int:
        return 2 * self.n_colors


def make_smoother(kind: str, grid: StructuredGrid, stencil: Stencil,
                  matrix: CSRMatrix, bsize: int = 8,
                  n_workers: int = 1, session=None):
    """Build a smoother by variant name.

    ``kind`` is one of ``"csr"`` (reference), ``"bmc"`` (CPO),
    ``"sell"``, ``"dbsr"``. ``session`` is forwarded to the DBSR
    smoother for phase timing / op accounting.
    """
    kind = kind.lower()
    if kind == "csr":
        return CSRSymgsSmoother(matrix)
    if kind == "bmc":
        bmc = build_bmc(grid, stencil,
                        auto_block_dims(grid, n_workers))
        return CSRSymgsSmoother(matrix, bmc=bmc)
    if kind == "sell":
        return SELLSymgsSmoother(grid, stencil, matrix, chunk=bsize,
                                 n_workers=n_workers)
    if kind == "dbsr":
        return DBSRSymgsSmoother(grid, stencil, matrix, bsize=bsize,
                                 n_workers=n_workers, session=session)
    raise ValueError(f"unknown smoother kind {kind!r}")
