"""The multigrid V-cycle (HPCG's ``ComputeMG``).

One pre-smoothing SYMGS, residual restriction by injection, recursive
coarse solve, prolongation-and-add, one post-smoothing SYMGS; the
coarsest level is smoothed only — exactly the HPCG reference
preconditioner.
"""

from __future__ import annotations

import numpy as np

from repro.multigrid.hierarchy import MGLevel
from repro.multigrid.transfer import prolong_add, restrict_inject
from repro.observe import trace


def mg_vcycle(level: MGLevel, b: np.ndarray,
              x: np.ndarray | None = None,
              depth: int = 0) -> np.ndarray:
    """One V-cycle on ``level``; returns the (new) solution estimate.

    Under an installed tracer each level opens an ``mg.level`` span
    (nested per recursion depth), so a trace shows the V shape.
    """
    if x is None:
        x = np.zeros_like(b)
    with trace.span("mg.level", depth=depth, n=int(b.shape[0])):
        if level.coarse is None:
            level.smoother(x, b)
            return x
        level.smoother(x, b)                   # pre-smooth
        r = b - level.matrix.matvec(x)         # residual
        rc = restrict_inject(r, level.f2c)     # restrict
        xc = mg_vcycle(level.coarse, rc,       # coarse solve
                       depth=depth + 1)
        prolong_add(x, xc, level.f2c)          # prolong + correct
        level.smoother(x, b)                   # post-smooth
        return x


class MGPreconditioner:
    """V-cycle preconditioner: ``z = MG(r)`` with zero initial guess.

    Usable directly as the ``precond`` argument of
    :func:`repro.solvers.pcg.pcg`. When a
    :class:`~repro.runtime.session.SolverSession` is given, every
    application is timed under its ``"vcycle"`` phase.
    """

    def __init__(self, top: MGLevel, session=None):
        self.top = top
        self.session = session

    def __call__(self, r: np.ndarray) -> np.ndarray:
        if self.session is None:
            return mg_vcycle(self.top, r)
        with self.session.phase("vcycle"):
            return mg_vcycle(self.top, r)
