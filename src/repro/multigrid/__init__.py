"""Geometric multigrid (HPCG-style V-cycle).

A 4-level hierarchy with halved grids per level, injection restriction,
piecewise-constant prolongation, and one pre-/post-SYMGS smoothing pass
per level — matching HPCG's ``ComputeMG`` reference semantics. The
smoother is pluggable so the CSR (reference/CPO), SELL, and DBSR
variants of the paper's evaluation all reuse the same cycle.
"""

from repro.multigrid.transfer import prolong_add, restrict_inject
from repro.multigrid.smoothers import (
    CSRSymgsSmoother,
    DBSRSymgsSmoother,
    make_smoother,
)
from repro.multigrid.hierarchy import MGLevel, build_hierarchy
from repro.multigrid.vcycle import mg_vcycle, MGPreconditioner

__all__ = [
    "restrict_inject",
    "prolong_add",
    "CSRSymgsSmoother",
    "DBSRSymgsSmoother",
    "make_smoother",
    "MGLevel",
    "build_hierarchy",
    "mg_vcycle",
    "MGPreconditioner",
]
