"""Inter-grid transfer operators (HPCG's restriction/prolongation).

HPCG uses plain injection: the coarse residual samples the fine
residual at even-index points, and the prolongation adds the coarse
correction back at those points. Both are linear-time and bandwidth
bound, and both are counted by the performance model.
"""

from __future__ import annotations

import numpy as np


def restrict_inject(fine_vec: np.ndarray, f2c: np.ndarray) -> np.ndarray:
    """Coarse vector sampling ``fine_vec`` at the injected points."""
    return fine_vec[f2c].copy()


def prolong_add(fine_vec: np.ndarray, coarse_vec: np.ndarray,
                f2c: np.ndarray) -> None:
    """Add the coarse correction into the fine vector (in place)."""
    fine_vec[f2c] += coarse_vec
