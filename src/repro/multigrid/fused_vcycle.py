"""V-cycle with CPO-style kernel fusion.

The reference V-cycle computes "pre-smooth, then residual" as two
passes over the level matrix; the CPO optimization [24] fuses them
(see :mod:`repro.kernels.fused`). This cycle produces numerically
identical results to :func:`repro.multigrid.vcycle.mg_vcycle` with the
CSR smoother while re-reading only the strictly-lower triangle for the
residual — the measured traffic saving behind the HPCG model's fusion
factor.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.fused import fused_symgs_residual
from repro.kernels.symgs import symgs_csr
from repro.multigrid.hierarchy import MGLevel
from repro.multigrid.transfer import prolong_add, restrict_inject


def mg_vcycle_fused(level: MGLevel, b: np.ndarray,
                    x: np.ndarray | None = None) -> np.ndarray:
    """One fused V-cycle (CSR smoothing only); returns the estimate.

    Note the fused kernel performs a *SYMGS* (forward + backward)
    sweep and delivers the post-sweep residual in the same pass.
    """
    if x is None:
        x = np.zeros_like(b)
    matrix = level.matrix
    diag = matrix.diagonal()
    if level.coarse is None:
        symgs_csr(matrix, diag, x, b)
        return x
    r = fused_symgs_residual(matrix, diag, x, b)   # pre-smooth ∥ residual
    rc = restrict_inject(r, level.f2c)
    xc = mg_vcycle_fused(level.coarse, rc)
    prolong_add(x, xc, level.f2c)
    symgs_csr(matrix, diag, x, b)                  # post-smooth
    return x


class FusedMGPreconditioner:
    """Drop-in fused variant of
    :class:`repro.multigrid.vcycle.MGPreconditioner`."""

    def __init__(self, top: MGLevel):
        self.top = top

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return mg_vcycle_fused(self.top, r)
