"""SIMD simulation: instrumented vector execution and machine models.

Python offers no control over SIMD instruction selection — the exact
gap the reproduction bands flag. This package substitutes an explicit
*vector machine*:

* :class:`~repro.simd.isa.VectorISA` — an instruction set description
  (register width, lanes per dtype, per-instruction costs, including
  the gather penalty that motivates §III-D).
* :class:`~repro.simd.counters.OpCounter` — tallies of every vector and
  scalar operation a kernel performs.
* :class:`~repro.simd.engine.VectorEngine` — executes kernels lane-wise
  on numpy slices while counting operations; the DBSR/SELL/CSR kernels
  in :mod:`repro.kernels` have engine-instrumented twins whose counts
  feed the performance model.
* :class:`~repro.simd.machine.MachineModel` — the paper's Table I
  platforms (Intel Xeon 6348, Kunpeng 920, ThunderX2, Phytium 2000+)
  with core counts, frequencies, cache sizes, SIMD widths and memory
  bandwidths, plus the roofline-style time conversion.
"""

from repro.simd.isa import VectorISA, AVX512, NEON, SCALAR_ISA
from repro.simd.counters import OpCounter
from repro.simd.engine import VectorEngine
from repro.simd.machine import (
    MachineModel,
    INTEL_XEON,
    KUNPENG_920,
    THUNDER_X2,
    PHYTIUM_2000,
    TABLE1_MACHINES,
)

__all__ = [
    "VectorISA",
    "AVX512",
    "NEON",
    "SCALAR_ISA",
    "OpCounter",
    "VectorEngine",
    "MachineModel",
    "INTEL_XEON",
    "KUNPENG_920",
    "THUNDER_X2",
    "PHYTIUM_2000",
    "TABLE1_MACHINES",
]
