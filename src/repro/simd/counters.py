"""Operation counters.

An :class:`OpCounter` tallies what a kernel *did*: vector loads/stores,
gathers, FMAs, divides and scalar ops, plus bytes moved per stream.
Kernels in :mod:`repro.kernels` fill these either analytically (exact
closed forms from the storage structure) or by instrumented execution
through :class:`~repro.simd.engine.VectorEngine`; tests assert the two
agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class OpCounter:
    """Tally of operations and memory traffic for one kernel run.

    Vector op fields count *logical* vector operations of width
    ``bsize``; :meth:`cycles_on` expands them to ISA instructions.
    """

    bsize: int = 1
    # Logical vector operations (width = bsize).
    vload: int = 0
    vstore: int = 0
    vgather: int = 0
    vscatter: int = 0
    vfma: int = 0
    vmul: int = 0
    vadd: int = 0
    vdiv: int = 0
    # Scalar operations.
    sload: int = 0
    sstore: int = 0
    sflop: int = 0
    sdiv: int = 0
    # Memory traffic in bytes (matrix data + indices + vectors).
    bytes_values: int = 0
    bytes_index: int = 0
    bytes_vector: int = 0
    # Traffic issued through gathers / irregular accesses; subject to
    # cache-line over-fetch in the machine model (the cost DBSR's
    # contiguous loads avoid, SIII-D).
    bytes_gathered: int = 0

    def merge(self, other: "OpCounter") -> "OpCounter":
        """Accumulate ``other`` into ``self`` (bsize must match)."""
        if other.bsize != self.bsize and other.bsize != 1 and self.bsize != 1:
            raise ValueError("cannot merge counters of different bsize")
        for f in fields(self):
            if f.name == "bsize":
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "OpCounter":
        """Return a copy with every tally multiplied by ``factor``."""
        out = OpCounter(bsize=self.bsize)
        for f in fields(self):
            if f.name == "bsize":
                continue
            setattr(out, f.name, int(round(getattr(self, f.name) * factor)))
        return out

    @property
    def total_bytes(self) -> int:
        return (self.bytes_values + self.bytes_index + self.bytes_vector
                + self.bytes_gathered)

    @property
    def total_vector_ops(self) -> int:
        return (self.vload + self.vstore + self.vgather + self.vscatter
                + self.vfma + self.vmul + self.vadd + self.vdiv)

    @property
    def total_scalar_ops(self) -> int:
        return self.sload + self.sstore + self.sflop + self.sdiv

    def flops(self, dtype_lanes: int = 1) -> int:
        """Floating point operations performed (FMA = 2 flops)."""
        vec = (2 * self.vfma + self.vmul + self.vadd + self.vdiv)
        return vec * self.bsize + self.sflop + self.sdiv

    def cycles_on(self, isa, dtype_bytes: int = 8,
                  use_gather_hw: bool = True) -> float:
        """Estimated compute cycles on ``isa``.

        Parameters
        ----------
        isa:
            A :class:`~repro.simd.isa.VectorISA`.
        dtype_bytes:
            Element size (8 = float64, 4 = float32); halving it doubles
            lanes per register, which is why the paper's f32 runs gain
            more (§V-F).
        use_gather_hw:
            When ``False``, gathers are expanded into scalar loads plus
            inserts (the pre-gather code path of Fig. 8).
        """
        lanes = max(1, isa.bits // (dtype_bytes * 8))
        expand = max(1, (self.bsize + lanes - 1) // lanes)
        cyc = 0.0
        cyc += self.vload * isa.load_cost * expand
        cyc += self.vstore * isa.store_cost * expand
        cyc += self.vfma * isa.fma_cost * expand
        cyc += (self.vmul + self.vadd) * isa.fma_cost * expand
        cyc += self.vdiv * isa.div_cost * expand
        gather_lane_cost = (isa.gather_cost_per_lane if use_gather_hw
                            else 2.0 * isa.scalar_op_cost)
        cyc += self.vgather * gather_lane_cost * self.bsize
        cyc += self.vscatter * gather_lane_cost * self.bsize
        cyc += (self.sload + self.sstore + self.sflop) * isa.scalar_op_cost
        cyc += self.sdiv * isa.div_cost
        return cyc / isa.issue_width
