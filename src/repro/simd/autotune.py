"""Automatic ``bsize`` selection.

The paper (§V-F): "The DBSR format can be varied according to the SIMD
length supported by the hardware platform... in multigrid
computations, bsize can be scaled according to the size of each layer
of the grid to ensure the need for parallelism." This module encodes
that rule: pick the largest ``bsize`` that (a) is a multiple of the
platform's SIMD lanes, (b) keeps at least ``groups_per_worker`` vector
groups per color for every worker, and (c) stays within the paper's
practical ceiling of 64.

Beyond the feasibility rule, :func:`autotune_bsize` also supports
*measured* selection (``prune="exhaustive"``): every feasible
candidate's ordering + DBSR structures are built and its SpTRSV sweep
timed, and the fastest wins. Building per-candidate structures is the
expensive part of a cold compile, so ``prune="roofline"`` first ranks
the feasible candidates with a :class:`~repro.simd.machine.MachineModel`
roofline estimate (padding- and parallelism-aware, after
Schubert-Hager-Fehske's bandwidth-limit analysis) and measures only the
top :data:`MEASURE_TOP` — cutting the candidate builds a cold compile
pays while picking the same ``bsize`` (differential-tested on the seed
grids).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil
from repro.ordering.blocks import auto_block_dims, partition_grid
from repro.ordering.bmc import color_blocks
from repro.simd.counters import OpCounter
from repro.simd.machine import MachineModel
from repro.utils.validation import check_positive

import numpy as np

#: Practical ceiling from the paper's Fig. 10 sweep.
MAX_BSIZE = 64

#: Candidates the roofline-pruned search actually measures.
MEASURE_TOP = 2

#: Recognized ``prune`` modes of :func:`autotune_bsize`.
PRUNE_MODES = (None, "roofline", "exhaustive")


def candidate_bsizes(machine: MachineModel,
                     dtype_bytes: int = 8) -> list:
    """Candidate bsizes: ``lanes * 2**k`` capped at :data:`MAX_BSIZE`.

    Every candidate is a multiple of the platform's SIMD lane count so
    vector groups fill whole registers. Two edge cases are handled
    explicitly rather than degenerating to scalar execution:

    * ``lanes > MAX_BSIZE`` (a register wider than the paper's
      practical ceiling): the only width that both fills a register
      and wastes none is one full register, so the candidate list is
      ``[lanes]`` — previously this silently returned ``[1]``.
    * Non-power-of-two lane counts (e.g. a 384-bit SVE-style register
      giving 6 f64 lanes): doubling from ``lanes`` keeps candidates
      at register multiples (6, 12, 24, 48); the ceiling applies to
      the multiple, not to power-of-two-ness.
    """
    lanes = machine.lanes(dtype_bytes)
    if lanes > MAX_BSIZE:
        return [lanes]
    out = []
    b = lanes
    while b <= MAX_BSIZE:
        out.append(b)
        b *= 2
    return out


def min_blocks_per_color(grid: StructuredGrid, stencil: Stencil,
                         block_dims) -> int:
    """Smallest color class of the given partition."""
    part = partition_grid(grid, block_dims)
    colors = color_blocks(part, stencil)
    return int(np.bincount(colors).min())


@dataclass
class AutotuneResult:
    """Everything one :func:`autotune_bsize` selection did.

    Attributes
    ----------
    bsize:
        The pick.
    prune:
        The mode the selection ran under (``None`` | ``"roofline"`` |
        ``"exhaustive"``).
    candidates:
        Every candidate considered (:func:`candidate_bsizes`).
    feasible:
        The subset passing the partition/parallelism feasibility rule.
    ranked:
        Feasible candidates in roofline-model order (fastest modeled
        first); empty under ``prune=None``.
    measured:
        ``{bsize: best-of seconds}`` for every candidate whose
        structures were actually built and timed. Empty under
        ``prune=None`` — the feasibility rule measures nothing.
    seconds:
        Wall-clock cost of the whole selection (what a cold compile
        pays for autotuning).
    """

    bsize: int
    prune: str | None
    candidates: list = field(default_factory=list)
    feasible: list = field(default_factory=list)
    ranked: list = field(default_factory=list)
    measured: dict = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def measured_candidates(self) -> int:
        """How many candidates paid a structure build + timing."""
        return len(self.measured)


def sptrsv_model_counter(grid: StructuredGrid, stencil: Stencil,
                         bsize: int, dtype_bytes: int = 8) -> OpCounter:
    """Analytic DBSR SpTRSV counter from geometry alone.

    Shaped like :func:`repro.kernels.counts.sptrsv_dbsr_counts` but
    with nothing assembled: the clipped-stencil nonzero count is the
    closed form ``Σ_off Π_d max(0, dim_d - |off_d|)``, tiles are
    ``ceil(nnz/bsize)``, and — the term that makes the ranking honest
    on small grids — zero padding is charged explicitly. Rows are
    grouped into vector groups of ``bsize`` *within each color*, so
    every color's row count rounds up to a ``bsize`` multiple; the
    padded rows drag their share of tile values and vector traffic
    along. Without this term the model is monotone in ``bsize`` and
    the ranking degenerates to "biggest first".
    """
    from repro.gateway.estimator import stencil_nnz
    from repro.ordering.coloring import _is_star

    check_positive(bsize, "bsize")
    n = int(grid.n_points)
    n_colors = 2 if _is_star(stencil) else 2 ** grid.ndim
    nnz = stencil_nnz(grid, stencil)
    nnz_op = max(1, (nnz - n) // 2)  # one strict triangle
    rows_per_color = n / n_colors
    padded_rows = n_colors * max(
        0.0, math.ceil(rows_per_color / bsize) * bsize - rows_per_color)
    pad_nnz = padded_rows * (nnz_op / n)
    t = max(1, math.ceil((nnz_op + pad_nnz) / bsize))
    brow = max(1, math.ceil((n + padded_rows) / bsize))

    c = OpCounter(bsize=bsize)
    # Per block-row: load rhs, one vload+vfma per tile, divide, store.
    c.vload = 2 * t + 2 * brow
    c.vfma = t
    c.vstore = brow
    c.vdiv = brow
    c.sload = 2 * t  # anchor + tile bounds
    c.bytes_values = t * bsize * dtype_bytes
    c.bytes_index = t * 5 + (brow + 1) * 8  # 4B anchor + 1B amortized ptr
    c.bytes_vector = (t + 3 * brow) * bsize * dtype_bytes
    return c


def modeled_sptrsv_seconds(grid: StructuredGrid, stencil: Stencil,
                           bsize: int, machine: MachineModel,
                           n_workers: int = 1,
                           dtype_bytes: int = 8) -> float:
    """Roofline estimate of one DBSR SpTRSV sweep at ``bsize``.

    ``max(compute, memory) + sync`` via
    :meth:`~repro.simd.machine.MachineModel.kernel_seconds`, with the
    exploitable concurrency capped at the analytic vector groups per
    color — an infeasibly large ``bsize`` starves the workers and the
    model sees it.
    """
    from repro.ordering.coloring import _is_star

    n_colors = 2 if _is_star(stencil) else 2 ** grid.ndim
    counter = sptrsv_model_counter(grid, stencil, bsize,
                                   dtype_bytes=dtype_bytes)
    groups = max(1.0, grid.n_points / (bsize * n_colors))
    return machine.kernel_seconds(
        counter, threads=n_workers, dtype_bytes=dtype_bytes,
        n_barriers=n_colors, parallelism=groups)


def rank_bsizes_roofline(grid: StructuredGrid, stencil: Stencil,
                         machine: MachineModel, bsizes,
                         n_workers: int = 1,
                         dtype_bytes: int = 8) -> list:
    """``bsizes`` sorted fastest-modeled-first (ties: larger first)."""
    return sorted(bsizes, key=lambda b: (modeled_sptrsv_seconds(
        grid, stencil, b, machine, n_workers=n_workers,
        dtype_bytes=dtype_bytes), -b))


def measure_bsize_seconds(grid: StructuredGrid, stencil: Stencil,
                          bsize: int, n_workers: int = 1,
                          dtype_bytes: int = 8, repeats: int = 3,
                          matrix=None) -> float:
    """Build candidate structures and time one SpTRSV sweep (best-of).

    This is the cost roofline pruning avoids: the AUTO partition, the
    vBMC ordering, the permutation apply, the triangular split and the
    DBSR conversion are all rebuilt per candidate before the first
    timed sweep can run. ``matrix`` lets callers share the assembled
    (candidate-independent) operator across candidates.
    """
    from repro.formats.dbsr import DBSRMatrix
    from repro.grids.assembly import assemble_csr
    from repro.kernels.sptrsv_csr import split_triangular
    from repro.kernels.sptrsv_dbsr import sptrsv_dbsr_lower
    from repro.ordering.coloring import _is_star
    from repro.ordering.vbmc import build_vbmc

    check_positive(repeats, "repeats")
    n_colors = 2 if _is_star(stencil) else 2 ** grid.ndim
    dtype = np.float32 if dtype_bytes == 4 else np.float64
    A = matrix if matrix is not None \
        else assemble_csr(grid, stencil, dtype=dtype)
    block_dims = auto_block_dims(grid, n_workers, bsize=bsize,
                                 n_colors=n_colors)
    ordering = build_vbmc(grid, stencil, block_dims, bsize)
    Ap = ordering.apply_matrix(A)
    L, D, _U = split_triangular(Ap)
    Ld = DBSRMatrix.from_csr(L, bsize)
    rhs = (np.arange(Ap.n_rows, dtype=Ld.values.dtype) % 7) + 1.0
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        sptrsv_dbsr_lower(Ld, rhs, diag=None)
        best = min(best, time.perf_counter() - t0)
    return best


def autotune_bsize_result(grid: StructuredGrid, stencil: Stencil,
                          machine: MachineModel, n_workers: int = 1,
                          dtype_bytes: int = 8,
                          groups_per_worker: int = 1,
                          min_block_points: int = 8,
                          prune: str | None = None,
                          measure_top: int = MEASURE_TOP,
                          measure_repeats: int = 3,
                          measure_fn=None) -> AutotuneResult:
    """:func:`autotune_bsize` with the full selection record.

    ``prune=None`` reproduces the historical feasibility rule (largest
    feasible candidate, nothing measured). ``"exhaustive"`` measures
    every feasible candidate with ``measure_fn`` (default:
    :func:`measure_bsize_seconds`) and picks the fastest.
    ``"roofline"`` measures only the ``measure_top`` best candidates
    under :func:`modeled_sptrsv_seconds` — when the model ranks well
    (differential-tested on the seed grids) the pick matches the
    exhaustive one at a fraction of the candidate builds.
    """
    check_positive(n_workers, "n_workers")
    if prune not in PRUNE_MODES:
        raise ValueError(
            f"unknown prune mode {prune!r}; known: {PRUNE_MODES}")
    from repro.ordering.coloring import _is_star

    t0 = time.perf_counter()
    n_colors = 2 if _is_star(stencil) else 2 ** grid.ndim

    def feasible(b: int) -> bool:
        block_dims = auto_block_dims(grid, n_workers, bsize=b,
                                     n_colors=n_colors)
        if int(np.prod(block_dims)) < min_block_points \
                and grid.n_points >= min_block_points * n_colors:
            return False
        blocks = min_blocks_per_color(grid, stencil, block_dims)
        return blocks >= b * n_workers * groups_per_worker

    candidates = candidate_bsizes(machine, dtype_bytes)
    feasible_set = [b for b in candidates if feasible(b)]
    result = AutotuneResult(bsize=1, prune=prune,
                            candidates=candidates,
                            feasible=feasible_set)
    if not feasible_set:
        result.seconds = time.perf_counter() - t0
        return result
    if prune is None:
        result.bsize = max(feasible_set)
        result.seconds = time.perf_counter() - t0
        return result

    result.ranked = rank_bsizes_roofline(
        grid, stencil, machine, feasible_set, n_workers=n_workers,
        dtype_bytes=dtype_bytes)
    to_measure = (result.ranked if prune == "exhaustive"
                  else result.ranked[:max(1, int(measure_top))])
    if measure_fn is None:
        from repro.grids.assembly import assemble_csr

        dtype = np.float32 if dtype_bytes == 4 else np.float64
        A = assemble_csr(grid, stencil, dtype=dtype)

        def measure_fn(b):
            return measure_bsize_seconds(
                grid, stencil, b, n_workers=n_workers,
                dtype_bytes=dtype_bytes, repeats=measure_repeats,
                matrix=A)

    result.measured = {b: float(measure_fn(b)) for b in to_measure}
    # Ties break toward the larger bsize, matching the historical rule.
    result.bsize = min(result.measured,
                       key=lambda b: (result.measured[b], -b))
    result.seconds = time.perf_counter() - t0
    return result


def autotune_bsize(grid: StructuredGrid, stencil: Stencil,
                   machine: MachineModel, n_workers: int = 1,
                   dtype_bytes: int = 8,
                   groups_per_worker: int = 1,
                   min_block_points: int = 8,
                   prune: str | None = None) -> int:
    """Pick a ``bsize`` for this grid level / machine / worker count.

    Under the default ``prune=None``, returns the **largest** candidate
    satisfying *both* constraints: its AUTO block partition supplies
    ``n_workers * groups_per_worker`` vector groups per color, *with
    blocks of at least* ``min_block_points`` points (smaller blocks
    degenerate toward MC and its convergence penalty; the block-size
    constraint is waived on grids too small to ever meet it). Falls
    back to ``1`` when no candidate is feasible — the "scale bsize to
    the level" rule for coarse multigrid grids.

    Feasibility is **not monotone** in ``b``: a larger candidate can
    repartition into a coarser block grid whose smallest color class
    clears its (larger) group demand even though a smaller candidate's
    finer partition misses its own. The selection therefore materializes
    the whole feasible set and takes its max — a greedy
    scan-until-first-failure would be wrong.

    ``prune="exhaustive"`` / ``"roofline"`` switch to *measured*
    selection — see :func:`autotune_bsize_result` for the mechanics
    and the full selection record.
    """
    return autotune_bsize_result(
        grid, stencil, machine, n_workers=n_workers,
        dtype_bytes=dtype_bytes, groups_per_worker=groups_per_worker,
        min_block_points=min_block_points, prune=prune).bsize
