"""Automatic ``bsize`` selection.

The paper (§V-F): "The DBSR format can be varied according to the SIMD
length supported by the hardware platform... in multigrid
computations, bsize can be scaled according to the size of each layer
of the grid to ensure the need for parallelism." This module encodes
that rule: pick the largest ``bsize`` that (a) is a multiple of the
platform's SIMD lanes, (b) keeps at least ``groups_per_worker`` vector
groups per color for every worker, and (c) stays within the paper's
practical ceiling of 64.
"""

from __future__ import annotations

from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil
from repro.ordering.blocks import auto_block_dims, partition_grid
from repro.ordering.bmc import color_blocks
from repro.simd.machine import MachineModel
from repro.utils.validation import check_positive

import numpy as np

#: Practical ceiling from the paper's Fig. 10 sweep.
MAX_BSIZE = 64


def candidate_bsizes(machine: MachineModel,
                     dtype_bytes: int = 8) -> list:
    """Candidate bsizes: ``lanes * 2**k`` capped at :data:`MAX_BSIZE`.

    Every candidate is a multiple of the platform's SIMD lane count so
    vector groups fill whole registers. Two edge cases are handled
    explicitly rather than degenerating to scalar execution:

    * ``lanes > MAX_BSIZE`` (a register wider than the paper's
      practical ceiling): the only width that both fills a register
      and wastes none is one full register, so the candidate list is
      ``[lanes]`` — previously this silently returned ``[1]``.
    * Non-power-of-two lane counts (e.g. a 384-bit SVE-style register
      giving 6 f64 lanes): doubling from ``lanes`` keeps candidates
      at register multiples (6, 12, 24, 48); the ceiling applies to
      the multiple, not to power-of-two-ness.
    """
    lanes = machine.lanes(dtype_bytes)
    if lanes > MAX_BSIZE:
        return [lanes]
    out = []
    b = lanes
    while b <= MAX_BSIZE:
        out.append(b)
        b *= 2
    return out


def min_blocks_per_color(grid: StructuredGrid, stencil: Stencil,
                         block_dims) -> int:
    """Smallest color class of the given partition."""
    part = partition_grid(grid, block_dims)
    colors = color_blocks(part, stencil)
    return int(np.bincount(colors).min())


def autotune_bsize(grid: StructuredGrid, stencil: Stencil,
                   machine: MachineModel, n_workers: int = 1,
                   dtype_bytes: int = 8,
                   groups_per_worker: int = 1,
                   min_block_points: int = 8) -> int:
    """Pick a ``bsize`` for this grid level / machine / worker count.

    Returns the **largest** candidate satisfying *both* constraints:
    its AUTO block partition supplies ``n_workers * groups_per_worker``
    vector groups per color, *with blocks of at least*
    ``min_block_points`` points (smaller blocks degenerate toward MC
    and its convergence penalty; the block-size constraint is waived on
    grids too small to ever meet it). Falls back to ``1`` when no
    candidate is feasible — the "scale bsize to the level" rule for
    coarse multigrid grids.

    Feasibility is **not monotone** in ``b``: a larger candidate can
    repartition into a coarser block grid whose smallest color class
    clears its (larger) group demand even though a smaller candidate's
    finer partition misses its own. The selection therefore materializes
    the whole feasible set and takes its max — a greedy
    scan-until-first-failure would be wrong.
    """
    check_positive(n_workers, "n_workers")
    from repro.ordering.coloring import _is_star

    n_colors = 2 if _is_star(stencil) else 2 ** grid.ndim

    def feasible(b: int) -> bool:
        block_dims = auto_block_dims(grid, n_workers, bsize=b,
                                     n_colors=n_colors)
        if int(np.prod(block_dims)) < min_block_points \
                and grid.n_points >= min_block_points * n_colors:
            return False
        blocks = min_blocks_per_color(grid, stencil, block_dims)
        return blocks >= b * n_workers * groups_per_worker

    feasible_set = [b for b in candidate_bsizes(machine, dtype_bytes)
                    if feasible(b)]
    return max(feasible_set) if feasible_set else 1
