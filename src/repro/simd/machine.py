"""Machine models of the paper's Table I platforms.

Table I (paper §V-A):

=============  ===========  =======  ==========  =============
Platform       Intel Xeon   KP 920   Thunder X2  Phytium 2000+
=============  ===========  =======  ==========  =============
Sockets        2            1        1           8
Cores          2 x 28       1 x 64   1 x 32      1 x 64
NUMAs          2            2        1           8
Freq (GHz)     2.6          2.6      2.5         2.2
L1             80 KB        64 KB    32 KB       32 KB
L2             1.25 MB      512 KB   256 KB      2 MB
L3             42 MB        64 MB    32 MB       None
SIMD           AVX512-512   NEON-128 NEON-128    NEON-128
=============  ===========  =======  ==========  =============

Memory bandwidths are not in the paper; the values below are the
publicly documented STREAM-class numbers for each part (8-channel DDR4
per socket). The models convert instruction counts + memory traffic
into a roofline-style time: ``max(compute, memory) + synchronization``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simd.counters import OpCounter
from repro.simd.isa import AVX512, NEON, SCALAR_ISA, VectorISA


@dataclass(frozen=True)
class MachineModel:
    """An evaluation platform.

    Attributes
    ----------
    name:
        Platform name as in Table I.
    sockets, cores_per_socket, numa_domains:
        Topology.
    freq_ghz:
        Core clock.
    l1_kb, l2_kb, l3_mb:
        Cache sizes (``l3_mb = 0`` for Phytium's L3-less design).
    isa:
        The :class:`~repro.simd.isa.VectorISA` of the platform.
    bw_gbs:
        Aggregate DRAM bandwidth in GB/s (all sockets).
    bw_half_sat_threads:
        Threads at which the bandwidth curve reaches half of its
        asymptote; small values model easily-saturated memory systems.
    barrier_us:
        Cost of one color-synchronization barrier in microseconds at
        full thread count (scaled by ``log2`` of active threads).
    gather_overfetch:
        DRAM over-fetch factor on gathered / irregular accesses (a
        cache line is moved per touched element; contiguous streams
        pay 1.0).
    """

    name: str
    sockets: int
    cores_per_socket: int
    numa_domains: int
    freq_ghz: float
    l1_kb: float
    l2_kb: float
    l3_mb: float
    isa: VectorISA
    bw_gbs: float
    bw_half_sat_threads: float = 4.0
    barrier_us: float = 2.0
    gather_overfetch: float = 1.6

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def simd_bits(self) -> int:
        return self.isa.bits

    def lanes(self, dtype_bytes: int = 8) -> int:
        """SIMD lanes per register for the given element size."""
        return max(1, self.isa.bits // (dtype_bytes * 8))

    # Time conversion ---------------------------------------------------
    def effective_bandwidth(self, threads: int) -> float:
        """Saturating bandwidth curve in bytes/second.

        ``bw(t) = BW_total * (t / (t + t_half)) * (1 + t_half/cores)``
        — monotone in ``t``, ~linear for few threads, saturating at
        roughly the full-machine bandwidth.
        """
        t = max(1, min(threads, self.cores))
        t_half = self.bw_half_sat_threads
        scale = (t / (t + t_half)) * (1.0 + t_half / self.cores)
        return self.bw_gbs * 1e9 * min(1.0, scale)

    def compute_seconds(self, counter: OpCounter, threads: int = 1,
                        dtype_bytes: int = 8, vectorized: bool = True,
                        use_gather_hw: bool = True,
                        parallelism: float | None = None) -> float:
        """Pure compute time for ``counter``'s work split over threads.

        Parameters
        ----------
        parallelism:
            Upper bound on exploitable concurrency (e.g. independent
            groups per color); effective threads are
            ``min(threads, parallelism)``.
        vectorized:
            ``False`` forces the scalar ISA (CSR-style baselines).
        """
        isa = self.isa if vectorized else SCALAR_ISA
        cycles = counter.cycles_on(isa, dtype_bytes=dtype_bytes,
                                   use_gather_hw=use_gather_hw)
        eff_threads = max(1.0, min(threads, self.cores))
        if parallelism is not None:
            eff_threads = max(1.0, min(eff_threads, parallelism))
        return cycles / (self.freq_ghz * 1e9) / eff_threads

    def memory_seconds(self, total_bytes: float, threads: int = 1) -> float:
        """Streaming time for ``total_bytes`` of DRAM traffic."""
        return total_bytes / self.effective_bandwidth(threads)

    def sync_seconds(self, n_barriers: int, threads: int = 1) -> float:
        """Cost of ``n_barriers`` color synchronizations."""
        import math

        t = max(1, min(threads, self.cores))
        per = self.barrier_us * 1e-6 * (math.log2(t) + 1) / (
            math.log2(self.cores) + 1)
        return n_barriers * per

    def kernel_seconds(self, counter: OpCounter, threads: int = 1,
                       dtype_bytes: int = 8, vectorized: bool = True,
                       use_gather_hw: bool = True,
                       parallelism: float | None = None,
                       n_barriers: int = 0,
                       cache_resident_fraction: float = 0.0) -> float:
        """Roofline-style total time for one kernel sweep.

        ``max(compute, memory) + sync``; ``cache_resident_fraction``
        discounts traffic that hits in LLC on repeated sweeps, and
        gathered traffic pays the line over-fetch factor.
        """
        comp = self.compute_seconds(
            counter, threads=threads, dtype_bytes=dtype_bytes,
            vectorized=vectorized, use_gather_hw=use_gather_hw,
            parallelism=parallelism,
        )
        contiguous = (counter.total_bytes - counter.bytes_gathered)
        traffic = (contiguous
                   + counter.bytes_gathered * self.gather_overfetch)
        traffic *= (1.0 - cache_resident_fraction)
        mem = self.memory_seconds(traffic, threads=threads)
        return max(comp, mem) + self.sync_seconds(n_barriers, threads)


INTEL_XEON = MachineModel(
    name="Intel Xeon 6348", sockets=2, cores_per_socket=28,
    numa_domains=2, freq_ghz=2.6, l1_kb=80, l2_kb=1280, l3_mb=42,
    isa=AVX512, bw_gbs=2 * 204.8, bw_half_sat_threads=5.0,
    barrier_us=2.0,
)

KUNPENG_920 = MachineModel(
    name="KunPeng 920", sockets=1, cores_per_socket=64,
    numa_domains=2, freq_ghz=2.6, l1_kb=64, l2_kb=512, l3_mb=64,
    isa=NEON, bw_gbs=187.7, bw_half_sat_threads=6.0,
    barrier_us=2.5,
)

THUNDER_X2 = MachineModel(
    name="Thunder X2", sockets=1, cores_per_socket=32,
    numa_domains=1, freq_ghz=2.5, l1_kb=32, l2_kb=256, l3_mb=32,
    isa=NEON, bw_gbs=170.6, bw_half_sat_threads=5.0,
    barrier_us=2.5,
)

PHYTIUM_2000 = MachineModel(
    name="Phytium 2000+", sockets=8, cores_per_socket=8,
    numa_domains=8, freq_ghz=2.2, l1_kb=32, l2_kb=2048, l3_mb=0,
    isa=NEON, bw_gbs=204.8, bw_half_sat_threads=6.0,
    barrier_us=4.0,
)

#: The four platforms of Table I, evaluation order.
TABLE1_MACHINES = (INTEL_XEON, KUNPENG_920, THUNDER_X2, PHYTIUM_2000)
