"""Vector instruction set descriptions.

Costs are expressed in cycles per instruction (reciprocal throughput,
not latency — the kernels here are throughput-bound streams). The
gather costs encode the §III-D observation that SIMD gathers are so
expensive they cancel the vectorization benefit: on real AVX512 a
16-lane gather costs roughly one cycle *per lane*, versus a single
cycle for a contiguous load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class VectorISA:
    """A SIMD instruction-set model.

    Attributes
    ----------
    name:
        ISA name (``"AVX512"``, ``"NEON"``, ``"scalar"``).
    bits:
        Register width in bits.
    load_cost, store_cost, fma_cost:
        Cycles per contiguous vector load / store / fused multiply-add.
    gather_cost_per_lane:
        Cycles per *lane* of a gather; a gather of ``L`` lanes costs
        ``gather_cost_per_lane * L`` cycles.
    div_cost:
        Cycles per vector divide.
    scalar_op_cost:
        Cycles per scalar ALU/FP op (used by non-vectorized kernels).
    issue_width:
        Vector instructions retire-able per cycle (superscalar factor).
    """

    name: str
    bits: int
    load_cost: float = 1.0
    store_cost: float = 1.0
    fma_cost: float = 0.5
    gather_cost_per_lane: float = 1.0
    div_cost: float = 4.0
    scalar_op_cost: float = 1.0
    issue_width: float = 2.0

    def lanes(self, dtype=np.float64) -> int:
        """Number of elements of ``dtype`` per vector register."""
        itembits = np.dtype(dtype).itemsize * 8
        require(self.bits % itembits == 0,
                f"{self.name} width not a multiple of element width")
        return self.bits // itembits

    def vector_ops_for(self, bsize: int, dtype=np.float64) -> int:
        """SIMD instructions needed to process ``bsize`` lanes.

        The paper notes bsize is *not* limited by the hardware SIMD
        width — wider logical vectors just issue multiple instructions
        per block (§III-B).
        """
        lanes = self.lanes(dtype)
        return (bsize + lanes - 1) // lanes


# Reference ISAs for the Table I platforms ---------------------------------

#: Intel AVX-512: wide registers, cheap FMA, expensive gathers.
AVX512 = VectorISA(
    name="AVX512", bits=512,
    load_cost=1.0, store_cost=1.0, fma_cost=0.5,
    gather_cost_per_lane=1.2, div_cost=8.0,
    scalar_op_cost=1.0, issue_width=2.0,
)

#: ARMv8 NEON: 128-bit registers; no hardware gather, so gathers are
#: synthesized from scalar loads (cost ~2 cycles per lane).
NEON = VectorISA(
    name="NEON", bits=128,
    load_cost=1.0, store_cost=1.0, fma_cost=0.5,
    gather_cost_per_lane=2.0, div_cost=8.0,
    scalar_op_cost=1.0, issue_width=2.0,
)

#: Degenerate scalar "ISA" used to model non-vectorized code paths.
SCALAR_ISA = VectorISA(
    name="scalar", bits=64,
    load_cost=1.0, store_cost=1.0, fma_cost=1.0,
    gather_cost_per_lane=1.0, div_cost=8.0,
    scalar_op_cost=1.0, issue_width=2.0,
)
