"""Instrumented vector execution engine.

A :class:`VectorEngine` is the "assembly language" the vectorized
kernels are written in: explicit ``load`` / ``gather`` / ``fma`` /
``store`` operations on width-``bsize`` numpy slices, each tallied in
an :class:`~repro.simd.counters.OpCounter`. This makes the kernels in
:mod:`repro.kernels` structurally identical to the paper's Algorithm 2
and Algorithm 4 pseudocode — the instruction mix is observable even
though Python cannot emit real SIMD.

The engine-instrumented kernels form the ``numpy-counted`` backend
tier (:mod:`repro.backends`): the bitwise-differential twin every
faster tier (``numpy-fast`` vectorized numpy, ``numba`` JIT) is pinned
against. Each engine op is a *single* rounding step, so a twin kernel
reproduces the counted result bit-for-bit exactly when it performs the
same multiplies/adds/divides in the same order.
"""

from __future__ import annotations

import numpy as np

from repro.resilience import hooks
from repro.simd.counters import OpCounter
from repro.utils.validation import check_positive


class VectorEngine:
    """Executes lane-wise vector operations while counting them.

    Parameters
    ----------
    bsize:
        Logical vector width (elements per operation).
    counter:
        Counter to accumulate into; a fresh one is created if omitted.
    dtype:
        Element dtype of the run; its itemsize is the default byte
        width of scalar memory ops (``scalar_load`` / ``scalar_store``
        call sites that do not pass an explicit itemsize).

    Notes
    -----
    All operations return plain ndarrays so kernels can mix engine ops
    with numpy arithmetic where no memory access is implied.

    Memory ops charge the bytes *actually transferred*: a contiguous
    load whose slice is clipped at the array tail (fewer than ``bsize``
    elements remain) charges only the surviving lanes, exactly like
    ``store``/``scatter`` charge ``len(vec)``.
    """

    def __init__(self, bsize: int, counter: OpCounter | None = None,
                 dtype=np.float64):
        hooks.fire("simd.engine", bsize=bsize)
        self.bsize = check_positive(bsize, "bsize")
        self.itemsize = int(np.dtype(dtype).itemsize)
        self.counter = counter if counter is not None else OpCounter(
            bsize=bsize)

    # Memory operations --------------------------------------------------
    def load(self, arr: np.ndarray, start: int) -> np.ndarray:
        """Contiguous vector load of up to ``bsize`` elements at
        ``start`` (clipped, and charged, at the array tail)."""
        out = arr[start:start + self.bsize]
        c = self.counter
        c.vload += 1
        c.bytes_vector += out.nbytes
        return out

    def load_values(self, arr: np.ndarray, start: int) -> np.ndarray:
        """Load from the matrix value stream (accounted separately)."""
        out = arr[start:start + self.bsize]
        c = self.counter
        c.vload += 1
        c.bytes_values += out.nbytes
        return out

    def gather(self, arr: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Indexed gather of ``len(idx)`` elements."""
        c = self.counter
        c.vgather += 1
        c.bytes_gathered += len(idx) * arr.itemsize
        return arr[idx]

    def store(self, arr: np.ndarray, start: int, vec: np.ndarray) -> None:
        """Contiguous vector store."""
        c = self.counter
        c.vstore += 1
        c.bytes_vector += len(vec) * arr.itemsize
        arr[start:start + len(vec)] = vec

    def scatter(self, arr: np.ndarray, idx: np.ndarray,
                vec: np.ndarray) -> None:
        """Indexed scatter store."""
        c = self.counter
        c.vscatter += 1
        c.bytes_vector += len(idx) * arr.itemsize
        arr[idx] = vec

    def load_index(self, arr: np.ndarray, pos: int) -> int:
        """Scalar load from an index stream (blk_ind/blk_offset/ptr)."""
        c = self.counter
        c.sload += 1
        c.bytes_index += arr.itemsize
        return int(arr[pos])

    # Arithmetic ----------------------------------------------------------
    def fnma(self, acc: np.ndarray, a: np.ndarray,
             b: np.ndarray) -> np.ndarray:
        """Fused negative multiply-add: ``acc - a * b`` (Alg. 2 line 11)."""
        self.counter.vfma += 1
        return acc - a * b

    def fma(self, acc: np.ndarray, a: np.ndarray,
            b: np.ndarray) -> np.ndarray:
        """Fused multiply-add: ``acc + a * b``."""
        self.counter.vfma += 1
        return acc + a * b

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.counter.vmul += 1
        return a * b

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.counter.vadd += 1
        return a + b

    def div(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.counter.vdiv += 1
        return a / b

    # Scalar tallies for non-vector kernels -------------------------------
    def scalar_flop(self, n: int = 1) -> None:
        self.counter.sflop += n

    def scalar_load(self, n: int = 1, itemsize: int | None = None,
                    stream: str = "vector") -> None:
        if itemsize is None:
            itemsize = self.itemsize
        self.counter.sload += n
        if stream == "values":
            self.counter.bytes_values += n * itemsize
        elif stream == "index":
            self.counter.bytes_index += n * itemsize
        elif stream == "gathered":
            self.counter.bytes_gathered += n * itemsize
        else:
            self.counter.bytes_vector += n * itemsize

    def scalar_store(self, n: int = 1, itemsize: int | None = None) -> None:
        if itemsize is None:
            itemsize = self.itemsize
        self.counter.sstore += n
        self.counter.bytes_vector += n * itemsize
