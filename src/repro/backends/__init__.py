"""Kernel backend registry — compiled execution tiers behind the plans.

Three tiers implement the ``PLAN_OPS`` surface (see
:class:`repro.backends.base.KernelBackend`):

* ``numpy-counted`` — the instrumented :class:`VectorEngine` kernels,
  kept as the bitwise-differential twin (tallies == closed forms).
* ``numpy-fast`` — allocation-hoisted, branch-free numpy paths (the
  default serving tier).
* ``numba`` — JIT-compiled lane loops; an *optional* tier that resolves
  to ``numpy-fast`` with a warning when numba is not installed.

:func:`repro.serve.plan.compile_plan` resolves the tier named by
``PlanConfig.backend`` at plan-compile time; the requested name is part
of the structural fingerprint (and the autotune-pick persistence
schema), while execution spans carry the *resolved* tier so traces show
what actually ran. Selection rules, the twin-testing contract, and
install notes live in ``docs/backends.md``.

Tier modules import lazily (inside the functions below) so that
``repro.backends`` ↔ ``repro.serve`` imports cannot cycle at module
load.
"""

from __future__ import annotations

import threading
import warnings

from repro.backends.base import KernelBackend

#: Registry keys, fastest-available-last; ``PlanConfig.backend`` must
#: be one of these.
BACKEND_NAMES = ("numpy-counted", "numpy-fast", "numba")

#: The tier plans compile to when none is requested.
DEFAULT_BACKEND = "numpy-fast"

_lock = threading.Lock()
_instances: dict[str, KernelBackend] = {}
_missing_warned: set[str] = set()


def _backend_class(name: str):
    if name == "numpy-counted":
        from repro.backends.numpy_counted import NumpyCountedBackend

        return NumpyCountedBackend
    if name == "numpy-fast":
        from repro.backends.numpy_fast import NumpyFastBackend

        return NumpyFastBackend
    if name == "numba":
        from repro.backends.numba_backend import NumbaBackend

        return NumbaBackend
    raise KeyError(
        f"unknown backend {name!r}; known: {BACKEND_NAMES}")


def get_backend(name: str) -> KernelBackend:
    """The (singleton) backend registered under ``name``.

    Raises ``KeyError`` for unknown names. Does **not** check
    availability — use :func:`resolve_backend` for the serving path.
    """
    with _lock:
        inst = _instances.get(name)
        if inst is None:
            inst = _instances[name] = _backend_class(name)()
    return inst


def available_backends() -> tuple:
    """Names of the tiers that can execute in this environment."""
    return tuple(n for n in BACKEND_NAMES
                 if _backend_class(n).is_available())


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Resolve a requested tier to an executable backend instance.

    An unavailable optional tier (``numba`` without numba installed)
    resolves to the ``numpy-fast`` tier with a one-time warning — a
    request for a compiled plan must never fail just because the
    accelerator is missing. Unknown names raise ``KeyError``.
    """
    name = DEFAULT_BACKEND if name is None else name
    cls = _backend_class(name)
    if not cls.is_available():
        with _lock:
            if name not in _missing_warned:
                _missing_warned.add(name)
                warnings.warn(
                    f"backend {name!r} is not available in this "
                    f"environment; falling back to "
                    f"{DEFAULT_BACKEND!r}", RuntimeWarning,
                    stacklevel=2)
        return get_backend(DEFAULT_BACKEND)
    return get_backend(name)


__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
]
