"""``numpy-fast`` tier: allocation-hoisted, branch-free numpy kernels.

The default serving tier. Delegates to the batched kernels of
:mod:`repro.serve.batch` (RHS-major padded buffers, one tile-value
load per sweep shared by all ``k`` columns) and the ``engine=None``
fast path of the SELL sweeps. Bit-identity with the ``numpy-counted``
twin is pinned by ``tests/backends`` and the golden-trace suite.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend


class NumpyFastBackend(KernelBackend):
    """Vectorized numpy execution of the plan ops."""

    name = "numpy-fast"

    def sptrsv_dbsr_multi(self, matrix, Bp, diag, forward):
        from repro.serve.batch import (
            sptrsv_dbsr_lower_multi,
            sptrsv_dbsr_upper_multi,
        )

        kern = sptrsv_dbsr_lower_multi if forward \
            else sptrsv_dbsr_upper_multi
        return kern(matrix, Bp, diag=diag)

    def spmv_dbsr_multi(self, matrix, Bp):
        from repro.serve.batch import spmv_dbsr_multi

        return spmv_dbsr_multi(matrix, Bp)

    def symgs_dbsr_multi(self, matrix, diag, X, Bp):
        from repro.serve.batch import symgs_dbsr_multi

        return symgs_dbsr_multi(matrix, diag, X, Bp)

    def sptrsv_sell_multi(self, sell, Bp, diag, forward):
        from repro.kernels.sptrsv_sell import (
            sptrsv_sell_lower,
            sptrsv_sell_upper,
        )

        kern = sptrsv_sell_lower if forward else sptrsv_sell_upper
        out = np.empty_like(Bp)
        for j in range(Bp.shape[1]):
            out[:, j] = kern(sell, Bp[:, j], diag=diag)
        return out

    def ilu_apply_dbsr_multi(self, factors, Bp):
        from repro.serve.batch import ilu_apply_dbsr_multi

        return ilu_apply_dbsr_multi(factors, Bp)
