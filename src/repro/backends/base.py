"""Kernel-backend interface: one execution tier for the plan ops.

A :class:`KernelBackend` supplies the compiled execution tier behind
:meth:`repro.serve.plan.SolvePlan.execute`: the ``PLAN_OPS`` surface
(``lower`` / ``upper`` / ``spmv`` / ``symgs``) routed by plan strategy,
plus the underlying format-level multi-RHS kernels the resilience
ladder calls directly with its own artifacts (a DBSR-strategy plan
descending to the SELL rung executes *that rung* through the plan's
backend too).

Backends are numerical twins, not alternatives: every tier must return
results equal under ``np.array_equal`` to the ``numpy-counted``
reference tier on the same inputs — the repository's bit-identity
convention, pinned by the golden-trace differential suite. A backend
that cannot hold that contract does not belong in the registry.

Backends are stateless singletons shared across plans and threads; any
per-call scratch state (e.g. the counted tier's engine) must be
documented as a test/bench affordance, never relied on for serving.
"""

from __future__ import annotations

import numpy as np


class KernelBackend:
    """Abstract execution tier for the ``PLAN_OPS`` surface.

    Subclasses implement the four format-level kernels; the plan-level
    ops (:meth:`lower` … :meth:`symgs`) route strategy exactly like the
    historical ``SolvePlan._execute_dbsr`` / ``_execute_sell`` split:
    a ``"sell"``-strategy plan runs its triangular sweeps through the
    SELL kernels and everything else through DBSR.

    All plan-level ops take and return **padded-ordering** ``(n_padded,
    k)`` blocks — :meth:`SolvePlan.execute` owns the extend/restrict
    mapping and the tracing span.
    """

    #: Registry key; also the ``backend`` attr on execution spans.
    name = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this tier can execute in the current environment."""
        return True

    # Plan-level ops (PLAN_OPS surface) --------------------------------
    def run(self, plan, op: str, Bp: np.ndarray) -> np.ndarray:
        """Dispatch one plan op over a padded ``(n_padded, k)`` block."""
        return getattr(self, op)(plan, Bp)

    def lower(self, plan, Bp: np.ndarray) -> np.ndarray:
        if plan.config.strategy == "sell":
            return self.sptrsv_sell_multi(plan.sell_lower, Bp,
                                          plan.diag, forward=True)
        return self.sptrsv_dbsr_multi(plan.lower, Bp, plan.diag,
                                      forward=True)

    def upper(self, plan, Bp: np.ndarray) -> np.ndarray:
        if plan.config.strategy == "sell":
            return self.sptrsv_sell_multi(plan.sell_upper, Bp,
                                          plan.diag, forward=False)
        return self.sptrsv_dbsr_multi(plan.upper, Bp, plan.diag,
                                      forward=False)

    def spmv(self, plan, Bp: np.ndarray) -> np.ndarray:
        return self.spmv_dbsr_multi(plan.dbsr, Bp)

    def symgs(self, plan, Bp: np.ndarray) -> np.ndarray:
        X = np.zeros_like(Bp)
        return self.symgs_dbsr_multi(plan.dbsr, plan.diag, X, Bp)

    def ilu_apply(self, plan, Bp: np.ndarray) -> np.ndarray:
        """Apply an :class:`~repro.serve.ilu_plan.ILUPlan`'s factors."""
        return self.ilu_apply_dbsr_multi(plan.factors, Bp)

    # Format-level multi-RHS kernels -----------------------------------
    def sptrsv_dbsr_multi(self, matrix, Bp: np.ndarray,
                          diag: np.ndarray | None,
                          forward: bool) -> np.ndarray:
        """Solve ``(L+D) X = B`` (forward) or ``(D+U) X = B``."""
        raise NotImplementedError

    def spmv_dbsr_multi(self, matrix, Bp: np.ndarray) -> np.ndarray:
        """``Y = A X`` over an ``(n, k)`` block in DBSR."""
        raise NotImplementedError

    def symgs_dbsr_multi(self, matrix, diag: np.ndarray, X: np.ndarray,
                         Bp: np.ndarray) -> np.ndarray:
        """One SYMGS sweep over ``(n, k)`` blocks; updates ``X``."""
        raise NotImplementedError

    def sptrsv_sell_multi(self, sell, Bp: np.ndarray,
                          diag: np.ndarray | None,
                          forward: bool) -> np.ndarray:
        """Column-wise SELL triangular solve over an ``(n, k)`` block."""
        raise NotImplementedError

    def ilu_apply_dbsr_multi(self, factors, Bp: np.ndarray) -> np.ndarray:
        """Solve ``L U Z = B`` over factored DBSR ILU(0) artifacts."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
