"""``numba`` tier: JIT-compiled DBSR/SELL hot loops.

The paper's core claim is that DBSR's gather-free contiguous-load
sweeps (Alg. 2/4) vectorize into machine code; this tier actually
compiles them. The kernels are written as plain-Python lane loops and
``numba.njit``-compiled on first use — **without** ``fastmath``, and
with every multiply/accumulate split into two statements, so LLVM
cannot contract them into FMAs. That keeps the floating-point op
sequence identical to the numpy tiers: multiply, round, then
add/subtract, round. Bit-identity with the ``numpy-counted`` twin is
therefore exact (pinned by ``tests/backends`` when numba is present).

numba is an **optional** dependency: :func:`numba_available` probes for
it once, and :func:`repro.backends.resolve_backend` falls back to
``numpy-fast`` (with a warning) when it is missing. The pure-Python
kernel bodies below stay importable and executable either way, so the
algorithmic bit-identity tests run even where numba is absent.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend

_NUMBA_PROBE: list | None = None
_JIT_CACHE: dict = {}


def numba_available() -> bool:
    """Probe (once) whether a working numba import is available."""
    global _NUMBA_PROBE
    if _NUMBA_PROBE is None:
        try:
            import numba  # noqa: F401
            _NUMBA_PROBE = [True]
        except Exception:  # pragma: no cover - environment-dependent
            _NUMBA_PROBE = [False]
    return _NUMBA_PROBE[0]


# Kernel bodies -----------------------------------------------------------
#
# Plain functions, jitted lazily by _kernels(). Scalar lane loops only:
# no fancy indexing (the gather lint runs over this module), and each
# multiply kept in its own statement so contraction cannot change the
# rounding sequence relative to the numpy tiers.

def _sptrsv_dbsr_body(blk_ptr, anchors, values, Bk, Xp, diag, use_diag,
                      forward):
    k = Bk.shape[0]
    brow = blk_ptr.shape[0] - 1
    bs = values.shape[1]
    step = 1 if forward else -1
    start = 0 if forward else brow - 1
    for ii in range(brow):
        i = start + step * ii
        row0 = i * bs
        for j in range(k):
            acc = Bk[j, row0:row0 + bs].copy()
            for t in range(blk_ptr[i], blk_ptr[i + 1]):
                a = anchors[t]
                for lane in range(bs):
                    prod = values[t, lane] * Xp[j, a + lane]
                    acc[lane] = acc[lane] - prod
            if use_diag:
                for lane in range(bs):
                    acc[lane] = acc[lane] / diag[row0 + lane]
            for lane in range(bs):
                Xp[j, bs + row0 + lane] = acc[lane]


def _spmv_dbsr_body(blk_ptr, anchors, values, Xp, Yk):
    k = Xp.shape[0]
    brow = blk_ptr.shape[0] - 1
    bs = values.shape[1]
    for i in range(brow):
        row0 = i * bs
        for j in range(k):
            acc = np.zeros(bs, dtype=values.dtype)
            for t in range(blk_ptr[i], blk_ptr[i + 1]):
                a = anchors[t]
                for lane in range(bs):
                    prod = values[t, lane] * Xp[j, a + lane]
                    acc[lane] = acc[lane] + prod
            for lane in range(bs):
                Yk[j, row0 + lane] = acc[lane]


def _symgs_dbsr_body(blk_ptr, anchors, values, Bk, Xp, diag):
    k = Bk.shape[0]
    brow = blk_ptr.shape[0] - 1
    bs = values.shape[1]
    for sweep in range(2):
        forward = sweep == 0
        step = 1 if forward else -1
        start = 0 if forward else brow - 1
        for ii in range(brow):
            i = start + step * ii
            row0 = i * bs
            for j in range(k):
                rowsum = np.zeros(bs, dtype=values.dtype)
                for t in range(blk_ptr[i], blk_ptr[i + 1]):
                    a = anchors[t]
                    for lane in range(bs):
                        prod = values[t, lane] * Xp[j, a + lane]
                        rowsum[lane] = rowsum[lane] + prod
                for lane in range(bs):
                    num = Bk[j, row0 + lane] - rowsum[lane]
                    corr = num / diag[row0 + lane]
                    Xp[j, bs + row0 + lane] = \
                        Xp[j, bs + row0 + lane] + corr


def _ilu_apply_dbsr_body(blk_ptr, dia_ptr, anchors, values, Bk, Yp, Zp):
    k = Bk.shape[0]
    brow = blk_ptr.shape[0] - 1
    bs = values.shape[1]
    # Forward: (L + I) Y = B over the strictly-lower tiles.
    for i in range(brow):
        row0 = i * bs
        for j in range(k):
            acc = Bk[j, row0:row0 + bs].copy()
            for t in range(blk_ptr[i], dia_ptr[i]):
                a = anchors[t]
                for lane in range(bs):
                    prod = values[t, lane] * Yp[j, a + lane]
                    acc[lane] = acc[lane] - prod
            for lane in range(bs):
                Yp[j, bs + row0 + lane] = acc[lane]
    # Backward: (D + U) Z = Y over the diagonal + upper tiles.
    for i in range(brow - 1, -1, -1):
        row0 = i * bs
        for j in range(k):
            acc = Yp[j, bs + row0:bs + row0 + bs].copy()
            for t in range(dia_ptr[i] + 1, blk_ptr[i + 1]):
                a = anchors[t]
                for lane in range(bs):
                    prod = values[t, lane] * Zp[j, a + lane]
                    acc[lane] = acc[lane] - prod
            for lane in range(bs):
                acc[lane] = acc[lane] / values[dia_ptr[i], lane]
            for lane in range(bs):
                Zp[j, bs + row0 + lane] = acc[lane]


def _sptrsv_sell_body(chunk_ptr, widths, colidx, vals, diag, use_diag,
                      b, x, chunk, forward):
    n = x.shape[0]
    n_chunks = widths.shape[0]
    step = 1 if forward else -1
    start = 0 if forward else n_chunks - 1
    for ii in range(n_chunks):
        ci = start + step * ii
        base = chunk_ptr[ci]
        w = widths[ci]
        lo = ci * chunk
        hi = min(lo + chunk, n)
        lanes = hi - lo
        acc = b[lo:hi].copy()
        for jj in range(w):
            pos = base + jj * chunk
            for lane in range(lanes):
                col = colidx[pos + lane]
                prod = vals[pos + lane] * x[col]
                acc[lane] = acc[lane] - prod
        if use_diag:
            for lane in range(lanes):
                acc[lane] = acc[lane] / diag[lo + lane]
        for lane in range(lanes):
            x[lo + lane] = acc[lane]


_BODIES = {
    "sptrsv_dbsr": _sptrsv_dbsr_body,
    "spmv_dbsr": _spmv_dbsr_body,
    "symgs_dbsr": _symgs_dbsr_body,
    "sptrsv_sell": _sptrsv_sell_body,
    "ilu_apply_dbsr": _ilu_apply_dbsr_body,
}


def _kernels(jit: bool = True) -> dict:
    """The kernel table — jitted when numba is present.

    ``jit=False`` returns the interpreted bodies; the parity tests use
    it to pin the loop nests' numerics on numba-less environments.
    """
    if not jit or not numba_available():
        return dict(_BODIES)
    if not _JIT_CACHE:
        import numba

        for name, body in _BODIES.items():
            # No fastmath: contraction or reassociation would break the
            # bit-identity contract with the numpy tiers.
            _JIT_CACHE[name] = numba.njit(fastmath=False)(body)
    return dict(_JIT_CACHE)


class NumbaBackend(KernelBackend):
    """JIT execution of the plan ops (requires numba).

    ``jit=False`` (tests only) runs the same loop bodies interpreted.
    """

    name = "numba"

    def __init__(self, jit: bool = True):
        self._jit = jit

    @classmethod
    def is_available(cls) -> bool:
        return numba_available()

    # Buffer prep mirrors repro.serve.batch: RHS-major padded buffers,
    # one dtype for the whole kernel (numpy's promotion, applied once).
    @staticmethod
    def _dbsr_args(matrix, dtype):
        blk_ptr = np.ascontiguousarray(matrix.blk_ptr, dtype=np.int64)
        anchors = np.ascontiguousarray(matrix.anchors + matrix.bsize,
                                       dtype=np.int64)
        values = np.ascontiguousarray(matrix.values, dtype=dtype)
        return blk_ptr, anchors, values

    def sptrsv_dbsr_multi(self, matrix, Bp, diag, forward):
        kern = _kernels(self._jit)["sptrsv_dbsr"]
        B = np.asarray(Bp)
        n, k = B.shape
        bs = matrix.bsize
        dtype = np.result_type(matrix.values, B)
        blk_ptr, anchors, values = self._dbsr_args(matrix, dtype)
        Xp = np.zeros((k, n + 2 * bs), dtype=dtype)
        Bk = np.ascontiguousarray(B.T, dtype=dtype)
        use_diag = diag is not None
        d = np.ascontiguousarray(
            diag if use_diag else np.empty(0), dtype=dtype)
        kern(blk_ptr, anchors, values, Bk, Xp, d, use_diag, forward)
        return np.ascontiguousarray(Xp[:, bs:bs + n].T)

    def spmv_dbsr_multi(self, matrix, Bp):
        kern = _kernels(self._jit)["spmv_dbsr"]
        X = np.asarray(Bp)
        n, k = X.shape
        bs = matrix.bsize
        dtype = np.result_type(matrix.values, X)
        blk_ptr, anchors, values = self._dbsr_args(matrix, dtype)
        Xp = np.zeros((k, matrix.n_cols + 2 * bs), dtype=dtype)
        Xp[:, bs:bs + matrix.n_cols] = X.T
        Yk = np.zeros((k, matrix.brow * bs), dtype=dtype)
        kern(blk_ptr, anchors, values, Xp, Yk)
        return np.ascontiguousarray(Yk[:, :matrix.n_rows].T)

    def symgs_dbsr_multi(self, matrix, diag, X, Bp):
        kern = _kernels(self._jit)["symgs_dbsr"]
        B = np.asarray(Bp)
        n, k = B.shape
        bs = matrix.bsize
        dtype = np.result_type(matrix.values, X)
        blk_ptr, anchors, values = self._dbsr_args(matrix, dtype)
        Xp = np.zeros((k, n + 2 * bs), dtype=dtype)
        Xp[:, bs:bs + n] = X.T
        Bk = np.ascontiguousarray(B.T, dtype=dtype)
        d = np.ascontiguousarray(diag, dtype=dtype)
        kern(blk_ptr, anchors, values, Bk, Xp, d)
        X[:] = Xp[:, bs:bs + n].T
        return X

    def ilu_apply_dbsr_multi(self, factors, Bp):
        kern = _kernels(self._jit)["ilu_apply_dbsr"]
        m = factors.matrix
        B = np.asarray(Bp)
        n, k = B.shape
        bs = m.bsize
        dtype = np.result_type(m.values, B)
        blk_ptr, anchors, values = self._dbsr_args(m, dtype)
        dia_ptr = np.ascontiguousarray(factors.dia_ptr, dtype=np.int64)
        Bk = np.ascontiguousarray(B.T, dtype=dtype)
        Yp = np.zeros((k, n + 2 * bs), dtype=dtype)
        Zp = np.zeros((k, n + 2 * bs), dtype=dtype)
        kern(blk_ptr, dia_ptr, anchors, values, Bk, Yp, Zp)
        return np.ascontiguousarray(Zp[:, bs:bs + n].T)

    def sptrsv_sell_multi(self, sell, Bp, diag, forward):
        kern = _kernels(self._jit)["sptrsv_sell"]
        B = np.asarray(Bp)
        dtype = np.result_type(sell.vals, B)
        chunk_ptr = np.ascontiguousarray(sell.chunk_ptr, dtype=np.int64)
        widths = np.ascontiguousarray(sell.widths, dtype=np.int64)
        colidx = np.ascontiguousarray(sell.colidx, dtype=np.int64)
        vals = np.ascontiguousarray(sell.vals, dtype=dtype)
        use_diag = diag is not None
        d = np.ascontiguousarray(
            diag if use_diag else np.empty(0), dtype=dtype)
        out = np.empty_like(B)
        for j in range(B.shape[1]):
            b = np.ascontiguousarray(B[:, j], dtype=dtype)
            x = np.zeros(sell.n_rows, dtype=dtype)
            kern(chunk_ptr, widths, colidx, vals, d, use_diag, b, x,
                 sell.chunk, forward)
            out[:, j] = x
        return out
