"""``numpy-counted`` tier: the instrumented bitwise-differential twin.

Executes every plan op through a :class:`~repro.simd.engine.VectorEngine`
so the full load/FMA/divide stream is tallied. This tier is the
*reference* the other tiers are compared against:

* results must equal the fast and jit tiers under ``np.array_equal``
  (the repository's bit-identity convention), and
* its tallies must equal the closed forms of
  :mod:`repro.kernels.counts` exactly.

Each kernel call runs on a **fresh** engine, stashed on the backend as
:attr:`NumpyCountedBackend.last_engine` so tests and the bench
collectors can read the per-op counter back. That stash is a test/bench
affordance only — it is not synchronized, so concurrent serving through
this tier gets correct numerics but racy counter readback.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend
from repro.simd.engine import VectorEngine


class NumpyCountedBackend(KernelBackend):
    """Instrumented execution of the plan ops (the counted twin)."""

    name = "numpy-counted"

    def __init__(self):
        #: Engine of the most recent kernel call (test/bench readback).
        self.last_engine: VectorEngine | None = None

    def _engine(self, width: int, dtype) -> VectorEngine:
        engine = VectorEngine(width, dtype=dtype)
        self.last_engine = engine
        return engine

    def sptrsv_dbsr_multi(self, matrix, Bp, diag, forward):
        from repro.serve.batch import (
            sptrsv_dbsr_lower_multi_counted,
            sptrsv_dbsr_upper_multi_counted,
        )

        kern = sptrsv_dbsr_lower_multi_counted if forward \
            else sptrsv_dbsr_upper_multi_counted
        engine = self._engine(matrix.bsize, matrix.values.dtype)
        return kern(matrix, Bp, engine, diag=diag)

    def spmv_dbsr_multi(self, matrix, Bp):
        from repro.serve.batch import spmv_dbsr_multi_counted

        engine = self._engine(matrix.bsize, matrix.values.dtype)
        return spmv_dbsr_multi_counted(matrix, Bp, engine)

    def symgs_dbsr_multi(self, matrix, diag, X, Bp):
        from repro.serve.batch import symgs_dbsr_multi_counted

        engine = self._engine(matrix.bsize, matrix.values.dtype)
        return symgs_dbsr_multi_counted(matrix, diag, X, Bp, engine)

    def ilu_apply_dbsr_multi(self, factors, Bp):
        from repro.serve.batch import ilu_apply_dbsr_multi_counted

        m = factors.matrix
        engine = self._engine(m.bsize, m.values.dtype)
        return ilu_apply_dbsr_multi_counted(factors, Bp, engine)

    def sptrsv_sell_multi(self, sell, Bp, diag, forward):
        from repro.kernels.sptrsv_sell import (
            sptrsv_sell_lower,
            sptrsv_sell_upper,
        )

        kern = sptrsv_sell_lower if forward else sptrsv_sell_upper
        # One engine accumulates across all k columns so the tally
        # equals sptrsv_sell_counts(...).scaled(k).
        engine = self._engine(sell.chunk, sell.vals.dtype)
        out = np.empty_like(Bp)
        for j in range(Bp.shape[1]):
            out[:, j] = kern(sell, Bp[:, j], diag=diag, engine=engine)
        return out
