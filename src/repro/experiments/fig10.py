"""Fig. 10 — DBSR-ILU(0) smoothing time vs bsize on Intel.

Paper reference point: performance improves with bsize and stabilizes
around 16.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    PAPER_ILU_NX,
    machine_by_name,
)
from repro.grids.problems import poisson_problem
from repro.perfmodel.bsize_model import bsize_sweep

BSIZES = (1, 2, 4, 8, 16)


def generate(nx: int = 16, machine_name: str = "intel",
             bsizes=BSIZES, threads: int = 16,
             tol: float = 1e-8) -> ExperimentResult:
    machine = machine_by_name(machine_name)
    problem = poisson_problem((nx,) * 3, "27pt")
    scale = (PAPER_ILU_NX / nx) ** 3
    res = bsize_sweep(problem, machine, bsizes=bsizes, threads=threads,
                      tol=tol, scale=scale)
    rows = [(bs, f"{sec * 1e3:.2f} ms") for bs, sec in res.items()]
    return ExperimentResult(
        name="fig10_bsize_sweep",
        title="Fig 10: DBSR-ILU(0) smoothing time vs bsize "
              f"({machine.name}, {threads} threads; paper: stable "
              "after bsize=16)",
        headers=["bsize", "modeled smoothing solve time"],
        rows=rows,
        series={"seconds": res},
    )


def render(result: ExperimentResult) -> str:
    return result.render()
