"""Shared result container for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.utils.tables import format_table


@dataclass
class ExperimentResult:
    """One regenerated table/figure panel.

    Attributes
    ----------
    name:
        Identifier (``"fig9_Intel-27pt-f64"``).
    title:
        Human-readable caption, including the paper's reference points.
    headers:
        Column names of the rendered table.
    rows:
        Table body.
    series:
        The figure's raw data keyed by series name (for assertions and
        downstream analysis).
    notes:
        Free-form extra lines appended after the table.
    """

    name: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    series: Dict[str, list] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(self.notes)
        return text


# Shared defaults -----------------------------------------------------------

#: Paper scales the experiments model against.
PAPER_HPCG_NX = 192
PAPER_ILU_NX = 256


def machine_by_name(name: str):
    """Resolve a short machine name to a Table I model."""
    from repro.simd.machine import (
        INTEL_XEON, KUNPENG_920, PHYTIUM_2000, THUNDER_X2)

    table = {
        "intel": INTEL_XEON,
        "kp920": KUNPENG_920,
        "thunderx2": THUNDER_X2,
        "phytium": PHYTIUM_2000,
    }
    try:
        return table[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; known: {sorted(table)}"
        ) from None
