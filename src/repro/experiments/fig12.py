"""Fig. 12 — ILU(0) factorization cost in units of one DBSR smoothing.

Paper reference points: DBSR factorizes in about one smoothing; MC/BMC
cost more; BJ wins only at high parallelism; SIMD accelerates the DBSR
factorization further.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    PAPER_ILU_NX,
    machine_by_name,
)
from repro.grids.problems import poisson_problem
from repro.perfmodel.ilu_model import ilu_factorization_costs

THREADS = (1, 4, 16, 32)
STRATEGIES = ("bj", "mc", "bmc-fix", "bmc-auto", "dbsr-auto",
              "simd-auto")


def generate(nx: int = 8, machine_name: str = "intel",
             thread_counts=THREADS, strategies=STRATEGIES,
             bsize: int = 4, block_points: int = 8) -> ExperimentResult:
    machine = machine_by_name(machine_name)
    problem = poisson_problem((nx,) * 3, "27pt")
    scale = (PAPER_ILU_NX / nx) ** 3
    res = ilu_factorization_costs(
        problem, machine, thread_counts=thread_counts,
        strategies=strategies, bsize=bsize, scale=scale,
        block_points=block_points)
    rows = [[name] + [f"{r:.2f}" for r in res[name]]
            for name in strategies]
    return ExperimentResult(
        name="fig12_factorization",
        title="Fig 12: factorization time in units of one DBSR "
              f"smoothing ({machine.name}; paper: DBSR ~ 1 smoothing, "
              "MC/BMC higher, BJ competitive only at high threads)",
        headers=["strategy"] + [f"T={t}" for t in thread_counts],
        rows=rows,
        series=res,
    )


def render(result: ExperimentResult) -> str:
    return result.render()
