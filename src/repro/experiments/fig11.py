"""Fig. 11 — storage overhead of DBSR vs CSR across bsize.

Paper reference points: the total keeps shrinking with bsize (index
savings beat padding); single precision benefits relatively more.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.grids.problems import poisson_problem
from repro.perfmodel.bsize_model import storage_sweep

BSIZES = (1, 2, 4, 8, 16)


def generate(nx: int = 16, stencil: str = "27pt",
             bsizes=BSIZES) -> list:
    problem = poisson_problem((nx,) * 3, stencil)
    panels = []
    series = {}
    for prec, vbytes in (("f64", 8), ("f32", 4)):
        rows_raw = storage_sweep(problem, bsizes=bsizes,
                                 bsize_offset_bytes=1,
                                 value_bytes=vbytes)
        series[prec] = rows_raw
        rows = [(bs, csr_total, idx, nnzb, pad, total,
                 f"{total / csr_total:.3f}")
                for (bs, csr_total, idx, nnzb, pad, total) in rows_raw]
        panels.append(ExperimentResult(
            name=f"fig11_{prec}",
            title=f"Fig 11 ({prec}): storage overhead, {nx}^3 "
                  f"{stencil}",
            headers=["bsize", "CSR total B", "DBSR index B",
                     "DBSR nnz B", "DBSR padding B", "DBSR total B",
                     "DBSR/CSR"],
            rows=rows,
            series={prec: rows_raw},
        ))
    return panels


def render(panels: list) -> str:
    return "\n\n".join(p.render() for p in panels)
