"""Programmatic regeneration of every paper table and figure.

Each module owns one experiment: ``generate(...)`` runs the
measurements/models and returns an :class:`ExperimentResult` (or a list
of panel results), and ``render()`` turns it into the printable table
the benchmark harness and the ``dbsr-repro figures`` CLI emit.

The pytest benchmarks under ``benchmarks/`` are thin wrappers around
these functions plus shape assertions; downstream users can rerun any
experiment with custom sizes/machines directly:

>>> from repro.experiments import fig9
>>> panel = fig9.generate(nx=8, machine_name="intel", precision="f64")
>>> print(panel.render())
"""

from repro.experiments.base import ExperimentResult
from repro.experiments import (
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
)

ALL_EXPERIMENTS = {
    "table1": table1,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
}

__all__ = ["ExperimentResult", "ALL_EXPERIMENTS"] + \
    list(ALL_EXPERIMENTS)
