"""Fig. 7 — weak scaling of DBSR-HPCG on the Phytium cluster model.

Paper reference points: CPO ~5400 GFLOPS at 256 nodes, DBSR +13.3 % to
a 6119.2 GFLOPS peak, parallel efficiency consistently above 90 %.
"""

from __future__ import annotations

from repro.cluster.weakscaling import weak_scaling_sweep
from repro.experiments.base import ExperimentResult
from repro.experiments.fig5 import build_models

NODES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def generate(models: dict | None = None, nx_model: int = 16,
             node_counts=NODES) -> ExperimentResult:
    models = models or build_models(nx=nx_model,
                                    variants=("cpo", "dbsr"))
    sweeps = {v: weak_scaling_sweep(models[v], node_counts=node_counts,
                                    nx_model=nx_model)
              for v in ("cpo", "dbsr")}
    rows = []
    for p_cpo, p_dbsr in zip(sweeps["cpo"], sweeps["dbsr"]):
        rows.append((p_dbsr.nodes, p_dbsr.ranks,
                     f"{p_cpo.gflops:.1f}", f"{p_dbsr.gflops:.1f}",
                     f"{p_dbsr.efficiency * 100:.1f}%"))
    return ExperimentResult(
        name="fig7_weak_scaling",
        title="Fig 7: weak scaling on Phytium 2000+ (paper: DBSR peak "
              "6119.2 GFLOPS, +13.3% over CPO, efficiency > 90%)",
        headers=["nodes", "ranks", "CPO GFLOPS", "DBSR GFLOPS",
                 "DBSR efficiency"],
        rows=rows,
        series=sweeps,
    )


def render(result: ExperimentResult) -> str:
    return result.render()
