"""Fig. 9 — ILU(0) smoothing speedups per strategy/threads/precision.

Paper reference points (maxima across platforms): BJ 6.90-12.86x f64 /
8.89-18.13x f32; BMC-AUTO 9.46-20.21x / 10.77-24.54x; DBSR beats BMC
by 11-17 % (f64) and 16-40 % (f32); SIMD-DBSR best with up to
11.53x / 21.47x / 17.82x on the three platforms.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    PAPER_ILU_NX,
    machine_by_name,
)
from repro.grids.problems import poisson_problem
from repro.perfmodel.ilu_model import ilu_smoothing_speedups

THREADS = (1, 4, 16, 32)
STRATEGIES = ("bj", "mc", "bmc-fix", "bmc-auto", "dbsr-fix",
              "dbsr-auto", "simd-fix", "simd-auto")


def generate(nx: int = 8, machine_name: str = "intel",
             stencil: str = "27pt", precision: str = "f64",
             thread_counts=THREADS, strategies=STRATEGIES,
             bsize: int = 4, block_points: int = 8,
             tol: float = 1e-8) -> ExperimentResult:
    """One Fig. 9 panel.

    Structure and convergence are measured on an ``nx``-cubed problem;
    counts extrapolate linearly to the paper's 256-cubed dataset.
    ``bsize``/``block_points`` default to the nx=8 analogue of the
    paper's bsize-8 / 64-point configuration.
    """
    machine = machine_by_name(machine_name)
    problem = poisson_problem((nx,) * 3, stencil)
    scale = (PAPER_ILU_NX / nx) ** 3
    dtype_bytes = 4 if precision == "f32" else 8
    res = ilu_smoothing_speedups(
        problem, machine, thread_counts=thread_counts,
        strategies=strategies, bsize=bsize, tol=tol,
        dtype_bytes=dtype_bytes, scale=scale,
        block_points=block_points)
    tag = f"{machine_name}-{stencil}-{precision}"
    rows = [[name] + [f"{s:.2f}" for s in res[name]]
            for name in strategies]
    return ExperimentResult(
        name=f"fig9_{tag}",
        title=f"Fig 9 ({tag}): speedup over serial ILU(0) smoothing "
              f"[serial iters={res['_serial_iterations']}]",
        headers=["strategy"] + [f"T={t}" for t in thread_counts],
        rows=rows,
        series=res,
    )


def render(result: ExperimentResult) -> str:
    return result.render()
