"""Fig. 8 — DBSR vs SELL and the SIMD/gather impact on Intel.

Paper reference points: DBSR beats SELL by ~15.8 % on average; SIMD
adds ~12.4 % when gather-free and approximately nothing when the
gather instruction is used.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, PAPER_HPCG_NX
from repro.experiments.fig5 import build_models
from repro.hpcg.benchmark import model_hpcg_gflops
from repro.simd.machine import INTEL_XEON

SERIES = ("cpo", "sell-novec", "sell", "dbsr-novec", "dbsr-gather",
          "dbsr")
THREADS = (1, 2, 4, 8, 14, 28, 56)


def generate(models: dict | None = None, nx_model: int = 16,
             nx_target: int = PAPER_HPCG_NX,
             threads=THREADS) -> ExperimentResult:
    models = models or build_models(nx=nx_model, variants=SERIES)
    table = {v: [model_hpcg_gflops(INTEL_XEON, models[v], 1, t,
                                   nx_target=nx_target,
                                   nx_model=nx_model)
                 for t in threads] for v in SERIES}
    means = {v: sum(s) / len(s) for v, s in table.items()}
    rows = [[v] + [f"{g:.1f}" for g in s] for v, s in table.items()]
    return ExperimentResult(
        name="fig8_simd_gather",
        title="Fig 8: DBSR vs SELL and gather impact on Intel Xeon "
              "(paper: DBSR ~15.8% over SELL; SIMD +12.4% only when "
              "gather-free)",
        headers=["variant"] + [f"T={t}" for t in threads],
        rows=rows,
        series=table,
        notes=[
            f"mean GFLOPS: dbsr/sell = "
            f"{means['dbsr'] / means['sell']:.2f}, "
            f"dbsr/dbsr-gather = "
            f"{means['dbsr'] / means['dbsr-gather']:.2f}, "
            f"sell/sell-novec = "
            f"{means['sell'] / means['sell-novec']:.2f}",
        ],
    )


def render(result: ExperimentResult) -> str:
    return result.render()
