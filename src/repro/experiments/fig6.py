"""Fig. 6 — HPCG vs thread count (single process).

Paper reference points: DBSR over CPO 18.8-36.2 % (x86) / 15.2-52.2 %
(ARM); over MKL 1.03-1.70x; over ARM 4.32-12.39x; reference/ARM stay
flat because their SYMGS is serial in-process.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, PAPER_HPCG_NX
from repro.experiments.fig5 import build_models
from repro.hpcg.benchmark import model_hpcg_gflops
from repro.simd.machine import INTEL_XEON, KUNPENG_920, THUNDER_X2

VARIANTS = ("reference", "mkl", "arm", "cpo", "dbsr")
MACHINES = (INTEL_XEON, KUNPENG_920, THUNDER_X2)


def thread_axis(machine) -> list:
    axis = [1, 2, 4, 8, 16]
    if machine.cores > 16:
        axis.append(machine.cores // 2)
    if machine.cores not in axis:
        axis.append(machine.cores)
    return axis


def generate(models: dict | None = None, nx_model: int = 16,
             nx_target: int = PAPER_HPCG_NX) -> list:
    models = models or build_models(nx=nx_model, variants=VARIANTS)
    panels = []
    for machine in MACHINES:
        axis = thread_axis(machine)
        rows = []
        series = {}
        for v in VARIANTS:
            vals = [model_hpcg_gflops(machine, models[v], 1, t,
                                      nx_target=nx_target,
                                      nx_model=nx_model)
                    for t in axis]
            series[v] = vals
            rows.append([v] + [f"{g:.1f}" for g in vals])
        panels.append(ExperimentResult(
            name=f"fig6_{machine.name}",
            title=f"Fig 6: {machine.name} (single process)",
            headers=["variant"] + [f"T={t}" for t in axis],
            rows=rows,
            series=series,
        ))
    return panels


def render(panels: list) -> str:
    return "\n\n".join(p.render() for p in panels)
