"""Table I — the evaluation platforms as machine models."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.simd.machine import TABLE1_MACHINES


def generate() -> ExperimentResult:
    """Render the Table I machine encodings."""
    rows = []
    for m in TABLE1_MACHINES:
        rows.append((
            m.name, m.sockets, m.cores, m.numa_domains,
            f"{m.freq_ghz}GHz", f"{m.l1_kb:g}KB", f"{m.l2_kb:g}KB",
            f"{m.l3_mb:g}MB" if m.l3_mb else "None",
            f"{m.isa.name}-{m.isa.bits}", f"{m.bw_gbs:g}GB/s",
        ))
    return ExperimentResult(
        name="table1",
        title="Table I: hardware platforms (model encoding)",
        headers=["Platform", "Sockets", "Cores", "NUMAs", "Freq",
                 "L1", "L2", "L3", "SIMD", "DRAM BW (model)"],
        rows=rows,
        series={"machines": list(TABLE1_MACHINES)},
    )
