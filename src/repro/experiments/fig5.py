"""Fig. 5 — HPCG GFLOPS under all full-node P x T allocations.

Paper reference points: DBSR over CPO 1.19-1.24x; over HPCG_for_MKL
1.47-1.70x; over HPCG_for_ARM 2.41-3.40x.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, PAPER_HPCG_NX
from repro.hpcg.benchmark import build_hpcg_model, model_hpcg_gflops
from repro.simd.machine import INTEL_XEON, KUNPENG_920, THUNDER_X2

VARIANTS = ("reference", "mkl", "arm", "cpo", "sell", "dbsr")
MACHINES = (INTEL_XEON, KUNPENG_920, THUNDER_X2)


def allocations(machine):
    """All P x T schemes that fill the node's cores."""
    cores = machine.cores
    return [(p, cores // p) for p in range(1, cores + 1)
            if cores % p == 0]


def build_models(nx: int = 16, n_levels: int = 3, bsize: int = 8,
                 n_workers: int = 8, variants=VARIANTS) -> dict:
    """Per-variant HPCG kernel-count models (shared across figures)."""
    return {v: build_hpcg_model(nx=nx, variant=v, n_levels=n_levels,
                                bsize=bsize, n_workers=n_workers)
            for v in variants}


def generate(models: dict | None = None, nx_model: int = 16,
             nx_target: int = PAPER_HPCG_NX) -> list:
    """One :class:`ExperimentResult` per machine plus a ratio panel."""
    models = models or build_models(nx=nx_model)
    panels = []
    ratio_rows = []
    for machine in MACHINES:
        rows = []
        best = {}
        allocs = allocations(machine)
        for v in VARIANTS:
            series = [(p, t, model_hpcg_gflops(
                machine, models[v], p, t, nx_target=nx_target,
                nx_model=nx_model)) for (p, t) in allocs]
            bp, bt, bg = max(series, key=lambda s: s[2])
            best[v] = bg
            rows.append([v] + [f"{g:.1f}" for (_, _, g) in series]
                        + [f"P{bp}xT{bt}", f"{bg:.1f}"])
        panels.append(ExperimentResult(
            name=f"fig5_{machine.name}",
            title=f"Fig 5: {machine.name}",
            headers=(["variant"]
                     + [f"P{p}xT{t}" for (p, t) in allocs]
                     + ["best", "GFLOPS"]),
            rows=rows,
            series={"best": best},
        ))
        ratio_rows.append((
            machine.name,
            f"{best['dbsr'] / best['cpo']:.2f}",
            f"{best['dbsr'] / best['mkl']:.2f}",
            f"{best['dbsr'] / best['arm']:.2f}",
            f"{best['dbsr'] / best['sell']:.2f}",
        ))
    panels.append(ExperimentResult(
        name="fig5_ratios",
        title="Fig 5 ratios (paper: dbsr/cpo 1.19-1.24, dbsr/mkl "
              "1.47-1.70, dbsr/arm 2.41-3.40)",
        headers=["machine", "dbsr/cpo", "dbsr/mkl", "dbsr/arm",
                 "dbsr/sell"],
        rows=ratio_rows,
    ))
    return panels


def render(panels: list) -> str:
    return "\n\n".join(p.render() for p in panels)
