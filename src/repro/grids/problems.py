"""Linear-system problem generators.

Bundles a grid, its operator, and HPCG-style right-hand sides. The
HPCG generator mirrors the official benchmark: 27-point operator,
``b = A @ 1`` so the exact solution is the all-ones vector, zero
initial guess.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.grids.assembly import assemble_csr
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil, box27_3d, star5_2d, stencil_by_name


@dataclass
class Problem:
    """A structured-grid linear system ``A x = b``.

    Attributes
    ----------
    grid:
        The underlying structured grid.
    stencil:
        Stencil used to assemble ``matrix``.
    matrix:
        Operator in CSR format, lexicographic ordering.
    rhs:
        Right-hand side.
    exact:
        Known exact solution when available (``None`` otherwise).
    """

    grid: StructuredGrid
    stencil: Stencil
    matrix: CSRMatrix
    rhs: np.ndarray
    exact: np.ndarray | None = field(default=None)

    @property
    def n(self) -> int:
        return self.grid.n_points

    def residual_norm(self, x: np.ndarray) -> float:
        """Euclidean norm of ``b - A x``."""
        return float(np.linalg.norm(self.rhs - self.matrix.matvec(x)))


def poisson_problem(dims, stencil: Stencil | str | None = None,
                    dtype=np.float64) -> Problem:
    """Poisson-type problem on a grid of extents ``dims``.

    The default stencil is chosen by dimensionality (5-point in 2-D,
    27-point in 3-D). ``b`` is set so that the exact solution is the
    all-ones vector, as in HPCG.
    """
    grid = StructuredGrid(dims)
    if stencil is None:
        stencil = star5_2d() if grid.ndim == 2 else box27_3d()
    elif isinstance(stencil, str):
        stencil = stencil_by_name(stencil)
    matrix = assemble_csr(grid, stencil, dtype=dtype)
    exact = np.ones(grid.n_points, dtype=dtype)
    rhs = matrix.matvec(exact)
    return Problem(grid=grid, stencil=stencil, matrix=matrix, rhs=rhs,
                   exact=exact)


def hpcg_problem(nx: int, ny: int | None = None, nz: int | None = None,
                 dtype=np.float64) -> Problem:
    """The HPCG local problem: 27-point stencil on an ``nx*ny*nz`` grid."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    return poisson_problem((nx, ny, nz), box27_3d(), dtype=dtype)
