"""Stencil library.

The paper evaluates 27-point and 7-point 3-D stencils (HPCG and the
ILU(0) study) and motivates the reordering with a 9-point 2-D example
(Fig. 2). All four appear here with the standard Laplacian-style
weights (diagonal = neighbor count, off-diagonal = -1), which is the
HPCG operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class Stencil:
    """A finite-difference stencil.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"star7_3d"``).
    offsets:
        ``(k, ndim)`` array of integer offsets including ``(0, ..., 0)``.
    weights:
        Length-``k`` coefficients aligned with ``offsets``.
    """

    name: str
    offsets: tuple
    weights: tuple

    def __post_init__(self):
        require(len(self.offsets) == len(self.weights),
                "offsets/weights length mismatch")
        require(len(set(self.offsets)) == len(self.offsets),
                "duplicate stencil offsets")
        arities = {len(o) for o in self.offsets}
        require(len(arities) == 1, "mixed offset arities")

    @property
    def ndim(self) -> int:
        return len(self.offsets[0])

    @property
    def n_points(self) -> int:
        return len(self.offsets)

    @property
    def reach(self) -> int:
        """Chebyshev radius: max |offset| component over all offsets."""
        return max(max(abs(c) for c in o) for o in self.offsets)

    def is_symmetric(self) -> bool:
        """True when every offset's negation is present with equal weight."""
        table = dict(zip(self.offsets, self.weights))
        return all(
            tuple(-c for c in off) in table
            and table[tuple(-c for c in off)] == w
            for off, w in table.items()
        )

    def center_weight(self) -> float:
        """Weight of the (0, ..., 0) offset."""
        zero = tuple(0 for _ in range(self.ndim))
        return dict(zip(self.offsets, self.weights))[zero]


def _star(ndim: int, center: float) -> Stencil:
    offsets = [tuple(0 for _ in range(ndim))]
    weights = [center]
    for axis in range(ndim):
        for sign in (-1, 1):
            off = [0] * ndim
            off[axis] = sign
            offsets.append(tuple(off))
            weights.append(-1.0)
    return Stencil(f"star{2 * ndim + 1}_{ndim}d",
                   tuple(offsets), tuple(weights))


def _box(ndim: int, center: float) -> Stencil:
    offsets, weights = [], []
    for off in product((-1, 0, 1), repeat=ndim):
        offsets.append(off)
        weights.append(center if all(c == 0 for c in off) else -1.0)
    return Stencil(f"box{3 ** ndim}_{ndim}d", tuple(offsets),
                   tuple(weights))


def star5_2d() -> Stencil:
    """2-D 5-point Laplacian (diag 4, off-diag -1)."""
    return _star(2, 4.0)


def box9_2d() -> Stencil:
    """2-D 9-point stencil of the paper's Fig. 2 (diag 8, off-diag -1)."""
    return _box(2, 8.0)


def star7_3d() -> Stencil:
    """3-D 7-point Laplacian (diag 6, off-diag -1)."""
    return _star(3, 6.0)


def box27_3d() -> Stencil:
    """HPCG's 3-D 27-point operator (diag 26, off-diag -1)."""
    return _box(3, 26.0)


_REGISTRY = {
    "star5_2d": star5_2d,
    "box9_2d": box9_2d,
    "star7_3d": star7_3d,
    "box27_3d": box27_3d,
    "5pt": star5_2d,
    "9pt": box9_2d,
    "7pt": star7_3d,
    "27pt": box27_3d,
}


def stencil_by_name(name: str) -> Stencil:
    """Look up a predefined stencil by name or alias."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown stencil {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
