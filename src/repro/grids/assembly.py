"""Stencil-to-sparse-matrix assembly.

Builds the adjacency/operator matrix of a stencil on a structured grid
with Dirichlet boundary truncation (neighbors outside the grid are
dropped, exactly as HPCG's ``GenerateProblem`` does).
"""

from __future__ import annotations

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import Stencil


def assemble_csr(grid: StructuredGrid, stencil: Stencil,
                 dtype=np.float64) -> CSRMatrix:
    """Assemble the stencil operator on ``grid`` as a CSR matrix.

    Parameters
    ----------
    grid:
        Target grid; its ``ndim`` must match the stencil's.
    stencil:
        Offsets and weights of the operator.
    dtype:
        Value dtype (float64 default; float32 reproduces the paper's
        single-precision runs).

    Returns
    -------
    CSRMatrix
        ``n_points x n_points`` operator. Rows for boundary points have
        fewer off-diagonal entries (truncation), which is the source of
        the intra-tile offsets DBSR must handle (§III-B).
    """
    if grid.ndim != stencil.ndim:
        raise ValueError(
            f"grid is {grid.ndim}-D but stencil is {stencil.ndim}-D"
        )
    rows_parts, cols_parts, vals_parts = [], [], []
    for off, w in zip(stencil.offsets, stencil.weights):
        src, dst = grid.shift_ids(off)
        rows_parts.append(src)
        cols_parts.append(dst)
        vals_parts.append(np.full(len(src), w, dtype=dtype))
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    vals = np.concatenate(vals_parts)
    coo = COOMatrix(rows, cols, vals, (grid.n_points, grid.n_points))
    return CSRMatrix.from_coo(coo)
