"""Grid coarsening for geometric multigrid.

HPCG coarsens by a factor of two per dimension, keeping every even
point, and re-discretizes the operator on the coarse grid. Both pieces
live here; the inter-grid transfer operators built on top are in
:mod:`repro.multigrid.transfer`.
"""

from __future__ import annotations

import numpy as np

from repro.grids.grid import StructuredGrid
from repro.utils.validation import require


def coarsen_grid(grid: StructuredGrid, factor: int = 2) -> StructuredGrid:
    """Return the grid coarsened by ``factor`` in every dimension."""
    require(factor >= 2, "coarsening factor must be >= 2")
    for d in grid.dims:
        require(d % factor == 0,
                f"dim {d} not divisible by coarsening factor {factor}")
    return StructuredGrid(tuple(d // factor for d in grid.dims))


def fine_to_coarse_map(fine: StructuredGrid, coarse: StructuredGrid,
                       factor: int = 2) -> np.ndarray:
    """Fine ids of the points injected into each coarse point.

    Returns ``f2c`` of length ``coarse.n_points`` where ``f2c[ic]`` is
    the fine-grid id of coarse point ``ic`` (the even-index corner of
    its cell), matching HPCG's injection operator.
    """
    require(fine.ndim == coarse.ndim, "dimensionality mismatch")
    for fd, cd in zip(fine.dims, coarse.dims):
        require(fd == cd * factor, "grids are not factor-related")
    coarse_coords = coarse.coords_array()  # (nc, ndim)
    fine_ids = np.zeros(coarse.n_points, dtype=np.int64)
    for axis in range(fine.ndim):
        fine_ids += (coarse_coords[:, axis] * factor) * fine.strides[axis]
    return fine_ids


def max_coarsen_levels(grid: StructuredGrid, factor: int = 2,
                       min_dim: int = 2) -> int:
    """Number of coarsening steps possible before any dim gets too small."""
    levels = 0
    dims = list(grid.dims)
    while all(d % factor == 0 and d // factor >= min_dim for d in dims):
        dims = [d // factor for d in dims]
        levels += 1
    return levels
