"""Regular structured grid descriptor.

A :class:`StructuredGrid` is a dense lattice of points in 1-D, 2-D or
3-D with lexicographic numbering (x fastest, then y, then z), matching
the "original processing order" of the paper's Fig. 2(a). The grid may
be non-equidistant in effect (spacing only changes stencil weights, not
connectivity), so the connectivity logic here covers both cases the
paper claims applicability for (§III-E).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, require


class StructuredGrid:
    """Lexicographically numbered regular grid.

    Parameters
    ----------
    dims:
        Extent per dimension, e.g. ``(8, 8)`` for the paper's 2-D
        example or ``(192, 192, 192)`` for the HPCG local domain.
    """

    def __init__(self, dims):
        dims = tuple(check_positive(d, "dim") for d in dims)
        require(1 <= len(dims) <= 3, "grids must be 1-D, 2-D or 3-D")
        self.dims = dims
        self.ndim = len(dims)
        self.n_points = int(np.prod(dims))
        # Strides of lexicographic numbering: x fastest.
        strides = [1]
        for d in dims[:-1]:
            strides.append(strides[-1] * d)
        self.strides = tuple(strides)

    # Index <-> coordinate ------------------------------------------------
    def index(self, coord) -> int:
        """Map a coordinate tuple to its lexicographic point id."""
        coord = tuple(int(c) for c in coord)
        require(len(coord) == self.ndim, "coordinate arity mismatch")
        for c, d in zip(coord, self.dims):
            require(0 <= c < d, f"coordinate {coord} out of range")
        return sum(c * s for c, s in zip(coord, self.strides))

    def coord(self, index: int) -> tuple:
        """Map a point id back to its coordinate tuple."""
        require(0 <= index < self.n_points, "index out of range")
        out = []
        for d in self.dims:
            out.append(index % d)
            index //= d
        return tuple(out)

    def coords_array(self) -> np.ndarray:
        """Return the ``(n_points, ndim)`` coordinate array, id order."""
        axes = [np.arange(d) for d in self.dims]
        mesh = np.meshgrid(*axes, indexing="ij")
        # meshgrid 'ij' puts axis 0 slowest; lexicographic wants x
        # fastest, so build via strides instead.
        ids = np.arange(self.n_points)
        out = np.empty((self.n_points, self.ndim), dtype=np.int64)
        rem = ids
        for axis, d in enumerate(self.dims):
            out[:, axis] = rem % d
            rem = rem // d
        del mesh
        return out

    # Neighborhoods --------------------------------------------------------
    def shift_ids(self, offset) -> tuple:
        """Vectorized neighbor lookup for one stencil offset.

        Returns ``(src_ids, dst_ids)``: for every point whose neighbor
        at ``offset`` exists, ``src_ids`` holds the point id and
        ``dst_ids`` the neighbor id. Points whose neighbor would leave
        the grid are excluded (Dirichlet truncation at boundaries).
        """
        offset = tuple(int(o) for o in offset)
        require(len(offset) == self.ndim, "offset arity mismatch")
        coords = self.coords_array()
        valid = np.ones(self.n_points, dtype=bool)
        for axis, o in enumerate(offset):
            shifted = coords[:, axis] + o
            valid &= (shifted >= 0) & (shifted < self.dims[axis])
        src = np.flatnonzero(valid)
        dst = src.copy()
        for axis, o in enumerate(offset):
            dst = dst + o * self.strides[axis]
        return src, dst

    def boundary_mask(self) -> np.ndarray:
        """Boolean mask of points on the grid boundary."""
        coords = self.coords_array()
        mask = np.zeros(self.n_points, dtype=bool)
        for axis, d in enumerate(self.dims):
            mask |= (coords[:, axis] == 0) | (coords[:, axis] == d - 1)
        return mask

    def __eq__(self, other) -> bool:
        return isinstance(other, StructuredGrid) and self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StructuredGrid(dims={self.dims})"
