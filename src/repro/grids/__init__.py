"""Structured grids, stencils, and sparse matrix assembly.

Provides the problem generators behind every experiment in the paper:
2-D 5/9-point and 3-D 7/27-point stencil discretizations on regular
grids (§II-B, §V-A), the HPCG 27-point Poisson problem, and the grid
coarsening used by the geometric multigrid hierarchy.
"""

from repro.grids.grid import StructuredGrid
from repro.grids.stencils import (
    Stencil,
    box9_2d,
    box27_3d,
    star5_2d,
    star7_3d,
    stencil_by_name,
)
from repro.grids.assembly import assemble_csr
from repro.grids.problems import Problem, hpcg_problem, poisson_problem
from repro.grids.coarsen import coarsen_grid, fine_to_coarse_map

__all__ = [
    "StructuredGrid",
    "Stencil",
    "star5_2d",
    "box9_2d",
    "star7_3d",
    "box27_3d",
    "stencil_by_name",
    "assemble_csr",
    "Problem",
    "poisson_problem",
    "hpcg_problem",
    "coarsen_grid",
    "fine_to_coarse_map",
]
