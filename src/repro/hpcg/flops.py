"""Official HPCG floating-point operation accounting.

HPCG rates machines by a *fixed* FLOP count per CG iteration derived
from the reference algorithm (ComputeSPMV, ComputeMG with one pre- and
one post-SYMGS per level, dot products and WAXPBYs); optimized versions
may do less work but are credited the reference count. This module
reproduces that accounting so modeled GFLOPS are comparable across
variants, exactly as the official benchmark compares vendor versions.
"""

from __future__ import annotations


def _level_sizes(n_fine: int, nnz_fine: int, n_levels: int) -> list:
    """(n, nnz) per level under HPCG's 8x coarsening.

    nnz scales with n to first order (27 per interior row).
    """
    sizes = []
    n, nnz = n_fine, nnz_fine
    for _ in range(n_levels):
        sizes.append((n, nnz))
        n //= 8
        nnz //= 8
    return sizes


def symgs_flops(nnz: int, n: int) -> int:
    """One SYMGS: forward + backward sweep = 2 * (2*nnz + n) flops
    (multiply-add per non-zero plus the diagonal divide/update)."""
    return 2 * (2 * nnz + n)


def spmv_flops(nnz: int) -> int:
    """One SpMV: a multiply-add per stored non-zero."""
    return 2 * nnz


def mg_flops(n_fine: int, nnz_fine: int, n_levels: int = 4) -> int:
    """One V-cycle: per level one pre-SYMGS, one SpMV (residual), one
    post-SYMGS; the coarsest level does a single SYMGS."""
    total = 0
    sizes = _level_sizes(n_fine, nnz_fine, n_levels)
    for depth, (n, nnz) in enumerate(sizes):
        if depth == n_levels - 1:
            total += symgs_flops(nnz, n)
        else:
            total += 2 * symgs_flops(nnz, n) + spmv_flops(nnz)
            total += n  # restriction/prolongation adds
    return total


def hpcg_flops_per_iteration(n: int, nnz: int, n_levels: int = 4) -> int:
    """Reference flops of one PCG iteration.

    SpMV + MG preconditioner + 2 dot products (2n each, plus the norm)
    + 3 WAXPBY (2n each), following the HPCG reporting convention.
    """
    return (spmv_flops(nnz)
            + mg_flops(n, nnz, n_levels)
            + 3 * 2 * n       # dots: r.z, p.Ap, r.r
            + 3 * 2 * n)      # waxpby: x, r, p updates


def hpcg_total_flops(n: int, nnz: int, iterations: int,
                     n_levels: int = 4) -> int:
    """Total credited flops for a run of ``iterations`` iterations."""
    return iterations * hpcg_flops_per_iteration(n, nnz, n_levels)
