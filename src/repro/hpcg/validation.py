"""HPCG's official validation phase (``TestSymmetry`` /
``TestNorms`` / ``CheckProblem``).

The real benchmark refuses to rate a run whose optimized kernels break
symmetry or perturb the problem; this module reproduces those checks
for any variant's smoother/format so the reproduction enforces the
same contract the benchmark does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grids.problems import Problem, hpcg_problem
from repro.multigrid.hierarchy import build_hierarchy
from repro.multigrid.smoothers import make_smoother
from repro.multigrid.vcycle import MGPreconditioner
from repro.utils.rng import make_rng


@dataclass
class ValidationReport:
    """Outcome of the HPCG validation phase.

    Attributes mirror the official report fields.
    """

    spmv_symmetry_error: float
    mg_symmetry_error: float
    problem_check_error: float
    passed: bool

    def summary(self) -> str:
        return (
            f"SpMV symmetry departure: {self.spmv_symmetry_error:.3e}\n"
            f"MG symmetry departure:   {self.mg_symmetry_error:.3e}\n"
            f"Problem check error:     {self.problem_check_error:.3e}\n"
            f"PASSED: {self.passed}"
        )


def test_spmv_symmetry(problem: Problem, seed: int = 11) -> float:
    """HPCG TestSymmetry part 1: ``|x' A y - y' A x|`` scaled.

    Zero for the exact symmetric operator; optimized formats must
    preserve it.
    """
    rng = make_rng(seed)
    x = rng.standard_normal(problem.n)
    y = rng.standard_normal(problem.n)
    Ax = problem.matrix.matvec(x)
    Ay = problem.matrix.matvec(y)
    num = abs(float(x @ Ay) - float(y @ Ax))
    den = (np.linalg.norm(x) * np.linalg.norm(Ay)
           + np.linalg.norm(y) * np.linalg.norm(Ax)
           + np.finfo(float).eps)
    return num / den


def test_mg_symmetry(problem: Problem, precond, seed: int = 13) -> float:
    """HPCG TestSymmetry part 2: ``|x' M y - y' M x|`` scaled.

    The V-cycle with symmetric smoothing (SYMGS) is a symmetric
    operator; a broken optimized smoother shows up here.
    """
    rng = make_rng(seed)
    x = rng.standard_normal(problem.n)
    y = rng.standard_normal(problem.n)
    Mx = precond(x)
    My = precond(y)
    num = abs(float(x @ My) - float(y @ Mx))
    den = (np.linalg.norm(x) * np.linalg.norm(My)
           + np.linalg.norm(y) * np.linalg.norm(Mx)
           + np.finfo(float).eps)
    return num / den


def check_problem(problem: Problem) -> float:
    """HPCG CheckProblem: ``A @ ones`` must equal the generated rhs."""
    return float(np.abs(problem.matrix.matvec(
        np.ones(problem.n)) - problem.rhs).max())


def validate_variant(nx: int = 8, variant: str = "dbsr",
                     n_levels: int = 2, bsize: int = 4,
                     n_workers: int = 2,
                     tol: float = 1e-10) -> ValidationReport:
    """Run the full validation phase for one HPCG variant."""
    from repro.hpcg.variants import get_variant

    problem = hpcg_problem(nx)
    v = get_variant(variant)
    top = build_hierarchy(
        problem.grid, problem.stencil,
        lambda g, s, m: make_smoother(v.smoother_kind, g, s, m,
                                      bsize=bsize,
                                      n_workers=n_workers),
        n_levels=n_levels, matrix=problem.matrix)
    precond = MGPreconditioner(top)
    spmv_err = test_spmv_symmetry(problem)
    mg_err = test_mg_symmetry(problem, precond)
    prob_err = check_problem(problem)
    return ValidationReport(
        spmv_symmetry_error=spmv_err,
        mg_symmetry_error=mg_err,
        problem_check_error=prob_err,
        passed=(spmv_err < tol and mg_err < tol and prob_err < tol),
    )
