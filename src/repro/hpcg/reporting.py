"""HPCG-style result reporting.

The official benchmark emits a YAML-ish report with the problem
geometry, per-kernel FLOP breakdown, validity checks, and the final
GFLOPS rating. This module renders the equivalent report for the
reproduction's functional runs and model projections, so results can
be compared field by field with real HPCG output files.
"""

from __future__ import annotations

from repro.hpcg.benchmark import HPCGModel, HPCGResult, model_hpcg_gflops
from repro.hpcg.flops import (
    hpcg_flops_per_iteration,
    mg_flops,
    spmv_flops,
)
from repro.simd.machine import MachineModel


def render_report(result: HPCGResult, nx: int, n_levels: int,
                  machine: MachineModel | None = None,
                  model: HPCGModel | None = None,
                  processes: int = 1, threads: int = 1) -> str:
    """Render an HPCG-style text report.

    Parameters
    ----------
    result:
        A functional :class:`HPCGResult`.
    nx:
        Local problem edge.
    n_levels:
        Multigrid depth used.
    machine, model, processes, threads:
        Optional performance projection context; when given, the
        rating section is included.
    """
    n = nx ** 3
    nnz = result.flops and _nnz_estimate(nx)
    lines = [
        "HPCG-Benchmark (repro)",
        "version: 3.1-repro",
        "Problem Summary:",
        f"  Global Problem Dimensions: {nx}x{nx}x{nx}",
        f"  Number of Equations: {n}",
        f"  Number of Nonzero Terms (approx): {nnz}",
        f"  Multigrid Levels: {n_levels}",
        "Iteration Count Information:",
        f"  Optimized CG iterations: {result.iterations}",
        f"  Scaled Residual: {result.final_relres:.6e}",
        "Reproducibility Information:",
        f"  Converged: {result.converged}",
        "FLOP Count Information (per iteration, reference rules):",
        f"  SpMV: {spmv_flops(nnz)}",
        f"  MG: {mg_flops(n, nnz, n_levels)}",
        f"  Total: {hpcg_flops_per_iteration(n, nnz, n_levels)}",
        f"  Run total: {result.flops}",
    ]
    if machine is not None and model is not None:
        gflops = model_hpcg_gflops(machine, model, processes, threads,
                                   nx_target=192, nx_model=nx)
        lines += [
            "Performance Summary (model projection, 192^3 local):",
            f"  Machine: {machine.name}",
            f"  Distribution: {processes} processes x {threads} "
            "threads",
            f"  GFLOP/s rating: {gflops:.2f}",
        ]
    return "\n".join(lines)


def _nnz_estimate(nx: int) -> int:
    """27-point nnz with boundary truncation (exact for cubes)."""
    # Each axis contributes a factor (3*nx - 2) of stencil reach.
    return (3 * nx - 2) ** 3
