"""HPCG optimization variants (§V-B).

====================  =====================================================
``reference``         Official HPCG-3.1 semantics: lexicographic CSR,
                      serial SYMGS inside each MPI process.
``mkl``               Vendor-style x86 version: BMC-parallel smoothing over
                      a SELL-like vectorized layout (hardware gathers).
``arm``               Vendor-style ARM version: BMC-parallel CSR smoothing,
                      no SIMD, conservative tuning.
``cpo``               State-of-the-art multicore optimizations of [24],
                      [25]: BMC-AUTO ordering, scalar CSR kernels, deep
                      kernel fusion (reduced vector traffic).
``sell``              CPO + SELL storage with SIMD gathers (Fig. 8).
``dbsr``              CPO + vectorized BMC + DBSR, gather-free SIMD —
                      the paper's contribution.
====================  =====================================================

The two vendor entries model closed-source binaries we cannot rebuild;
they reuse this library's own BMC/SELL/CSR code paths with documented
efficiency assumptions (see DESIGN.md §2 and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require


@dataclass(frozen=True)
class HPCGVariant:
    """Configuration of one HPCG optimization variant.

    Attributes
    ----------
    name:
        Variant key.
    smoother_kind:
        Which smoother the MG hierarchy uses (``csr``, ``bmc``,
        ``sell``, ``dbsr``).
    vectorized:
        Whether kernels issue SIMD instructions in the model.
    use_gather_hw:
        Whether SIMD gathers use the hardware gather instruction
        (only relevant when the smoother's counts contain gathers).
    fusion_traffic_factor:
        Multiplier on vector-stream traffic from kernel fusion (the
        CPO deep-fusion optimization; 1.0 = no fusion).
    process_parallel_only:
        ``True`` when SYMGS is serial inside a process (reference
        semantics), so threads only help SpMV/vector kernels.
    force_gather:
        Replace DBSR's contiguous x loads with gathers — the paper's
        Fig. 8 "what if DBSR did not avoid the gather" experiment.
    time_inefficiency:
        Multiplier on modeled time for closed-source vendor binaries
        whose internals we cannot rebuild (documented assumption; see
        EXPERIMENTS.md). 1.0 for everything built from this library.
    """

    name: str
    smoother_kind: str
    vectorized: bool
    use_gather_hw: bool = True
    fusion_traffic_factor: float = 1.0
    process_parallel_only: bool = False
    force_gather: bool = False
    time_inefficiency: float = 1.0


VARIANTS = {
    "reference": HPCGVariant(
        name="reference", smoother_kind="csr", vectorized=False,
        process_parallel_only=True,
    ),
    "mkl": HPCGVariant(
        name="mkl", smoother_kind="sell", vectorized=True,
        use_gather_hw=True, fusion_traffic_factor=0.95,
        time_inefficiency=1.15,
    ),
    "arm": HPCGVariant(
        name="arm", smoother_kind="csr", vectorized=False,
        fusion_traffic_factor=1.1, process_parallel_only=True,
        time_inefficiency=1.9,
    ),
    "cpo": HPCGVariant(
        name="cpo", smoother_kind="bmc", vectorized=False,
        fusion_traffic_factor=0.8,
    ),
    "sell": HPCGVariant(
        name="sell", smoother_kind="sell", vectorized=True,
        use_gather_hw=True, fusion_traffic_factor=0.8,
    ),
    "sell-novec": HPCGVariant(
        name="sell-novec", smoother_kind="sell", vectorized=False,
        fusion_traffic_factor=0.8,
    ),
    "dbsr": HPCGVariant(
        name="dbsr", smoother_kind="dbsr", vectorized=True,
        fusion_traffic_factor=0.8,
    ),
    "dbsr-novec": HPCGVariant(
        name="dbsr-novec", smoother_kind="dbsr", vectorized=False,
        fusion_traffic_factor=0.8,
    ),
    "dbsr-gather": HPCGVariant(
        name="dbsr-gather", smoother_kind="dbsr", vectorized=True,
        fusion_traffic_factor=0.8, force_gather=True,
    ),
}


def get_variant(name: str) -> HPCGVariant:
    """Look up a variant by name."""
    require(name in VARIANTS,
            f"unknown variant {name!r}; known: {sorted(VARIANTS)}")
    return VARIANTS[name]
