"""HPCG driver: functional runs and machine-model GFLOPS projection.

Two modes:

* :func:`run_hpcg` executes the full benchmark numerically (setup, MG
  hierarchy, 50 PCG iterations) at a tractable problem size and checks
  convergence — the correctness side.
* :func:`model_hpcg_gflops` projects node-level GFLOPS for a variant /
  machine / (processes x threads) allocation from measured operation
  counts, scaled to the paper's 192-cubed local domain — the
  performance side behind Figs. 5, 6 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grids.problems import Problem, hpcg_problem
from repro.hpcg.flops import hpcg_flops_per_iteration
from repro.hpcg.variants import HPCGVariant, get_variant
from repro.kernels.counts import dot_counts, spmv_csr_counts, waxpby_counts
from repro.multigrid.hierarchy import build_hierarchy, hierarchy_levels
from repro.multigrid.smoothers import make_smoother
from repro.multigrid.vcycle import MGPreconditioner
from repro.perfmodel.specs import KernelSpec
from repro.simd.counters import OpCounter
from repro.simd.machine import MachineModel
from repro.solvers.pcg import pcg
from repro.utils.validation import check_positive, require


@dataclass
class HPCGResult:
    """Outcome of a functional HPCG run.

    Attributes
    ----------
    iterations:
        PCG iterations executed.
    final_relres:
        Final relative residual.
    flops:
        Officially credited flops.
    converged:
        Whether the target tolerance was reached.
    """

    iterations: int
    final_relres: float
    flops: int
    converged: bool


def run_hpcg(nx: int = 16, variant: str = "dbsr", n_levels: int = 3,
             max_iters: int = 50, tol: float = 1e-9,
             bsize: int = 4, n_workers: int = 4) -> HPCGResult:
    """Execute the benchmark numerically on an ``nx``-cubed local grid.

    Uses the named variant's smoother in the MG preconditioner; all
    variants must converge to the same residual (they perform the same
    math in different storage/orderings), which the tests assert.
    """
    problem = hpcg_problem(nx)
    v = get_variant(variant)

    def factory(grid, stencil, matrix):
        return make_smoother(v.smoother_kind, grid, stencil, matrix,
                             bsize=bsize, n_workers=n_workers)

    top = build_hierarchy(problem.grid, problem.stencil, factory,
                          n_levels=n_levels, matrix=problem.matrix)
    M = MGPreconditioner(top)
    x, hist = pcg(problem.matrix, problem.rhs, M, tol=tol,
                  maxiter=max_iters)
    flops = hist.iterations * hpcg_flops_per_iteration(
        problem.n, problem.matrix.nnz, n_levels)
    relres = hist.final_residual / (hist.initial_residual or 1.0)
    return HPCGResult(iterations=hist.iterations, final_relres=relres,
                      flops=flops, converged=hist.converged)


# --- Machine-model projection ------------------------------------------

@dataclass
class HPCGModel:
    """Per-iteration kernel specs of one variant on one local domain."""

    variant: HPCGVariant
    specs: list = field(default_factory=list)
    n_local: int = 0
    nnz_local: int = 0
    parallelism: float = 1.0
    barriers: int = 0

    def node_seconds_per_iteration(
            self, machine: MachineModel, processes: int, threads: int,
            scale: float = 1.0, dtype_bytes: int = 8,
            halo_seconds: float = 0.0) -> float:
        """Modeled per-iteration wall time for ``processes x threads``.

        All processes execute concurrently: total work is
        ``processes x`` local counts over ``processes*threads`` cores,
        sharing the machine bandwidth; color barriers are per-process
        (overlapped across processes). A kernel whose scaled working
        set fits in LLC is treated as cache resident (the coarse MG
        levels — where vectorization pays most, since compute rather
        than DRAM bandwidth bounds them).
        """
        total = 0.0
        cores = processes * threads
        l3_bytes = machine.l3_mb * 1e6
        for spec in self.specs:
            par = spec.parallelism * (scale if spec.parallelism_scales
                                      else 1.0)
            c = spec.counter.scaled(scale * processes)
            c.bytes_vector = int(
                c.bytes_vector * self.variant.fusion_traffic_factor)
            resident = 0.9 if (l3_bytes > 0
                               and c.total_bytes < 0.8 * l3_bytes) else 0.0
            total += machine.kernel_seconds(
                c, threads=cores, dtype_bytes=dtype_bytes,
                vectorized=spec.vectorized,
                use_gather_hw=spec.use_gather_hw,
                parallelism=par * processes,
                n_barriers=spec.barriers,
                cache_resident_fraction=resident,
            )
        return total + halo_seconds


def build_hpcg_model(nx: int, variant: str, n_levels: int = 3,
                     bsize: int = 8, n_workers: int = 8) -> HPCGModel:
    """Measure per-iteration kernel counts of a variant at size ``nx``.

    The model problem is built small (structures are real); callers
    scale counts to the paper's ``nx = 192`` local domain via the
    ``scale`` argument of
    :meth:`HPCGModel.node_seconds_per_iteration`.
    """
    check_positive(nx, "nx")
    v = get_variant(variant)
    problem = hpcg_problem(nx)

    def factory(grid, stencil, matrix):
        return make_smoother(v.smoother_kind, grid, stencil, matrix,
                             bsize=bsize, n_workers=n_workers)

    top = build_hierarchy(problem.grid, problem.stencil, factory,
                          n_levels=n_levels, matrix=problem.matrix)
    levels = hierarchy_levels(top)
    model = HPCGModel(variant=v, n_local=problem.n,
                      nnz_local=problem.matrix.nnz)

    # Top-level SpMV (CG) + dots + waxpbys, in the variant's own
    # storage format (DBSR SpMV is gather-free, SELL SpMV gathers).
    model.specs.append(KernelSpec(
        counter=_spmv_counts_for(top.smoother, problem.matrix),
        parallelism=float(problem.n), barriers=0,
        vectorized=v.vectorized, use_gather_hw=v.use_gather_hw,
    ))
    vec = OpCounter(bsize=1)
    vec.merge(dot_counts(problem.n))
    vec.merge(dot_counts(problem.n))
    vec.merge(dot_counts(problem.n))
    vec.merge(waxpby_counts(problem.n))
    vec.merge(waxpby_counts(problem.n))
    vec.merge(waxpby_counts(problem.n))
    model.specs.append(KernelSpec(
        counter=vec, parallelism=float(problem.n), barriers=0,
        vectorized=v.vectorized,
    ))

    # MG levels: pre+post SYMGS and residual SpMV per level, single
    # SYMGS on the coarsest.
    for depth, lvl in enumerate(levels):
        smoother = lvl.smoother
        sweeps = 1 if depth == len(levels) - 1 else 2
        symgs = smoother.op_counts().scaled(float(sweeps))
        if v.force_gather and hasattr(smoother, "dbsr"):
            # Fig. 8: pretend the x loads of Algorithm 2 were gathers.
            n_xloads = smoother.dbsr.n_tiles * 2 * sweeps
            item = smoother.dbsr.values.itemsize
            symgs.vgather += n_xloads
            symgs.vload -= n_xloads
            moved = n_xloads * smoother.dbsr.bsize * item
            symgs.bytes_gathered += moved
            symgs.bytes_vector -= moved
        serial = v.process_parallel_only
        model.specs.append(KernelSpec(
            counter=symgs,
            parallelism=(1.0 if serial else
                         float(getattr(smoother, "parallelism", 1.0))),
            barriers=sweeps * smoother.barriers(),
            vectorized=v.vectorized,
            use_gather_hw=v.use_gather_hw,
            parallelism_scales=not serial,
        ))
        if depth != len(levels) - 1:
            model.specs.append(KernelSpec(
                counter=spmv_csr_counts(lvl.matrix),
                parallelism=float(lvl.n), barriers=0,
                vectorized=v.vectorized,
                use_gather_hw=v.use_gather_hw,
            ))
    model.parallelism = min(
        getattr(l.smoother, "parallelism", 1.0) for l in levels)
    model.barriers = sum(
        (1 if d == len(levels) - 1 else 2) * l.smoother.barriers()
        for d, l in enumerate(levels))
    return model


def _spmv_counts_for(smoother, csr_matrix) -> OpCounter:
    """SpMV counts in the storage format the variant actually uses."""
    from repro.kernels.counts import spmv_dbsr_counts, spmv_sell_counts

    if hasattr(smoother, "dbsr"):
        return spmv_dbsr_counts(smoother.dbsr)
    if hasattr(smoother, "sell"):
        return spmv_sell_counts(smoother.sell)
    return spmv_csr_counts(csr_matrix)


def _halo_seconds(machine: MachineModel, processes: int, nx_local: int,
                  dtype_bytes: int = 8) -> float:
    """Intra-node halo exchange + allreduce cost per CG iteration.

    26-neighbor halo of a cubic local domain, exchanged through shared
    memory, plus two latency-bound allreduces.
    """
    if processes <= 1:
        return 0.0
    import math

    face = nx_local * nx_local * dtype_bytes
    halo_bytes = processes * 6 * face * 1.2  # edges/corners ~20%
    bw = machine.effective_bandwidth(machine.cores)
    latency = 1e-6 * 26 * math.log2(processes + 1)
    allreduce = 2 * 5e-6 * math.log2(processes + 1)
    return halo_bytes / bw + latency + allreduce


def model_hpcg_gflops(machine: MachineModel, model: HPCGModel,
                      processes: int, threads: int,
                      nx_target: int = 192, nx_model: int | None = None,
                      dtype_bytes: int = 8) -> float:
    """Projected node GFLOPS for an allocation (Fig. 5/6 data point)."""
    nx_model_val = nx_model if nx_model is not None else round(
        model.n_local ** (1 / 3))
    scale = (nx_target / nx_model_val) ** 3
    n_target = model.n_local * scale
    nnz_target = model.nnz_local * scale
    flops = processes * hpcg_flops_per_iteration(
        int(n_target), int(nnz_target),
        n_levels=4)
    halo = _halo_seconds(machine, processes, nx_target, dtype_bytes)
    secs = model.node_seconds_per_iteration(
        machine, processes, threads, scale=scale,
        dtype_bytes=dtype_bytes, halo_seconds=halo)
    secs *= model.variant.time_inefficiency
    return flops / secs / 1e9


def best_allocation(machine: MachineModel, model: HPCGModel,
                    nx_target: int = 192) -> tuple:
    """Best (processes, threads, gflops) with all cores busy (Fig. 5)."""
    cores = machine.cores
    best = None
    p = 1
    while p <= cores:
        if cores % p == 0:
            t = cores // p
            g = model_hpcg_gflops(machine, model, p, t,
                                  nx_target=nx_target)
            if best is None or g > best[2]:
                best = (p, t, g)
        p += 1
    return best
