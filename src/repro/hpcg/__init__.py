"""The HPCG benchmark (§II-C, §V-B..D).

A faithful re-implementation of the benchmark's computational core:
27-point operator, 4-level geometric multigrid preconditioner with
SYMGS smoothing, preconditioned CG driver, and the official FLOP
accounting — plus the storage/ordering *variants* the paper compares
(reference, vendor-style, CPO, SELL, DBSR) and the machine-model
GFLOPS projection that regenerates Figs. 5, 6 and 8.
"""

from repro.hpcg.flops import hpcg_flops_per_iteration, hpcg_total_flops
from repro.hpcg.variants import HPCGVariant, VARIANTS, get_variant
from repro.hpcg.benchmark import (
    HPCGModel,
    HPCGResult,
    best_allocation,
    build_hpcg_model,
    model_hpcg_gflops,
    run_hpcg,
)

__all__ = [
    "hpcg_flops_per_iteration",
    "hpcg_total_flops",
    "HPCGVariant",
    "VARIANTS",
    "get_variant",
    "HPCGModel",
    "HPCGResult",
    "run_hpcg",
    "build_hpcg_model",
    "model_hpcg_gflops",
    "best_allocation",
]
