"""Roofline placement of kernel/format pairings.

Computes arithmetic intensity (flops per DRAM byte, over-fetch
included) from the operation counters and places each kernel against a
machine's compute and bandwidth ceilings — the quantitative form of
the paper's recurring observation that SpTRSV/SYMGS are memory-bound
and that DBSR helps by *moving fewer bytes*, not fewer flops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simd.counters import OpCounter
from repro.simd.machine import MachineModel


def arithmetic_intensity(counter: OpCounter,
                         machine: MachineModel | None = None) -> float:
    """Flops per byte of DRAM traffic (gather over-fetch applied when
    a machine is given)."""
    flops = counter.flops()
    overfetch = machine.gather_overfetch if machine else 1.0
    traffic = (counter.total_bytes - counter.bytes_gathered
               + counter.bytes_gathered * overfetch)
    return flops / traffic if traffic else float("inf")


@dataclass
class RooflinePoint:
    """One kernel's position against a machine's roofline.

    Attributes
    ----------
    intensity:
        Flops per DRAM byte.
    peak_gflops:
        Machine compute ceiling for this kernel's vector/scalar mix.
    bw_gflops:
        Bandwidth ceiling at this intensity
        (``intensity * peak_bandwidth``).
    attainable_gflops:
        ``min(peak, bw)`` — the roofline.
    memory_bound:
        Whether the bandwidth ceiling is the binding one.
    """

    intensity: float
    peak_gflops: float
    bw_gflops: float

    @property
    def attainable_gflops(self) -> float:
        return min(self.peak_gflops, self.bw_gflops)

    @property
    def memory_bound(self) -> bool:
        return self.bw_gflops < self.peak_gflops


def roofline_point(counter: OpCounter, machine: MachineModel,
                   threads: int | None = None, dtype_bytes: int = 8,
                   vectorized: bool = True) -> RooflinePoint:
    """Place one kernel on ``machine``'s roofline.

    ``peak_gflops`` uses the kernel's own instruction mix (a divide-
    heavy kernel has a lower ceiling than pure-FMA code), making the
    placement kernel-specific rather than the generic hardware peak.
    """
    t = threads if threads is not None else machine.cores
    intensity = arithmetic_intensity(counter, machine)
    comp_secs = machine.compute_seconds(
        counter, threads=t, dtype_bytes=dtype_bytes,
        vectorized=vectorized)
    flops = counter.flops()
    peak = flops / comp_secs / 1e9 if comp_secs > 0 else float("inf")
    bw = machine.effective_bandwidth(t) * intensity / 1e9
    return RooflinePoint(intensity=intensity, peak_gflops=peak,
                         bw_gflops=bw)
