"""Numerical analysis utilities.

* :mod:`~repro.analysis.iteration_matrix` — spectral radii of smoother
  error-propagation operators, quantifying the paper's convergence
  claims (MC sacrifices convergence, BMC mostly preserves it,
  vectorized BMC preserves it exactly).
* :mod:`~repro.analysis.roofline` — arithmetic-intensity / roofline
  placement of each kernel-format pairing on the Table I machines,
  explaining *why* the memory-bound regimes of Figs. 5-9 behave as
  they do.
"""

from repro.analysis.iteration_matrix import (
    gs_iteration_matrix,
    ilu_iteration_matrix,
    spectral_radius,
)
from repro.analysis.roofline import (
    RooflinePoint,
    arithmetic_intensity,
    roofline_point,
)

__all__ = [
    "gs_iteration_matrix",
    "ilu_iteration_matrix",
    "spectral_radius",
    "RooflinePoint",
    "arithmetic_intensity",
    "roofline_point",
]
