"""Error-propagation operators and their spectral radii.

A stationary iteration ``x <- x + M^{-1}(b - A x)`` contracts the error
by ``E = I - M^{-1} A`` per sweep; its spectral radius ``rho(E)`` *is*
the asymptotic convergence rate the paper trades against parallelism
(§II-B: "The multi-color ordering technique sacrifices some of the
convergence rate to improve parallelism"). These helpers compute the
operators for the smoothers in this library so that trade can be
measured as a number, not just an iteration count.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.utils.validation import require


def spectral_radius(E: np.ndarray, iters: int = 200,
                    seed: int = 7) -> float:
    """Power-method estimate of ``rho(E)`` (dense input).

    Deterministic (fixed seed); accurate to ~1e-3 for the modest
    operators used in tests.
    """
    n = E.shape[0]
    require(E.shape == (n, n), "E must be square")
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    lam = 0.0
    for _ in range(iters):
        w = E @ v
        norm = np.linalg.norm(w)
        if norm == 0.0:
            return 0.0
        lam = norm
        v = w / norm
    return float(lam)


def gs_iteration_matrix(matrix: CSRMatrix,
                        symmetric: bool = True) -> np.ndarray:
    """Error-propagation operator of (SYM)GS on ``matrix``.

    Forward GS: ``E_f = I - (D + L)^{-1} A``; SYMGS composes the
    backward sweep: ``E = E_b E_f``.
    """
    dense = matrix.to_dense()
    n = dense.shape[0]
    DL = np.tril(dense)
    E_f = np.eye(n) - np.linalg.solve(DL, dense)
    if not symmetric:
        return E_f
    DU = np.triu(dense)
    E_b = np.eye(n) - np.linalg.solve(DU, dense)
    return E_b @ E_f


def ilu_iteration_matrix(matrix: CSRMatrix, factors) -> np.ndarray:
    """Error propagation of ILU(0)-preconditioned Richardson:
    ``E = I - (L U)^{-1} A``."""
    from repro.ilu.ilu0_csr import split_lu

    dense = matrix.to_dense()
    n = dense.shape[0]
    L, U = split_lu(factors)
    return np.eye(n) - np.linalg.solve(U, np.linalg.solve(L, dense))


def ordering_convergence_report(problem, orderings: dict) -> dict:
    """Spectral radius of SYMGS error propagation per ordering.

    Parameters
    ----------
    problem:
        A :class:`~repro.grids.problems.Problem`.
    orderings:
        ``{name: permutation old->new or None}`` (``None`` =
        lexicographic).

    Returns
    -------
    dict
        ``{name: rho}``. Smaller is faster convergence; the paper's
        ordering hierarchy (lexicographic <= BMC < MC) shows up here
        directly.
    """
    out = {}
    for name, perm in orderings.items():
        A = problem.matrix if perm is None else \
            problem.matrix.permute(perm)
        out[name] = spectral_radius(gs_iteration_matrix(A))
    return out
