"""Async streaming front door for the solve engine.

``repro.gateway`` puts an asyncio-native admission + placement layer
in front of the synchronous serving stack:

* :class:`~repro.gateway.gateway.SolveGateway` — per-tenant fair
  queueing, deadline-aware admission control, streaming multi-RHS
  tickets;
* :class:`~repro.gateway.estimator.ServiceTimeEstimator` — pre-compile
  service-time estimates (analytic op counts + live latency EWMAs);
* :class:`~repro.gateway.queues.FairScheduler` — stride-scheduled
  weighted fair dequeue under per-tenant quotas;
* :class:`~repro.gateway.pool.ElasticShardPool` — hysteresis-driven
  worker elasticity with warm draining.

The synchronous :class:`~repro.serve.service.SolveService` API is
untouched; the gateway composes it (``asyncio.to_thread``), so
gatewayed solves are bit-identical to direct ones.
"""

from repro.gateway.errors import (
    AdmissionRejected,
    BrownoutShed,
    GatewayClosed,
    GatewayError,
    QuotaExceeded,
)
from repro.gateway.estimator import Ewma, ServiceTimeEstimator, stencil_nnz
from repro.gateway.gateway import GatewayTicket, SolveGateway
from repro.gateway.pool import ElasticShardPool, GatewayShard
from repro.gateway.queues import FairScheduler, TenantQuota

__all__ = [
    "AdmissionRejected",
    "BrownoutShed",
    "ElasticShardPool",
    "Ewma",
    "FairScheduler",
    "GatewayClosed",
    "GatewayError",
    "GatewayShard",
    "GatewayTicket",
    "QuotaExceeded",
    "ServiceTimeEstimator",
    "SolveGateway",
    "TenantQuota",
    "stencil_nnz",
]
