"""Gateway benchmark: ``repro gateway-bench`` → BENCH_gateway.json.

Exercises the async front door end to end and reports the four claims
the gateway makes:

1. **Bit-identity** — a gatewayed solve equals a direct
   ``SolveService`` solve bit-for-bit (``np.array_equal``) for both
   storage strategies (DBSR, SELL) across kernel backends: the gateway
   routes, it never touches numerics.
2. **Cheap refusal** — an infeasible deadline is rejected with a typed
   :class:`~repro.gateway.errors.AdmissionRejected` and **zero** plan
   compiles across every shard cache.
3. **Elasticity without loss** — a burst scales the pool up, idleness
   scales it back down (hysteresis, warm drain), and every accepted
   column still resolves: ``completed + failed + expired == accepted``.
4. **Streaming** — a multi-RHS request yields at least one finished
   column while the rest of its batch is still outstanding.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.gateway.gateway import SolveGateway
from repro.gateway.errors import AdmissionRejected
from repro.gateway.queues import TenantQuota
from repro.grids.grid import StructuredGrid
from repro.serve.plan import PlanConfig
from repro.serve.service import SolveService

OPS = ("lower", "upper", "symgs", "spmv")


def _direct(grid, stencil, rhs2d, op, config) -> np.ndarray:
    """Reference: the same columns through a plain sync service."""
    with SolveService(config=config) as svc:
        tickets = [svc.submit(grid, stencil,
                              np.ascontiguousarray(rhs2d[:, j]), op=op)
                   for j in range(rhs2d.shape[1])]
        svc.drain()
        return np.stack([t.result(timeout=0) for t in tickets],
                        axis=1)


async def _identity_phase(grid, stencil, rng, n_workers: int,
                          machine: str) -> dict:
    rows = []
    for strategy in ("dbsr", "sell"):
        for backend in ("numpy-fast", "numpy-counted"):
            config = PlanConfig(bsize=4, n_workers=n_workers,
                                strategy=strategy, machine=machine,
                                backend=backend)
            async with SolveGateway(config=config, min_shards=1,
                                    max_shards=1,
                                    stream_chunk=2) as gw:
                for op in ("lower", "symgs"):
                    rhs = rng.standard_normal((grid.n_points, 3))
                    got = await gw.solve(grid, stencil, rhs, op=op)
                    want = _direct(grid, stencil, rhs, op, config)
                    rows.append({
                        "strategy": strategy, "backend": backend,
                        "op": op,
                        "bitwise": bool(np.array_equal(got, want)),
                    })
    return {"cases": rows,
            "all_bitwise": all(r["bitwise"] for r in rows)}


async def _run(nx: int, stencil: str, n_requests: int, k_stream: int,
               n_workers: int, machine: str, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    grid = StructuredGrid((nx,) * 3)
    config = PlanConfig(bsize=4, n_workers=n_workers, machine=machine)

    identity = await _identity_phase(grid, stencil, rng, n_workers,
                                     machine)

    quotas = {"alpha": TenantQuota(max_queued=64, max_in_flight=2,
                                   weight=2.0),
              "beta": TenantQuota(max_queued=64, max_in_flight=2,
                                  weight=1.0),
              "gamma": TenantQuota(max_queued=64, max_in_flight=2,
                                   weight=1.0)}
    async with SolveGateway(config=config, min_shards=1, max_shards=3,
                            stream_chunk=2, quotas=quotas,
                            high_water=3.0, low_water=1.0,
                            up_patience=2, down_patience=2,
                            cooldown=1) as gw:
        # Warm one structure so admission has a live EWMA to price by.
        warm = await gw.solve(grid, stencil,
                              rng.standard_normal(grid.n_points),
                              tenant="alpha")
        assert np.all(np.isfinite(warm))

        # Claim 2: an impossible deadline is refused pre-compile.
        compiles_before = gw.pool.compile_totals()[0]
        rejected, rejection = False, None
        try:
            await gw.submit(grid, stencil,
                            rng.standard_normal(grid.n_points),
                            tenant="alpha", deadline=1e-9)
        except AdmissionRejected as exc:
            rejected = True
            rejection = {"reason": exc.reason,
                         "estimate": exc.estimate}
        compiles_after = gw.pool.compile_totals()[0]
        admission = {
            "rejected": rejected,
            "rejection": rejection,
            "compile_delta": compiles_after - compiles_before,
        }

        # Claim 4: streaming — first column lands before the batch.
        first_partial_cols_done = None
        ticket = await gw.submit(
            grid, stencil,
            rng.standard_normal((grid.n_points, k_stream)),
            tenant="beta")
        order = []
        async for idx, col in ticket.stream():
            if first_partial_cols_done is None:
                first_partial_cols_done = ticket.columns_done
            order.append(idx)
            assert np.all(np.isfinite(col))
        streaming = {
            "k": k_stream,
            "stream_chunk": gw.stream_chunk,
            "first_yield_columns_done": first_partial_cols_done,
            "partial_before_complete": bool(
                first_partial_cols_done is not None
                and first_partial_cols_done < k_stream),
            "completion_order": order,
        }

        # Claim 3: burst → scale up; drain + idle polls → scale down.
        t0 = time.monotonic()
        tickets = []
        tenants = ("alpha", "beta", "gamma")
        for i in range(n_requests):
            tickets.append(await gw.submit(
                grid, stencil, rng.standard_normal(grid.n_points),
                op=OPS[i % len(OPS)], tenant=tenants[i % 3]))
        peak_shards = gw.pool.n_shards
        await gw.join()
        burst_seconds = time.monotonic() - t0
        for t in tickets:
            x = await t.result()
            assert np.all(np.isfinite(x))
        for _ in range(8):  # idle samples drive the warm drain
            gw.poll()
        stats = gw.stats()
        scaling = {
            "min_shards": gw.pool.min_shards,
            "max_shards": gw.pool.max_shards,
            "peak_shards": peak_shards,
            "final_shards": gw.pool.n_shards,
            "events": stats["pool"]["scale_events"],
            "burst_requests": n_requests,
            "burst_seconds": burst_seconds,
        }
        fairness = dict(stats["tenants"])
        accepted_columns = (1 + k_stream + n_requests)
        resolved = (stats["completed"] + stats["failed"]
                    + stats["expired"])
        service = {
            "accepted_requests": stats["accepted"],
            "rejected_requests": stats["rejected"],
            "accepted_columns": accepted_columns,
            "completed_columns": stats["completed"],
            "failed_columns": stats["failed"],
            "expired_columns": stats["expired"],
            "estimator": stats["estimator"],
        }

    scaled_up = any(e["action"] == "scale_up"
                    for e in scaling["events"])
    scaled_down = any(e["action"] == "scale_down"
                      for e in scaling["events"])
    gates = {
        "all_bitwise_identical": identity["all_bitwise"],
        "deadline_rejected_pre_compile": bool(
            admission["rejected"]
            and admission["compile_delta"] == 0),
        "streaming_partial_before_complete":
            streaming["partial_before_complete"],
        "scaled_up_and_down": bool(scaled_up and scaled_down),
        "returned_to_min_shards": bool(
            scaling["final_shards"] == scaling["min_shards"]),
        "no_lost_columns": bool(resolved == accepted_columns
                                and stats["failed"] == 0
                                and stats["expired"] == 0),
    }
    return {
        "schema": "dbsr-repro/bench-gateway/v1",
        "config": {
            "nx": nx,
            "stencil": stencil,
            "n_requests": n_requests,
            "k_stream": k_stream,
            "n_workers": n_workers,
            "machine": machine,
            "seed": seed,
        },
        "identity": identity,
        "admission": admission,
        "streaming": streaming,
        "scaling": scaling,
        "fairness": fairness,
        "service": service,
        "gates": gates,
        "ok": all(gates.values()),
    }


def collect_bench_gateway(nx: int = 6, stencil: str = "27pt",
                          n_requests: int = 18, k_stream: int = 6,
                          n_workers: int = 2,
                          machine: str = "kp920",
                          seed: int = 2024) -> dict:
    """Run the gateway workload; return the BENCH_gateway report dict.

    Synchronous wrapper (the CLI and tests call it from plain code);
    the workload itself runs on a private event loop.
    """
    return asyncio.run(_run(nx, stencil, n_requests, k_stream,
                            n_workers, machine, seed))
