"""Async streaming front door over the synchronous solve engine.

:class:`SolveGateway` is the asyncio-native admission + placement
layer in front of :class:`~repro.serve.service.SolveService`:

* **submit** is a coroutine that either *accepts* a request — returning
  a :class:`GatewayTicket` immediately — or *rejects* it with a typed
  :class:`~repro.gateway.errors.AdmissionRejected` before any queue
  slot is taken or any plan compiled. Deadline feasibility is judged by
  :class:`~repro.gateway.estimator.ServiceTimeEstimator` (analytic op
  counts calibrated by live EWMAs), so a hopeless request costs O(1).
* **fairness** — accepted work lands in the per-tenant
  :class:`~repro.gateway.queues.FairScheduler`; the dispatch loop
  serves tenants by stride scheduling under per-tenant quotas.
* **streaming** — a multi-RHS request is split into
  ``stream_chunk``-column chunks, each resolving its columns'
  ``asyncio.Future`` as the chunk completes; ``ticket.stream()`` yields
  finished columns while later chunks are still queued or executing.
* **elasticity** — chunks execute on
  :class:`~repro.gateway.pool.ElasticShardPool` workers via
  ``asyncio.to_thread``; the pool scales against queue depth with
  hysteresis and warm-drains shards on the way down.

The synchronous engine is composed, never modified: every numeric
result is produced by the same ``submit → drain`` path direct callers
use, so gatewayed solves are bit-identical to direct ones.
"""

from __future__ import annotations

import asyncio
import itertools
import time

import numpy as np

from repro.gateway.errors import (AdmissionRejected, BrownoutShed,
                                  GatewayClosed, QuotaExceeded)
from repro.gateway.estimator import Ewma, ServiceTimeEstimator
from repro.gateway.pool import ElasticShardPool
from repro.gateway.queues import FairScheduler, TenantQuota
from repro.observe import trace
from repro.observe.metrics import (LATENCY_EDGES, WIDTH_EDGES,
                                   MetricsRegistry)
from repro.resilience.errors import (NON_RECOVERABLE_ERRORS,
                                     DeadlineExceeded)
from repro.serve.plan import (PlanConfig, _resolve_stencil,
                              structural_fingerprint)
from repro.serve.service import SolveService
from repro.utils.validation import check_positive


class _Chunk:
    """One dispatchable unit: a few columns of one request."""

    __slots__ = ("ticket", "cols", "columns")

    def __init__(self, ticket: "GatewayTicket", cols: list,
                 columns: list):
        self.ticket = ticket
        self.cols = cols          # column indices into the ticket
        self.columns = columns    # the RHS vectors themselves


class GatewayTicket:
    """Handle for one accepted request; resolves column by column.

    Each RHS column has its own ``asyncio.Future``. ``result()`` awaits
    the full solution; ``stream()`` yields ``(column_index, x)`` pairs
    in completion order, so callers see partial results while the rest
    of the batch is still queued or executing.
    """

    def __init__(self, request_id: int, tenant: str, op: str, k: int,
                 fingerprint: str, deadline: float | None,
                 estimate: dict, single: bool):
        self.request_id = request_id
        self.tenant = tenant
        self.op = op
        self.k = k
        self.fingerprint = fingerprint
        self.deadline_seconds = deadline
        self.deadline_at = (None if deadline is None
                            else time.monotonic() + float(deadline))
        self._work = None  # (grid, stencil, config), set by the gateway
        #: Admission-time service estimate (breakdown dict).
        self.estimate = estimate
        self._single = single
        loop = asyncio.get_running_loop()
        self.futures = [loop.create_future() for _ in range(k)]

    @property
    def done(self) -> bool:
        return all(f.done() for f in self.futures)

    @property
    def columns_done(self) -> int:
        return sum(1 for f in self.futures if f.done())

    async def result(self) -> np.ndarray:
        """Await the full solution (1-D for a single RHS, else (n, k)).

        Raises the first per-column failure, like the sync ticket.
        """
        cols = await asyncio.gather(*self.futures)
        if self._single:
            return cols[0]
        return np.stack(cols, axis=1)

    async def stream(self):
        """Async-iterate ``(column_index, x_column)`` as columns finish.

        A failed column raises from its position in completion order;
        already-finished columns before it are yielded first.
        """
        pending = {f: i for i, f in enumerate(self.futures)}
        while pending:
            finished, _ = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED)
            # Deterministic tiebreak when several finish together.
            for fut in sorted(finished, key=pending.get):
                idx = pending.pop(fut)
                yield idx, fut.result()


class SolveGateway:
    """Deadline-aware, multi-tenant async front door.

    Parameters
    ----------
    service_factory:
        Builds one shard's synchronous service; defaults to
        ``SolveService(config=config)`` so each shard owns a private
        :class:`~repro.serve.cache.PlanCache`.
    config:
        Default :class:`~repro.serve.plan.PlanConfig` for requests that
        pass none.
    stream_chunk:
        Columns per dispatch unit. Smaller streams sooner; larger
        amortizes better (each chunk is one coalesced multi-RHS batch).
    default_quota / quotas:
        Per-tenant admission limits and fair-share weights.
    admission_slack:
        Deadline feasibility margin: reject when
        ``estimate > deadline * admission_slack``. ``1.0`` trusts the
        estimate; ``< 1.0`` keeps headroom.
    min_shards .. cooldown:
        Forwarded to :class:`~repro.gateway.pool.ElasticShardPool`.
    supervisor, hedge, retry, brownout:
        Optional supervision-tier policies (:mod:`repro.supervise`):
        a :class:`~repro.supervise.supervisor.ShardSupervisor` for
        canary-probed quarantine/restart of failed shards, a
        :class:`~repro.supervise.hedge.HedgePolicy` for straggler
        hedging (duplicate a slow chunk onto a spare shard, first
        result wins — safe because chunks are bit-identical across
        shards), a :class:`~repro.supervise.hedge.RetryPolicy` for
        bounded re-dispatch after recoverable shard failures, and a
        :class:`~repro.supervise.brownout.BrownoutController` for
        staged overload shedding. All default to ``None`` — the
        unsupervised gateway behaves exactly as before.
    """

    def __init__(self, service_factory=None, *,
                 config: PlanConfig | None = None,
                 stream_chunk: int = 2,
                 default_quota: TenantQuota | None = None,
                 quotas: dict | None = None,
                 admission_slack: float = 1.0,
                 estimator: ServiceTimeEstimator | None = None,
                 metrics: MetricsRegistry | None = None,
                 min_shards: int = 1, max_shards: int = 4,
                 high_water: float = 4.0, low_water: float = 1.0,
                 up_patience: int = 2, down_patience: int = 3,
                 cooldown: int = 2,
                 supervisor=None, hedge=None, retry=None,
                 brownout=None):
        self.config = config if config is not None else PlanConfig()
        if service_factory is None:
            cfg = self.config
            service_factory = lambda: SolveService(config=cfg)  # noqa: E731
        self.stream_chunk = check_positive(stream_chunk,
                                           "stream_chunk")
        self.admission_slack = float(admission_slack)
        self.estimator = (estimator if estimator is not None
                          else ServiceTimeEstimator())
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.scheduler = FairScheduler(default_quota)
        for name, quota in (quotas or {}).items():
            self.scheduler.set_quota(name, quota)
        self.pool = ElasticShardPool(
            service_factory, min_shards=min_shards,
            max_shards=max_shards, high_water=high_water,
            low_water=low_water, up_patience=up_patience,
            down_patience=down_patience, cooldown=cooldown,
            metrics=self.metrics)
        self.supervisor = supervisor
        if supervisor is not None:
            supervisor.bind(self.pool, self.metrics)
        self.hedge = hedge
        self.retry = retry
        self.brownout = brownout
        # Mean wall seconds per executed chunk; the queue-wait signal
        # the brownout controller watches is backlog × this / shards.
        self._chunk_ewma = Ewma(0.3)
        self._ids = itertools.count()
        self._closed = False
        self._wake = asyncio.Event()
        self._quiesced = asyncio.Event()
        self._quiesced.set()
        self._outstanding = 0  # accepted chunks not yet finished
        self._dispatcher: asyncio.Task | None = None
        self._tasks: set = set()
        self._warm: set = set()  # fingerprints with queued/past work
        # Last accepted ILU value digest per fingerprint: a warm
        # structure arriving with a *different* digest takes the
        # value-only repack path, priced by the refresh EWMA.
        self._value_digests: dict[str, str] = {}
        self._accepted = self.metrics.counter(
            "gateway.accepted", "requests admitted")
        self._rejected = self.metrics.counter(
            "gateway.rejected", "requests refused at admission")
        self._completed = self.metrics.counter(
            "gateway.completed", "columns solved")
        self._failed = self.metrics.counter(
            "gateway.failed", "columns failed")
        self._expired = self.metrics.counter(
            "gateway.expired", "columns expired before dispatch")
        self._retries = self.metrics.counter(
            "gateway.retries", "chunk re-dispatches after "
            "recoverable shard failures")
        self._hedges = self.metrics.counter(
            "gateway.hedges", "straggler chunks duplicated onto a "
            "spare shard")
        self._hedge_wins = self.metrics.counter(
            "gateway.hedge_wins", "hedged chunks won by the backup")
        self._sheds = self.metrics.counter(
            "gateway.sheds", "admissions refused by overload brownout")
        self._depth_gauge = self.metrics.gauge(
            "gateway.queue_depth", "chunks queued across tenants")
        self._latency = self.metrics.histogram(
            "gateway.chunk_seconds", LATENCY_EDGES,
            "wall seconds per executed chunk")
        self._width = self.metrics.histogram(
            "gateway.request_width", WIDTH_EDGES,
            "RHS columns per accepted request")

    # Tenant bookkeeping -------------------------------------------------
    def _tenant_counter(self, tenant: str, which: str):
        safe = "".join(c if (c.isalnum() or c in "._-") else "_"
                       for c in tenant)
        return self.metrics.counter(
            f"gateway.tenant.{safe}.{which}",
            f"{which} requests of tenant {tenant!r}",
            labels={"tenant": tenant})

    # Admission ----------------------------------------------------------
    async def submit(self, grid, stencil, rhs, op: str = "lower",
                     config: PlanConfig | None = None,
                     tenant: str = "default",
                     deadline: float | None = None,
                     values=None,
                     value_digest: str | None = None) -> GatewayTicket:
        """Admit one request (or refuse it) and enqueue its chunks.

        Returns a :class:`GatewayTicket` whose column futures resolve
        as chunks complete. Raises :class:`AdmissionRejected` (deadline
        infeasible), :class:`QuotaExceeded` (tenant limits) or
        :class:`GatewayClosed` — all *before* any engine work.

        ``values``/``value_digest`` (``op="ilu_apply"`` only) carry the
        coefficient snapshot: a warm structure with a changed digest is
        charged the repack EWMA, not the cold-compile one.
        """
        if self._closed:
            raise GatewayClosed("submit after close")
        config = config if config is not None else self.config
        stencil = _resolve_stencil(stencil)
        rhs = np.asarray(rhs)
        single = rhs.ndim == 1
        columns = [rhs] if single else \
            [np.ascontiguousarray(rhs[:, j])
             for j in range(rhs.shape[1])]
        k = len(columns)
        if op == "ilu_apply":
            from repro.serve.ilu_plan import (
                ilu_structural_fingerprint,
                value_digest as _digest_of,
            )

            fingerprint = ilu_structural_fingerprint(grid, stencil,
                                                     config)
            if values is not None:
                values = np.asarray(
                    values, dtype=config.np_dtype).reshape(-1)
                value_digest = _digest_of(values)
        else:
            fingerprint = structural_fingerprint(grid, stencil, config)
        request_id = next(self._ids)
        with trace.span("gateway.admit", tenant=tenant, op=op, k=k,
                        fingerprint=fingerprint[:12]):
            if self.brownout is not None:
                self._observe_brownout()
                if self.brownout.should_shed(
                        self.scheduler.weight(tenant)):
                    wait = self.brownout.last_wait
                    self.brownout.shed()
                    self._rejected.inc()
                    self._sheds.inc()
                    self._tenant_counter(tenant, "rejected").inc()
                    trace.event("gateway.brownout_shed",
                                tenant=tenant,
                                stage=self.brownout.stage,
                                queue_wait=wait)
                    raise BrownoutShed(
                        tenant, self.brownout.retry_after(wait),
                        stage=self.brownout.stage, queue_wait=wait)
            cold = (fingerprint not in self._warm
                    and not self.pool.has_plan(fingerprint))
            warm_refresh = (not cold and value_digest is not None
                            and self._value_digests.get(fingerprint)
                            not in (None, value_digest))
            estimate = self.estimator.estimate(
                grid, stencil, config, op, k, fingerprint, cold=cold,
                backlog_chunks=self.scheduler.depth
                + self.scheduler.in_flight,
                n_shards=self.pool.n_shards,
                warm_refresh=warm_refresh)
            if deadline is not None and \
                    estimate["total_seconds"] \
                    > float(deadline) * self.admission_slack:
                self._rejected.inc()
                self._tenant_counter(tenant, "rejected").inc()
                trace.event("gateway.reject", tenant=tenant,
                            reason="deadline", deadline=deadline,
                            estimate=estimate["total_seconds"])
                raise AdmissionRejected(
                    f"estimated {estimate['total_seconds']:.3g}s "
                    f"({estimate['source']}) exceeds the {deadline:g}s "
                    f"deadline", tenant=tenant, reason="deadline",
                    estimate=estimate)
            ticket = GatewayTicket(
                request_id, tenant, op, k, fingerprint,
                deadline=deadline, estimate=estimate, single=single)
            chunk_size = (self.stream_chunk if self.brownout is None
                          else self.brownout.effective_chunk(
                              self.stream_chunk))
            chunks = []
            for start in range(0, k, chunk_size):
                cols = list(range(start,
                                  min(start + chunk_size, k)))
                chunks.append(_Chunk(
                    ticket, cols, [columns[i] for i in cols]))
            ticket._work = (grid, stencil, config)
            ticket._values = values
            ticket._value_digest = value_digest
            try:
                self.scheduler.push_many(tenant, chunks)
            except QuotaExceeded:
                self._rejected.inc()
                self._tenant_counter(tenant, "rejected").inc()
                trace.event("gateway.reject", tenant=tenant,
                            reason="quota")
                raise
        self._warm.add(fingerprint)
        if value_digest is not None:
            self._value_digests[fingerprint] = value_digest
        self._accepted.inc()
        self._tenant_counter(tenant, "accepted").inc()
        self._width.observe(k)
        self._outstanding += len(chunks)
        self._quiesced.clear()
        depth = self.scheduler.depth
        self._depth_gauge.set(depth)
        trace.event("gateway.enqueue", tenant=tenant,
                    request_id=request_id, chunks=len(chunks),
                    queue_depth=depth)
        self.pool.observe(depth)
        self._ensure_started()
        self._wake.set()
        return ticket

    # Dispatch -----------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop() \
                .create_task(self._dispatch_loop())

    async def _dispatch_loop(self) -> None:
        while not self._closed:
            await self._wake.wait()
            self._wake.clear()
            while not self._closed:
                popped = self.scheduler.pop()
                if popped is None:
                    break
                tenant, chunk = popped
                self._depth_gauge.set(self.scheduler.depth)
                trace.event("gateway.dequeue", tenant=tenant,
                            request_id=chunk.ticket.request_id,
                            cols=chunk.cols)
                shard = await self.pool.acquire()
                task = asyncio.get_running_loop().create_task(
                    self._run_chunk(tenant, chunk, shard))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    def _resolve(self, chunk: _Chunk, results: list) -> None:
        for idx, res in zip(chunk.cols, results):
            fut = chunk.ticket.futures[idx]
            if fut.done():
                continue
            if isinstance(res, BaseException):
                fut.set_exception(res)
                self._failed.inc()
            else:
                fut.set_result(res)
                self._completed.inc()

    def _queue_wait_estimate(self) -> float:
        """Estimated seconds a new chunk would wait behind the
        backlog: ``(queued + in_flight) × chunk_EWMA / shards``."""
        depth = self.scheduler.depth + self.scheduler.in_flight
        per = self._chunk_ewma.value
        if depth == 0 or per is None:
            return 0.0
        return depth * per / max(1, self.pool.n_shards)

    def _observe_brownout(self) -> None:
        before = self.brownout.stage
        stage = self.brownout.observe(self._queue_wait_estimate())
        if stage != before:
            trace.event("gateway.brownout_stage", stage=stage,
                        was=before,
                        queue_wait=self.brownout.last_wait)

    async def _run_chunk(self, tenant: str, chunk: _Chunk,
                         shard) -> None:
        ticket = chunk.ticket
        try:
            if self._closed:
                self._resolve(chunk, [GatewayClosed("cancelled")
                                      for _ in chunk.cols])
                await self.pool.release(shard)
                return
            now = time.monotonic()
            if ticket.deadline_at is not None \
                    and now > ticket.deadline_at:
                # Expired while queued: fail without engine work, same
                # typed error the sync path uses.
                err = DeadlineExceeded(ticket.request_id,
                                       ticket.deadline_seconds)
                self._expired.inc(len(chunk.cols))
                trace.event("gateway.expired", tenant=tenant,
                            request_id=ticket.request_id,
                            cols=chunk.cols)
                self._resolve(chunk, [err for _ in chunk.cols])
                await self.pool.release(shard)
                return
            attempt = 0
            current = shard
            while True:
                try:
                    results = await self._hedged_attempt(
                        tenant, chunk, current)
                    break
                except asyncio.CancelledError:
                    raise
                except NON_RECOVERABLE_ERRORS:
                    # PR-6 contract: never retried, never hedged
                    # around — surface to the columns.
                    raise
                except BaseException as exc:  # noqa: BLE001
                    attempt += 1
                    if (self.retry is None or self._closed
                            or attempt > self.retry.max_retries):
                        raise
                    self._retries.inc()
                    trace.event("gateway.retry", tenant=tenant,
                                request_id=ticket.request_id,
                                attempt=attempt,
                                error=type(exc).__name__)
                    await asyncio.sleep(self.retry.delay(attempt))
                    current = await self.pool.acquire()
            self._resolve(chunk, results)
            self._tenant_counter(tenant, "completed").inc(
                len(chunk.cols))
        except BaseException as exc:  # noqa: BLE001 - fail the columns
            self._resolve(chunk, [exc for _ in chunk.cols])
        finally:
            # Shard disposition happened inside the attempt (release,
            # reap, or supervisor hand-off) — never here.
            self.scheduler.finish(tenant)
            self._outstanding -= 1
            if self._outstanding == 0:
                self._quiesced.set()
            if self.brownout is not None:
                self._observe_brownout()
            self.pool.observe(self.scheduler.depth)
            self._wake.set()

    async def _attempt(self, tenant: str, chunk: _Chunk, shard,
                       hedge_of: int | None = None) -> tuple:
        """Execute ``chunk`` on ``shard``; owns the shard's fate.

        On success the shard is released (healthy path) and
        ``(results, wall_seconds)`` returned; on failure the shard is
        disposed via :meth:`_dispose_failed` — released (reaping it if
        defunct) or handed to the supervisor for a canary probe — and
        the error re-raised. Callers never touch the shard again.
        """
        ticket = chunk.ticket
        grid, stencil, config = ticket._work
        kk = len(chunk.cols)
        try:
            with trace.span("gateway.execute", tenant=tenant,
                            request_id=ticket.request_id, k=kk,
                            shard=shard.index, op=ticket.op,
                            hedge_of=hedge_of):
                c0, s0 = shard.compile_stats()
                r0, rs0 = shard.refresh_stats()
                t0 = time.monotonic()
                results = await asyncio.to_thread(
                    shard.execute, grid, stencil, ticket.op, config,
                    chunk.columns,
                    getattr(ticket, "_values", None),
                    getattr(ticket, "_value_digest", None))
                dt = time.monotonic() - t0
                c1, s1 = shard.compile_stats()
                r1, rs1 = shard.refresh_stats()
        except BaseException as exc:
            await self._dispose_failed(shard, exc)
            raise
        self._latency.observe(dt)
        if c1 > c0:
            self.estimator.observe_compile(s1 - s0)
        if r1 > r0:
            self.estimator.observe_compile(rs1 - rs0, kind="refresh")
        exec_seconds = max(1e-9, dt - (s1 - s0) - (rs1 - rs0))
        self.estimator.observe(
            ticket.fingerprint, ticket.op, exec_seconds, k=kk,
            model_seconds=self.estimator.model_seconds(
                grid, stencil, config, ticket.op, kk))
        await self.pool.release(shard)
        return results, dt

    async def _dispose_failed(self, shard,
                              exc: BaseException) -> None:
        """Decide a failed shard's fate: cancellation isn't the
        shard's fault (plain release); otherwise let the supervisor
        probe it, or fall back to ``release`` (which reaps defunct
        shards on its own)."""
        if isinstance(exc, asyncio.CancelledError) \
                or self.supervisor is None:
            await self.pool.release(shard)
        else:
            await self.supervisor.handle_failure(shard, exc)

    def _record_chunk_time(self, dt: float) -> None:
        self._chunk_ewma.update(dt)
        if self.hedge is not None:
            self.hedge.record(dt)

    def _adopt_background(self, task: asyncio.Task) -> None:
        """Track a losing hedge attempt until it finishes on its own.

        Losers are never cancelled: ``asyncio.to_thread`` work cannot
        be interrupted, and the attempt must run to completion so its
        shard is released (or reaped) cleanly. Its exception (if any)
        is retrieved to keep the loop warning-free.
        """
        self._tasks.add(task)

        def _reap_loser(t: asyncio.Task) -> None:
            self._tasks.discard(t)
            if not t.cancelled():
                t.exception()

        task.add_done_callback(_reap_loser)

    async def _hedged_attempt(self, tenant: str, chunk: _Chunk,
                              shard) -> list:
        """One chunk attempt, possibly raced against a backup shard.

        If the primary straggles past the hedge delay *and* a spare
        shard is idle, the chunk is duplicated; the first successful
        result wins (bit-identical either way) and the loser finishes
        in the background. With no hedge policy, a cold latency
        distribution, or no spare capacity this degenerates to a plain
        single-shard attempt.
        """
        delay = None if self.hedge is None else self.hedge.delay()
        if delay is None:
            results, dt = await self._attempt(tenant, chunk, shard)
            self._record_chunk_time(dt)
            return results
        loop = asyncio.get_running_loop()
        primary = loop.create_task(
            self._attempt(tenant, chunk, shard))
        done, _ = await asyncio.wait({primary}, timeout=delay)
        if primary in done:
            results, dt = primary.result()
            self._record_chunk_time(dt)
            return results
        backup_shard = self.pool.try_acquire()
        if backup_shard is None:
            # No spare capacity: hedging must never queue duplicate
            # work behind real work.
            results, dt = await primary
            self._record_chunk_time(dt)
            return results
        self._hedges.inc()
        trace.event("gateway.hedge", tenant=tenant,
                    request_id=chunk.ticket.request_id,
                    primary=shard.index, backup=backup_shard.index,
                    delay=delay)
        backup = loop.create_task(
            self._attempt(tenant, chunk, backup_shard,
                          hedge_of=shard.index))
        pending = {primary, backup}
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED)
            # Deterministic tiebreak: prefer the primary when both
            # land in the same wake-up.
            for task in sorted(done,
                               key=lambda t: 0 if t is primary else 1):
                if task.exception() is not None:
                    continue
                results, dt = task.result()
                self._record_chunk_time(dt)
                if task is backup:
                    self._hedge_wins.inc()
                    trace.event("gateway.hedge_win", tenant=tenant,
                                request_id=chunk.ticket.request_id,
                                backup=backup_shard.index)
                for loser in pending:
                    self._adopt_background(loser)
                return results
        # Both attempts failed; shards were disposed by _attempt.
        # Surface the primary's error (the retry loop may re-dispatch).
        raise primary.exception()

    # Convenience --------------------------------------------------------
    async def solve(self, grid, stencil, rhs, **kwargs) -> np.ndarray:
        """Submit and await one request end to end."""
        ticket = await self.submit(grid, stencil, rhs, **kwargs)
        return await ticket.result()

    def poll(self) -> None:
        """Feed the scaling controller one idle observation.

        Benchmarks and tests call this to drive scale-*down* while no
        traffic is arriving (the controller otherwise only sees depth
        samples on submit/completion). The brownout controller gets
        the same idle samples, so recovery back toward ``normal``
        does not require fresh traffic.
        """
        self.pool.observe(self.scheduler.depth)
        if self.brownout is not None:
            self._observe_brownout()

    async def join(self) -> None:
        """Await until every accepted chunk has resolved."""
        await self._quiesced.wait()

    # Shutdown -----------------------------------------------------------
    async def close(self) -> None:
        """Refuse new work, fail queued chunks, await in-flight ones.

        Queued-but-undispatched columns resolve to
        :class:`GatewayClosed`; chunks already executing finish
        normally (their futures resolve with real results).
        """
        if self._closed:
            return
        self._closed = True
        self._wake.set()
        dropped = self.scheduler.drain_all()
        for _tenant, chunk in dropped:
            self._resolve(chunk, [GatewayClosed("queued at shutdown")
                                  for _ in chunk.cols])
            self._outstanding -= 1
        if self._outstanding == 0:
            self._quiesced.set()
        if dropped:
            trace.event("gateway.closed_drop", n_chunks=len(dropped))
        if self._dispatcher is not None:
            await self._dispatcher
        if self._tasks:
            await asyncio.gather(*self._tasks,
                                 return_exceptions=True)
        if self.supervisor is not None:
            await self.supervisor.drain(cancel=True)
        self.pool.close()
        self._depth_gauge.set(0)

    async def __aenter__(self) -> "SolveGateway":
        self._ensure_started()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # Introspection ------------------------------------------------------
    def stats(self) -> dict:
        return {
            "accepted": self._accepted.value,
            "rejected": self._rejected.value,
            "completed": self._completed.value,
            "failed": self._failed.value,
            "expired": self._expired.value,
            "queue_depth": self.scheduler.depth,
            "in_flight": self.scheduler.in_flight,
            "tenants": self.scheduler.stats(),
            "pool": self.pool.stats(),
            "estimator": self.estimator.stats(),
            "retries": self._retries.value,
            "hedges": self._hedges.value,
            "hedge_wins": self._hedge_wins.value,
            "sheds": self._sheds.value,
            "queue_wait_estimate": self._queue_wait_estimate(),
            "supervisor": (self.supervisor.stats()
                           if self.supervisor is not None else None),
            "brownout": (self.brownout.stats()
                         if self.brownout is not None else None),
            "hedge_policy": (self.hedge.stats()
                             if self.hedge is not None else None),
            "metrics": self.metrics.snapshot(),
        }
