"""Elastic worker-shard pool with hysteresis and warm draining.

A :class:`GatewayShard` owns one synchronous
:class:`~repro.serve.service.SolveService` (or any submit/drain
compatible frontend, e.g. a
:class:`~repro.shard.service.ShardedSolveService`): because every
shard owns its own :class:`~repro.serve.cache.PlanCache` and — when
configured — its own fallback chain, shards are fully independent and
elasticity reduces to lifecycle + work placement.

:class:`ElasticShardPool` scales the shard count against observed
queue depth with **hysteresis**: a scale decision needs the pressure
signal to persist for ``up_patience``/``down_patience`` consecutive
observations *and* a cooldown to have elapsed since the last scale
event, so an oscillating queue cannot thrash the pool. Scaling down
**warm-drains**: the victim shard is only reaped once idle — a busy
shard is marked draining, keeps its in-flight work, and is closed when
released, so no accepted request is ever lost to elasticity.

Hysteresis is counted in *observations* (one per submit/completion/
``poll()``), not wall seconds, which keeps the controller deterministic
and testable.

Beyond elasticity the pool understands **health**: a shard whose
``execute`` raised a non-recoverable error is marked ``defunct`` and
reaped on release (the pool replenishes itself back to ``min_shards``),
and the supervision tier (:mod:`repro.supervise`) can ``quarantine`` a
shard out of rotation, ``build_shard`` a replacement (through the
``pool.spawn`` chaos site), and ``adopt`` it once its canary probe
passes.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque

from repro.observe import trace
from repro.resilience import hooks
from repro.resilience.errors import NON_RECOVERABLE_ERRORS, FaultInjected
from repro.utils.validation import check_positive


class GatewayShard:
    """One worker: a private sync service executed off-loop.

    ``execute`` runs in a worker thread (``asyncio.to_thread``); the
    shard is handed to exactly one chunk at a time by the pool, so the
    underlying service never sees concurrent drains from the gateway.

    Three health flags drive lifecycle decisions:

    * ``defunct`` — ``execute`` hit a non-recoverable error
      (:data:`~repro.resilience.errors.NON_RECOVERABLE_ERRORS`);
      :meth:`ElasticShardPool.release` reaps such a shard instead of
      returning it to the free list.
    * ``poisoned`` — an armed ``shard_poison`` fault marked this shard:
      every execute raises until the supervisor replaces it.
    * ``quarantined`` — the supervisor pulled the shard out of
      rotation; ``release`` ignores it (the supervisor owns it now).
    """

    def __init__(self, index: int, service):
        self.index = index
        self.service = service
        self.draining = False
        self.defunct = False
        self.poisoned = False
        self.quarantined = False
        self.chunks_executed = 0

    def poison(self) -> None:
        """Chaos hook: make every later ``execute`` raise (until the
        supervisor restarts this shard with a fresh service)."""
        self.poisoned = True

    def execute(self, grid, stencil, op: str, config,
                columns: list, values=None,
                value_digest: str | None = None) -> list:
        """Solve ``columns`` (same structure + op) as one coalesced
        batch; returns one result *or exception* per column.

        ``values``/``value_digest`` forward ILU coefficient snapshots
        to the service (``op="ilu_apply"`` only).
        """
        hooks.fire("gateway.shard", shard=self, op=op)
        if self.poisoned:
            raise FaultInjected(
                "gateway.shard", "shard_poison",
                f"shard {self.index} is poisoned until restart")
        extra = {}
        if values is not None:
            extra["values"] = values
        if value_digest is not None:
            extra["value_digest"] = value_digest
        try:
            tickets = [self.service.submit(grid, stencil, rhs, op=op,
                                           config=config, **extra)
                       for rhs in columns]
            self.service.drain()
        except NON_RECOVERABLE_ERRORS:
            self.defunct = True
            raise
        out = []
        for t in tickets:
            try:
                out.append(t.result(timeout=0))
            except NON_RECOVERABLE_ERRORS as exc:
                # The service's internals tripped resource exhaustion
                # or a violated invariant: surface the column error AND
                # condemn the shard — release() will reap it.
                self.defunct = True
                out.append(exc)
            except BaseException as exc:  # noqa: BLE001 - per-column
                out.append(exc)
        self.chunks_executed += 1
        return out

    def compile_stats(self) -> tuple:
        """(compiles, compile_seconds) of this shard's cache, if any."""
        cache = getattr(self.service, "cache", None)
        if cache is None:
            return (0, 0.0)
        return (cache.compiles, cache.compile_seconds)

    def refresh_stats(self) -> tuple:
        """(refreshes, refresh_seconds) of this shard's cache, if any."""
        cache = getattr(self.service, "cache", None)
        if cache is None:
            return (0, 0.0)
        return (cache.refreshes, cache.refresh_seconds)

    def has_plan(self, fingerprint: str) -> bool:
        cache = getattr(self.service, "cache", None)
        return (cache is not None
                and cache.peek(fingerprint) is not None)

    def close(self) -> None:
        self.service.close()

    def stats(self) -> dict:
        return {
            "index": self.index,
            "draining": self.draining,
            "defunct": self.defunct,
            "poisoned": self.poisoned,
            "quarantined": self.quarantined,
            "chunks_executed": self.chunks_executed,
            "service": self.service.stats(),
        }


class ElasticShardPool:
    """Queue-depth-driven shard pool (asyncio-native).

    Parameters
    ----------
    factory:
        Zero-argument callable building one shard's service.
    min_shards, max_shards:
        Pool size bounds; the pool starts at ``min_shards``.
    high_water:
        Scale **up** when queued chunks per active shard reach this.
    low_water:
        Scale **down** when total queued chunks are at or below this
        (and a shard is idle or can be drained).
    up_patience, down_patience:
        Consecutive observations the pressure must persist before a
        scale event fires (the hysteresis band).
    cooldown:
        Observations to ignore after any scale event (anti-thrash).
    metrics:
        Optional :class:`~repro.observe.metrics.MetricsRegistry` to
        grow ``gateway.scale_up`` / ``gateway.scale_down`` counters
        and a ``gateway.shards`` gauge on.
    """

    def __init__(self, factory, min_shards: int = 1,
                 max_shards: int = 4, high_water: float = 4.0,
                 low_water: float = 1.0, up_patience: int = 2,
                 down_patience: int = 3, cooldown: int = 2,
                 metrics=None):
        self.factory = factory
        self.min_shards = check_positive(min_shards, "min_shards")
        self.max_shards = check_positive(max_shards, "max_shards")
        if self.max_shards < self.min_shards:
            raise ValueError(
                f"max_shards {max_shards} < min_shards {min_shards}")
        self.high_water = float(high_water)
        self.low_water = float(low_water)
        self.up_patience = check_positive(up_patience, "up_patience")
        self.down_patience = check_positive(down_patience,
                                            "down_patience")
        self.cooldown = int(cooldown)
        self._ids = itertools.count()
        self._shards: list[GatewayShard] = []
        self._free: deque = deque()
        self._cond = asyncio.Condition()
        self._up_streak = 0
        self._down_streak = 0
        self._cooldown_left = 0
        self.scale_events: list[dict] = []
        #: Health-driven lifecycle events (defunct reaps, quarantines,
        #: adoptions) — separate from the controller's scale_events.
        self.lifecycle_events: list[dict] = []
        self._metrics = metrics
        if metrics is not None:
            self._scale_up = metrics.counter(
                "gateway.scale_up", "shards added by the controller")
            self._scale_down = metrics.counter(
                "gateway.scale_down",
                "shards warm-drained and reaped by the controller")
            self._shards_gauge = metrics.gauge(
                "gateway.shards", "active worker shards")
        else:
            self._scale_up = self._scale_down = None
            self._shards_gauge = None
        for _ in range(self.min_shards):
            self._spawn()

    # Lifecycle ----------------------------------------------------------
    def build_shard(self) -> GatewayShard:
        """Construct one shard *without* adding it to the pool.

        Fires the ``pool.spawn`` chaos site (an armed ``spawn_fail``
        fault raises here), so callers that must survive spawn
        failures — the supervisor's restart loop — can catch and back
        off. The shard only serves traffic after :meth:`adopt`.
        """
        index = next(self._ids)
        hooks.fire("pool.spawn", shard_index=index)
        return GatewayShard(index, self.factory())

    def adopt(self, shard: GatewayShard) -> GatewayShard:
        """Put a built (and, if supervised, canary-checked) shard into
        rotation and wake any ``acquire`` waiters."""
        self._shards.append(shard)
        self._free.append(shard)
        if self._shards_gauge is not None:
            self._shards_gauge.set(len(self._shards))
        self._notify_soon()
        return shard

    def _spawn(self) -> GatewayShard:
        return self.adopt(self.build_shard())

    def _remove(self, shard: GatewayShard) -> None:
        if shard in self._shards:
            self._shards.remove(shard)
        try:
            self._free.remove(shard)
        except ValueError:
            pass
        if self._shards_gauge is not None:
            self._shards_gauge.set(len(self._shards))

    def _reap(self, shard: GatewayShard, depth: int,
              deferred: bool) -> None:
        """Close an idle shard (warm drain already satisfied)."""
        self._remove(shard)
        shard.close()
        if self._scale_down is not None:
            self._scale_down.inc()
        event = {"action": "scale_down", "shard": shard.index,
                 "n_shards": len(self._shards), "queue_depth": depth,
                 "warm_drained": deferred}
        self.scale_events.append(event)
        trace.event("gateway.scale_down", **event)

    def _reap_defunct(self, shard: GatewayShard) -> None:
        """Close a shard condemned by a non-recoverable failure, and
        replenish the pool if that dropped it below ``min_shards``."""
        self._remove(shard)
        shard.close()
        event = {"action": "reap_defunct", "shard": shard.index,
                 "n_shards": len(self._shards)}
        self.lifecycle_events.append(event)
        trace.event("gateway.reap_defunct", **event)
        if len(self._shards) < self.min_shards:
            try:
                self._spawn()
            except BaseException as exc:  # noqa: BLE001 - chaos spawn
                # An armed spawn_fail fault: record the hole; the
                # supervisor's restart path (or the next scale-up)
                # refills it.
                self.lifecycle_events.append(
                    {"action": "spawn_failed",
                     "error": type(exc).__name__})
                trace.event("gateway.spawn_failed",
                            error=type(exc).__name__)

    def quarantine(self, shard: GatewayShard) -> None:
        """Pull a shard out of rotation without closing it.

        The supervisor calls this for a shard that failed its canary
        probe; the shard keeps its service alive (the supervisor may
        re-probe or close it) but can no longer be acquired, and a
        later ``release`` of it is a no-op.
        """
        shard.quarantined = True
        self._remove(shard)
        event = {"action": "quarantine", "shard": shard.index,
                 "n_shards": len(self._shards)}
        self.lifecycle_events.append(event)
        trace.event("gateway.quarantine", **event)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_draining(self) -> int:
        return sum(1 for s in self._shards if s.draining)

    def refresh_stats(self) -> tuple:
        """Pool-wide ``(refreshes, refresh_seconds)`` across live shards."""
        stats = [s.refresh_stats() for s in self._shards]
        return (sum(r for r, _ in stats), sum(s for _, s in stats))

    def has_plan(self, fingerprint: str) -> bool:
        """True when any shard's cache already holds this structure."""
        return any(s.has_plan(fingerprint) for s in self._shards)

    def compile_totals(self) -> tuple:
        """Pool-wide ``(compiles, compile_seconds)`` across live shards."""
        stats = [s.compile_stats() for s in self._shards]
        return (sum(c for c, _ in stats), sum(s for _, s in stats))

    # Placement ----------------------------------------------------------
    async def acquire(self) -> GatewayShard:
        """Wait for — and take — an idle shard."""
        async with self._cond:
            while not self._free:
                await self._cond.wait()
            return self._free.popleft()

    def try_acquire(self) -> GatewayShard | None:
        """Take an idle shard *without* waiting (``None`` when none).

        The hedging path uses this: a straggler is only duplicated
        when spare capacity exists — hedging must never make an
        overloaded pool worse by queueing duplicate work.
        """
        if self._free:
            return self._free.popleft()
        return None

    async def release(self, shard: GatewayShard) -> None:
        """Return a shard — unless its health says otherwise.

        A ``quarantined`` shard is ignored (the supervisor owns its
        lifecycle now); a ``defunct`` shard — one whose ``execute``
        raised a non-recoverable error — is reaped, never returned to
        the free list; a ``draining`` shard completes its warm drain
        and is reaped as the controller promised.
        """
        async with self._cond:
            if shard.quarantined:
                self._cond.notify_all()
                return
            if shard.defunct:
                self._reap_defunct(shard)
            elif shard.draining:
                self._reap(shard, depth=0, deferred=True)
            else:
                self._free.append(shard)
            self._cond.notify_all()

    # Scaling controller -------------------------------------------------
    def observe(self, queue_depth: int) -> str | None:
        """Feed one queue-depth sample; maybe scale. Returns the
        action taken (``"scale_up"``/``"scale_down"``) or ``None``.

        Must be called from the event loop (it touches the free list);
        the gateway calls it on every submit, every chunk completion,
        and every explicit ``poll()``.
        """
        depth = int(queue_depth)
        active = max(1, len(self._shards) - self.n_draining)
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        if depth / active >= self.high_water:
            self._up_streak += 1
            self._down_streak = 0
        elif depth <= self.low_water:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0
        if (self._up_streak >= self.up_patience
                and len(self._shards) < self.max_shards):
            self._up_streak = 0
            self._cooldown_left = self.cooldown
            shard = self._spawn()
            if self._scale_up is not None:
                self._scale_up.inc()
            event = {"action": "scale_up", "shard": shard.index,
                     "n_shards": len(self._shards),
                     "queue_depth": depth}
            self.scale_events.append(event)
            trace.event("gateway.scale_up", **event)
            self._notify_soon()
            return "scale_up"
        if (self._down_streak >= self.down_patience
                and len(self._shards) - self.n_draining
                > self.min_shards):
            self._down_streak = 0
            self._cooldown_left = self.cooldown
            # Prefer the youngest idle shard: older shards carry the
            # warmest plan caches.
            idle = next((s for s in reversed(self._free)
                         if not s.draining), None)
            if idle is not None:
                self._free.remove(idle)
                self._reap(idle, depth=depth, deferred=False)
            else:
                # Every shard is busy: warm-drain — mark one, reap on
                # release, lose nothing.
                victim = next(s for s in self._shards
                              if not s.draining)
                victim.draining = True
            return "scale_down"
        return None

    def _notify_soon(self) -> None:
        """Wake acquire() waiters after a spawn (loop context only)."""
        async def _notify():
            async with self._cond:
                self._cond.notify_all()
        try:
            asyncio.get_running_loop().create_task(_notify())
        except RuntimeError:  # no loop: nobody can be waiting
            pass

    # Shutdown -----------------------------------------------------------
    def close(self) -> None:
        """Close every shard (callers must have drained in-flight)."""
        for shard in self._shards:
            shard.close()
        self._shards.clear()
        self._free.clear()
        if self._shards_gauge is not None:
            self._shards_gauge.set(0)

    def stats(self) -> dict:
        return {
            "n_shards": len(self._shards),
            "n_free": len(self._free),
            "n_draining": self.n_draining,
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "scale_events": list(self.scale_events),
            "lifecycle_events": list(self.lifecycle_events),
            "shards": [s.stats() for s in self._shards],
        }
