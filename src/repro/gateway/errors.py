"""Typed failure taxonomy of the async front door.

Everything the gateway can refuse gets its own type so tenants can
branch on semantics: quota refusals, deadline refusals and overload
brownout sheds are all :class:`AdmissionRejected` (callers that only
care about "was my request ever accepted?" catch the base class),
while :class:`GatewayClosed` marks requests that were *accepted* but
cancelled by shutdown.

Like :mod:`repro.resilience.errors`, this module is a dependency leaf
(stdlib only) so the scheduler, pool and gateway can all import it
without cycles.
"""

from __future__ import annotations


class GatewayError(RuntimeError):
    """Base class of every gateway-level failure."""


class AdmissionRejected(GatewayError):
    """The gateway refused a request *before* doing any work on it.

    Raised synchronously by ``SolveGateway.submit`` — no compile, no
    queue slot, no ticket. ``reason`` is machine-readable
    (``"deadline"`` or ``"quota"``); ``estimate`` carries the service
    time breakdown that justified a deadline rejection (``None`` for
    quota refusals).
    """

    def __init__(self, message: str, tenant: str = "",
                 reason: str = "deadline",
                 estimate: dict | None = None):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.estimate = dict(estimate) if estimate else None


class QuotaExceeded(AdmissionRejected):
    """A per-tenant quota (queued or in-flight) is at its limit.

    A quota refusal is transient — the tenant retries after draining —
    so it is distinct from a deadline refusal, which no retry under the
    same deadline can fix.
    """

    def __init__(self, tenant: str, quota: str, limit: int):
        super().__init__(
            f"tenant {tenant!r} exceeded its {quota} quota "
            f"(limit {limit})", tenant=tenant, reason="quota")
        self.quota = quota
        self.limit = int(limit)


class BrownoutShed(AdmissionRejected):
    """Overload brownout shed this admission before any work.

    Raised by ``SolveGateway.submit`` while the
    :class:`~repro.supervise.brownout.BrownoutController` is in its
    *shed* stage and the tenant's fair-share weight falls below the
    shed threshold. Like every admission refusal it costs the gateway
    nothing — no queue slot, no compile — and unlike a deadline
    refusal it is transient: ``retry_after`` tells the tenant when the
    backlog is expected to have drained enough to try again.
    """

    def __init__(self, tenant: str, retry_after: float,
                 stage: str = "shed", queue_wait: float = 0.0):
        super().__init__(
            f"brownout ({stage}): tenant {tenant!r} shed under "
            f"overload; retry in {retry_after:.3g}s",
            tenant=tenant, reason="brownout")
        self.retry_after = float(retry_after)
        self.stage = stage
        self.queue_wait_seconds = float(queue_wait)


class GatewayClosed(GatewayError):
    """The gateway shut down with this request still queued.

    Accepted-but-unexecuted tickets resolve to this error on
    ``close()`` so awaiting callers raise instead of hanging (the async
    analogue of :class:`repro.resilience.errors.ServiceClosed`).
    """

    def __init__(self, detail: str = ""):
        super().__init__("gateway closed" + (f": {detail}" if detail
                                             else ""))
