"""Per-tenant queues with quotas and weighted fair dequeue.

:class:`FairScheduler` is the gateway's queueing discipline: one FIFO
per tenant, per-tenant quotas (bounded queue depth, bounded in-flight
work), and **stride scheduling** across tenants — every tenant ``t``
carries a *pass* value advanced by ``1/weight_t`` each time it is
served, and ``pop`` always serves the eligible tenant with the lowest
pass. Consequences (pinned by the Hypothesis suite in
``tests/gateway/``):

* **No starvation** — a nonempty tenant's pass stands still while
  everyone served moves up, so it becomes the minimum after a bounded
  number of pops regardless of arrival order.
* **Weighted shares** — over a busy interval, tenant service counts
  are proportional to their weights.
* **No history abuse** — a tenant whose queue emptied re-enters at the
  current minimum pass (its pass is clamped up on refill), so idling
  banks no credit for a later burst.

The scheduler is a plain synchronous data structure (the gateway calls
it from the event loop only); a lock still guards it so stats can be
read from other threads.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass

from repro.gateway.errors import QuotaExceeded
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits and fair-share weight of one tenant.

    Attributes
    ----------
    max_queued:
        Most work items (request chunks) the tenant may have queued;
        ``push`` past this raises :class:`QuotaExceeded`.
    max_in_flight:
        Most chunks the tenant may have executing concurrently; a
        tenant at this limit is skipped by ``pop`` until one finishes.
    weight:
        Fair-share weight; a weight-2 tenant is served twice as often
        as a weight-1 tenant while both stay backlogged.
    """

    max_queued: int = 64
    max_in_flight: int = 4
    weight: float = 1.0

    def __post_init__(self):
        check_positive(self.max_queued, "max_queued")
        check_positive(self.max_in_flight, "max_in_flight")
        if not self.weight > 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")


class _Tenant:
    """Internal per-tenant state (queue, pass value, in-flight)."""

    __slots__ = ("name", "quota", "queue", "passval", "in_flight")

    def __init__(self, name: str, quota: TenantQuota,
                 passval: float):
        self.name = name
        self.quota = quota
        self.queue: deque = deque()
        self.passval = passval
        self.in_flight = 0

    @property
    def stride(self) -> float:
        return 1.0 / self.quota.weight

    @property
    def eligible(self) -> bool:
        return (len(self.queue) > 0
                and self.in_flight < self.quota.max_in_flight)


class FairScheduler:
    """Stride-scheduled multi-tenant work queue with quotas."""

    def __init__(self, default_quota: TenantQuota | None = None):
        self.default_quota = default_quota or TenantQuota()
        self._lock = threading.Lock()
        self._tenants: dict[str, _Tenant] = {}
        self._seq = itertools.count()  # FIFO tiebreak for equal passes

    # Tenant management --------------------------------------------------
    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Set (or change) one tenant's quota; creates the tenant."""
        with self._lock:
            t = self._ensure(tenant)
            t.quota = quota

    def _ensure(self, name: str) -> _Tenant:
        t = self._tenants.get(name)
        if t is None:
            t = _Tenant(name, self.default_quota, self._min_pass())
            self._tenants[name] = t
        return t

    def _min_pass(self) -> float:
        """Lowest pass among backlogged tenants (0 when none)."""
        passes = [t.passval for t in self._tenants.values()
                  if t.queue]
        return min(passes) if passes else 0.0

    # Queue operations ---------------------------------------------------
    def push(self, tenant: str, item) -> int:
        """Enqueue one work item; returns the tenant's queue depth.

        Raises :class:`QuotaExceeded` at ``max_queued`` — the caller
        decides whether that surfaces as backpressure or rejection.
        """
        with self._lock:
            t = self._ensure(tenant)
            if len(t.queue) >= t.quota.max_queued:
                raise QuotaExceeded(tenant, "queued",
                                    t.quota.max_queued)
            if not t.queue:
                # Re-entering the run queue: clamp the pass up to the
                # current minimum so idle time banks no credit.
                t.passval = max(t.passval, self._min_pass())
            t.queue.append((next(self._seq), item))
            return len(t.queue)

    def push_many(self, tenant: str, items: list) -> int:
        """Atomically enqueue several items (one request's chunks).

        All-or-nothing: if the batch would cross ``max_queued`` the
        whole push raises :class:`QuotaExceeded` and the queue is
        untouched — a request is never half-admitted.
        """
        with self._lock:
            t = self._ensure(tenant)
            if len(t.queue) + len(items) > t.quota.max_queued:
                raise QuotaExceeded(tenant, "queued",
                                    t.quota.max_queued)
            if not t.queue:
                t.passval = max(t.passval, self._min_pass())
            for item in items:
                t.queue.append((next(self._seq), item))
            return len(t.queue)

    def pop(self):
        """Serve the eligible tenant with the lowest pass.

        Returns ``(tenant_name, item)``, or ``None`` when no tenant is
        eligible (all empty, or all backlogged tenants at their
        in-flight cap). Advances the served tenant's pass by its
        stride and counts the item as in-flight until
        :meth:`finish` is called for that tenant.
        """
        with self._lock:
            best = None
            for t in self._tenants.values():
                if not t.eligible:
                    continue
                key = (t.passval, t.queue[0][0])
                if best is None or key < best[0]:
                    best = (key, t)
            if best is None:
                return None
            t = best[1]
            _, item = t.queue.popleft()
            t.passval += t.stride
            t.in_flight += 1
            return (t.name, item)

    def finish(self, tenant: str) -> None:
        """Release one in-flight slot for ``tenant``."""
        with self._lock:
            t = self._tenants.get(tenant)
            if t is None or t.in_flight <= 0:
                raise ValueError(
                    f"finish({tenant!r}) without a matching pop")
            t.in_flight -= 1

    def drain_all(self) -> list:
        """Remove and return every queued item (``close()`` path)."""
        with self._lock:
            out = []
            for t in self._tenants.values():
                out.extend((t.name, item) for _, item in t.queue)
                t.queue.clear()
            return out

    # Introspection ------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return sum(len(t.queue) for t in self._tenants.values())

    @property
    def in_flight(self) -> int:
        with self._lock:
            return sum(t.in_flight for t in self._tenants.values())

    def weight(self, tenant: str) -> float:
        """Fair-share weight of ``tenant`` (default quota if unknown).

        The brownout controller sheds by weight, so admission must be
        able to price a tenant *before* it has ever queued anything.
        """
        with self._lock:
            t = self._tenants.get(tenant)
            quota = self.default_quota if t is None else t.quota
            return quota.weight

    def queued(self, tenant: str) -> int:
        with self._lock:
            t = self._tenants.get(tenant)
            return 0 if t is None else len(t.queue)

    def tenants(self) -> list:
        with self._lock:
            return sorted(self._tenants)

    def stats(self) -> dict:
        with self._lock:
            return {
                name: {
                    "queued": len(t.queue),
                    "in_flight": t.in_flight,
                    "pass": t.passval,
                    "weight": t.quota.weight,
                    "max_queued": t.quota.max_queued,
                    "max_in_flight": t.quota.max_in_flight,
                }
                for name, t in sorted(self._tenants.items())
            }
