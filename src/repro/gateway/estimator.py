"""Deadline-aware service-time estimation — *before* any compile.

Admission control needs to answer "can this request make its deadline?"
without paying the very work it is trying to protect (reordering, DBSR
conversion, autotune). Two sources, blended:

* **Analytic model** — operation counts derived from the grid and
  stencil alone (the nonzero count of a clipped stencil operator is a
  closed form over its offsets: ``Σ_off Π_d (dim_d - |off_d|)``),
  shaped like the DBSR multi-RHS closed forms of
  :mod:`repro.kernels.counts` and priced by
  :meth:`repro.simd.machine.MachineModel.kernel_seconds` — the
  roofline-style ``max(compute, memory) + sync`` estimate
  (Schubert–Hager–Fehske's bandwidth-limit analysis, PAPERS.md).
* **Live EWMAs** — measured per-``(fingerprint, op)`` per-solve
  latencies observed from completed requests. Once a structure has
  traffic, its EWMA replaces the model; until then the model is scaled
  by a *calibration* EWMA of measured/modeled ratios, so the analytic
  estimate self-corrects toward this host's actual speed.

The estimator never imports the compile pipeline; everything here is
O(#offsets) arithmetic, which is what lets a hopeless request be
rejected with **zero** :class:`~repro.serve.cache.PlanCache` compile
deltas.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.simd.counters import OpCounter
from repro.utils.validation import check_positive


class Ewma:
    """Exponentially weighted moving average (``None`` until fed)."""

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.value: float | None = None
        self.n = 0

    def update(self, v: float) -> float:
        v = float(v)
        self.value = (v if self.value is None
                      else self.alpha * v + (1 - self.alpha) * self.value)
        self.n += 1
        return self.value


def stencil_nnz(grid, stencil) -> int:
    """Exact nonzero count of the clipped stencil operator on ``grid``.

    Each offset contributes one entry per grid point whose shifted
    neighbor stays in bounds — ``Π_d (dim_d - |off_d|)`` points — which
    is precisely what :func:`repro.grids.assembly.assemble_csr` emits,
    without assembling anything.
    """
    total = 0
    for off in stencil.offsets:
        per = 1
        for d, o in zip(grid.dims, off):
            per *= max(0, int(d) - abs(int(o)))
        total += per
    return total


class ServiceTimeEstimator:
    """Blended analytic + measured service-time estimates.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor for both latency and calibration series.
    default_bsize:
        Vector length assumed by the model when the config leaves
        ``bsize`` to the autotuner (the compiled pick is unknown at
        admission time; 4 is the paper's small-grid sweet spot).
    default_compile_seconds:
        Cold-structure compile estimate used before any compile has
        been observed. Deliberately optimistic: over-estimating
        compile cost would reject feasible first requests.
    calibration_bounds:
        Clamp on the measured/modeled ratio, so one wild sample cannot
        poison every later admission decision.
    """

    def __init__(self, alpha: float = 0.3, default_bsize: int = 4,
                 default_compile_seconds: float = 0.0,
                 calibration_bounds: tuple = (1e-3, 1e3)):
        self.default_bsize = check_positive(default_bsize,
                                            "default_bsize")
        self.default_compile_seconds = float(default_compile_seconds)
        self._alpha = alpha
        self._lo, self._hi = calibration_bounds
        self._lock = threading.Lock()
        self._latency: dict[tuple, Ewma] = {}
        self._calibration = Ewma(alpha)
        self._compile = Ewma(alpha)
        # Value-only ILU repacks are a small fraction of a cold
        # compile; charging them the cold EWMA would over-reject
        # feasible deadlines, so they get their own series.
        self._refresh = Ewma(alpha)

    # Analytic model -----------------------------------------------------
    def _counter(self, grid, stencil, config, op: str,
                 k: int) -> OpCounter:
        """DBSR-shaped multi-RHS counter from geometry alone.

        Mirrors :func:`repro.kernels.counts.sptrsv_dbsr_multi_counts`
        with tile/row counts *estimated* (``tiles ≈ nnz/bsize``): one
        value load per tile serves all ``k`` columns, vector traffic
        scales with ``k``.
        """
        n = int(grid.n_points)
        nnz = stencil_nnz(grid, stencil)
        bsize = int(config.bsize or self.default_bsize)
        item = int(np.dtype(config.np_dtype).itemsize)
        brow = max(1, math.ceil(n / bsize))
        if op in ("lower", "upper"):
            nnz_op = max(1, (nnz - n) // 2)
            sweeps, divide = 1, True
        elif op == "spmv":
            nnz_op, sweeps, divide = nnz, 1, False
        elif op == "ilu_apply":
            # Forward + backward factor sweeps over the triangular
            # halves; the divide prices the backward diagonal solve.
            nnz_op = max(1, (nnz - n) // 2)
            sweeps, divide = 2, True
        else:  # symgs: both triangular sweeps + corrections
            nnz_op = max(1, (nnz - n) // 2)
            sweeps, divide = 2, True
        t = max(1, math.ceil(nnz_op / bsize))
        c = OpCounter(bsize=bsize)
        c.vload = (t * (1 + k) + k * brow + (brow if divide else 0))
        c.vfma = t * k
        c.vstore = k * brow
        c.vdiv = k * brow if divide else 0
        c.sload = 2 * t
        c.bytes_values = t * bsize * item
        c.bytes_index = t * 5 + (brow + 1) * 8
        c.bytes_vector = ((k * t + 2 * k * brow
                           + (brow if divide else 0)) * bsize * item)
        return c.scaled(sweeps) if sweeps != 1 else c

    def model_seconds(self, grid, stencil, config, op: str,
                      k: int = 1) -> float:
        """Machine-model estimate of one ``(op, k)`` solve."""
        from repro.experiments.base import machine_by_name
        from repro.ordering.coloring import _is_star
        from repro.serve.plan import _resolve_stencil

        stencil = _resolve_stencil(stencil)
        machine = machine_by_name(config.machine)
        counter = self._counter(grid, stencil, config, op, k)
        n_colors = 2 if _is_star(stencil) else 2 ** grid.ndim
        return machine.kernel_seconds(
            counter, threads=config.n_workers,
            dtype_bytes=int(np.dtype(config.np_dtype).itemsize),
            n_barriers=n_colors)

    # Live feedback ------------------------------------------------------
    def observe(self, fingerprint: str, op: str, seconds: float,
                k: int = 1, model_seconds: float | None = None) -> None:
        """Feed one measured chunk execution back into the EWMAs.

        ``seconds`` is the wall time of a ``k``-column batch; the
        stored latency is per solve. When the caller also passes the
        matching model estimate, the global calibration ratio updates.
        """
        per_solve = float(seconds) / max(1, int(k))
        with self._lock:
            ewma = self._latency.setdefault((fingerprint, op),
                                            Ewma(self._alpha))
            ewma.update(per_solve)
            if model_seconds is not None and model_seconds > 0:
                ratio = float(seconds) / float(model_seconds)
                self._calibration.update(
                    min(max(ratio, self._lo), self._hi))

    def observe_compile(self, seconds: float,
                        kind: str = "cold") -> None:
        """Feed one compile observation; ``kind`` picks the series.

        ``"cold"`` is a full structural compile, ``"refresh"`` a
        value-only ILU repack — keeping them separate is what stops
        warm repack traffic from being priced (and rejected) as if
        every request re-ran reordering + autotune.
        """
        if kind not in ("cold", "refresh"):
            raise ValueError(
                f"kind must be 'cold' or 'refresh', got {kind!r}")
        with self._lock:
            target = self._compile if kind == "cold" else self._refresh
            target.update(float(seconds))

    def latency(self, fingerprint: str, op: str) -> float | None:
        """Current per-solve EWMA for ``(fingerprint, op)``, if any."""
        with self._lock:
            ewma = self._latency.get((fingerprint, op))
            return None if ewma is None else ewma.value

    def compile_seconds(self) -> float:
        with self._lock:
            return (self._compile.value
                    if self._compile.value is not None
                    else self.default_compile_seconds)

    def refresh_seconds(self) -> float:
        """Warm value-only repack estimate.

        Before any repack has been observed, assume half a cold
        compile — still conservative (measured repacks are far
        cheaper) but never *more* expensive than the cold path.
        """
        with self._lock:
            if self._refresh.value is not None:
                return self._refresh.value
        return 0.5 * self.compile_seconds()

    def calibration(self) -> float:
        with self._lock:
            return (self._calibration.value
                    if self._calibration.value is not None else 1.0)

    # Admission ----------------------------------------------------------
    def estimate(self, grid, stencil, config, op: str, k: int,
                 fingerprint: str, cold: bool = False,
                 backlog_chunks: int = 0, n_shards: int = 1,
                 warm_refresh: bool = False) -> dict:
        """Full pre-compile estimate of one request's completion time.

        Returns a breakdown dict (every term in seconds): per-solve
        service time (EWMA when live, calibrated model otherwise),
        compile cost when the structure is ``cold`` in every shard
        cache, and queue wait modeled as the backlog spread over the
        shard pool. ``warm_refresh`` marks a warm ILU structure whose
        value digest changed: it is charged the (much cheaper) repack
        EWMA instead of the cold-compile one.
        """
        model = self.model_seconds(grid, stencil, config, op, k)
        live = self.latency(fingerprint, op)
        if live is not None:
            service, source = live * k, "ewma"
        else:
            service, source = model * self.calibration(), "model"
        per_chunk = (self.latency(fingerprint, op)
                     or service / max(1, k))
        queue_wait = (backlog_chunks * per_chunk
                      / max(1, int(n_shards)))
        compile_s = self.compile_seconds() if cold else 0.0
        refresh_s = (self.refresh_seconds()
                     if warm_refresh and not cold else 0.0)
        return {
            "service_seconds": float(service),
            "model_seconds": float(model),
            "source": source,
            "calibration": self.calibration(),
            "compile_seconds": float(compile_s),
            "refresh_seconds": float(refresh_s),
            "queue_wait_seconds": float(queue_wait),
            "total_seconds": float(service + compile_s + refresh_s
                                   + queue_wait),
        }

    def stats(self) -> dict:
        with self._lock:
            return {
                "structures_tracked": len(self._latency),
                "calibration": (self._calibration.value
                                if self._calibration.value is not None
                                else 1.0),
                "calibration_samples": self._calibration.n,
                "compile_ewma_seconds": self._compile.value,
                "refresh_ewma_seconds": self._refresh.value,
            }
