"""Observability subsystem: structured tracing + metrics export.

``repro.observe`` gives the runtime, serving and resilience layers one
shared vocabulary for *what happened*:

* :mod:`repro.observe.trace` — :class:`~repro.observe.trace.Span` /
  :class:`~repro.observe.trace.Tracer` with monotonic timings,
  parent/child nesting and per-span op-count attribution, delivered
  through single-``None``-check hooks (zero clean-path overhead);
* :mod:`repro.observe.metrics` —
  :class:`~repro.observe.metrics.MetricsRegistry` with counters,
  gauges and fixed-bucket histograms, exported as JSON or Prometheus
  text;
* :mod:`repro.observe.report` — per-phase self/total time + op-mix
  tables, canonical trace forms for the golden suite, and the
  ``repro trace`` bench collection;
* :mod:`repro.observe.schema_check` — ``BENCH_trace.json`` schema
  validation (CI's ``trace-smoke`` gate).

See ``docs/observability.md`` for the span model, metric naming scheme
and the golden-update workflow.
"""

from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.observe.trace import Span, Tracer, tracing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "tracing",
]
