"""Metrics registry — counters, gauges, histograms, two exporters.

A :class:`MetricsRegistry` unifies the ad-hoc stats dicts the runtime,
serving and resilience layers grew independently: named instruments
with a fixed type, thread-safe updates, and one snapshot call that
serializes everything. Two export formats:

* :meth:`MetricsRegistry.to_json` — the machine-readable form embedded
  in ``BENCH_*.json`` reports;
* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (``repro_`` prefix, dots mapped to underscores,
  counters suffixed ``_total``, histograms as cumulative
  ``_bucket``/``_sum``/``_count`` series).

Naming scheme (see ``docs/observability.md``): dotted lowercase
``<layer>.<noun>[.<verb>]`` — e.g. ``serve.submitted``,
``cache.evictions``, ``fallback.recompiles``.

Histograms use **fixed bucket edges** chosen at registration so that
merging two histograms (e.g. per-shard registries) is exact: merges
are associative and commutative, a property pinned by the Hypothesis
suite in ``tests/observe/``.
"""

from __future__ import annotations

import bisect
import json
import math
import threading


class MetricError(ValueError):
    """Invalid metric registration or update."""


def _check_name(name: str) -> str:
    if not name or any(c.isspace() for c in name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: dict | None = None):
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        """Add ``n`` (must be >= 0: counters never go down)."""
        if n < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc({n}))")
        with self._lock:
            self._value += n

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Instantaneous value (may move in either direction)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: dict | None = None):
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()
        self._value = 0

    def set(self, v) -> None:
        with self._lock:
            self._value = v

    def inc(self, n=1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n=1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


#: Default bucket edges for second-scale latency histograms.
LATENCY_EDGES = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0)

#: Default bucket edges for small-integer width histograms (batch k).
WIDTH_EDGES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


class Histogram:
    """Fixed-bucket histogram with exact, order-independent merges.

    ``edges`` are the finite upper bounds of the first ``len(edges)``
    buckets (strictly increasing); an implicit ``+Inf`` bucket catches
    the rest. ``bucket_counts[i]`` is the number of observations with
    ``v <= edges[i]`` that fell in bucket ``i`` (non-cumulative; the
    Prometheus exporter cumulates).
    """

    kind = "histogram"

    def __init__(self, name: str, edges=LATENCY_EDGES, help: str = "",
                 labels: dict | None = None):
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(labels) if labels else {}
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise MetricError("histogram needs at least one bucket edge")
        if any(not math.isfinite(e) for e in edges):
            raise MetricError("bucket edges must be finite")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise MetricError("bucket edges must be strictly increasing")
        self.edges = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, v: float) -> None:
        """Record one observation."""
        v = float(v)
        i = bisect.bisect_left(self.edges, v)
        with self._lock:
            self._counts[i] += 1
            self._sum += v
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list:
        with self._lock:
            return list(self._counts)

    def merge(self, other: "Histogram") -> "Histogram":
        """Pure merge: a new histogram holding both observation sets.

        Requires identical edges; exact (bucket counts and sums add),
        hence associative and commutative.
        """
        if self.edges != other.edges:
            raise MetricError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}")
        out = Histogram(self.name, self.edges, self.help, self.labels)
        with self._lock:
            mine = (list(self._counts), self._sum, self._count)
        with other._lock:
            theirs = (list(other._counts), other._sum, other._count)
        out._counts = [a + b for a, b in zip(mine[0], theirs[0])]
        out._sum = mine[1] + theirs[1]
        out._count = mine[2] + theirs[2]
        return out

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "type": self.kind,
                "edges": list(self.edges),
                "bucket_counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class MetricsRegistry:
    """Named instruments with idempotent registration.

    Registering a name twice returns the existing instrument when the
    type matches (so independent call sites can share a counter) and
    raises :class:`MetricError` when it does not.
    """

    def __init__(self, prefix: str = "repro"):
        self.prefix = prefix
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _register(self, cls, name: str, *args, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise MetricError(
                        f"{name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            inst = cls(name, *args, **kwargs)
            self._instruments[name] = inst
            return inst

    def counter(self, name: str, help: str = "",
                labels: dict | None = None) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: dict | None = None) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(self, name: str, edges=LATENCY_EDGES, help: str = "",
                  labels: dict | None = None) -> Histogram:
        return self._register(Histogram, name, edges, help, labels)

    def get(self, name: str):
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list:
        with self._lock:
            return sorted(self._instruments)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    # Export -------------------------------------------------------------
    def snapshot(self) -> dict:
        """One consistent-enough dict of every instrument's state."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in items}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def _prom_name(self, name: str) -> str:
        flat = name.replace(".", "_").replace("-", "_")
        return f"{self.prefix}_{flat}" if self.prefix else flat

    @staticmethod
    def _labels_text(labels: dict, extra: dict | None = None) -> str:
        merged = dict(labels)
        if extra:
            merged.update(extra)
        if not merged:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
        return "{" + inner + "}"

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            items = sorted(self._instruments.items())
        lines = []
        for name, inst in items:
            pname = self._prom_name(name)
            if isinstance(inst, Counter):
                pname += "_total"
            if inst.help:
                lines.append(f"# HELP {pname} {inst.help}")
            lines.append(f"# TYPE {pname} {inst.kind}")
            if isinstance(inst, (Counter, Gauge)):
                lines.append(
                    f"{pname}{self._labels_text(inst.labels)} "
                    f"{inst.value}")
            else:
                snap = inst.snapshot()
                cum = 0
                for edge, n in zip(snap["edges"],
                                   snap["bucket_counts"]):
                    cum += n
                    le = self._labels_text(inst.labels, {"le": edge})
                    lines.append(f"{pname}_bucket{le} {cum}")
                cum += snap["bucket_counts"][-1]
                le = self._labels_text(inst.labels, {"le": "+Inf"})
                lines.append(f"{pname}_bucket{le} {cum}")
                lt = self._labels_text(inst.labels)
                lines.append(f"{pname}_sum{lt} {snap['sum']}")
                lines.append(f"{pname}_count{lt} {snap['count']}")
        return "\n".join(lines) + "\n"
