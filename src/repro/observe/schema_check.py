"""Validate bench reports against their checked-in JSON schemas.

Two entry points:

* :func:`validate_bench_trace` — the bench-trace report, with a
  hand-written structural check mirroring its span tree (schema at
  ``tests/observe/bench_trace.schema.json``).
* :func:`validate_report` — **generic** validation for any other
  bench report (e.g. ``BENCH_shard.json`` against
  ``tests/shard/bench_shard.schema.json``): the schema file's
  ``required`` keys and the ``schema`` id ``const`` are checked
  dependency-free, and the full ``jsonschema`` validation runs
  additionally when that package is importable — so validation never
  silently passes just because an optional dependency is missing.

Runnable as a module (dispatches on the report's ``schema`` id)::

    python -m repro.observe.schema_check BENCH_trace.json \\
        tests/observe/bench_trace.schema.json
    python -m repro.observe.schema_check BENCH_shard.json \\
        tests/shard/bench_shard.schema.json
"""

from __future__ import annotations

import json
import sys

#: Top-level keys every bench-trace report must carry.
REQUIRED_KEYS = ("schema", "config", "host", "trace", "table",
                 "service", "metrics", "prometheus", "n_spans")

SCHEMA_ID = "dbsr-repro/bench-trace/v1"


class TraceSchemaError(ValueError):
    """The report does not conform to the bench-trace schema."""


def _check_span(sp: dict, path: str, errors: list) -> None:
    if not isinstance(sp, dict):
        errors.append(f"{path}: span must be an object")
        return
    if not isinstance(sp.get("name"), str) or not sp.get("name"):
        errors.append(f"{path}: span needs a non-empty string name")
    if not isinstance(sp.get("attrs"), dict):
        errors.append(f"{path}: span needs an attrs object")
    counts = sp.get("counts")
    if counts is not None:
        for key in ("ops", "bytes", "flops"):
            if key not in counts:
                errors.append(f"{path}: counts missing {key!r}")
    for i, child in enumerate(sp.get("children", [])):
        _check_span(child, f"{path}.children[{i}]", errors)


def structural_errors(report: dict) -> list:
    """Dependency-free structural validation; returns error strings."""
    errors: list[str] = []
    if not isinstance(report, dict):
        return ["report must be a JSON object"]
    for key in REQUIRED_KEYS:
        if key not in report:
            errors.append(f"missing top-level key {key!r}")
    if report.get("schema") != SCHEMA_ID:
        errors.append(
            f"schema must be {SCHEMA_ID!r}, got {report.get('schema')!r}")
    trace = report.get("trace")
    if isinstance(trace, dict):
        spans = trace.get("spans")
        if not isinstance(spans, list) or not spans:
            errors.append("trace.spans must be a non-empty array")
        else:
            for i, sp in enumerate(spans):
                _check_span(sp, f"trace.spans[{i}]", errors)
    elif "trace" in (report or {}):
        errors.append("trace must be an object")
    table = report.get("table")
    if isinstance(table, list):
        for i, row in enumerate(table):
            for key in ("name", "calls", "total_seconds",
                        "self_seconds"):
                if not isinstance(row, dict) or key not in row:
                    errors.append(f"table[{i}] missing {key!r}")
                    break
    elif "table" in (report or {}):
        errors.append("table must be an array")
    return errors


def validate_bench_trace(report: dict,
                         schema_path: str | None = None) -> None:
    """Raise :class:`TraceSchemaError` unless the report conforms.

    Runs the structural check always, and the full JSON-schema
    validation additionally when ``schema_path`` is given and the
    ``jsonschema`` package is available.
    """
    errors = structural_errors(report)
    if errors:
        raise TraceSchemaError("; ".join(errors))
    if schema_path is None:
        return
    with open(schema_path) as fh:
        schema = json.load(fh)
    try:
        import jsonschema
    except ImportError:  # structural check already passed
        return
    try:
        jsonschema.validate(report, schema)
    except jsonschema.ValidationError as exc:
        raise TraceSchemaError(str(exc)) from exc


def validate_report(report: dict,
                    schema_path: str | None = None,
                    schema_id: str | None = None) -> None:
    """Generic report validation; raises :class:`TraceSchemaError`.

    Dependency-free checks first: the report is an object, it carries
    every key the schema file's top-level ``required`` lists, and its
    ``schema`` id equals the schema's ``const`` (or ``schema_id``).
    Then the full ``jsonschema`` validation, when importable.
    """
    errors: list[str] = []
    if not isinstance(report, dict):
        raise TraceSchemaError("report must be a JSON object")
    schema = None
    expected_id = schema_id
    if schema_path is not None:
        with open(schema_path) as fh:
            schema = json.load(fh)
        for key in schema.get("required", []):
            if key not in report:
                errors.append(f"missing top-level key {key!r}")
        const = schema.get("properties", {}).get(
            "schema", {}).get("const")
        if const is not None:
            expected_id = const
    if expected_id is not None and report.get("schema") != expected_id:
        errors.append(f"schema must be {expected_id!r}, "
                      f"got {report.get('schema')!r}")
    if errors:
        raise TraceSchemaError("; ".join(errors))
    if schema is None:
        return
    try:
        import jsonschema
    except ImportError:  # structural check already passed
        return
    try:
        jsonschema.validate(report, schema)
    except jsonschema.ValidationError as exc:
        raise TraceSchemaError(str(exc)) from exc


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or len(argv) > 2:
        print("usage: python -m repro.observe.schema_check "
              "REPORT.json [SCHEMA.json]", file=sys.stderr)
        return 2
    with open(argv[0]) as fh:
        report = json.load(fh)
    schema_path = argv[1] if len(argv) == 2 else None
    # Dispatch: with an explicit schema the report validates against
    # it generically (trace reports keep their structural check too);
    # without one, the historical bench-trace validation applies.
    is_trace = schema_path is None or (
        isinstance(report, dict)
        and report.get("schema") == SCHEMA_ID)
    try:
        if is_trace:
            validate_bench_trace(report, schema_path)
        else:
            validate_report(report, schema_path)
    except TraceSchemaError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if is_trace:
        print(f"{argv[0]}: valid {SCHEMA_ID} report "
              f"({report['n_spans']} spans)")
    else:
        print(f"{argv[0]}: valid {report.get('schema')} report")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
