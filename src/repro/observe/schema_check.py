"""Validate ``BENCH_trace.json`` against the checked-in JSON schema.

The authoritative schema lives at
``tests/observe/bench_trace.schema.json``; CI's ``trace-smoke`` job and
the tier-1 suite both validate through this module. When the
``jsonschema`` package is importable the full schema runs; otherwise a
built-in structural check covers the required shape, so validation
never silently passes just because an optional dependency is missing.

Runnable as a module::

    python -m repro.observe.schema_check BENCH_trace.json \\
        tests/observe/bench_trace.schema.json
"""

from __future__ import annotations

import json
import sys

#: Top-level keys every bench-trace report must carry.
REQUIRED_KEYS = ("schema", "config", "host", "trace", "table",
                 "service", "metrics", "prometheus", "n_spans")

SCHEMA_ID = "dbsr-repro/bench-trace/v1"


class TraceSchemaError(ValueError):
    """The report does not conform to the bench-trace schema."""


def _check_span(sp: dict, path: str, errors: list) -> None:
    if not isinstance(sp, dict):
        errors.append(f"{path}: span must be an object")
        return
    if not isinstance(sp.get("name"), str) or not sp.get("name"):
        errors.append(f"{path}: span needs a non-empty string name")
    if not isinstance(sp.get("attrs"), dict):
        errors.append(f"{path}: span needs an attrs object")
    counts = sp.get("counts")
    if counts is not None:
        for key in ("ops", "bytes", "flops"):
            if key not in counts:
                errors.append(f"{path}: counts missing {key!r}")
    for i, child in enumerate(sp.get("children", [])):
        _check_span(child, f"{path}.children[{i}]", errors)


def structural_errors(report: dict) -> list:
    """Dependency-free structural validation; returns error strings."""
    errors: list[str] = []
    if not isinstance(report, dict):
        return ["report must be a JSON object"]
    for key in REQUIRED_KEYS:
        if key not in report:
            errors.append(f"missing top-level key {key!r}")
    if report.get("schema") != SCHEMA_ID:
        errors.append(
            f"schema must be {SCHEMA_ID!r}, got {report.get('schema')!r}")
    trace = report.get("trace")
    if isinstance(trace, dict):
        spans = trace.get("spans")
        if not isinstance(spans, list) or not spans:
            errors.append("trace.spans must be a non-empty array")
        else:
            for i, sp in enumerate(spans):
                _check_span(sp, f"trace.spans[{i}]", errors)
    elif "trace" in (report or {}):
        errors.append("trace must be an object")
    table = report.get("table")
    if isinstance(table, list):
        for i, row in enumerate(table):
            for key in ("name", "calls", "total_seconds",
                        "self_seconds"):
                if not isinstance(row, dict) or key not in row:
                    errors.append(f"table[{i}] missing {key!r}")
                    break
    elif "table" in (report or {}):
        errors.append("table must be an array")
    return errors


def validate_bench_trace(report: dict,
                         schema_path: str | None = None) -> None:
    """Raise :class:`TraceSchemaError` unless the report conforms.

    Runs the structural check always, and the full JSON-schema
    validation additionally when ``schema_path`` is given and the
    ``jsonschema`` package is available.
    """
    errors = structural_errors(report)
    if errors:
        raise TraceSchemaError("; ".join(errors))
    if schema_path is None:
        return
    with open(schema_path) as fh:
        schema = json.load(fh)
    try:
        import jsonschema
    except ImportError:  # structural check already passed
        return
    try:
        jsonschema.validate(report, schema)
    except jsonschema.ValidationError as exc:
        raise TraceSchemaError(str(exc)) from exc


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or len(argv) > 2:
        print("usage: python -m repro.observe.schema_check "
              "REPORT.json [SCHEMA.json]", file=sys.stderr)
        return 2
    with open(argv[0]) as fh:
        report = json.load(fh)
    schema_path = argv[1] if len(argv) == 2 else None
    try:
        validate_bench_trace(report, schema_path)
    except TraceSchemaError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"{argv[0]}: valid {SCHEMA_ID} report "
          f"({report['n_spans']} spans)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
