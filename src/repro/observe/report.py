"""Trace reports: per-phase tables, canonical forms, ``repro trace``.

Three consumers share this module:

* the ``repro trace`` CLI, which runs a small serving workload under a
  fresh :class:`~repro.observe.trace.Tracer` and emits
  ``BENCH_trace.json`` (:func:`collect_bench_trace`);
* the golden-trace differential suite, which strips a trace down to
  its deterministic skeleton (:func:`canonical_trace`) before diffing
  against checked-in goldens — timings and span ids vary run to run,
  topology / attributes / attributed op counts must not;
* human eyes, via :func:`format_trace_table` — per-span-name calls,
  total and self wall-clock, and the attributed op mix.
"""

from __future__ import annotations

import platform

import numpy as np

#: Span/attr keys stripped by :func:`canonical_trace` — everything that
#: legitimately varies between two runs of the same workload.
NONDETERMINISTIC_KEYS = frozenset(
    {"seconds", "t_start", "span_id", "parent_id", "compile_seconds"})


def canonical_trace(trace: dict) -> dict:
    """The deterministic skeleton of a ``Tracer.to_dict()`` trace.

    Keeps span names, nesting order, deterministic attributes, events
    and attributed op counts; drops timings and ids. Two runs of the
    same seeded workload must produce equal canonical traces — that is
    the golden suite's span-topology contract.
    """

    def canon_span(sp: dict) -> dict:
        return {
            "name": sp["name"],
            "attrs": {k: v for k, v in sorted(sp["attrs"].items())
                      if k not in NONDETERMINISTIC_KEYS},
            "counts": sp.get("counts"),
            "events": [{"name": e["name"],
                        "attrs": {k: v for k, v
                                  in sorted(e["attrs"].items())
                                  if k not in NONDETERMINISTIC_KEYS}}
                       for e in sp.get("events", [])],
            "children": [canon_span(c) for c in sp.get("children", [])],
        }

    return {
        "spans": [canon_span(sp) for sp in trace.get("spans", [])],
        "events": [{"name": e["name"], "attrs": dict(e["attrs"])}
                   for e in trace.get("events", [])],
    }


def _walk(spans: list, parent=None):
    for sp in spans:
        yield sp, parent
        yield from _walk(sp.get("children", []), sp)


def aggregate_spans(trace: dict) -> list:
    """Per-span-name aggregate rows from a ``Tracer.to_dict()`` trace.

    Each row: ``name``, ``calls``, ``total_seconds`` (sum of span
    durations), ``self_seconds`` (total minus time attributed to child
    spans), and the summed op attribution (``vector_ops``,
    ``scalar_ops``, ``flops``, ``bytes``) of spans carrying counts.
    Rows are ordered by first appearance (depth-first).
    """
    rows: dict[str, dict] = {}
    for sp, _parent in _walk(trace.get("spans", [])):
        row = rows.setdefault(sp["name"], {
            "name": sp["name"], "calls": 0, "total_seconds": 0.0,
            "self_seconds": 0.0, "vector_ops": 0, "scalar_ops": 0,
            "flops": 0, "bytes": 0,
        })
        seconds = sp.get("seconds") or 0.0
        child_seconds = sum((c.get("seconds") or 0.0)
                            for c in sp.get("children", []))
        row["calls"] += 1
        row["total_seconds"] += seconds
        row["self_seconds"] += max(seconds - child_seconds, 0.0)
        counts = sp.get("counts")
        if counts:
            ops = counts["ops"]
            row["vector_ops"] += sum(
                ops[k] for k in ("vload", "vstore", "vgather",
                                 "vscatter", "vfma", "vmul", "vadd",
                                 "vdiv"))
            row["scalar_ops"] += sum(
                ops[k] for k in ("sload", "sstore", "sflop", "sdiv"))
            row["flops"] += counts["flops"]
            row["bytes"] += counts["bytes"]["total"]
    return list(rows.values())


def format_trace_table(rows: list) -> str:
    """Render aggregate rows as the CLI's per-phase table."""
    from repro.utils.tables import format_table

    body = [(r["name"], r["calls"],
             f"{r['total_seconds'] * 1e3:.3f}",
             f"{r['self_seconds'] * 1e3:.3f}",
             r["vector_ops"], r["scalar_ops"],
             f"{r['bytes'] / 1024:.1f}")
            for r in rows]
    return format_table(
        ["span", "calls", "total ms", "self ms", "vops", "sops", "KiB"],
        body, title="Trace phases (self/total time + op mix)")


def collect_bench_trace(nx: int = 8, stencil: str = "27pt",
                        bsize: int = 4, strategy: str = "dbsr",
                        ops=("lower", "upper", "spmv", "symgs"),
                        k: int = 4, n_workers: int = 2,
                        dtype: str = "f64", seed: int = 2024) -> dict:
    """Run one traced serving workload; return the trace report.

    Submits ``k`` seeded requests per op to a fresh
    :class:`~repro.serve.service.SolveService` and drains them under an
    installed tracer, so the report's span tree walks the full
    submit → coalesce → compile → cache → solve path, with per-span
    op-count attribution from the closed forms in
    :mod:`repro.kernels.counts`.
    """
    from repro.grids.problems import poisson_problem
    from repro.observe import trace
    from repro.serve.plan import PlanConfig
    from repro.serve.service import SolveService

    problem = poisson_problem((nx,) * 3, stencil)
    config = PlanConfig(bsize=bsize, strategy=strategy,
                        n_workers=n_workers, dtype=dtype)
    rng = np.random.default_rng(seed)
    tracer = trace.Tracer()
    with trace.tracing(tracer), SolveService(config=config) as service:
        for op in ops:
            tickets = [service.submit(problem.grid, problem.stencil,
                                      rng.standard_normal(
                                          problem.grid.n_points),
                                      op=op)
                       for _ in range(k)]
            service.drain()
            for t in tickets:
                t.result(timeout=0)
        stats = service.stats()
        metrics = service.metrics.snapshot()
        prometheus = service.metrics.to_prometheus_text()

    trace_dict = tracer.to_dict()
    rows = aggregate_spans(trace_dict)
    return {
        "schema": "dbsr-repro/bench-trace/v1",
        "config": {
            "nx": nx,
            "stencil": stencil,
            "bsize": bsize,
            "strategy": strategy,
            "ops": list(ops),
            "k": k,
            "n_workers": n_workers,
            "dtype": dtype,
            "seed": seed,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "trace": trace_dict,
        "table": rows,
        "service": stats,
        "metrics": metrics,
        "prometheus": prometheus,
        "n_spans": sum(r["calls"] for r in rows),
    }
