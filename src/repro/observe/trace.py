"""Structured tracing core — spans, nesting, op-count attribution.

A :class:`Tracer` records a tree of :class:`Span` objects: named,
monotonic-clock-timed regions with parent/child nesting (thread-local,
so concurrent drains do not interleave their trees), free-form
attributes, point :meth:`~Tracer.event` records, and an optional
per-span **op-count attribution** — the closed-form
:class:`~repro.simd.counters.OpCounter` of the work the span covers,
serialized in the same shape as
:func:`repro.runtime.metrics.counter_to_dict`.

Instrumentation sites mirror the fault-injection hooks of
:mod:`repro.resilience.hooks`: a module-level tracer slot plus helper
functions that are a **single ``None`` check** when no tracer is
installed. The disarmed path allocates nothing, runs no engine op and
mutates no counter — the golden-trace suite asserts the clean path's
op counts are bit-identical to a build without tracing.

Span sites currently wired (see ``docs/observability.md``):

======================  ==================================================
span                    opened by
======================  ==================================================
``serve.drain``         :meth:`repro.serve.service.SolveService.drain`
``session.<phase>``     :meth:`repro.runtime.session.SolverSession.phase`
``serve.compile``       :func:`repro.serve.plan.compile_plan`
``serve.autotune``      the autotune sweep inside ``compile_plan``
``plan.execute``        :meth:`repro.serve.plan.SolvePlan.execute` and the
                        SELL/CSR rungs of
                        :class:`repro.resilience.fallback.FallbackChain`
``fallback.solve``      :meth:`~repro.resilience.fallback.FallbackChain.execute`
``fallback.rung``       each ladder rung attempt
``mg.level``            each :func:`repro.multigrid.vcycle.mg_vcycle` level
======================  ==================================================

Point events: ``serve.submit``, ``serve.coalesce``, ``serve.requeue``,
``cache.hit`` / ``cache.miss`` / ``cache.evict`` / ``cache.invalidate``,
``executor.barrier``, ``fallback.validation_failed`` /
``fallback.execution_failed`` / ``fallback.heal``, and ``breaker.open``
/ ``breaker.half_open`` / ``breaker.close``.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager


def counts_dict(counter) -> dict:
    """Serialize an :class:`~repro.simd.counters.OpCounter` (or pass a
    pre-serialized dict through unchanged)."""
    if isinstance(counter, dict):
        return counter
    from repro.runtime.metrics import counter_to_dict

    return counter_to_dict(counter)


class Span:
    """One named, timed region of a trace.

    Attributes
    ----------
    name:
        Site name (dotted, e.g. ``"plan.execute"``).
    span_id, parent_id:
        Per-tracer ids; roots have ``parent_id = None``.
    t_start, seconds:
        Monotonic start stamp and duration (``None`` until finished).
    attrs:
        Free-form attributes set at open time or via ``attrs[...] =``.
    counts:
        Op-count attribution (``counter_to_dict`` shape) or ``None``.
    events:
        Point events recorded while this span was current.
    children:
        Child spans in start order.
    """

    __slots__ = ("name", "span_id", "parent_id", "t_start", "seconds",
                 "attrs", "counts", "events", "children")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 t_start: float, attrs: dict):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start
        self.seconds: float | None = None
        self.attrs = attrs
        self.counts: dict | None = None
        self.events: list[dict] = []
        self.children: list[Span] = []

    def set_counts(self, counter) -> None:
        """Attribute op counts (an OpCounter or serialized dict)."""
        self.counts = counts_dict(counter)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "counts": self.counts,
            "events": list(self.events),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"children={len(self.children)})")


class Tracer:
    """Collects spans and events for one traced run.

    Thread-safe: the current-span stack is thread-local (each thread
    builds its own subtree) while the root list, event sink and id
    source are lock-protected. ``clock`` is injectable for
    deterministic timing tests.
    """

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.roots: list[Span] = []
        #: Events fired while no span was open on the firing thread.
        self.events: list[dict] = []
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._tls = threading.local()

    # Span stack ---------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on the calling thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child span of the calling thread's current span."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            sid = next(self._ids)
        sp = Span(name, sid, parent.span_id if parent else None,
                  self.clock(), attrs)
        if parent is not None:
            parent.children.append(sp)
        else:
            with self._lock:
                self.roots.append(sp)
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.seconds = self.clock() - sp.t_start
            stack.pop()

    # Point data ---------------------------------------------------------
    def event(self, name: str, **attrs) -> None:
        """Record a point event on the current span (or at the root)."""
        rec = {"name": name, "attrs": attrs}
        sp = self.current()
        if sp is not None:
            sp.events.append(rec)
        else:
            with self._lock:
                self.events.append(rec)

    def add_counts(self, counter) -> None:
        """Attribute op counts to the calling thread's current span."""
        sp = self.current()
        if sp is not None:
            sp.set_counts(counter)

    # Reporting ----------------------------------------------------------
    def walk(self):
        """Yield every recorded span, depth-first in start order."""
        stack = list(reversed(self.roots))
        while stack:
            sp = stack.pop()
            yield sp
            stack.extend(reversed(sp.children))

    @property
    def n_spans(self) -> int:
        return sum(1 for _ in self.walk())

    def to_dict(self) -> dict:
        """JSON-friendly trace (spans nested, root events flat)."""
        return {
            "schema": "dbsr-repro/trace/v1",
            "spans": [sp.to_dict() for sp in self.roots],
            "events": list(self.events),
        }


# Module-level tracer slot (mirrors repro.resilience.hooks) ---------------

_active: Tracer | None = None
_lock = threading.Lock()


class _NullSpan:
    """Reusable no-op context manager for the disarmed path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullSpan()


def install(tracer: Tracer) -> None:
    """Arm ``tracer`` globally (one at a time; last install wins)."""
    global _active
    with _lock:
        _active = tracer


def uninstall(tracer: Tracer | None = None) -> None:
    """Disarm; pass the tracer to only remove if it is still active."""
    global _active
    with _lock:
        if tracer is None or _active is tracer:
            _active = None


def active() -> Tracer | None:
    """The installed tracer, or ``None``."""
    return _active


def span(name: str, **attrs):
    """Open a span on the installed tracer; no-op context otherwise.

    The disarmed path is a ``None`` check returning a shared no-op
    context manager — no allocation, no engine op.
    """
    tr = _active
    if tr is None:
        return _NULL
    return tr.span(name, **attrs)


def null_span() -> _NullSpan:
    """The shared no-op span context — for call sites that must stay
    untraced even under an installed tracer (clean reference paths)."""
    return _NULL


def event(name: str, **attrs) -> None:
    """Record a point event on the installed tracer (no-op otherwise)."""
    tr = _active
    if tr is not None:
        tr.event(name, **attrs)


def add_counts(counter) -> None:
    """Attribute counts to the installed tracer's current span."""
    tr = _active
    if tr is not None:
        tr.add_counts(counter)


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Install a tracer for the duration of a block; yields it.

    A fresh :class:`Tracer` is created when none is passed. Always
    uninstalls on exit, even when the traced block raises.
    """
    tr = tracer if tracer is not None else Tracer()
    install(tr)
    try:
        yield tr
    finally:
        uninstall(tr)
