"""Sparse matrix-vector multiplication dispatch.

All formats implement ``matvec``; this module adds a uniform entry
point plus engine-instrumented SpMV twins for CSR, SELL and DBSR whose
operation counts feed the performance model (HPCG's SpMV kernel).
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import SparseMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.formats.sell import SELLMatrix
from repro.simd.engine import VectorEngine


def spmv(matrix: SparseMatrix, x: np.ndarray) -> np.ndarray:
    """Compute ``A @ x`` for any supported format."""
    return matrix.matvec(x)


def spmv_csr_counted(csr: CSRMatrix, x: np.ndarray,
                     engine: VectorEngine) -> np.ndarray:
    """Scalar CSR SpMV with per-operation accounting.

    The inner loop is the textbook gather-style traversal: for every
    non-zero one value load, one column-index load, one indirect ``x``
    load and one FMA.
    """
    y = np.zeros(csr.n_rows, dtype=np.result_type(csr.data, x))
    for i in range(csr.n_rows):
        lo, hi = csr.indptr[i], csr.indptr[i + 1]
        k = hi - lo
        engine.scalar_load(k, csr.data.itemsize, stream="values")
        engine.scalar_load(k, csr.indices.itemsize, stream="index")
        engine.scalar_load(k, x.itemsize, stream="gathered")
        engine.scalar_flop(2 * k)
        # gather-ok: charged above via scalar_load(stream="gathered")
        y[i] = csr.data[lo:hi] @ x[csr.indices[lo:hi]]
        engine.scalar_store(1, y.itemsize)
    return y


def spmv_sell_counted(sell: SELLMatrix, x: np.ndarray,
                      engine: VectorEngine) -> np.ndarray:
    """SELL SpMV through the vector engine (gathers for ``x``)."""
    n = sell.n_rows
    y = np.zeros(n, dtype=np.result_type(sell.vals, x))
    chunk = sell.chunk
    for ci in range(sell.n_chunks):
        base = int(sell.chunk_ptr[ci])
        w = int(sell.widths[ci])
        lo = ci * chunk
        hi = min(lo + chunk, n)
        lanes = hi - lo
        acc = np.zeros(lanes, dtype=y.dtype)
        for j in range(w):
            pos = base + j * chunk
            vals = engine.load_values(sell.vals, pos)[:lanes]
            cols = sell.colidx[pos:pos + lanes]
            engine.counter.bytes_index += cols.nbytes
            xv = engine.gather(x, cols)
            acc = engine.fma(acc, vals, xv)
        engine.counter.vstore += 1
        engine.counter.bytes_vector += acc.nbytes
        y[sell.row_order[lo:hi]] = acc
    return y


def spmv_dbsr_counted(dbsr: DBSRMatrix, x: np.ndarray,
                      engine: VectorEngine) -> np.ndarray:
    """DBSR SpMV through the vector engine (contiguous loads only)."""
    b = dbsr.bsize
    xp = dbsr.pad_vector(np.asarray(x))
    anchors = dbsr.anchors + b
    y = np.zeros(dbsr.n_rows, dtype=np.result_type(dbsr.values, x))
    vals_flat = dbsr.values.reshape(-1)
    for i in range(dbsr.brow):
        acc = np.zeros(b, dtype=y.dtype)
        lo, hi = dbsr.blk_ptr[i], dbsr.blk_ptr[i + 1]
        for t in range(lo, hi):
            engine.counter.bytes_index += (
                dbsr.blk_ind.itemsize + dbsr.blk_offset.itemsize)
            vals = engine.load_values(vals_flat, t * b)
            xv = engine.load(xp, int(anchors[t]))
            acc = engine.fma(acc, vals, xv)
        engine.store(y, i * b, acc)
    return y
