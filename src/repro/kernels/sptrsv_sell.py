"""Triangular solves in SELL layout.

The SELL-based SYMGS of Park et al. ultimately rests on chunk-wise
triangular sweeps; these are those sweeps in isolation, the direct
SELL counterpart of Algorithm 2 (and the Fig. 8 comparison at kernel
granularity). Chunks must be lane-independent — a vectorized-BMC
ordering with ``chunk == bsize`` — and, being SELL, every ``x`` access
is a gather.
"""

from __future__ import annotations

import numpy as np

from repro.formats.sell import SELLMatrix
from repro.simd.engine import VectorEngine
from repro.utils.validation import require


def _sell_tri_sweep(sell: SELLMatrix, diag, b, x, forward: bool,
                    unit_diag: bool,
                    engine: VectorEngine | None) -> None:
    n = sell.n_rows
    C = sell.chunk
    rng = range(sell.n_chunks) if forward \
        else range(sell.n_chunks - 1, -1, -1)
    for ci in rng:
        base = int(sell.chunk_ptr[ci])
        w = int(sell.widths[ci])
        lo = ci * C
        hi = min(lo + C, n)
        lanes = hi - lo
        if engine is None:
            acc = b[lo:hi].astype(x.dtype, copy=True)
            for j in range(w):
                pos = base + j * C
                cols = sell.colidx[pos:pos + lanes]
                acc -= sell.vals[pos:pos + lanes] * x[cols]
            x[lo:hi] = acc if unit_diag else acc / diag[lo:hi]
        else:
            acc = engine.load(b, lo).astype(x.dtype)[:lanes]
            for j in range(w):
                pos = base + j * C
                cols = sell.colidx[pos:pos + lanes]
                engine.counter.bytes_index += cols.nbytes
                vals = engine.load_values(sell.vals, pos)[:lanes]
                acc = engine.fnma(acc, vals, engine.gather(x, cols))
            if not unit_diag:
                acc = engine.div(acc, engine.load(diag, lo)[:lanes])
            engine.store(x, lo, acc)


def sptrsv_sell_lower(sell: SELLMatrix, b: np.ndarray,
                      diag: np.ndarray | None = None,
                      engine: VectorEngine | None = None) -> np.ndarray:
    """Solve ``(L + D) x = b`` with a strictly-lower SELL matrix.

    ``diag=None`` solves the unit-diagonal system. Requires
    ``sigma == 1`` (sorting would break the sweep order).
    """
    require(sell.sigma == 1, "triangular sweeps need sigma=1")
    n = sell.n_rows
    require(b.shape == (n,), "b has wrong length")
    if engine is not None:
        require(engine.bsize == sell.chunk,
                "engine width must equal chunk")
    x = np.zeros(n, dtype=np.result_type(sell.vals, b))
    _sell_tri_sweep(sell, diag, b, x, forward=True,
                    unit_diag=diag is None, engine=engine)
    return x


def sptrsv_sell_upper(sell: SELLMatrix, b: np.ndarray,
                      diag: np.ndarray | None = None,
                      engine: VectorEngine | None = None) -> np.ndarray:
    """Solve ``(D + U) x = b`` with a strictly-upper SELL matrix."""
    require(sell.sigma == 1, "triangular sweeps need sigma=1")
    n = sell.n_rows
    require(b.shape == (n,), "b has wrong length")
    if engine is not None:
        require(engine.bsize == sell.chunk,
                "engine width must equal chunk")
    x = np.zeros(n, dtype=np.result_type(sell.vals, b))
    _sell_tri_sweep(sell, diag, b, x, forward=False,
                    unit_diag=diag is None, engine=engine)
    return x
