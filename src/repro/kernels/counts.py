"""Closed-form operation counts for every kernel/format pairing.

The counts are exact functions of the storage structure (tile/row/chunk
counts), matching what the instrumented engine twins tally — tests
assert equality. The performance model consumes these to regenerate the
paper's figures at full problem scale without executing the slow
instrumented kernels.
"""

from __future__ import annotations

from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.formats.sell import SELLMatrix
from repro.simd.counters import OpCounter


def spmv_csr_counts(csr: CSRMatrix) -> OpCounter:
    """Scalar CSR SpMV: per non-zero one value + index + x load, 2 flops."""
    c = OpCounter(bsize=1)
    nnz, n = csr.nnz, csr.n_rows
    c.sload = 3 * nnz + (n + 1)
    c.sstore = n
    c.sflop = 2 * nnz
    c.bytes_values = nnz * csr.data.itemsize
    c.bytes_index = nnz * csr.indices.itemsize + (n + 1) * csr.indptr.itemsize
    c.bytes_gathered = nnz * csr.data.itemsize  # indirect x accesses
    c.bytes_vector = n * csr.data.itemsize
    return c


def spmv_dbsr_counts(dbsr: DBSRMatrix) -> OpCounter:
    """DBSR SpMV: 2 contiguous loads + 1 FMA per tile, 1 store/block-row."""
    c = OpCounter(bsize=dbsr.bsize)
    t, brow, bs = dbsr.n_tiles, dbsr.brow, dbsr.bsize
    item = dbsr.values.itemsize
    c.vload = 2 * t
    c.vfma = t
    c.vstore = brow
    c.sload = 2 * t + (brow + 1)
    c.bytes_values = t * bs * item
    c.bytes_index = (t * (dbsr.blk_ind.itemsize + dbsr.blk_offset.itemsize)
                     + (brow + 1) * dbsr.blk_ptr.itemsize)
    c.bytes_vector = (t + brow) * bs * item
    return c


def spmv_sell_counts(sell: SELLMatrix) -> OpCounter:
    """SELL SpMV: per chunk column one value load + one *gather* + FMA."""
    c = OpCounter(bsize=sell.chunk)
    item = sell.vals.itemsize
    total_cols = int(sell.widths.sum())
    c.vload = total_cols
    c.vgather = total_cols
    c.vfma = total_cols
    c.vstore = sell.n_chunks
    c.bytes_values = total_cols * sell.chunk * item
    c.bytes_index = (total_cols * sell.chunk * sell.colidx.itemsize
                     + sell.chunk_ptr.nbytes + sell.widths.nbytes)
    c.bytes_gathered = total_cols * sell.chunk * item  # gathered x
    c.bytes_vector = sell.n_chunks * sell.chunk * item
    return c


def sptrsv_dbsr_counts(dbsr: DBSRMatrix, divide: bool = False) -> OpCounter:
    """Algorithm 2: per tile 2 loads + FMA; per block-row b-load + store."""
    c = OpCounter(bsize=dbsr.bsize)
    t, brow, bs = dbsr.n_tiles, dbsr.brow, dbsr.bsize
    item = dbsr.values.itemsize
    c.vload = 2 * t + brow + (brow if divide else 0)
    c.vfma = t
    c.vstore = brow
    c.vdiv = brow if divide else 0
    c.sload = 2 * t
    c.bytes_values = t * bs * item
    c.bytes_index = (t * (dbsr.blk_ind.itemsize + dbsr.blk_offset.itemsize)
                     + (brow + 1) * dbsr.blk_ptr.itemsize)
    c.bytes_vector = ((t + 2 * brow + (brow if divide else 0))
                      * bs * item)
    return c


def sptrsv_dbsr_multi_counts(dbsr: DBSRMatrix, k: int,
                             divide: bool = False) -> OpCounter:
    """Multi-RHS Algorithm 2 over an ``(n, k)`` RHS block.

    Matches :func:`repro.serve.batch.sptrsv_dbsr_lower_multi_counted`:
    per tile **one** value load (value-stream bytes are independent of
    ``k``) plus ``k`` x-loads/FMAs; per block-row ``k`` b-loads and
    stores and — when dividing — one diag load and ``k`` divides.
    ``k = 1`` reduces exactly to :func:`sptrsv_dbsr_counts`.
    """
    c = OpCounter(bsize=dbsr.bsize)
    t, brow, bs = dbsr.n_tiles, dbsr.brow, dbsr.bsize
    item = dbsr.values.itemsize
    c.vload = t * (1 + k) + k * brow + (brow if divide else 0)
    c.vfma = t * k
    c.vstore = k * brow
    c.vdiv = k * brow if divide else 0
    c.sload = 2 * t
    c.bytes_values = t * bs * item
    c.bytes_index = (t * (dbsr.blk_ind.itemsize + dbsr.blk_offset.itemsize)
                     + (brow + 1) * dbsr.blk_ptr.itemsize)
    c.bytes_vector = ((k * t + 2 * k * brow + (brow if divide else 0))
                      * bs * item)
    return c


def spmv_dbsr_multi_counts(dbsr: DBSRMatrix, k: int) -> OpCounter:
    """Multi-RHS DBSR SpMV over an ``(n, k)`` block.

    One value load per tile serves all ``k`` columns (value-stream
    bytes independent of ``k``); ``k = 1`` reduces exactly to
    :func:`spmv_dbsr_counts`.
    """
    c = OpCounter(bsize=dbsr.bsize)
    t, brow, bs = dbsr.n_tiles, dbsr.brow, dbsr.bsize
    item = dbsr.values.itemsize
    c.vload = t * (1 + k)
    c.vfma = t * k
    c.vstore = k * brow
    c.sload = 2 * t + (brow + 1)
    c.bytes_values = t * bs * item
    c.bytes_index = (t * (dbsr.blk_ind.itemsize + dbsr.blk_offset.itemsize)
                     + (brow + 1) * dbsr.blk_ptr.itemsize)
    c.bytes_vector = k * (t + brow) * bs * item
    return c


def symgs_dbsr_multi_counts(dbsr: DBSRMatrix, k: int) -> OpCounter:
    """Multi-RHS DBSR SYMGS: two batched sweeps + per-RHS corrections.

    ``k = 1`` reduces exactly to :func:`symgs_dbsr_counts`.
    """
    two = sptrsv_dbsr_multi_counts(dbsr, k, divide=True).scaled(2.0)
    two.vadd += 2 * k * dbsr.brow  # x += correction, per RHS column
    return two


def ilu_apply_dbsr_multi_counts(factors, k: int) -> OpCounter:
    """Multi-RHS block ILU(0) application over an ``(n, k)`` block.

    Matches :func:`repro.serve.batch.ilu_apply_dbsr_multi_counted`: two
    Algorithm-2 sweeps over the factored skeleton — the forward sweep
    covers the ``t_l`` strictly-lower tiles, the backward sweep the
    ``t_u`` strictly-upper tiles plus one diagonal value load and ``k``
    lane divisions per block-row. One value load per tile serves all
    ``k`` columns, so value-stream bytes are independent of ``k``.
    """
    m = factors.matrix
    c = OpCounter(bsize=m.bsize)
    brow, bs = m.brow, m.bsize
    t = m.n_tiles - brow  # strict lower + strict upper tiles
    item = m.values.itemsize
    c.vload = t * (1 + k) + 2 * k * brow + brow
    c.vfma = t * k
    c.vdiv = k * brow
    c.vstore = 2 * k * brow
    c.sload = 2 * t
    c.bytes_values = (t + brow) * bs * item
    c.bytes_index = (
        t * (m.blk_ind.itemsize + m.blk_offset.itemsize)
        + 2 * m.blk_ptr.itemsize
        + 2 * brow * (m.blk_ptr.itemsize + factors.dia_ptr.itemsize))
    c.bytes_vector = k * (t + 4 * brow) * bs * item
    return c


def sptrsv_csr_counts(csr: CSRMatrix, divide: bool = True) -> OpCounter:
    """Algorithm 1: scalar row loop with indirect x accesses."""
    c = OpCounter(bsize=1)
    nnz, n = csr.nnz, csr.n_rows
    item = csr.data.itemsize
    c.sload = 3 * nnz + (n + 1) + n  # values, cols, x; ptr; b
    c.sstore = n
    c.sflop = 2 * nnz + n
    c.sdiv = n if divide else 0
    c.bytes_values = nnz * item
    c.bytes_index = nnz * csr.indices.itemsize + (n + 1) * csr.indptr.itemsize
    c.bytes_gathered = nnz * item  # indirect x accesses
    c.bytes_vector = (2 * n + (n if divide else 0)) * item
    return c


def sptrsv_sell_counts(sell: SELLMatrix, divide: bool = True) -> OpCounter:
    """SELL-format triangular sweep (gathers on x), per Park et al."""
    c = spmv_sell_counts(sell)
    n_chunks = sell.n_chunks
    c.vload += n_chunks + (n_chunks if divide else 0)  # b and diag
    c.vdiv = n_chunks if divide else 0
    c.bytes_vector += (1 + (1 if divide else 0)) * n_chunks \
        * sell.chunk * sell.vals.itemsize
    return c


def symgs_dbsr_counts(dbsr: DBSRMatrix) -> OpCounter:
    """SYMGS = forward + backward sweep over all tiles + diag updates."""
    sweep = sptrsv_dbsr_counts(dbsr, divide=True)
    two = sweep.scaled(2.0)
    two.vadd += 2 * dbsr.brow  # x += correction
    return two


def symgs_csr_counts(csr: CSRMatrix) -> OpCounter:
    """Reference CSR SYMGS (the CPO baseline's kernel)."""
    sweep = sptrsv_csr_counts(csr, divide=True)
    two = sweep.scaled(2.0)
    two.sflop += 2 * csr.n_rows
    return two


def symgs_sell_counts(sell: SELLMatrix) -> OpCounter:
    """SELL SYMGS: two gather-heavy sweeps."""
    return sptrsv_sell_counts(sell, divide=True).scaled(2.0)


def dot_counts(n: int, itemsize: int = 8) -> OpCounter:
    """Dense dot product of length ``n`` (HPCG's DDOT)."""
    c = OpCounter(bsize=1)
    c.sload = 2 * n
    c.sflop = 2 * n
    c.bytes_vector = 2 * n * itemsize
    return c


def waxpby_counts(n: int, itemsize: int = 8) -> OpCounter:
    """HPCG's WAXPBY: ``w = a x + b y``."""
    c = OpCounter(bsize=1)
    c.sload = 2 * n
    c.sstore = n
    c.sflop = 3 * n
    c.bytes_vector = 3 * n * itemsize
    return c
