"""Instrumented DBSR SYMGS twin.

Executes the same in-place Gauss–Seidel sweeps as
:func:`~repro.kernels.symgs.symgs_dbsr`, but through the
:class:`~repro.simd.engine.VectorEngine`, so every load/FMA/divide is
tallied; the result matches the closed form
:func:`~repro.kernels.counts.symgs_dbsr_counts` exactly (tested).

The in-place trick of the fused kernel: the diagonal tile's
contiguous ``x`` window *is* the block-row's own ``x`` slice, so the
add-back correction needs no extra load.
"""

from __future__ import annotations

import numpy as np

from repro.formats.dbsr import DBSRMatrix
from repro.simd.engine import VectorEngine
from repro.utils.validation import require


def _sweep_counted(matrix: DBSRMatrix, diag: np.ndarray,
                   xp: np.ndarray, b: np.ndarray, forward: bool,
                   engine: VectorEngine) -> None:
    bs = matrix.bsize
    anchors = matrix.anchors + bs
    blk_ptr = matrix.blk_ptr
    vals_flat = matrix.values.reshape(-1)
    dia_ptr = matrix.dia_ptr
    rng = range(matrix.brow) if forward \
        else range(matrix.brow - 1, -1, -1)
    engine.counter.bytes_index += blk_ptr.itemsize
    for i in rng:
        engine.counter.bytes_index += blk_ptr.itemsize
        acc = engine.load(b, i * bs).astype(xp.dtype)
        xi = None
        for t in range(int(blk_ptr[i]), int(blk_ptr[i + 1])):
            engine.counter.bytes_index += (
                matrix.blk_ind.itemsize + matrix.blk_offset.itemsize)
            vec_vals = engine.load_values(vals_flat, t * bs)
            vec_x = engine.load(xp, int(anchors[t]))
            if t == dia_ptr[i]:
                xi = vec_x.copy()  # the block-row's own x slice
            acc = engine.fnma(acc, vec_vals, vec_x)
        d = engine.load(diag, i * bs)
        corr = engine.div(acc, d)
        engine.store(xp, bs + i * bs, engine.add(xi, corr))


def symgs_dbsr_counted(matrix: DBSRMatrix, diag: np.ndarray,
                       x: np.ndarray, b: np.ndarray,
                       engine: VectorEngine) -> np.ndarray:
    """Instrumented SYMGS; updates and returns ``x`` like the fast
    twin."""
    n = matrix.n_rows
    bs = matrix.bsize
    require(x.shape == (n,) and b.shape == (n,), "vector length mismatch")
    require(engine.bsize == bs, "engine width must equal bsize")
    require(bool(np.all(matrix.dia_ptr >= 0)),
            "every block-row needs a diagonal tile")
    xp = matrix.pad_vector(np.asarray(
        x, dtype=np.result_type(matrix.values, x)))
    _sweep_counted(matrix, np.asarray(diag), xp, np.asarray(b),
                   forward=True, engine=engine)
    _sweep_counted(matrix, np.asarray(diag), xp, np.asarray(b),
                   forward=False, engine=engine)
    x[:] = matrix.unpad_vector(xp)
    return x
