"""Gauss–Seidel and symmetric Gauss–Seidel (SYMGS) smoothers.

SYMGS is HPCG's smoother: one in-place forward GS sweep followed by one
backward sweep over the full matrix. The CSR version is the reference;
the DBSR version processes block-rows with the contiguous vector
operations of Algorithm 2, using the main-diagonal tile trick: the
row-sum accumulated over *all* tiles includes the diagonal
contribution, which is added back before dividing.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.utils.validation import require


def gs_forward_csr(matrix: CSRMatrix, diag: np.ndarray, x: np.ndarray,
                   b: np.ndarray) -> np.ndarray:
    """One in-place forward Gauss–Seidel sweep; returns updated ``x``."""
    n = matrix.n_rows
    require(x.shape == (n,) and b.shape == (n,), "vector length mismatch")
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        rowsum = data[lo:hi] @ x[indices[lo:hi]]
        x[i] += (b[i] - rowsum) / diag[i]
    return x


def gs_backward_csr(matrix: CSRMatrix, diag: np.ndarray, x: np.ndarray,
                    b: np.ndarray) -> np.ndarray:
    """One in-place backward Gauss–Seidel sweep."""
    n = matrix.n_rows
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    for i in range(n - 1, -1, -1):
        lo, hi = indptr[i], indptr[i + 1]
        rowsum = data[lo:hi] @ x[indices[lo:hi]]
        x[i] += (b[i] - rowsum) / diag[i]
    return x


def symgs_csr(matrix: CSRMatrix, diag: np.ndarray, x: np.ndarray,
              b: np.ndarray) -> np.ndarray:
    """HPCG's SYMGS: forward then backward GS sweep, in place."""
    gs_forward_csr(matrix, diag, x, b)
    gs_backward_csr(matrix, diag, x, b)
    return x


# DBSR ---------------------------------------------------------------------

def _gs_sweep_dbsr(matrix: DBSRMatrix, diag2: np.ndarray, xp: np.ndarray,
                   b2: np.ndarray, forward: bool) -> None:
    """One in-place GS sweep over the padded x buffer ``xp``."""
    bs = matrix.bsize
    anchors = matrix.anchors + bs
    blk_ptr, values = matrix.blk_ptr, matrix.values
    rng = range(matrix.brow) if forward else range(matrix.brow - 1, -1, -1)
    for i in rng:
        rowsum = np.zeros(bs, dtype=xp.dtype)
        for t in range(blk_ptr[i], blk_ptr[i + 1]):
            a = anchors[t]
            rowsum += values[t] * xp[a:a + bs]
        xi = xp[bs + i * bs:bs + (i + 1) * bs]
        # rowsum includes diag * x_i; add it back before dividing.
        xi += (b2[i] - rowsum) / diag2[i]


def symgs_dbsr(matrix: DBSRMatrix, diag: np.ndarray, x: np.ndarray,
               b: np.ndarray) -> np.ndarray:
    """SYMGS over a full (non-triangular) DBSR matrix.

    Produces the same iterates as :func:`symgs_csr` on the identically
    ordered matrix, because same-color blocks never couple: within a
    block-row the only self-reference is the main diagonal.
    """
    n = matrix.n_rows
    require(x.shape == (n,) and b.shape == (n,), "vector length mismatch")
    bs = matrix.bsize
    xp = matrix.pad_vector(np.asarray(x, dtype=np.result_type(
        matrix.values, x)))
    b2 = np.asarray(b).reshape(-1, bs)
    diag2 = np.asarray(diag).reshape(-1, bs)
    _gs_sweep_dbsr(matrix, diag2, xp, b2, forward=True)
    _gs_sweep_dbsr(matrix, diag2, xp, b2, forward=False)
    out = matrix.unpad_vector(xp)
    x[:] = out
    return x


def gs_forward_dbsr(matrix: DBSRMatrix, diag: np.ndarray, x: np.ndarray,
                    b: np.ndarray) -> np.ndarray:
    """One forward GS sweep in DBSR format (in place on ``x``)."""
    bs = matrix.bsize
    xp = matrix.pad_vector(np.asarray(x, dtype=np.result_type(
        matrix.values, x)))
    b2 = np.asarray(b).reshape(-1, bs)
    diag2 = np.asarray(diag).reshape(-1, bs)
    _gs_sweep_dbsr(matrix, diag2, xp, b2, forward=True)
    x[:] = matrix.unpad_vector(xp)
    return x
