"""Level-scheduled sparse triangular solve.

Level scheduling (Anderson & Saad [12]) is the classic alternative to
reordering: rows are grouped into *levels* such that every row depends
only on rows in earlier levels, so each level can be processed in
parallel. The paper's related-work section contrasts this with
DBSR's reordering approach; it appears here both as a correctness
cross-check and as a baseline whose synchronization count (one barrier
per level, often hundreds) the performance model can compare against
BMC's one-per-color.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.utils.validation import require


def build_levels(lower: CSRMatrix) -> list:
    """Compute dependency levels of a strictly lower triangular matrix.

    Returns a list of index arrays; level ``k`` rows depend only on
    rows in levels ``< k``. The number of levels equals the length of
    the longest dependency chain — for a lexicographically ordered
    structured grid this is O(grid diameter), which is why level
    scheduling alone exposes poor parallelism on these problems.
    """
    n = lower.n_rows
    level = np.zeros(n, dtype=np.int64)
    indptr, indices = lower.indptr, lower.indices
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        if hi > lo:
            level[i] = level[indices[lo:hi]].max() + 1
    n_levels = int(level.max()) + 1 if n else 0
    return [np.flatnonzero(level == k) for k in range(n_levels)]


def sptrsv_levels(lower: CSRMatrix, diag: np.ndarray, b: np.ndarray,
                  levels: list | None = None,
                  unit_diag: bool = False) -> np.ndarray:
    """Solve ``(L + D) x = b`` processing one level at a time.

    Rows within a level are computed with vectorized numpy (they are
    mutually independent), emulating the parallel-for over a level.
    """
    n = lower.n_rows
    b = np.asarray(b)
    require(b.shape == (n,), "b has wrong length")
    if levels is None:
        levels = build_levels(lower)
    x = np.zeros(n, dtype=np.result_type(lower.data, b))
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for rows in levels:
        # Rows in a level are independent; compute their dot products
        # against already-final x entries.
        sums = np.zeros(len(rows), dtype=x.dtype)
        for k, i in enumerate(rows):
            lo, hi = indptr[i], indptr[i + 1]
            sums[k] = data[lo:hi] @ x[indices[lo:hi]]
        if unit_diag:
            x[rows] = b[rows] - sums
        else:
            x[rows] = (b[rows] - sums) / diag[rows]
    return x
