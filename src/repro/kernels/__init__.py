"""Sparse kernels: SpMV, SpTRSV, and SYMGS in every storage format.

The SpTRSV implementations mirror the paper directly:

* :func:`~repro.kernels.sptrsv_csr.sptrsv_csr` — Algorithm 1 (serial
  CSR lower solve).
* :func:`~repro.kernels.sptrsv_level.sptrsv_levels` — level-scheduled
  parallel solve (the classic alternative in §VI).
* :func:`~repro.kernels.sptrsv_dbsr.sptrsv_dbsr_lower` /
  :func:`~repro.kernels.sptrsv_dbsr.sptrsv_dbsr_upper` — Algorithm 2,
  the vectorized gather-free DBSR solves.
* :mod:`~repro.kernels.symgs` — the HPCG symmetric Gauss–Seidel
  smoother in CSR and DBSR forms.

Each vectorized kernel has an engine-instrumented twin (suffix
``_counted``) that executes through
:class:`~repro.simd.engine.VectorEngine`; :mod:`~repro.kernels.counts`
provides matching closed-form operation counts used by the performance
model, and tests assert both agree.
"""

from repro.kernels.spmv import spmv
from repro.kernels.sptrsv_csr import (
    split_triangular,
    sptrsv_csr,
    sptrsv_csr_upper,
)
from repro.kernels.sptrsv_level import build_levels, sptrsv_levels
from repro.kernels.sptrsv_sell import sptrsv_sell_lower, sptrsv_sell_upper
from repro.kernels.jacobi import jacobi_sweep, sor_forward_sweep, ssor_sweep
from repro.kernels.fused import (
    fused_spmv_dot,
    fused_symgs_residual,
    fusion_traffic_ratio,
)
from repro.kernels.sptrsv_dbsr import (
    sptrsv_dbsr_lower,
    sptrsv_dbsr_lower_counted,
    sptrsv_dbsr_upper,
    sptrsv_dbsr_upper_counted,
)
from repro.kernels.symgs import symgs_csr, symgs_dbsr, gs_forward_csr
from repro.kernels.symgs_sell import symgs_sell, symgs_sell_counted
from repro.kernels.symgs_counted import symgs_dbsr_counted
from repro.kernels import counts

__all__ = [
    "spmv",
    "split_triangular",
    "sptrsv_csr",
    "sptrsv_csr_upper",
    "build_levels",
    "sptrsv_levels",
    "sptrsv_sell_lower",
    "sptrsv_sell_upper",
    "jacobi_sweep",
    "sor_forward_sweep",
    "ssor_sweep",
    "fused_spmv_dot",
    "fused_symgs_residual",
    "fusion_traffic_ratio",
    "sptrsv_dbsr_lower",
    "sptrsv_dbsr_lower_counted",
    "sptrsv_dbsr_upper",
    "sptrsv_dbsr_upper_counted",
    "symgs_csr",
    "symgs_dbsr",
    "symgs_dbsr_counted",
    "symgs_sell",
    "symgs_sell_counted",
    "gs_forward_csr",
    "counts",
]
