"""Vectorized DBSR sparse triangular solves — the paper's Algorithm 2.

Block-rows are processed in order (forward for lower, backward for
upper); each block-row update is a short sequence of *contiguous*
width-``bsize`` vector operations:

    vec_temp  = load(b + i*bsize)                  # line 5
    for each tile t of block-row i:
        vec_vals = load(values + t*bsize)          # line 9
        vec_x    = load(x + anchor[t])             # line 10  (no gather!)
        vec_temp -= vec_vals * vec_x               # line 11
    store(x + i*bsize, vec_temp)                   # line 13

Correctness requires the vectorized-BMC property that no tile couples
lanes *within* its own block-row (same-color blocks are independent);
:func:`check_dbsr_triangular` verifies this. Vector loads may overrun
tile boundaries — the overrun lanes hold zero values, so the padded
``x`` buffer (:meth:`~repro.formats.dbsr.DBSRMatrix.pad_vector`)
absorbs them, the paper's "overstore is zero" rule (§III-C, Fig. 3).
"""

from __future__ import annotations

import numpy as np

from repro.formats.dbsr import DBSRMatrix
from repro.simd.engine import VectorEngine
from repro.utils.validation import require


def check_dbsr_triangular(dbsr: DBSRMatrix, lower: bool) -> bool:
    """Check the matrix is strictly triangular with no intra-block-row
    coupling (the solvability precondition of Algorithm 2)."""
    b = dbsr.bsize
    anchors = dbsr.anchors
    for i in range(dbsr.brow):
        row_lo = i * b
        for t in range(dbsr.blk_ptr[i], dbsr.blk_ptr[i + 1]):
            lanes = np.flatnonzero(dbsr.values[t])
            if len(lanes) == 0:
                continue
            cols = anchors[t] + lanes
            rows = row_lo + lanes
            if lower:
                if not np.all(cols < rows):
                    return False
            else:
                if not np.all(cols > rows):
                    return False
            # No coupling into the own block-row.
            if np.any((cols >= row_lo) & (cols < row_lo + b)):
                return False
    return True


def sptrsv_dbsr_lower(lower: DBSRMatrix, b: np.ndarray,
                      diag: np.ndarray | None = None) -> np.ndarray:
    """Solve ``(L + D) x = b`` (or ``(L + I) x = b``) in DBSR format.

    Parameters
    ----------
    lower:
        Strictly lower triangular DBSR matrix.
    b:
        Right-hand side (padded ordering, length ``n``).
    diag:
        Diagonal ``D``; ``None`` solves with a unit diagonal (ILU's
        ``L`` factor).
    """
    n = lower.n_rows
    require(b.shape == (n,), "b has wrong length")
    bs = lower.bsize
    xp = np.zeros(n + 2 * bs, dtype=np.result_type(lower.values, b))
    b2 = np.asarray(b).reshape(-1, bs)
    d2 = None if diag is None else np.asarray(diag).reshape(-1, bs)
    anchors = lower.anchors + bs  # shift into the padded buffer
    blk_ptr, values = lower.blk_ptr, lower.values
    for i in range(lower.brow):
        acc = b2[i].astype(xp.dtype, copy=True)
        for t in range(blk_ptr[i], blk_ptr[i + 1]):
            a = anchors[t]
            acc -= values[t] * xp[a:a + bs]
        if d2 is not None:
            acc /= d2[i]
        xp[bs + i * bs:bs + (i + 1) * bs] = acc
    return xp[bs:bs + n].copy()


def sptrsv_dbsr_upper(upper: DBSRMatrix, b: np.ndarray,
                      diag: np.ndarray | None = None) -> np.ndarray:
    """Solve ``(D + U) x = b`` in DBSR format (backward sweep)."""
    n = upper.n_rows
    require(b.shape == (n,), "b has wrong length")
    bs = upper.bsize
    xp = np.zeros(n + 2 * bs, dtype=np.result_type(upper.values, b))
    b2 = np.asarray(b).reshape(-1, bs)
    d2 = None if diag is None else np.asarray(diag).reshape(-1, bs)
    anchors = upper.anchors + bs
    blk_ptr, values = upper.blk_ptr, upper.values
    for i in range(upper.brow - 1, -1, -1):
        acc = b2[i].astype(xp.dtype, copy=True)
        for t in range(blk_ptr[i], blk_ptr[i + 1]):
            a = anchors[t]
            acc -= values[t] * xp[a:a + bs]
        if d2 is not None:
            acc /= d2[i]
        xp[bs + i * bs:bs + (i + 1) * bs] = acc
    return xp[bs:bs + n].copy()


# Instrumented twins ------------------------------------------------------

def sptrsv_dbsr_lower_counted(lower: DBSRMatrix, b: np.ndarray,
                              engine: VectorEngine,
                              diag: np.ndarray | None = None) -> np.ndarray:
    """Algorithm 2 executed through the instrumented vector engine."""
    n = lower.n_rows
    bs = lower.bsize
    require(engine.bsize == bs, "engine width must equal bsize")
    xp = np.zeros(n + 2 * bs, dtype=np.result_type(lower.values, b))
    anchors = lower.anchors + bs
    vals_flat = lower.values.reshape(-1)
    dp = None if diag is None else np.asarray(diag)
    engine.counter.bytes_index += lower.blk_ptr.itemsize
    for i in range(lower.brow):
        engine.counter.bytes_index += lower.blk_ptr.itemsize
        acc = engine.load(np.asarray(b), i * bs).astype(xp.dtype)
        for t in range(lower.blk_ptr[i], lower.blk_ptr[i + 1]):
            engine.counter.bytes_index += (
                lower.blk_ind.itemsize + lower.blk_offset.itemsize)
            vec_vals = engine.load_values(vals_flat, t * bs)
            vec_x = engine.load(xp, int(anchors[t]))
            acc = engine.fnma(acc, vec_vals, vec_x)
        if dp is not None:
            acc = engine.div(acc, engine.load(dp, i * bs))
        engine.store(xp, bs + i * bs, acc)
    return xp[bs:bs + n].copy()


def sptrsv_dbsr_upper_counted(upper: DBSRMatrix, b: np.ndarray,
                              engine: VectorEngine,
                              diag: np.ndarray | None = None) -> np.ndarray:
    """Backward Algorithm 2 through the instrumented vector engine."""
    n = upper.n_rows
    bs = upper.bsize
    require(engine.bsize == bs, "engine width must equal bsize")
    xp = np.zeros(n + 2 * bs, dtype=np.result_type(upper.values, b))
    anchors = upper.anchors + bs
    vals_flat = upper.values.reshape(-1)
    dp = None if diag is None else np.asarray(diag)
    engine.counter.bytes_index += upper.blk_ptr.itemsize
    for i in range(upper.brow - 1, -1, -1):
        engine.counter.bytes_index += upper.blk_ptr.itemsize
        acc = engine.load(np.asarray(b), i * bs).astype(xp.dtype)
        for t in range(upper.blk_ptr[i], upper.blk_ptr[i + 1]):
            engine.counter.bytes_index += (
                upper.blk_ind.itemsize + upper.blk_offset.itemsize)
            vec_vals = engine.load_values(vals_flat, t * bs)
            vec_x = engine.load(xp, int(anchors[t]))
            acc = engine.fnma(acc, vec_vals, vec_x)
        if dp is not None:
            acc = engine.div(acc, engine.load(dp, i * bs))
        engine.store(xp, bs + i * bs, acc)
    return xp[bs:bs + n].copy()
