"""Serial CSR sparse triangular solves (the paper's Algorithm 1).

These are the correctness references for every other SpTRSV in the
library and the serial baseline of the Fig. 9 speedup plots.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.utils.validation import require


def sptrsv_csr(lower: CSRMatrix, diag: np.ndarray, b: np.ndarray,
               unit_diag: bool = False) -> np.ndarray:
    """Solve ``(L + D) x = b`` with ``L`` strictly lower triangular.

    Parameters
    ----------
    lower:
        Strictly lower-triangular CSR matrix (entries with
        ``col >= row`` are rejected).
    diag:
        Diagonal entries ``D`` (ignored when ``unit_diag``).
    b:
        Right-hand side.
    unit_diag:
        Solve ``(L + I) x = b`` instead (the ILU ``L`` factor).

    Notes
    -----
    This is Algorithm 1: a strict serial dependence from row ``i`` on
    all earlier rows it references.
    """
    n = lower.n_rows
    b = np.asarray(b)
    require(b.shape == (n,), "b has wrong length")
    _check_strictly_lower(lower)
    x = np.zeros(n, dtype=np.result_type(lower.data, b))
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        temp = b[i] - data[lo:hi] @ x[indices[lo:hi]]
        x[i] = temp if unit_diag else temp / diag[i]
    return x


def sptrsv_csr_upper(upper: CSRMatrix, diag: np.ndarray, b: np.ndarray,
                     unit_diag: bool = False) -> np.ndarray:
    """Solve ``(D + U) x = b`` with ``U`` strictly upper triangular."""
    n = upper.n_rows
    b = np.asarray(b)
    require(b.shape == (n,), "b has wrong length")
    _check_strictly_upper(upper)
    x = np.zeros(n, dtype=np.result_type(upper.data, b))
    indptr, indices, data = upper.indptr, upper.indices, upper.data
    for i in range(n - 1, -1, -1):
        lo, hi = indptr[i], indptr[i + 1]
        temp = b[i] - data[lo:hi] @ x[indices[lo:hi]]
        x[i] = temp if unit_diag else temp / diag[i]
    return x


def _check_strictly_lower(m: CSRMatrix) -> None:
    rows = np.repeat(np.arange(m.n_rows), np.diff(m.indptr))
    require(bool(np.all(m.indices < rows)),
            "matrix is not strictly lower triangular")


def _check_strictly_upper(m: CSRMatrix) -> None:
    rows = np.repeat(np.arange(m.n_rows), np.diff(m.indptr))
    require(bool(np.all(m.indices > rows)),
            "matrix is not strictly upper triangular")


def split_triangular(matrix: CSRMatrix) -> tuple:
    """Split a square CSR matrix into ``(L_strict, diag, U_strict)``."""
    require(matrix.n_rows == matrix.n_cols, "matrix must be square")
    return (matrix.tril(strict=True), matrix.diagonal(),
            matrix.triu(strict=True))
