"""Serial CSR sparse triangular solves (the paper's Algorithm 1).

These are the correctness references for every other SpTRSV in the
library and the serial baseline of the Fig. 9 speedup plots.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.utils.validation import require


def sptrsv_csr(lower: CSRMatrix, diag: np.ndarray, b: np.ndarray,
               unit_diag: bool = False) -> np.ndarray:
    """Solve ``(L + D) x = b`` with ``L`` strictly lower triangular.

    Parameters
    ----------
    lower:
        Strictly lower-triangular CSR matrix (entries with
        ``col >= row`` are rejected).
    diag:
        Diagonal entries ``D`` (ignored when ``unit_diag``).
    b:
        Right-hand side.
    unit_diag:
        Solve ``(L + I) x = b`` instead (the ILU ``L`` factor).

    Notes
    -----
    This is Algorithm 1: a strict serial dependence from row ``i`` on
    all earlier rows it references.
    """
    n = lower.n_rows
    b = np.asarray(b)
    require(b.shape == (n,), "b has wrong length")
    _check_strictly_lower(lower)
    x = np.zeros(n, dtype=np.result_type(lower.data, b))
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        temp = b[i] - data[lo:hi] @ x[indices[lo:hi]]
        x[i] = temp if unit_diag else temp / diag[i]
    return x


def sptrsv_csr_upper(upper: CSRMatrix, diag: np.ndarray, b: np.ndarray,
                     unit_diag: bool = False) -> np.ndarray:
    """Solve ``(D + U) x = b`` with ``U`` strictly upper triangular."""
    n = upper.n_rows
    b = np.asarray(b)
    require(b.shape == (n,), "b has wrong length")
    _check_strictly_upper(upper)
    x = np.zeros(n, dtype=np.result_type(upper.data, b))
    indptr, indices, data = upper.indptr, upper.indices, upper.data
    for i in range(n - 1, -1, -1):
        lo, hi = indptr[i], indptr[i + 1]
        temp = b[i] - data[lo:hi] @ x[indices[lo:hi]]
        x[i] = temp if unit_diag else temp / diag[i]
    return x


def sptrsv_csr_ordered(lower: CSRMatrix, diag: np.ndarray,
                       b: np.ndarray,
                       unit_diag: bool = False) -> np.ndarray:
    """Forward solve with Algorithm 2's exact floating-point op order.

    :func:`sptrsv_csr` accumulates each row with a dot product
    (``b[i] - data @ x`` — pairwise/BLAS summation), while the DBSR and
    SELL sweeps subtract term by term (``acc -= a_ij * x_j`` in column
    order). The two round differently, so the fast formats cannot be
    *bit*-compared against :func:`sptrsv_csr`. This twin subtracts
    sequentially in CSR column order, making its result bit-identical
    to the DBSR and SELL sweeps on the same permuted operator — it is
    the CSR rung of the resilience fallback ladder and the reference of
    the golden-trace differential suite. ``unit_diag`` skips the final
    division (the ILU unit-lower solve).
    """
    n = lower.n_rows
    b = np.asarray(b)
    require(b.shape == (n,), "b has wrong length")
    _check_strictly_lower(lower)
    x = np.zeros(n, dtype=np.result_type(lower.data, b))
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for i in range(n):
        temp = x.dtype.type(b[i])
        for p in range(indptr[i], indptr[i + 1]):
            temp = temp - data[p] * x[indices[p]]
        x[i] = temp if unit_diag else temp / diag[i]
    return x


def sptrsv_csr_upper_ordered(upper: CSRMatrix, diag: np.ndarray,
                             b: np.ndarray,
                             unit_diag: bool = False) -> np.ndarray:
    """Backward solve, sequential-subtraction twin of
    :func:`sptrsv_csr_upper` (see :func:`sptrsv_csr_ordered`)."""
    n = upper.n_rows
    b = np.asarray(b)
    require(b.shape == (n,), "b has wrong length")
    _check_strictly_upper(upper)
    x = np.zeros(n, dtype=np.result_type(upper.data, b))
    indptr, indices, data = upper.indptr, upper.indices, upper.data
    for i in range(n - 1, -1, -1):
        temp = x.dtype.type(b[i])
        for p in range(indptr[i], indptr[i + 1]):
            temp = temp - data[p] * x[indices[p]]
        x[i] = temp if unit_diag else temp / diag[i]
    return x


def _check_strictly_lower(m: CSRMatrix) -> None:
    rows = np.repeat(np.arange(m.n_rows), np.diff(m.indptr))
    require(bool(np.all(m.indices < rows)),
            "matrix is not strictly lower triangular")


def _check_strictly_upper(m: CSRMatrix) -> None:
    rows = np.repeat(np.arange(m.n_rows), np.diff(m.indptr))
    require(bool(np.all(m.indices > rows)),
            "matrix is not strictly upper triangular")


def split_triangular(matrix: CSRMatrix) -> tuple:
    """Split a square CSR matrix into ``(L_strict, diag, U_strict)``."""
    require(matrix.n_rows == matrix.n_cols, "matrix must be square")
    return (matrix.tril(strict=True), matrix.diagonal(),
            matrix.triu(strict=True))
