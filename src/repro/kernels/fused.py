"""Deep kernel fusion (the CPO optimization of [24], §II-C).

HPCG's V-cycle executes, per level, "post-SYMGS, then SpMV for the
residual" sequences that re-stream the same matrix from DRAM. The CPO
work fuses them so matrix data is loaded once per fused pass. This
module implements the fusions functionally and exposes their operation
counts, grounding the ``fusion_traffic_factor`` the HPCG model applies.

* :func:`fused_symgs_residual` — during the backward GS sweep, row
  ``i``'s upper-and-diagonal contribution to the residual is final the
  moment ``x[i]`` is written (every ``x[j], j >= i`` is finished), and
  the row's data is already in registers, so recording it costs no
  extra DRAM traffic. Only the strictly-lower contributions — whose
  ``x`` values still change later in the sweep — need a completion
  pass, which re-reads *half* the matrix instead of all of it.
* :func:`fused_spmv_dot` — SpMV that forms ``x . y`` and ``y . y``
  while ``y`` is still in cache (PCG's ``p . Ap`` pattern).
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.kernels.counts import spmv_csr_counts, symgs_csr_counts
from repro.simd.counters import OpCounter
from repro.utils.validation import require


def fused_symgs_residual(matrix: CSRMatrix, diag: np.ndarray,
                         x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """SYMGS sweep returning ``r = b - A x`` for the smoothed ``x``.

    Equivalent to :func:`fused_symgs_residual_simple` (tested), but
    the only post-sweep matrix traffic is the strictly-lower triangle.
    """
    n = matrix.n_rows
    require(x.shape == (n,) and b.shape == (n,), "vector length mismatch")
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    # Forward sweep (unchanged).
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        rowsum = data[lo:hi] @ x[indices[lo:hi]]
        x[i] += (b[i] - rowsum) / diag[i]
    # Backward sweep; bank the final upper+diag residual contribution
    # while the row is hot.
    r = np.empty(n, dtype=np.result_type(x, b))
    for i in range(n - 1, -1, -1):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        rowsum = vals @ x[cols]
        x[i] += (b[i] - rowsum) / diag[i]
        upper = cols >= i
        r[i] = b[i] - vals[upper] @ x[cols[upper]]
    # Completion: strictly-lower contributions with the final x
    # (half-matrix pass — the fusion's entire extra cost).
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        lower = cols < i
        if lower.any():
            r[i] -= vals[lower] @ x[cols[lower]]
    return r


def fused_symgs_residual_simple(matrix: CSRMatrix, diag: np.ndarray,
                                x: np.ndarray,
                                b: np.ndarray) -> np.ndarray:
    """Reference implementation: SYMGS then an explicit full SpMV."""
    from repro.kernels.symgs import symgs_csr

    symgs_csr(matrix, diag, x, b)
    return b - matrix.matvec(x)


def fused_spmv_dot(matrix: CSRMatrix, x: np.ndarray) -> tuple:
    """SpMV returning ``(y, x . y, y . y)`` in one logical pass.

    PCG needs ``p . Ap`` immediately after forming ``Ap``; fusing the
    dots into the SpMV's output stream removes a DRAM re-read of both
    vectors.
    """
    y = matrix.matvec(x)
    return y, float(x @ y), float(y @ y)


# --- Operation counts ------------------------------------------------------

def fused_symgs_residual_counts(matrix: CSRMatrix) -> OpCounter:
    """Counts for the fused SYMGS+residual: SYMGS plus only a
    strictly-lower SpMV instead of a full one."""
    fused = symgs_csr_counts(matrix)
    fused.merge(spmv_csr_counts(matrix.tril(strict=True)))
    return fused


def naive_symgs_residual_counts(matrix: CSRMatrix) -> OpCounter:
    """Counts for the unfused pair (SYMGS, then full SpMV)."""
    naive = symgs_csr_counts(matrix)
    naive.merge(spmv_csr_counts(matrix))
    return naive


def fusion_traffic_ratio(matrix: CSRMatrix) -> float:
    """Measured traffic ratio fused/naive — the empirical basis for
    the HPCG model's ``fusion_traffic_factor`` (~0.8)."""
    return (fused_symgs_residual_counts(matrix).total_bytes
            / naive_symgs_residual_counts(matrix).total_bytes)
