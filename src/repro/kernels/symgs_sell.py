"""SYMGS in SELL layout (Park et al.'s Xeon Phi approach, §I/§VI).

The matrix is stored in SELL with chunk height equal to the vector
length over a *vectorized-BMC-ordered* matrix, so the rows of each
chunk are mutually independent (same intra-block position of
same-color blocks) and a chunk can be updated as one vector — but the
``x`` accesses are *gathers*, the overhead DBSR exists to eliminate
(Fig. 8).

Preconditions mirror the DBSR kernels: within a chunk the only
self-coupling is the main diagonal. ``sigma`` must be 1 (row sorting
would break the color schedule).
"""

from __future__ import annotations

import numpy as np

from repro.formats.sell import SELLMatrix
from repro.simd.engine import VectorEngine
from repro.utils.validation import require


def _sell_gs_sweep(sell: SELLMatrix, diag: np.ndarray, x: np.ndarray,
                   b: np.ndarray, forward: bool,
                   engine: VectorEngine | None = None) -> None:
    n = sell.n_rows
    C = sell.chunk
    rng = range(sell.n_chunks) if forward \
        else range(sell.n_chunks - 1, -1, -1)
    for ci in rng:
        base = int(sell.chunk_ptr[ci])
        w = int(sell.widths[ci])
        lo = ci * C
        hi = min(lo + C, n)
        lanes = hi - lo
        if engine is None:
            acc = b[lo:hi].astype(x.dtype, copy=True)
            for j in range(w):
                pos = base + j * C
                cols = sell.colidx[pos:pos + lanes]
                acc -= sell.vals[pos:pos + lanes] * x[cols]
            x[lo:hi] += acc / diag[lo:hi]
        else:
            acc = engine.load(b, lo).astype(x.dtype)[:lanes]
            for j in range(w):
                pos = base + j * C
                cols = sell.colidx[pos:pos + lanes]
                engine.counter.bytes_index += cols.nbytes
                vals = engine.load_values(sell.vals, pos)[:lanes]
                xv = engine.gather(x, cols)
                acc = engine.fnma(acc, vals, xv)
            d = engine.load(diag, lo)[:lanes]
            corr = engine.div(acc, d)
            xi = engine.load(x, lo)[:lanes]
            engine.store(x, lo, engine.add(xi, corr))


def symgs_sell(sell: SELLMatrix, diag: np.ndarray, x: np.ndarray,
               b: np.ndarray) -> np.ndarray:
    """SYMGS (forward + backward sweep) over a SELL matrix in place.

    Requires ``sigma == 1`` and chunk-independent rows (a vectorized
    BMC ordering with ``bsize == chunk``); produces the same iterates
    as :func:`~repro.kernels.symgs.symgs_csr` on the same ordering.
    """
    require(sell.sigma == 1,
            "SYMGS needs sigma=1 (row sorting breaks the schedule)")
    n = sell.n_rows
    require(x.shape == (n,) and b.shape == (n,), "vector length mismatch")
    _sell_gs_sweep(sell, diag, x, b, forward=True)
    _sell_gs_sweep(sell, diag, x, b, forward=False)
    return x


def symgs_sell_counted(sell: SELLMatrix, diag: np.ndarray,
                       x: np.ndarray, b: np.ndarray,
                       engine: VectorEngine) -> np.ndarray:
    """SYMGS over SELL through the instrumented engine (gathers show up
    in the counter — the Fig. 8 cost)."""
    require(sell.sigma == 1, "SYMGS needs sigma=1")
    require(engine.bsize == sell.chunk, "engine width must equal chunk")
    _sell_gs_sweep(sell, diag, x, b, forward=True, engine=engine)
    _sell_gs_sweep(sell, diag, x, b, forward=False, engine=engine)
    return x
