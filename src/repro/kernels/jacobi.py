"""Jacobi and SOR smoothers.

Contrast points for the Gauss–Seidel family the paper builds on:
Jacobi is trivially parallel and vectorizable with *no* reordering (no
dependencies at all) but converges about half as fast as GS on
Poisson-type operators, which is why HPCG and the paper smooth with
SYMGS + reordering instead. SOR generalizes GS with a relaxation
weight. Both are used in ablation tests and examples.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.utils.validation import require


def jacobi_sweep(matrix: CSRMatrix, diag: np.ndarray, x: np.ndarray,
                 b: np.ndarray, weight: float = 1.0) -> np.ndarray:
    """One (weighted) Jacobi sweep: ``x += w D^{-1} (b - A x)``.

    Fully vectorized — every row uses only old values, so there is no
    dependency to reorder around (and no convergence benefit either).
    """
    n = matrix.n_rows
    require(x.shape == (n,) and b.shape == (n,), "vector length mismatch")
    r = b - matrix.matvec(x)
    x += weight * r / diag
    return x


def sor_forward_sweep(matrix: CSRMatrix, diag: np.ndarray,
                      x: np.ndarray, b: np.ndarray,
                      omega: float = 1.0) -> np.ndarray:
    """One forward SOR sweep; ``omega = 1`` is Gauss–Seidel."""
    require(0.0 < omega < 2.0, "SOR requires 0 < omega < 2")
    n = matrix.n_rows
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        rowsum = data[lo:hi] @ x[indices[lo:hi]]
        x[i] += omega * (b[i] - rowsum) / diag[i]
    return x


def ssor_sweep(matrix: CSRMatrix, diag: np.ndarray, x: np.ndarray,
               b: np.ndarray, omega: float = 1.0) -> np.ndarray:
    """Symmetric SOR: forward then backward sweep (SYMGS at
    ``omega = 1``)."""
    require(0.0 < omega < 2.0, "SOR requires 0 < omega < 2")
    n = matrix.n_rows
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        rowsum = data[lo:hi] @ x[indices[lo:hi]]
        x[i] += omega * (b[i] - rowsum) / diag[i]
    for i in range(n - 1, -1, -1):
        lo, hi = indptr[i], indptr[i + 1]
        rowsum = data[lo:hi] @ x[indices[lo:hi]]
        x[i] += omega * (b[i] - rowsum) / diag[i]
    return x
