"""Analytic performance model.

Converts measured operation counts (:mod:`repro.kernels.counts`),
measured iteration counts (:mod:`repro.solvers`) and schedule metadata
into modeled times on the Table I machines, reproducing the *shape* of
the paper's performance figures — the substitution for hardware this
environment cannot run (see DESIGN.md §2).
"""

from repro.perfmodel.specs import KernelSpec
from repro.perfmodel.ilu_model import (
    ilu_strategy_report,
    ilu_smoothing_speedups,
    ilu_factorization_costs,
)
from repro.perfmodel.bsize_model import bsize_sweep

__all__ = [
    "KernelSpec",
    "ilu_strategy_report",
    "ilu_smoothing_speedups",
    "ilu_factorization_costs",
    "bsize_sweep",
]
