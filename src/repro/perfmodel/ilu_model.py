"""ILU(0) performance model — regenerates Figs. 9 and 12.

Protocol (paper §V-E): every strategy iterates the preconditioned
Richardson solve to the *same* residual, so slow-converging orderings
(MC, BJ with many chunks) pay in iterations, and the modeled per-sweep
cost on a Table I machine supplies the time axis. Speedups are
reported against the serial ILU(0) solve, exactly as in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grids.problems import Problem
from repro.ilu.strategies import ILUStrategy, make_strategy
from repro.perfmodel.specs import KernelSpec
from repro.simd.machine import MachineModel
from repro.solvers.stationary import preconditioned_richardson


@dataclass
class StrategyReport:
    """Measured + modeled behaviour of one strategy instance."""

    name: str
    n_workers: int
    iterations: int
    converged: bool
    smoothing_spec: KernelSpec
    factor_spec: KernelSpec
    strategy: ILUStrategy

    def solve_seconds(self, machine: MachineModel, threads: int,
                      scale: float = 1.0) -> float:
        """Modeled time to reach the target residual."""
        spec = self.smoothing_spec.scaled(scale) if scale != 1.0 \
            else self.smoothing_spec
        return spec.seconds(machine, threads, sweeps=self.iterations)

    def factor_seconds(self, machine: MachineModel, threads: int,
                       scale: float = 1.0) -> float:
        spec = self.factor_spec.scaled(scale) if scale != 1.0 \
            else self.factor_spec
        return spec.seconds(machine, threads, sweeps=1)


def ilu_strategy_report(problem: Problem, name: str, n_workers: int = 1,
                        bsize: int = 8, tol: float = 1e-8,
                        dtype_bytes: int = 8,
                        maxiter: int = 400,
                        block_points: int = 64) -> StrategyReport:
    """Prepare, factorize, and measure one strategy on ``problem``.

    ``block_points`` sets the FIX scheme's block volume (paper: 64);
    benches on small model grids shrink it so every color still owns
    full vector groups.
    """
    s = make_strategy(name, problem, n_workers=n_workers, bsize=bsize,
                      block_points=block_points)
    s.factorize()
    _, hist = preconditioned_richardson(
        problem.matrix, problem.rhs, s.apply, tol=tol, maxiter=maxiter)
    use_simd = s.name.startswith("simd")
    smoothing_spec = KernelSpec(
        counter=_with_value_bytes(s.smoothing_counter(), dtype_bytes),
        parallelism=s.parallelism,
        barriers=s.barriers_per_apply(),
        vectorized=use_simd,
        dtype_bytes=dtype_bytes,
    )
    factor_spec = KernelSpec(
        counter=_with_value_bytes(s.factor_counter, dtype_bytes),
        parallelism=s.parallelism,
        barriers=s.n_colors if s.name not in ("serial", "bj") else 0,
        vectorized=use_simd,
        dtype_bytes=dtype_bytes,
    )
    return StrategyReport(
        name=name, n_workers=n_workers,
        iterations=hist.iterations, converged=hist.converged,
        smoothing_spec=smoothing_spec, factor_spec=factor_spec,
        strategy=s,
    )


def ilu_smoothing_speedups(problem: Problem, machine: MachineModel,
                           thread_counts, strategies=None,
                           bsize: int = 8, tol: float = 1e-8,
                           dtype_bytes: int = 8,
                           scale: float = 1.0,
                           block_points: int = 64) -> dict:
    """Fig. 9 data: speedup over the serial solve per strategy/threads.

    Parameters
    ----------
    problem:
        Structured-grid problem (built at tractable size; ``scale``
        extrapolates counts to the paper's 256-cubed).
    machine:
        Target Table I platform.
    thread_counts:
        Thread axis of the figure.
    strategies:
        Strategy names; defaults to the Fig. 9 set.
    dtype_bytes:
        8 for double precision, 4 for single.
    scale:
        Linear problem-size factor applied to counts/parallelism.

    Returns
    -------
    dict
        ``{strategy: [speedup per thread count]}`` plus the serial
        baseline under key ``"_serial_seconds"``.
    """
    if strategies is None:
        strategies = ("bj", "mc", "bmc-fix", "bmc-auto",
                      "dbsr-fix", "dbsr-auto", "simd-fix", "simd-auto")
    serial = ilu_strategy_report(problem, "serial", tol=tol,
                                 dtype_bytes=dtype_bytes)
    serial_secs = serial.solve_seconds(machine, threads=1, scale=scale)
    out = {"_serial_seconds": serial_secs,
           "_serial_iterations": serial.iterations}
    cache: dict = {}
    for name in strategies:
        speedups = []
        for t in thread_counts:
            # Worker-dependent strategies must be rebuilt per count.
            key = (name, t if _worker_dependent(name) else 0)
            if key not in cache:
                cache[key] = ilu_strategy_report(
                    problem, name, n_workers=t, bsize=bsize, tol=tol,
                    dtype_bytes=dtype_bytes, block_points=block_points)
            rep = cache[key]
            secs = rep.solve_seconds(machine, threads=t, scale=scale)
            speedups.append(serial_secs / secs)
        out[name] = speedups
    return out


def ilu_factorization_costs(problem: Problem, machine: MachineModel,
                            thread_counts, strategies=None,
                            bsize: int = 8, dtype_bytes: int = 8,
                            scale: float = 1.0,
                            block_points: int = 64) -> dict:
    """Fig. 12 data: factorization time in units of one DBSR smoothing.

    The paper expresses factorization cost as "the ratio of
    factorization time to one smoothing time" with the DBSR smoother
    as the unit.
    """
    if strategies is None:
        strategies = ("bj", "mc", "bmc-fix", "bmc-auto", "dbsr-auto",
                      "simd-auto")
    out = {}
    cache: dict = {}
    for name in strategies:
        ratios = []
        for t in thread_counts:
            key = (name, t if _worker_dependent(name) else 0)
            if key not in cache:
                cache[key] = ilu_strategy_report(
                    problem, name, n_workers=t, bsize=bsize,
                    dtype_bytes=dtype_bytes, tol=1e-6, maxiter=1,
                    block_points=block_points)
            rep = cache[key]
            dkey = ("dbsr-auto-unit", t)
            if dkey not in cache:
                cache[dkey] = ilu_strategy_report(
                    problem, "dbsr-auto", n_workers=t, bsize=bsize,
                    dtype_bytes=dtype_bytes, tol=1e-6, maxiter=1,
                    block_points=block_points)
            unit = cache[dkey].smoothing_spec.scaled(scale).seconds(
                machine, t, sweeps=1)
            fact = rep.factor_seconds(machine, t, scale=scale)
            ratios.append(fact / unit)
        out[name] = ratios
    return out


def _worker_dependent(name: str) -> bool:
    """Strategies whose structure changes with the worker count."""
    return name == "bj" or name.endswith("auto")


def _with_value_bytes(counter, dtype_bytes: int):
    """Rescale the floating-point byte streams for the element size.

    Index traffic is unchanged — this is why single precision favors
    DBSR even more (§V-F): indices become a larger share of CSR's
    footprint while DBSR already eliminated most of them.
    """
    if dtype_bytes == 8:
        return counter
    f = dtype_bytes / 8.0
    c = counter.scaled(1.0)  # copy
    c.bytes_values = int(counter.bytes_values * f)
    c.bytes_vector = int(counter.bytes_vector * f)
    c.bytes_gathered = int(counter.bytes_gathered * f)
    return c
