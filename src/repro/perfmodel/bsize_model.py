"""Block-size sweep — regenerates Fig. 10 (and feeds Fig. 11).

``bsize`` trades storage (indices shrink as ``1/bsize``) against
zero padding and scheduling granularity; the paper finds performance
stabilizing around ``bsize = 16`` on Intel.
"""

from __future__ import annotations

from repro.grids.problems import Problem
from repro.perfmodel.ilu_model import ilu_strategy_report
from repro.simd.machine import MachineModel


def bsize_sweep(problem: Problem, machine: MachineModel,
                bsizes=(1, 2, 4, 8, 16, 32, 64), threads: int = 16,
                tol: float = 1e-8, dtype_bytes: int = 8,
                scale: float = 1.0) -> dict:
    """Modeled DBSR smoothing solve time per ``bsize`` (Fig. 10).

    Returns ``{bsize: seconds}`` for the SIMD DBSR strategy at the
    given thread count.
    """
    out = {}
    for bs in bsizes:
        rep = ilu_strategy_report(
            problem, "simd-auto", n_workers=threads, bsize=bs, tol=tol,
            dtype_bytes=dtype_bytes)
        out[bs] = rep.solve_seconds(machine, threads=threads,
                                    scale=scale)
    return out


def storage_sweep(problem: Problem, bsizes=(1, 2, 4, 8, 16, 32, 64),
                  n_workers: int = 16, bsize_offset_bytes: int = 4,
                  value_bytes: int = 8) -> list:
    """Fig. 11 data: CSR vs DBSR storage bytes across ``bsize``.

    Returns a list of rows ``(bsize, csr_total, dbsr_index, dbsr_nnz,
    dbsr_padding, dbsr_total)``.
    """
    from repro.formats.dbsr import DBSRMatrix
    from repro.ordering.blocks import auto_block_dims
    from repro.ordering.vbmc import build_vbmc

    csr_rep = problem.matrix.memory_report()
    rows = []
    for bs in bsizes:
        block_dims = auto_block_dims(problem.grid, n_workers, bsize=bs)
        vb = build_vbmc(problem.grid, problem.stencil, block_dims, bs)
        dbsr = DBSRMatrix.from_csr(vb.apply_matrix(problem.matrix), bs)
        rep = dbsr.memory_report(offset_itemsize=bsize_offset_bytes)
        rows.append((
            bs,
            csr_rep.index_bytes + int(csr_rep.nnz * value_bytes),
            rep.index_bytes,
            int(rep.nnz * value_bytes),
            int(rep.padding_values * value_bytes),
            rep.index_bytes + int(rep.stored_values * value_bytes),
        ))
    return rows
