"""Kernel specifications consumed by the machine models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.simd.counters import OpCounter
from repro.simd.machine import MachineModel


@dataclass
class KernelSpec:
    """Everything the machine model needs to time one kernel sweep.

    Attributes
    ----------
    counter:
        Operation tallies for one sweep.
    parallelism:
        Independent work units available concurrently (groups per
        color, BJ chunks, ...); caps thread speedup.
    barriers:
        Synchronizations per sweep (one per color per direction).
    vectorized:
        Whether the kernel issues SIMD instructions.
    use_gather_hw:
        When gathers appear, whether the hardware gather instruction is
        used (Fig. 8's comparison) or scalar expansion.
    dtype_bytes:
        Element size (8 = double, 4 = single).
    cache_resident_fraction:
        Fraction of traffic served from cache on repeated sweeps.
    parallelism_scales:
        Whether ``parallelism`` grows with problem size (true for
        color-schedule parallelism, false for inherently serial
        kernels like the reference in-process SYMGS).
    """

    counter: OpCounter
    parallelism: float = 1.0
    barriers: int = 0
    vectorized: bool = True
    use_gather_hw: bool = True
    dtype_bytes: int = 8
    cache_resident_fraction: float = 0.0
    parallelism_scales: bool = True

    def seconds(self, machine: MachineModel, threads: int,
                sweeps: int = 1) -> float:
        """Modeled time of ``sweeps`` kernel sweeps on ``machine``."""
        one = machine.kernel_seconds(
            self.counter,
            threads=threads,
            dtype_bytes=self.dtype_bytes,
            vectorized=self.vectorized,
            use_gather_hw=self.use_gather_hw,
            parallelism=self.parallelism,
            n_barriers=self.barriers,
            cache_resident_fraction=self.cache_resident_fraction,
        )
        return one * sweeps

    def scaled(self, factor: float) -> "KernelSpec":
        """Spec for a problem ``factor`` times larger (counts and
        parallelism scale linearly; barriers stay fixed)."""
        return KernelSpec(
            counter=self.counter.scaled(factor),
            parallelism=(self.parallelism * factor
                         if self.parallelism_scales else self.parallelism),
            barriers=self.barriers,
            vectorized=self.vectorized,
            use_gather_hw=self.use_gather_hw,
            dtype_bytes=self.dtype_bytes,
            cache_resident_fraction=self.cache_resident_fraction,
            parallelism_scales=self.parallelism_scales,
        )
