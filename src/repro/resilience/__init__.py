"""Resilience subsystem: chaos engineering for the serving stack.

Three cooperating layers (see ``docs/resilience.md``):

* :mod:`repro.resilience.faults` + :mod:`repro.resilience.hooks` —
  deterministic, seeded fault injection through zero-cost hook sites.
* :mod:`repro.resilience.guardrails` — structural validators and
  SHA-256 integrity digests over compiled-plan artifacts.
* :mod:`repro.resilience.fallback` — the self-healing
  DBSR → SELL → CSR ladder with per-fingerprint circuit breaking.

:mod:`repro.resilience.chaos` scripts the whole loop into the
``repro chaos-bench`` benchmark.
"""

from repro.resilience.errors import (
    CircuitOpen,
    DeadlineExceeded,
    DrainTimeout,
    FallbackExhausted,
    FaultInjected,
    NonFiniteError,
    PlanValidationError,
    ResilienceError,
    ServiceClosed,
    SolverBreakdown,
)
from repro.resilience.fallback import (
    LADDER,
    CircuitBreaker,
    FallbackChain,
    FallbackResult,
)
from repro.resilience.faults import (
    CORRUPTION_KINDS,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRecord,
    FaultSpec,
    inject,
)
from repro.resilience.guardrails import (
    check_integrity,
    seal_plan,
    validate_csr,
    validate_dbsr,
    validate_diag,
    validate_finite,
    validate_permutation,
    validate_plan,
    validate_sell,
)

__all__ = [
    "CORRUPTION_KINDS",
    "FAULT_KINDS",
    "LADDER",
    "CircuitBreaker",
    "CircuitOpen",
    "DeadlineExceeded",
    "DrainTimeout",
    "FallbackChain",
    "FallbackExhausted",
    "FallbackResult",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "NonFiniteError",
    "PlanValidationError",
    "ResilienceError",
    "ServiceClosed",
    "SolverBreakdown",
    "check_integrity",
    "inject",
    "seal_plan",
    "validate_csr",
    "validate_dbsr",
    "validate_diag",
    "validate_finite",
    "validate_permutation",
    "validate_plan",
    "validate_sell",
]
