"""Typed failure taxonomy of the resilience subsystem.

Every failure the serving stack can *recover from* gets its own type so
callers (the fallback chain, the service frontend, tests) can branch on
semantics instead of parsing messages:

* :class:`ResilienceError` — common base of all guarded failures.
* :class:`SolverBreakdown` / :class:`NonFiniteError` — iterative-solver
  breakdowns (non-finite residual, rho breakdown, stagnation), carrying
  the iteration number and the last finite residual.
* :class:`PlanValidationError` — a compiled plan's artifacts failed a
  structural or integrity check (corrupt permutation, out-of-range
  block index, non-finite value, digest mismatch).
* :class:`StaleValuesError` — a request's declared value digest does
  not match the cached plan's sealed one (serve-path staleness guard).
* :class:`DrainTimeout` / :class:`DeadlineExceeded` — service-level
  deadlines, naming the tickets left behind.
* :class:`CircuitOpen` / :class:`FallbackExhausted` — the self-healing
  ladder gave up (temporarily, resp. for this request).
* :class:`FaultInjected` — deliberately raised by an armed
  :class:`~repro.resilience.faults.FaultInjector`; intentionally *not*
  a :class:`ResilienceError` so the chain must treat it like any other
  unexpected worker/kernel error.
* :data:`NON_RECOVERABLE_ERRORS` — the complementary set: failures the
  ladder must *re-raise* instead of degrading around.

This module is a dependency leaf (stdlib only) so every layer — simd,
parallel, solvers, serve — can import it without cycles.
"""

from __future__ import annotations


class ResilienceError(RuntimeError):
    """Base class of all typed, guarded failures."""


class SolverBreakdown(ResilienceError):
    """An iterative solver cannot make further progress.

    Parameters
    ----------
    message:
        Human-readable description of the breakdown.
    iteration:
        Iteration index at which the breakdown was detected (0 is the
        first iteration after the initial residual).
    last_residual:
        Last residual norm known to be finite (``nan`` when even the
        initial residual was bad).
    reason:
        Machine-readable class: ``"non_finite"``, ``"rho_breakdown"``,
        or ``"stagnation"``.
    """

    def __init__(self, message: str, iteration: int = -1,
                 last_residual: float = float("nan"),
                 reason: str = "breakdown"):
        super().__init__(
            f"{message} (iteration {iteration}, "
            f"last good residual {last_residual:.6e})")
        self.iteration = int(iteration)
        self.last_residual = float(last_residual)
        self.reason = reason


class NonFiniteError(SolverBreakdown):
    """A residual, solution, or intermediate quantity went NaN/Inf."""

    def __init__(self, message: str, iteration: int = -1,
                 last_residual: float = float("nan")):
        super().__init__(message, iteration=iteration,
                         last_residual=last_residual,
                         reason="non_finite")


class PlanValidationError(ResilienceError):
    """A compiled plan's artifacts failed validation.

    ``artifact`` names the offending array (``"ordering.old_to_new"``,
    ``"lower.values"``, ...); ``index`` locates the first bad entry
    when known.
    """

    def __init__(self, message: str, artifact: str = "",
                 index: int | None = None):
        loc = f" [{artifact}" + (
            f"@{index}]" if index is not None else "]") if artifact else ""
        super().__init__(f"{message}{loc}")
        self.artifact = artifact
        self.index = index


class StaleValuesError(ResilienceError):
    """A cached plan's sealed value digest no longer matches the caller.

    Raised on the serve path when a request declares (via its
    ``value_digest``) which coefficient snapshot it expects and the
    cached :class:`~repro.serve.ilu_plan.ILUPlan` was factorized from a
    different one. The caller must either resubmit carrying the new
    ``values`` (which routes through the cheap
    :meth:`~repro.serve.cache.PlanCache.refresh_values` repack) or
    accept the cached snapshot explicitly — the service never silently
    solves with old coefficients.
    """

    def __init__(self, fingerprint: str, expected: str, found: str):
        super().__init__(
            f"cached plan for {fingerprint[:12]}… was factorized from "
            f"value digest {found[:12]}…, request expects "
            f"{expected[:12]}…; resubmit with values to repack")
        self.fingerprint = fingerprint
        self.expected = expected
        self.found = found


class DrainTimeout(ResilienceError):
    """``SolveService.drain`` hit its deadline with work left over.

    ``ticket_ids`` lists the requests that were *not* executed; they
    remain queued and a later ``drain`` call will pick them up.
    """

    def __init__(self, timeout: float, ticket_ids: list[int]):
        super().__init__(
            f"drain exceeded {timeout:g}s with "
            f"{len(ticket_ids)} request(s) unfinished: "
            f"{sorted(ticket_ids)}")
        self.timeout = float(timeout)
        self.ticket_ids = list(ticket_ids)


class ServiceClosed(ResilienceError):
    """The service was closed with requests still pending.

    Raised by ``SolveService.submit``/``drain`` on a closed service,
    and carried by every ticket that was still queued (or staged inside
    an in-flight ``drain``) when ``close()`` ran — those tickets are
    *failed*, never left forever-pending. ``ticket_ids`` lists them.
    """

    def __init__(self, ticket_ids: list[int] | None = None):
        ids = sorted(ticket_ids) if ticket_ids else []
        detail = (f" with {len(ids)} request(s) unfinished: {ids}"
                  if ids else "")
        super().__init__(f"service closed{detail}")
        self.ticket_ids = list(ids)


class DeadlineExceeded(ResilienceError):
    """A single request's deadline expired before it was executed."""

    def __init__(self, request_id: int, deadline_seconds: float):
        super().__init__(
            f"request {request_id} missed its "
            f"{deadline_seconds:g}s deadline")
        self.request_id = int(request_id)
        self.deadline_seconds = float(deadline_seconds)


class CircuitOpen(ResilienceError):
    """The per-fingerprint circuit breaker is open — solve refused."""

    def __init__(self, fingerprint: str, failures: int,
                 retry_after: float):
        super().__init__(
            f"circuit open for {fingerprint[:12]}… after "
            f"{failures} consecutive failures; retry in "
            f"{retry_after:.3g}s")
        self.fingerprint = fingerprint
        self.failures = int(failures)
        self.retry_after = float(retry_after)


class FallbackExhausted(ResilienceError):
    """Every rung of the fallback ladder failed for one request.

    ``attempts`` is a list of ``(rung, error_repr)`` pairs in the order
    they were tried.
    """

    def __init__(self, fingerprint: str, op: str,
                 attempts: list[tuple[str, str]]):
        chain = " -> ".join(f"{rung}: {err}" for rung, err in attempts)
        super().__init__(
            f"all fallback rungs failed for op {op!r} on "
            f"{fingerprint[:12]}…: {chain}")
        self.fingerprint = fingerprint
        self.op = op
        self.attempts = list(attempts)


class FaultInjected(RuntimeError):
    """Raised by an armed fault injector (chaos testing only).

    Deliberately *not* a :class:`ResilienceError`: injected faults
    model arbitrary worker/kernel crashes, so recovery code must not
    be able to special-case them.
    """

    def __init__(self, site: str, kind: str, detail: str = ""):
        super().__init__(
            f"injected fault {kind!r} at site {site!r}"
            + (f": {detail}" if detail else ""))
        self.site = site
        self.kind = kind


#: Failures no ladder boundary may swallow. Resource exhaustion and
#: violated internal invariants (the ``assert``-guarded cache/plan
#: bookkeeping) are not kernel faults: descending a rung cannot fix
#: them, and retrying only hides the bug while the process degrades.
#: Both broad ``except Exception`` handlers in
#: :mod:`repro.resilience.fallback` re-raise these immediately.
NON_RECOVERABLE_ERRORS = (MemoryError, AssertionError)
