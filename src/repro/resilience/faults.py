"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` is a reproducible specification of *what goes
wrong*: each :class:`FaultSpec` names a fault kind (NaN/Inf/bit-flip
value corruption, permutation scrambling, block-index corruption,
worker exceptions, kernel delays, and the gateway-tier shard faults —
crash, hang, poison, spawn failure), where it strikes, and how many
times. Arm a plan with :func:`inject` and every corruption site and
random choice derives from the plan's seed — the same plan replays the
same chaos bit-for-bit, so recovery behaviour is assertable.

Two delivery mechanisms:

* **Hook faults** (``worker_exception``, ``kernel_exception``,
  ``kernel_delay``, the shard kinds ``shard_crash`` / ``shard_hang`` /
  ``shard_poison`` / ``spawn_fail``, and any corruption spec with
  ``at_compile=True``) trigger through the sites of
  :mod:`repro.resilience.hooks`, which the pooled executor, the vector
  engine, the plan compiler, and the gateway's shard pool fire.
* **Direct corruption** — :meth:`FaultInjector.corrupt_plan` applies
  the plan's corruption specs to an already-compiled
  :class:`~repro.serve.plan.SolvePlan`, modelling bit rot / memory
  corruption of cached artifacts.

When no injector is armed every hook site is a single ``None`` check:
the clean path's op counts are unchanged.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.resilience import hooks
from repro.resilience.errors import FaultInjected

#: Fault kinds that corrupt compiled-plan artifacts.
CORRUPTION_KINDS = (
    "nan_value",          # one value-array entry -> NaN
    "inf_value",          # one value-array entry -> +Inf
    "bitflip_value",      # flip one bit of one value-array entry
    "scramble_permutation",  # duplicate one old_to_new entry
    "bad_block_index",    # one blk_ind entry -> out of range
)

#: Fault kinds that act at hook sites.
SITE_KINDS = (
    "worker_exception",   # raise FaultInjected in a pooled worker task
    "kernel_exception",   # raise FaultInjected at kernel entry
    "kernel_delay",       # sleep at kernel entry
    "shard_crash",        # raise FaultInjected at gateway-shard entry
    "shard_hang",         # sleep at gateway-shard entry (straggler)
    "shard_poison",       # shard raises on every execute until restart
    "spawn_fail",         # raise FaultInjected while spawning a shard
)

FAULT_KINDS = CORRUPTION_KINDS + SITE_KINDS

#: Value arrays a corruption spec may target on a SolvePlan.
VALUE_TARGETS = ("lower", "upper", "dbsr", "matrix", "diag")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        For corruption kinds: which artifact to corrupt — a member of
        :data:`VALUE_TARGETS` for value faults, ignored for
        permutation/block-index faults.
    strategies:
        For ``kernel_exception`` / ``kernel_delay``: which plan
        strategies ("dbsr", "sell", "csr") the fault strikes at the
        ``plan.execute`` site. ``None`` strikes every strategy.
    ops:
        Optional op filter (``("lower",)`` etc.); ``None`` = all ops.
    max_fires:
        How many times the fault triggers before disarming itself.
        ``None`` means persistent (never disarms) — the unrecoverable
        regime used to exercise the circuit breaker.
    at_compile:
        Corruption kinds only: also corrupt every *newly compiled*
        plan at the ``serve.compile`` hook (so recompiles stay
        poisoned). Off by default — corruption then only happens via
        :meth:`FaultInjector.corrupt_plan`.
    delay_seconds:
        Sleep length for ``kernel_delay`` and ``shard_hang``.
    seed:
        Per-spec seed offset mixed into the plan seed.

    The shard kinds strike the gateway tier: ``shard_crash`` raises at
    :meth:`~repro.gateway.pool.GatewayShard.execute` entry (one chunk
    lost, shard otherwise fine), ``shard_hang`` sleeps there (a
    straggler the hedging policy must beat), ``shard_poison`` marks the
    shard so *every* later execute raises until the supervisor restarts
    it, and ``spawn_fail`` raises while the pool is building a new
    shard (exercising the restart backoff budget). All honor the
    ``ops`` filter; ``strategies`` is ignored at shard sites (a shard
    hosts every strategy).
    """

    kind: str
    target: str = "lower"
    strategies: tuple | None = ("dbsr",)
    ops: tuple | None = None
    max_fires: int | None = 1
    at_compile: bool = False
    delay_seconds: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.kind in ("nan_value", "inf_value", "bitflip_value") \
                and self.target not in VALUE_TARGETS:
            raise ValueError(
                f"unknown value target {self.target!r}; "
                f"known: {VALUE_TARGETS}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of faults — one chaos scenario."""

    specs: tuple
    seed: int = 2024
    name: str = "chaos"

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))


@dataclass
class FaultRecord:
    """One delivered fault occurrence (for reporting/assertions)."""

    kind: str
    site: str
    detail: str = ""
    artifact: str = ""
    index: int = -1


class FaultInjector:
    """Armed instance of a :class:`FaultPlan`.

    Thread-safe: hook sites may fire from pooled workers *and* from
    the gateway's shard worker threads concurrently. Fire counting
    (:meth:`_take`), record keeping, and every draw from a spec's
    seeded generator happen under one re-entrant lock, so a ``count=N``
    spec fires exactly ``N`` times across threads and delivery order
    across threads cannot change *where* corruption lands.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.RLock()
        self._fires = [0] * len(plan.specs)
        self._rngs = [np.random.default_rng(plan.seed + 31 * i + s.seed)
                      for i, s in enumerate(plan.specs)]
        self.records: list[FaultRecord] = []
        self.injected = 0

    # Arming --------------------------------------------------------------
    def _take(self, i: int) -> bool:
        """Atomically consume one firing of spec ``i`` if still armed."""
        spec = self.plan.specs[i]
        with self._lock:
            if spec.max_fires is not None \
                    and self._fires[i] >= spec.max_fires:
                return False
            self._fires[i] += 1
            self.injected += 1
            return True

    def fires(self, i: int) -> int:
        """How many times spec ``i`` has fired so far."""
        with self._lock:
            return self._fires[i]

    def _record(self, rec: FaultRecord) -> None:
        with self._lock:
            self.records.append(rec)

    # Hook dispatch --------------------------------------------------------
    def fire(self, site: str, **ctx) -> None:
        for i, spec in enumerate(self.plan.specs):
            if spec.kind == "worker_exception" \
                    and site == "parallel.worker":
                if self._take(i):
                    self._record(FaultRecord(spec.kind, site,
                                             detail=str(ctx.get("group"))))
                    raise FaultInjected(site, spec.kind,
                                        f"group {ctx.get('group')}")
            elif spec.kind in ("kernel_exception", "kernel_delay") \
                    and site in ("plan.execute", "simd.engine"):
                strategy = ctx.get("strategy")
                op = ctx.get("op")
                if spec.strategies is not None and strategy is not None \
                        and strategy not in spec.strategies:
                    continue
                if spec.ops is not None and op is not None \
                        and op not in spec.ops:
                    continue
                if site == "simd.engine" and spec.kind != "kernel_delay":
                    # Engine construction only carries delay faults;
                    # exceptions there would abort counted benchmarks
                    # rather than model kernel crashes.
                    continue
                if self._take(i):
                    self._record(FaultRecord(spec.kind, site,
                                             detail=f"{strategy}/{op}"))
                    if spec.kind == "kernel_delay":
                        time.sleep(spec.delay_seconds)
                    else:
                        raise FaultInjected(site, spec.kind,
                                            f"{strategy} kernel, op={op}")
            elif spec.kind in ("shard_crash", "shard_hang",
                               "shard_poison") \
                    and site == "gateway.shard":
                op = ctx.get("op")
                if spec.ops is not None and op is not None \
                        and op not in spec.ops:
                    continue
                if self._take(i):
                    shard = ctx.get("shard")
                    index = getattr(shard, "index", -1)
                    self._record(FaultRecord(
                        spec.kind, site, detail=f"shard {index}/{op}",
                        index=index))
                    if spec.kind == "shard_hang":
                        time.sleep(spec.delay_seconds)
                    elif spec.kind == "shard_poison":
                        if shard is not None:
                            shard.poison()
                    else:
                        raise FaultInjected(
                            site, spec.kind,
                            f"shard {index}, op={op}")
            elif spec.kind == "spawn_fail" and site == "pool.spawn":
                if self._take(i):
                    index = ctx.get("shard_index", -1)
                    self._record(FaultRecord(spec.kind, site,
                                             detail=f"shard {index}",
                                             index=int(index)))
                    raise FaultInjected(site, spec.kind,
                                        f"spawning shard {index}")
            elif spec.kind in CORRUPTION_KINDS and spec.at_compile \
                    and site == "serve.compile":
                plan_obj = ctx.get("plan")
                if plan_obj is not None and self._take(i):
                    self._apply_corruption(i, spec, plan_obj,
                                           site="serve.compile")

    # Direct corruption ----------------------------------------------------
    def corrupt_plan(self, plan) -> list[FaultRecord]:
        """Apply every corruption spec to ``plan``'s artifacts in place.

        Returns the records of the corruptions actually delivered
        (respecting each spec's remaining ``max_fires`` budget).
        Thread-safe: concurrent callers each get exactly the records
        of *their* corruptions, never a slice of someone else's.
        """
        delivered = []
        for i, spec in enumerate(self.plan.specs):
            if spec.kind in CORRUPTION_KINDS and self._take(i):
                rec = self._apply_corruption(i, spec, plan,
                                             site="direct")
                if rec is not None:
                    delivered.append(rec)
        return delivered

    def _apply_corruption(self, i: int, spec: FaultSpec, plan,
                          site: str) -> FaultRecord | None:
        # The whole draw-and-mutate runs under the injector lock: a
        # spec's generator must advance in take order even when two
        # shard workers corrupt plans concurrently.
        with self._lock:
            return self._apply_corruption_locked(i, spec, plan, site)

    def _apply_corruption_locked(self, i: int, spec: FaultSpec, plan,
                                 site: str) -> FaultRecord | None:
        rng = self._rngs[i]
        rec = None
        if spec.kind in ("nan_value", "inf_value", "bitflip_value"):
            name, arr = _value_array(plan, spec.target)
            if arr.size == 0:
                return None
            flat = arr.reshape(-1)
            idx = int(rng.integers(flat.size))
            if spec.kind == "nan_value":
                flat[idx] = np.nan
            elif spec.kind == "inf_value":
                flat[idx] = np.inf
            elif flat.dtype == np.float32:
                bits = flat[idx:idx + 1].view(np.uint32)
                bit = int(rng.integers(23, 31))  # exponent-field bits
                bits ^= np.uint32(1 << bit)
            else:
                bits = flat[idx:idx + 1].view(np.uint64)
                bit = int(rng.integers(52, 63))  # exponent-field bits
                bits ^= np.uint64(1 << bit)
            rec = FaultRecord(spec.kind, site, artifact=name,
                              index=idx)
        elif spec.kind == "scramble_permutation":
            perm = plan.ordering.old_to_new
            n = len(perm)
            if n < 2:
                return None
            i1 = int(rng.integers(n))
            i2 = int(rng.integers(n - 1))
            i2 += i2 >= i1  # distinct positions -> a duplicated image
            perm[i1] = perm[i2]
            rec = FaultRecord(spec.kind, site,
                              artifact="ordering.old_to_new",
                              index=i1)
        elif spec.kind == "bad_block_index":
            blk_ind = plan.lower.blk_ind
            if blk_ind.size == 0:
                return None
            idx = int(rng.integers(blk_ind.size))
            blk_ind[idx] = plan.lower.n_cols  # beyond any valid block
            rec = FaultRecord(spec.kind, site,
                              artifact="lower.blk_ind", index=idx)
        if rec is not None:
            self._record(rec)
        return rec

    # Reporting ------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "plan": self.plan.name,
                "seed": self.plan.seed,
                "injected": self.injected,
                "fires_per_spec": list(self._fires),
                "records": [
                    {"kind": r.kind, "site": r.site,
                     "artifact": r.artifact, "index": r.index,
                     "detail": r.detail}
                    for r in self.records
                ],
            }


def _value_array(plan, target: str) -> tuple[str, np.ndarray]:
    """Resolve a value-fault target name to ``(label, array)``."""
    if target == "lower":
        return "lower.values", plan.lower.values
    if target == "upper":
        return "upper.values", plan.upper.values
    if target == "dbsr":
        return "dbsr.values", plan.dbsr.values
    if target == "matrix":
        return "matrix.data", plan.matrix.data
    return "diag", plan.diag


@contextmanager
def inject(plan: FaultPlan):
    """Arm ``plan`` for the duration of the block; yields the injector.

    Always disarms on exit, even when the injected faults propagate.
    """
    injector = FaultInjector(plan)
    hooks.install(injector)
    try:
        yield injector
    finally:
        hooks.uninstall(injector)
