"""Numerical and structural guardrails for compiled solve plans.

Cheap validators that stand between a (possibly corrupted) compiled
artifact and a kernel launch. Two levels:

* **Structural** — invariants checkable from the arrays alone:
  permutations are bijections, ``blk_ptr`` is monotone, block indices
  and anchors are in range, triangular factors are strictly
  triangular, values and diagonals are finite (and diagonals
  non-zero). These run at compile time
  (:func:`repro.serve.plan.compile_plan` calls
  :func:`validate_plan` before returning) and before each fallback
  rung executes.
* **Integrity** — SHA-256 digests over every artifact's raw bytes,
  sealed at compile time (:func:`seal_plan`). A digest mismatch
  catches *any* single-bit corruption, including in-range index
  rewrites and mantissa bit-flips that are structurally silent.

All failures raise :class:`~repro.resilience.errors.PlanValidationError`
naming the artifact (and, for structural checks, the first offending
index). Validators are pure numpy passes — they never construct a
:class:`~repro.simd.engine.VectorEngine`, so clean-path op counts are
untouched.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.resilience.errors import PlanValidationError


# Structural validators ------------------------------------------------------

def validate_permutation(old_to_new: np.ndarray, n_padded: int,
                         artifact: str = "ordering.old_to_new") -> None:
    """``old_to_new`` must be an injection into ``[0, n_padded)``.

    (The padded image may be larger than the domain; duplicates or
    out-of-range entries mean ``extend``/``restrict`` silently lose or
    alias vector entries.)
    """
    perm = np.asarray(old_to_new)
    if perm.ndim != 1:
        raise PlanValidationError("permutation must be 1-D",
                                  artifact=artifact)
    bad = np.flatnonzero((perm < 0) | (perm >= n_padded))
    if len(bad):
        raise PlanValidationError(
            f"permutation entry {int(perm[bad[0]])} out of range "
            f"[0, {n_padded})", artifact=artifact, index=int(bad[0]))
    uniq, counts = np.unique(perm, return_counts=True)
    if len(uniq) != len(perm):
        dup = int(uniq[counts > 1][0])
        idx = int(np.flatnonzero(perm == dup)[1])
        raise PlanValidationError(
            f"permutation is not a bijection: image {dup} duplicated",
            artifact=artifact, index=idx)


def validate_finite(arr: np.ndarray, artifact: str) -> None:
    """Every entry of ``arr`` must be finite."""
    finite = np.isfinite(arr)
    if not finite.all():
        idx = int(np.flatnonzero(~finite.reshape(-1))[0])
        raise PlanValidationError("non-finite value", artifact=artifact,
                                  index=idx)


def validate_diag(diag: np.ndarray, artifact: str = "diag") -> None:
    """Diagonal entries must be finite and non-zero (they divide)."""
    validate_finite(diag, artifact)
    zero = np.flatnonzero(diag == 0)
    if len(zero):
        raise PlanValidationError("zero diagonal entry",
                                  artifact=artifact, index=int(zero[0]))


def validate_dbsr(m, name: str = "dbsr",
                  triangular: str | None = None) -> None:
    """Structural invariants of a DBSR matrix.

    ``triangular`` may be ``"lower"`` or ``"upper"`` to additionally
    require every stored lane to be strictly below/above the diagonal.
    """
    ptr = m.blk_ptr
    if ptr[0] != 0 or ptr[-1] != len(m.blk_ind) \
            or np.any(np.diff(ptr) < 0):
        raise PlanValidationError("blk_ptr not a monotone CSR pointer",
                                  artifact=f"{name}.blk_ptr")
    bs = m.bsize
    n_bcols = -(-m.n_cols // bs)  # ceil
    bad = np.flatnonzero((m.blk_ind < 0) | (m.blk_ind >= n_bcols))
    if len(bad):
        raise PlanValidationError(
            f"block column {int(m.blk_ind[bad[0]])} out of range "
            f"[0, {n_bcols})", artifact=f"{name}.blk_ind",
            index=int(bad[0]))
    bad = np.flatnonzero((m.blk_offset <= -bs) | (m.blk_offset >= bs))
    if len(bad):
        raise PlanValidationError(
            "blk_offset outside (-bsize, bsize)",
            artifact=f"{name}.blk_offset", index=int(bad[0]))
    anchors = m.anchors
    bad = np.flatnonzero((anchors < -(bs - 1)) | (anchors > m.n_cols - 1))
    if len(bad):
        raise PlanValidationError(
            "tile anchor outside the padded vector range",
            artifact=f"{name}.anchors", index=int(bad[0]))
    if triangular is not None and m.n_tiles:
        brow_of = np.repeat(np.arange(m.brow), np.diff(ptr))
        if triangular == "lower":
            bad = np.flatnonzero(anchors >= brow_of * bs)
        else:
            bad = np.flatnonzero(anchors <= brow_of * bs)
        if len(bad):
            raise PlanValidationError(
                f"tile not strictly {triangular} triangular",
                artifact=f"{name}.blk_ind", index=int(bad[0]))
    validate_finite(m.values, f"{name}.values")


def validate_csr(m, name: str = "matrix") -> None:
    """Structural invariants of a CSR matrix."""
    ptr = m.indptr
    if ptr[0] != 0 or ptr[-1] != len(m.indices) \
            or np.any(np.diff(ptr) < 0):
        raise PlanValidationError("indptr not a monotone CSR pointer",
                                  artifact=f"{name}.indptr")
    bad = np.flatnonzero((m.indices < 0) | (m.indices >= m.n_cols))
    if len(bad):
        raise PlanValidationError(
            f"column index {int(m.indices[bad[0]])} out of range",
            artifact=f"{name}.indices", index=int(bad[0]))
    validate_finite(m.data, f"{name}.data")


def validate_sell(s, name: str = "sell") -> None:
    """Structural invariants of a SELL matrix."""
    if np.any(np.diff(s.chunk_ptr) < 0):
        raise PlanValidationError("chunk_ptr not monotone",
                                  artifact=f"{name}.chunk_ptr")
    bad = np.flatnonzero((s.colidx < 0) | (s.colidx >= s.n_cols))
    if len(bad):
        raise PlanValidationError(
            "gather column out of range", artifact=f"{name}.colidx",
            index=int(bad[0]))
    validate_permutation(s.row_order, s.n_rows,
                         artifact=f"{name}.row_order")
    validate_finite(s.vals, f"{name}.vals")


# Integrity digests ----------------------------------------------------------

def _digest(*arrays: np.ndarray) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).view(np.uint8))
    return h.hexdigest()


def _plan_artifacts(plan) -> dict:
    """Digestable artifact map of a compiled plan.

    Dispatches on the plan's ``kind``: ILU plans
    (:class:`~repro.serve.ilu_plan.ILUPlan`) seal the permutation, the
    permuted CSR operator, the factored DBSR skeleton + values, the
    diagonal pivots, and the value scatter maps (a corrupted scatter
    map would silently misplace every future repack's coefficients).
    """
    if getattr(plan, "kind", "") == "ilu":
        f = plan.factors.matrix
        return {
            "ordering.old_to_new": (plan.ordering.old_to_new,),
            "matrix": (plan.matrix.indptr, plan.matrix.indices,
                       plan.matrix.data),
            "ilu_factors": (f.blk_ptr, f.blk_ind, f.blk_offset,
                            f.values),
            "ilu_dia_ptr": (plan.factors.dia_ptr,),
            "ilu_diag": (plan.factors.diag_vector(),),
            "scatter": (plan.csr_scatter, plan.dbsr_scatter),
        }
    artifacts = {
        "ordering.old_to_new": (plan.ordering.old_to_new,),
        "matrix": (plan.matrix.indptr, plan.matrix.indices,
                   plan.matrix.data),
        "dbsr": (plan.dbsr.blk_ptr, plan.dbsr.blk_ind,
                 plan.dbsr.blk_offset, plan.dbsr.values),
        "lower": (plan.lower.blk_ptr, plan.lower.blk_ind,
                  plan.lower.blk_offset, plan.lower.values),
        "upper": (plan.upper.blk_ptr, plan.upper.blk_ind,
                  plan.upper.blk_offset, plan.upper.values),
        "diag": (plan.diag,),
    }
    if plan.sell_lower is not None:
        artifacts["sell_lower"] = (plan.sell_lower.colidx,
                                   plan.sell_lower.vals)
        artifacts["sell_upper"] = (plan.sell_upper.colidx,
                                   plan.sell_upper.vals)
    return artifacts


def seal_plan(plan) -> dict:
    """Record per-artifact SHA-256 digests on ``plan.integrity``.

    Called by :func:`repro.serve.plan.compile_plan` after compile-time
    validation; :func:`check_integrity` later detects any byte-level
    drift of the sealed artifacts.
    """
    plan.integrity = {name: _digest(*arrays)
                      for name, arrays in _plan_artifacts(plan).items()}
    return plan.integrity


def check_integrity(plan, artifacts=None) -> None:
    """Re-digest sealed artifacts; raise on the first mismatch.

    ``artifacts`` optionally restricts the check to a subset of
    artifact names (fallback rungs only verify what they read).
    """
    sealed = getattr(plan, "integrity", None)
    if not sealed:
        return
    for name, arrays in _plan_artifacts(plan).items():
        if artifacts is not None and name not in artifacts:
            continue
        expect = sealed.get(name)
        if expect is not None and _digest(*arrays) != expect:
            raise PlanValidationError(
                "integrity digest mismatch (artifact corrupted after "
                "compile)", artifact=name)


# Whole-plan validation ------------------------------------------------------

def validate_plan(plan, level: str = "structural") -> None:
    """Validate a compiled plan's artifacts.

    ``level="structural"`` runs the range/bijection/finiteness checks;
    ``level="integrity"`` additionally compares the sealed SHA-256
    digests (catching in-range corruption the structural checks cannot
    see). Raises :class:`PlanValidationError` on the first problem.
    """
    if getattr(plan, "kind", "") == "ilu":
        validate_permutation(plan.ordering.old_to_new, plan.n_padded)
        validate_csr(plan.matrix, "matrix")
        validate_dbsr(plan.factors.matrix, "ilu_factors")
        validate_diag(plan.factors.diag_vector(), "ilu_diag")
        if level == "integrity":
            check_integrity(plan)
        return
    validate_permutation(plan.ordering.old_to_new, plan.n_padded)
    validate_csr(plan.matrix, "matrix")
    validate_dbsr(plan.dbsr, "dbsr")
    validate_dbsr(plan.lower, "lower", triangular="lower")
    validate_dbsr(plan.upper, "upper", triangular="upper")
    validate_diag(plan.diag)
    if plan.sell_lower is not None:
        validate_sell(plan.sell_lower, "sell_lower")
        validate_sell(plan.sell_upper, "sell_upper")
    if level == "integrity":
        check_integrity(plan)
