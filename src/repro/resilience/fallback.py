"""Self-healing solve path: the DBSR → SELL → CSR fallback ladder.

The paper's format family is a natural degradation ladder: DBSR is the
fastest but structurally most fragile format (one corrupted anchor
poisons a whole sweep), SELL-C-σ tolerates irregular rows, and scalar
CSR is the always-correct reference. A :class:`FallbackChain` walks
that ladder for one solve:

1. **Validate** the rung's artifacts (structural checks + sealed
   SHA-256 integrity digests from :mod:`repro.resilience.guardrails`).
2. **Heal** — if validation shows the compiled plan is poisoned, the
   chain invalidates its :class:`~repro.serve.cache.PlanCache` entry
   and recompiles once; the fresh plan serves this request *and* every
   later one (self-healing, not just degradation).
3. **Execute** the rung, then **verify** the solution: finiteness
   always, and for triangular ops a relative-residual check against
   the trusted permuted CSR operator (which catches silent value
   corruption such as mantissa bit-flips).
4. On failure, **back off exponentially** and descend to the next
   rung.

A per-fingerprint :class:`CircuitBreaker` sits in front: after
``threshold`` consecutive exhausted ladders the structure is declared
sick and solves fail fast with
:class:`~repro.resilience.errors.CircuitOpen` until a cooldown elapses
(then one half-open probe decides whether to close again).

The fallback rungs fire the same ``plan.execute`` hook site as the
native path, so chaos plans can strike any rung.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.observe import trace
from repro.resilience import hooks
from repro.resilience.errors import (
    NON_RECOVERABLE_ERRORS,
    CircuitOpen,
    FallbackExhausted,
    NonFiniteError,
    PlanValidationError,
    ResilienceError,
)
from repro.resilience.guardrails import (
    check_integrity,
    validate_csr,
    validate_dbsr,
    validate_diag,
    validate_permutation,
    validate_sell,
)

#: The degradation ladder, fastest (most fragile) first.
LADDER = ("dbsr", "sell", "csr")

#: Circuit-breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Per-fingerprint failure circuit.

    ``threshold`` consecutive unrecoverable failures open the circuit;
    while open, :meth:`allow` raises
    :class:`~repro.resilience.errors.CircuitOpen` without doing any
    work. After ``cooldown_seconds`` the circuit goes half-open: one
    probe solve is let through — success closes the circuit, failure
    re-opens it (and restarts the cooldown). While the probe is in
    flight every other :meth:`allow` is rejected, so a burst cannot
    pile onto a sick structure; a probe that never reports back
    releases its slot after another cooldown.

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, threshold: int = 3,
                 cooldown_seconds: float = 30.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self.clock = clock
        self._lock = threading.Lock()
        self._failures: dict[str, int] = {}
        self._state: dict[str, str] = {}
        self._opened_at: dict[str, float] = {}
        self._probe_at: dict[str, float] = {}
        self.open_events = 0
        self.rejections = 0

    def state(self, fingerprint: str) -> str:
        with self._lock:
            return self._state.get(fingerprint, CLOSED)

    def allow(self, fingerprint: str) -> None:
        """Raise :class:`CircuitOpen` unless a solve may proceed."""
        with self._lock:
            state = self._state.get(fingerprint, CLOSED)
            if state == CLOSED:
                return
            now = self.clock()
            if state == HALF_OPEN:
                # Exactly one probe per half-open window: it stays
                # claimed until record_success/record_failure resolves
                # it, or — if the probe hangs — until another cooldown
                # elapses and a new probe may re-claim the slot.
                since = now - self._probe_at.get(fingerprint, now)
                if since >= self.cooldown_seconds:
                    self._probe_at[fingerprint] = now
                    return
                self.rejections += 1
                raise CircuitOpen(
                    fingerprint, self._failures.get(fingerprint, 0),
                    retry_after=self.cooldown_seconds - since)
            elapsed = now - self._opened_at[fingerprint]
            if elapsed >= self.cooldown_seconds:
                self._state[fingerprint] = HALF_OPEN
                self._probe_at[fingerprint] = now
                trace.event("breaker.half_open",
                            fingerprint=fingerprint[:12])
                return
            self.rejections += 1
            raise CircuitOpen(fingerprint,
                              self._failures.get(fingerprint, 0),
                              retry_after=self.cooldown_seconds - elapsed)

    def record_success(self, fingerprint: str) -> None:
        with self._lock:
            was = self._state.get(fingerprint, CLOSED)
            self._failures[fingerprint] = 0
            self._state[fingerprint] = CLOSED
            self._probe_at.pop(fingerprint, None)
        if was != CLOSED:
            trace.event("breaker.close", fingerprint=fingerprint[:12])

    def record_failure(self, fingerprint: str) -> bool:
        """Count a failure; returns ``True`` if the circuit opened."""
        with self._lock:
            was = self._state.get(fingerprint, CLOSED)
            n = self._failures.get(fingerprint, 0) + 1
            self._failures[fingerprint] = n
            opened = was == HALF_OPEN or n >= self.threshold
            if opened:
                self._state[fingerprint] = OPEN
                self._opened_at[fingerprint] = self.clock()
                self._probe_at.pop(fingerprint, None)
                self.open_events += 1
        if opened:
            trace.event("breaker.open", fingerprint=fingerprint[:12],
                        failures=n)
        return opened

    def stats(self) -> dict:
        with self._lock:
            return {
                "threshold": self.threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "open_events": self.open_events,
                "rejections": self.rejections,
                "states": dict(self._state),
                "failures": dict(self._failures),
            }


@dataclass
class FallbackResult:
    """Outcome of one chain execution."""

    solution: np.ndarray
    rung: str
    depth: int
    recompiled: bool
    attempts: list = field(default_factory=list)
    seconds: float = 0.0

    @property
    def degraded(self) -> bool:
        return self.depth > 0 or self.recompiled


class FallbackChain:
    """Executes solves down the DBSR → SELL → CSR ladder.

    Parameters
    ----------
    cache:
        Optional :class:`~repro.serve.cache.PlanCache`; poisoned
        entries are invalidated there and recompiled through it so the
        healing is visible to every later request.
    breaker:
        Circuit breaker (a default 3-failure/30 s one if omitted).
    max_recompiles:
        Recompile budget per request (healing attempts).
    backoff_base, backoff_factor, backoff_max:
        Exponential backoff between rung attempts:
        ``base * factor**(failures-1)`` seconds, capped. ``base=0``
        disables sleeping (tests).
    residual_check, residual_scale:
        Verify triangular solves against the trusted permuted CSR
        operator with relative tolerance
        ``residual_scale * eps(dtype)``; catches silent value
        corruption the structural validators cannot see.
    integrity:
        Also compare sealed SHA-256 digests before each rung.
    sleep:
        Injectable sleep function (tests).
    """

    def __init__(self, cache=None, breaker: CircuitBreaker | None = None,
                 max_recompiles: int = 1, backoff_base: float = 0.01,
                 backoff_factor: float = 2.0, backoff_max: float = 1.0,
                 residual_check: bool = True,
                 residual_scale: float = 1e6,
                 integrity: bool = True, sleep=time.sleep):
        self.cache = cache
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.max_recompiles = int(max_recompiles)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_max = float(backoff_max)
        self.residual_check = residual_check
        self.residual_scale = float(residual_scale)
        self.integrity = integrity
        self.sleep = sleep
        self._lock = threading.Lock()
        # Counters -------------------------------------------------------
        self.solves = 0
        self.faults_detected = 0
        self.recovered = 0
        self.recompiles = 0
        self.exhausted = 0
        self.depth_histogram = {i: 0 for i in range(len(LADDER))}
        self.rung_failures = {r: 0 for r in LADDER}
        self.seconds_by_depth = {i: 0.0 for i in range(len(LADDER))}

    # Public API -----------------------------------------------------------
    def execute(self, plan, op: str, B: np.ndarray) -> FallbackResult:
        """Solve ``op`` for ``B`` with validation, healing, fallback.

        Returns a :class:`FallbackResult`; raises
        :class:`~repro.resilience.errors.CircuitOpen` when the
        breaker refuses the fingerprint and
        :class:`~repro.resilience.errors.FallbackExhausted` when every
        rung fails.
        """
        fp = plan.fingerprint
        self.breaker.allow(fp)
        t0 = time.perf_counter()
        ladder = self._ladder_for(plan)
        attempts: list[tuple[str, str]] = []
        current = plan
        recompiled = False
        failures = 0
        with trace.span("fallback.solve", op=op,
                        fingerprint=fp[:12]) as sp:
            for depth, rung in enumerate(ladder):
                if failures:
                    self._backoff(failures)
                with trace.span("fallback.rung", rung=rung,
                                depth=depth) as rsp:
                    ok, X = self._attempt_rung(
                        current, rung, depth, op, B, attempts, rsp)
                    if ok is None:  # poisoned plan healed in place
                        current, recompiled = X, True
                        ok, X = self._attempt_rung(
                            current, rung, depth, op, B, attempts, rsp,
                            healed_already=True)
                    if not ok:
                        failures += 1
                        continue
                    if rsp is not None:
                        rsp.attrs["outcome"] = "ok"
                seconds = time.perf_counter() - t0
                self._record_success(fp, depth, attempts, recompiled,
                                     seconds)
                if sp is not None:
                    sp.attrs["rung"] = rung
                    sp.attrs["depth"] = depth
                    sp.attrs["recompiled"] = recompiled
                return FallbackResult(solution=X, rung=rung, depth=depth,
                                      recompiled=recompiled,
                                      attempts=list(attempts),
                                      seconds=seconds)
            with self._lock:
                self.solves += 1
                self.exhausted += 1
            if sp is not None:
                sp.attrs["outcome"] = "exhausted"
            self.breaker.record_failure(fp)
            raise FallbackExhausted(fp, op, attempts)

    def _attempt_rung(self, current, rung: str, depth: int, op: str,
                      B: np.ndarray, attempts: list, rsp,
                      healed_already: bool = False):
        """One validate+execute attempt of one rung.

        Returns ``(True, X)`` on success, ``(False, None)`` on a failed
        attempt, and ``(None, fresh_plan)`` when validation failed but
        healing produced a fresh plan the caller should retry with
        (``healed_already`` marks that retry — a healed plan that still
        fails validation is a failed attempt, not another heal).
        """
        try:
            self._validate_rung(current, rung)
        except PlanValidationError as exc:
            attempts.append((rung, repr(exc)))
            trace.event("fallback.validation_failed", rung=rung,
                        depth=depth)
            if rsp is not None:
                rsp.attrs["outcome"] = "validation_failed"
            if healed_already:
                self._count_rung_failure(rung)
                return False, None
            self._count("faults_detected")
            healed = self._heal(current)
            if healed is None:
                self._count_rung_failure(rung)
                return False, None
            trace.event("fallback.heal", rung=rung,
                        fingerprint=current.fingerprint[:12])
            return None, healed
        try:
            X = self._run_rung(current, rung, op, B)
            self._check_solution(current, rung, op, B, X)
        except NON_RECOVERABLE_ERRORS:
            # Resource exhaustion / violated invariants: descending a
            # rung cannot fix these — surface them to the caller.
            raise
        except Exception as exc:  # noqa: BLE001 - ladder boundary
            self._count("faults_detected")
            self._count_rung_failure(rung)
            attempts.append((rung, repr(exc)))
            trace.event("fallback.execution_failed", rung=rung,
                        depth=depth)
            if rsp is not None:
                rsp.attrs["outcome"] = "execution_failed"
            return False, None
        return True, X

    # Reference path --------------------------------------------------------
    def execute_reference(self, plan, op: str, B: np.ndarray) -> np.ndarray:
        """The clean scalar CSR reference path (the ladder's last rung).

        Chaos tests compare recovered solutions against this — a
        recovery that lands on the CSR rung is bit-identical to it.
        """
        if getattr(plan, "kind", "") == "ilu":
            return self._run_ilu_csr(plan, op, B, fire=False)
        return self._run_csr(plan, op, B, fire=False)

    # Internals -------------------------------------------------------------
    @staticmethod
    def _ladder_for(plan) -> tuple:
        if getattr(plan, "kind", "") == "ilu":
            # ILU factors exist only in DBSR form; the CSR rung applies
            # their bitwise projection (no SELL middle rung).
            return ("dbsr", "csr")
        strategy = plan.config.strategy
        start = LADDER.index(strategy) if strategy in LADDER else 0
        return LADDER[start:]

    def _backoff(self, failures: int) -> None:
        if self.backoff_base <= 0:
            return
        delay = self.backoff_base * self.backoff_factor ** (failures - 1)
        self.sleep(min(delay, self.backoff_max))

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def _count_rung_failure(self, rung: str) -> None:
        with self._lock:
            self.rung_failures[rung] += 1

    def _record_success(self, fp: str, depth: int, attempts,
                        recompiled: bool, seconds: float) -> None:
        with self._lock:
            self.solves += 1
            self.depth_histogram[depth] += 1
            self.seconds_by_depth[depth] += seconds
            if depth > 0 or recompiled or attempts:
                self.recovered += 1
        self.breaker.record_success(fp)

    def _heal(self, plan):
        """Invalidate + recompile a poisoned plan; ``None`` on failure."""
        with self._lock:
            # Check and reserve the budget slot in one critical section
            # so concurrent solves over the same poisoned plan cannot
            # both pass the check and exceed max_recompiles.
            if self.recompiles_used_for(plan) >= self.max_recompiles:
                return None
            plan._heal_attempts = self.recompiles_used_for(plan) + 1
            self.recompiles += 1
        is_ilu = getattr(plan, "kind", "") == "ilu"
        try:
            if self.cache is not None:
                self.cache.invalidate(plan.fingerprint)
                if is_ilu:
                    # Recompile from the same coefficient snapshot so
                    # the healed factors carry the same value digest.
                    fresh, _ = self.cache.get_or_compile_ilu(
                        plan.grid, plan.stencil, plan.config,
                        values=plan.values_src)
                else:
                    fresh, _ = self.cache.get_or_compile(
                        plan.grid, plan.stencil, plan.config)
            elif is_ilu:
                from repro.serve.ilu_plan import compile_ilu_plan

                fresh = compile_ilu_plan(plan.grid, plan.stencil,
                                         plan.config,
                                         values=plan.values_src)
            else:
                from repro.serve.plan import compile_plan

                fresh = compile_plan(plan.grid, plan.stencil, plan.config)
        except NON_RECOVERABLE_ERRORS:
            raise
        except Exception:  # noqa: BLE001 - compile itself may be poisoned
            return None
        fresh._heal_attempts = 0
        return fresh

    # Per-request recompile budget: tracked on the plan object itself so
    # a retry storm over one poisoned structure cannot recompile forever.
    @staticmethod
    def recompiles_used_for(plan) -> int:
        return getattr(plan, "_heal_attempts", 0)

    # Rung validation -------------------------------------------------------
    def _validate_rung(self, plan, rung: str) -> None:
        if getattr(plan, "kind", "") == "ilu":
            # Both rungs execute through the DBSR factors (the CSR rung
            # applies their projection), so both validate them.
            validate_permutation(plan.ordering.old_to_new,
                                 plan.n_padded)
            validate_diag(plan.factors.diag_vector(), "ilu_diag")
            validate_dbsr(plan.factors.matrix, "ilu_factors")
            scope = ("ordering.old_to_new", "ilu_diag", "ilu_factors",
                     "ilu_dia_ptr")
            if rung != "dbsr":
                validate_csr(plan.matrix, "matrix")
                scope += ("matrix",)
            if self.integrity:
                check_integrity(plan, artifacts=scope)
            return
        validate_permutation(plan.ordering.old_to_new, plan.n_padded)
        validate_diag(plan.diag)
        if rung == "dbsr":
            validate_dbsr(plan.dbsr, "dbsr")
            validate_dbsr(plan.lower, "lower", triangular="lower")
            validate_dbsr(plan.upper, "upper", triangular="upper")
            scope = ("ordering.old_to_new", "diag", "dbsr", "lower",
                     "upper")
        elif rung == "sell":
            validate_csr(plan.matrix, "matrix")
            scope = ("ordering.old_to_new", "diag", "matrix")
            if plan.sell_lower is not None:
                # A sell-strategy plan executes through these sealed
                # arrays, so the rung must verify their digests too.
                validate_sell(plan.sell_lower, "sell_lower")
                validate_sell(plan.sell_upper, "sell_upper")
                scope += ("sell_lower", "sell_upper")
        else:
            validate_csr(plan.matrix, "matrix")
            scope = ("ordering.old_to_new", "diag", "matrix")
        if self.integrity:
            check_integrity(plan, artifacts=scope)

    # Rung execution --------------------------------------------------------
    def _run_rung(self, plan, rung: str, op: str,
                  B: np.ndarray) -> np.ndarray:
        if rung == plan.config.strategy:
            return plan.execute(op, B)
        if getattr(plan, "kind", "") == "ilu":
            return self._run_ilu_csr(plan, op, B)
        if rung == "sell":
            return self._run_sell(plan, op, B)
        return self._run_csr(plan, op, B)

    def _run_sell(self, plan, op: str, B: np.ndarray) -> np.ndarray:
        from repro.kernels.symgs_sell import symgs_sell

        # The rung's triangular sweeps execute through the *plan's*
        # resolved backend tier, exactly like the native path — a plan
        # compiled for the counted (or jit) tier keeps that tier while
        # descending the ladder. SpMV/SYMGS on this rung stay on the
        # trusted SELL reference kernels.
        backend = plan._backend()
        rung_backend = backend.name if op in ("lower", "upper") \
            else "reference"
        with trace.span("plan.execute", op=op, strategy="sell",
                        backend=rung_backend,
                        fingerprint=plan.fingerprint[:12]) as sp:
            hooks.fire("plan.execute", strategy="sell", op=op,
                       fingerprint=plan.fingerprint)
            arts = self._sell_artifacts(plan)
            single, Bp = self._extend(plan, B)
            if sp is not None:
                k = int(Bp.shape[1])
                sp.attrs["k"] = k
                sp.set_counts(self._sell_counts(arts, op, k))
            if op in ("lower", "upper"):
                out = backend.sptrsv_sell_multi(
                    arts[op], Bp, plan.diag, forward=(op == "lower"))
            else:
                out = np.empty_like(Bp)
                for j in range(Bp.shape[1]):
                    if op == "spmv":
                        out[:, j] = arts["full"].matvec(Bp[:, j])
                    else:  # symgs from a zero initial guess
                        x = np.zeros_like(Bp[:, j])
                        out[:, j] = symgs_sell(arts["full"], plan.diag,
                                               x, Bp[:, j])
            return self._restrict(plan, out, single)

    @staticmethod
    def _sell_counts(arts: dict, op: str, k: int):
        from repro.kernels.counts import (
            spmv_sell_counts,
            sptrsv_sell_counts,
            symgs_sell_counts,
        )

        if op in ("lower", "upper"):
            return sptrsv_sell_counts(arts[op], divide=True).scaled(k)
        if op == "spmv":
            return spmv_sell_counts(arts["full"]).scaled(k)
        return symgs_sell_counts(arts["full"]).scaled(k)

    def _run_csr(self, plan, op: str, B: np.ndarray,
                 fire: bool = True) -> np.ndarray:
        from repro.kernels.sptrsv_csr import (
            sptrsv_csr_ordered,
            sptrsv_csr_upper_ordered,
        )
        from repro.kernels.symgs import symgs_csr

        # ``fire=False`` is the untraced clean reference path
        # (execute_reference): no hooks, no spans.
        with (trace.span("plan.execute", op=op, strategy="csr",
                         backend="reference",
                         fingerprint=plan.fingerprint[:12])
              if fire else trace.null_span()) as sp:
            if fire:
                hooks.fire("plan.execute", strategy="csr", op=op,
                           fingerprint=plan.fingerprint)
            L, D, U = self._csr_artifacts(plan)
            single, Bp = self._extend(plan, B)
            if sp is not None:
                k = int(Bp.shape[1])
                sp.attrs["k"] = k
                sp.set_counts(self._csr_counts(plan, L, U, op, k))
            out = np.empty_like(Bp)
            for j in range(Bp.shape[1]):
                if op == "lower":
                    out[:, j] = sptrsv_csr_ordered(L, D, Bp[:, j])
                elif op == "upper":
                    out[:, j] = sptrsv_csr_upper_ordered(U, D, Bp[:, j])
                elif op == "spmv":
                    out[:, j] = plan.matrix.matvec(Bp[:, j])
                else:
                    x = np.zeros_like(Bp[:, j])
                    out[:, j] = symgs_csr(plan.matrix, D, x, Bp[:, j])
            return self._restrict(plan, out, single)

    @staticmethod
    def _csr_counts(plan, L, U, op: str, k: int):
        from repro.kernels.counts import (
            spmv_csr_counts,
            sptrsv_csr_counts,
            symgs_csr_counts,
        )

        if op in ("lower", "upper"):
            tri = L if op == "lower" else U
            return sptrsv_csr_counts(tri, divide=True).scaled(k)
        if op == "spmv":
            return spmv_csr_counts(plan.matrix).scaled(k)
        return symgs_csr_counts(plan.matrix).scaled(k)

    def _run_ilu_csr(self, plan, op: str, B: np.ndarray,
                     fire: bool = True) -> np.ndarray:
        """ILU CSR rung: apply the bitwise projection of the factors.

        The block factorization fills zero-padding lanes in, so a
        scalar re-factorization of the padded operator is *not* a
        bitwise twin of the DBSR factors — projecting the factored
        values themselves (:meth:`DBSRILUFactors.to_csr_factors`) is,
        which keeps this rung ``np.array_equal`` to the native one.
        """
        from repro.ilu.ilu0_csr import ilu0_apply_csr

        with (trace.span("plan.execute", op=op, strategy="csr",
                         backend="reference",
                         fingerprint=plan.fingerprint[:12])
              if fire else trace.null_span()) as sp:
            if fire:
                hooks.fire("plan.execute", strategy="csr", op=op,
                           fingerprint=plan.fingerprint)
            factors = self._ilu_csr_factors(plan)
            single, Bp = self._extend(plan, B)
            if sp is not None:
                k = int(Bp.shape[1])
                sp.attrs["k"] = k
                sp.set_counts(self._ilu_csr_counts(factors, k))
            out = np.empty_like(Bp)
            for j in range(Bp.shape[1]):
                out[:, j] = ilu0_apply_csr(factors, Bp[:, j])
            return self._restrict(plan, out, single)

    @staticmethod
    def _ilu_csr_counts(factors, k: int):
        from repro.kernels.counts import sptrsv_csr_counts

        return sptrsv_csr_counts(factors.lower, divide=False).merge(
            sptrsv_csr_counts(factors.upper, divide=True)).scaled(k)

    # Derived artifacts, built once per plan object and cached on it.
    @staticmethod
    def _ilu_csr_factors(plan):
        cached = getattr(plan, "_fallback_ilu_csr", None)
        if cached is None:
            cached = plan.factors.to_csr_factors()
            plan._fallback_ilu_csr = cached
        return cached

    @staticmethod
    def _csr_artifacts(plan):
        cached = getattr(plan, "_fallback_csr", None)
        if cached is None:
            from repro.kernels.sptrsv_csr import split_triangular

            cached = split_triangular(plan.matrix)
            plan._fallback_csr = cached
        return cached

    def _sell_artifacts(self, plan):
        cached = getattr(plan, "_fallback_sell", None)
        if cached is None:
            from repro.formats.sell import SELLMatrix

            L, _, U = self._csr_artifacts(plan)
            cached = {
                "lower": SELLMatrix(L, chunk=plan.bsize),
                "upper": SELLMatrix(U, chunk=plan.bsize),
                "full": SELLMatrix(plan.matrix, chunk=plan.bsize),
            }
            plan._fallback_sell = cached
        return cached

    # Vector mapping (mirrors SolvePlan.execute's extend/restrict).
    @staticmethod
    def _extend(plan, B: np.ndarray):
        B = np.asarray(B, dtype=plan.config.np_dtype)
        single = B.ndim == 1
        return single, plan.extend(B.reshape(plan.n, -1))

    @staticmethod
    def _restrict(plan, Xp: np.ndarray, single: bool) -> np.ndarray:
        out = plan.restrict(Xp)
        return out[:, 0] if single else out

    # Solution verification -------------------------------------------------
    def _check_solution(self, plan, rung: str, op: str, B: np.ndarray,
                        X: np.ndarray) -> None:
        if not np.all(np.isfinite(X)):
            raise NonFiniteError(
                f"{rung} rung produced a non-finite solution for "
                f"op {op!r}")
        if not self.residual_check or op not in ("lower", "upper"):
            return
        L, D, U = self._csr_artifacts(plan)
        single, Bp = self._extend(plan, B)
        _, Xp = self._extend(plan, X)
        T = L if op == "lower" else U
        tol = self.residual_scale * float(
            np.finfo(np.asarray(Xp).dtype).eps)
        for j in range(Bp.shape[1]):
            r = T.matvec(Xp[:, j]) + D * Xp[:, j] - Bp[:, j]
            scale = float(np.linalg.norm(Bp[:, j])) or 1.0
            rel = float(np.linalg.norm(r)) / scale
            if not np.isfinite(rel) or rel > tol:
                raise ResilienceError(
                    f"{rung} solution failed the residual guard: "
                    f"relative residual {rel:.3e} > {tol:.3e} "
                    f"(silent value corruption?)")

    # Reporting -------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "solves": self.solves,
                "faults_detected": self.faults_detected,
                "recovered": self.recovered,
                "recompiles": self.recompiles,
                "exhausted": self.exhausted,
                "depth_histogram": {str(k): v for k, v
                                    in self.depth_histogram.items()},
                "rung_failures": dict(self.rung_failures),
                "seconds_by_depth": {str(k): v for k, v
                                     in self.seconds_by_depth.items()},
                "breaker": self.breaker.stats(),
            }
