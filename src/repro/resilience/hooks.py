"""Fault-injection hook sites — zero-cost when disarmed.

Kernel phases that chaos tests need to reach (pooled worker tasks,
vectorized kernel entry, plan compilation) call :func:`fire` with a
site name. When no injector is installed the call is a module-level
``None`` check and an immediate return: no allocation, no engine op,
no counter mutation — the clean path's op counts are bit-identical to
a build without hooks.

Sites currently wired:

======================  ====================================================
site                    fired from
======================  ====================================================
``parallel.worker``     each group task of
                        :class:`~repro.parallel.executor.ColorParallelExecutor`
``simd.engine``         :class:`~repro.simd.engine.VectorEngine` creation
                        (counted-kernel entry)
``plan.execute``        :meth:`repro.serve.plan.SolvePlan.execute`
``serve.compile``       end of :func:`repro.serve.plan.compile_plan`,
                        *before* compile-time validation
``gateway.shard``       entry of
                        :meth:`repro.gateway.pool.GatewayShard.execute`
                        (shard crash / hang / poison faults; fired from
                        the gateway's worker threads)
``pool.spawn``          :class:`~repro.gateway.pool.ElasticShardPool`
                        shard construction (spawn-failure faults, hit
                        both elastic scale-up and supervisor restarts)
======================  ====================================================

The installed object only needs a ``fire(site, **ctx)`` method — in
practice a :class:`~repro.resilience.faults.FaultInjector`. Install via
:func:`repro.resilience.faults.inject` (a context manager) rather than
calling :func:`install` directly.
"""

from __future__ import annotations

import threading

_active = None
_lock = threading.Lock()


def install(injector) -> None:
    """Arm ``injector`` globally (one at a time; last install wins)."""
    global _active
    with _lock:
        _active = injector


def uninstall(injector=None) -> None:
    """Disarm; pass the injector to only remove if it is still active."""
    global _active
    with _lock:
        if injector is None or _active is injector:
            _active = None


def active():
    """The installed injector, or ``None``."""
    return _active


def fire(site: str, **ctx) -> None:
    """Give the armed injector (if any) a chance to act at ``site``.

    May raise (exception faults), sleep (delay faults), or mutate the
    artifacts passed via ``ctx`` (corruption faults). No-op when
    disarmed.
    """
    inj = _active
    if inj is not None:
        inj.fire(site, **ctx)
