"""Chaos benchmark: inject faults, measure recovery, emit JSON.

``repro chaos-bench`` runs a scripted set of fault scenarios against
the self-healing fallback chain and reports, per scenario, whether the
chain recovered, at which rung of the DBSR → SELL → CSR ladder it
landed, whether the recovered solution is **bit-identical** to the
clean execution of that rung, and the latency the recovery added over
the clean solve. A final scenario drives an *unrecoverable* fault
(persistent compile-time permutation scrambling) into the circuit
breaker and asserts the breaker opens and then fails fast.

Determinism: every scenario uses a pinned ``bsize`` (no wall-clock
autotune), a seeded RHS, and a seeded :class:`FaultPlan`, so reruns
reproduce the same corruption sites and the same recovery path.

The emitted ``BENCH_chaos.json`` top line is ``recovery_rate`` —
recovered-and-bit-identical scenarios over all recoverable scenarios —
which the CI chaos smoke job asserts equals 1.0.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.grids.grid import StructuredGrid
from repro.resilience.errors import CircuitOpen, FallbackExhausted
from repro.resilience.fallback import LADDER, CircuitBreaker, FallbackChain
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault scenario: what breaks, and the op it breaks under.

    ``corrupt`` — apply the plan's corruption specs directly to the
    cached plan before solving (modelling bit rot of cached artifacts);
    hook-delivered faults (kernel exceptions, delays) leave it False.
    """

    name: str
    fault: FaultPlan
    op: str = "lower"
    corrupt: bool = True


def default_scenarios(quick: bool = False) -> list[ChaosScenario]:
    """The scripted recoverable scenarios, covering every fault class."""
    scenarios = [
        ChaosScenario(
            "nan-in-lower-values",
            FaultPlan((FaultSpec("nan_value", target="lower"),),
                      name="nan-lower"), op="lower"),
        ChaosScenario(
            "scrambled-permutation",
            FaultPlan((FaultSpec("scramble_permutation"),),
                      name="scramble"), op="lower"),
        ChaosScenario(
            "bitflip-in-lower-values",
            FaultPlan((FaultSpec("bitflip_value", target="lower"),),
                      name="bitflip"), op="lower"),
        ChaosScenario(
            "dbsr-kernel-crash",
            FaultPlan((FaultSpec("kernel_exception",
                                 strategies=("dbsr",)),),
                      name="crash-dbsr"), op="lower", corrupt=False),
        ChaosScenario(
            "dbsr-and-sell-kernel-crash",
            FaultPlan((FaultSpec("kernel_exception",
                                 strategies=("dbsr", "sell"),
                                 max_fires=2),),
                      name="crash-dbsr-sell"), op="lower",
            corrupt=False),
    ]
    if not quick:
        scenarios += [
            ChaosScenario(
                "inf-in-upper-values",
                FaultPlan((FaultSpec("inf_value", target="upper"),),
                          name="inf-upper"), op="upper"),
            ChaosScenario(
                "bad-block-index",
                FaultPlan((FaultSpec("bad_block_index"),),
                          name="bad-blk"), op="lower"),
            ChaosScenario(
                "nan-in-full-dbsr-values",
                FaultPlan((FaultSpec("nan_value", target="dbsr"),),
                          name="nan-dbsr"), op="spmv"),
            ChaosScenario(
                "nan-in-diag",
                FaultPlan((FaultSpec("nan_value", target="diag"),),
                          name="nan-diag"), op="symgs"),
            ChaosScenario(
                "kernel-delay",
                FaultPlan((FaultSpec("kernel_delay",
                                     delay_seconds=0.005),),
                          name="delay"), op="lower", corrupt=False),
        ]
    return scenarios


def _unrecoverable_plan() -> FaultPlan:
    """Persistent compile-time scrambling: every recompile is poisoned."""
    return FaultPlan(
        (FaultSpec("scramble_permutation", max_fires=None,
                   at_compile=True),),
        name="persistent-scramble")


def _clean_rung_reference(chain: FallbackChain, plan, op: str,
                          B: np.ndarray, rung: str) -> np.ndarray:
    """Clean execution of ``rung`` (no injector armed when called)."""
    if rung == plan.config.strategy:
        return plan.execute(op, B)
    if rung == "sell":
        return chain._run_sell(plan, op, B)
    return chain._run_csr(plan, op, B, fire=False)


def run_scenario(scenario: ChaosScenario, nx: int, stencil: str,
                 bsize: int, rhs_seed: int = 2024) -> dict:
    """Run one scenario on a fresh cache + chain; returns its record."""
    grid = StructuredGrid((nx,) * 3)
    config = PlanConfig(bsize=bsize)
    cache = PlanCache(capacity=4)
    chain = FallbackChain(cache=cache, backoff_base=0.0,
                          breaker=CircuitBreaker(threshold=3))
    plan, _ = cache.get_or_compile(grid, stencil, config)

    rng = np.random.default_rng(rhs_seed)
    B = rng.standard_normal(plan.n).astype(plan.config.np_dtype)

    # Clean references per reachable rung, computed before arming chaos
    # (recompiles are deterministic under a pinned bsize, so a healed
    # plan reproduces these bit-for-bit).
    references = {rung: _clean_rung_reference(chain, plan, scenario.op,
                                              B, rung)
                  for rung in chain._ladder_for(plan)}
    t0 = time.perf_counter()
    plan.execute(scenario.op, B)
    clean_seconds = time.perf_counter() - t0

    with inject(scenario.fault) as injector:
        if scenario.corrupt:
            injector.corrupt_plan(plan)
        t0 = time.perf_counter()
        try:
            result = chain.execute(plan, scenario.op, B)
            error = ""
        except Exception as exc:  # noqa: BLE001 - scenario boundary
            result = None
            error = repr(exc)
        chaos_seconds = time.perf_counter() - t0
        fault_stats = injector.stats()

    recovered = result is not None
    bit_identical = bool(
        recovered and np.array_equal(result.solution,
                                     references[result.rung]))
    return {
        "scenario": scenario.name,
        "fault_kinds": [s.kind for s in scenario.fault.specs],
        "op": scenario.op,
        "recovered": recovered,
        "bit_identical": bit_identical,
        "rung": result.rung if recovered else None,
        "fallback_depth": result.depth if recovered else None,
        "recompiled": bool(result.recompiled) if recovered else False,
        "attempts": list(result.attempts) if recovered else [],
        "error": error,
        "faults_injected": fault_stats["injected"],
        "clean_seconds": clean_seconds,
        "chaos_seconds": chaos_seconds,
        "added_seconds": chaos_seconds - clean_seconds,
        "chain": chain.stats(),
    }


def run_breaker_scenario(nx: int, stencil: str, bsize: int) -> dict:
    """Drive an unrecoverable fault until the circuit breaker opens."""
    grid = StructuredGrid((nx,) * 3)
    config = PlanConfig(bsize=bsize)
    cache = PlanCache(capacity=4)
    breaker = CircuitBreaker(threshold=3, cooldown_seconds=60.0)
    chain = FallbackChain(cache=cache, breaker=breaker, backoff_base=0.0)
    plan, _ = cache.get_or_compile(grid, stencil, config)
    rng = np.random.default_rng(7)
    B = rng.standard_normal(plan.n).astype(plan.config.np_dtype)

    exhausted = 0
    rejected = False
    with inject(_unrecoverable_plan()) as injector:
        injector.corrupt_plan(plan)
        # Every heal attempt recompiles through the poisoned compiler
        # (the fault is persistent and compile-time), so the same plan
        # object keeps failing validation on every rung.
        for _ in range(breaker.threshold):
            try:
                chain.execute(plan, "lower", B)
            except FallbackExhausted:
                exhausted += 1
        try:
            chain.execute(plan, "lower", B)
        except CircuitOpen:
            rejected = True
        except FallbackExhausted:
            rejected = False
    return {
        "scenario": "unrecoverable-persistent-scramble",
        "threshold": breaker.threshold,
        "exhausted_failures": exhausted,
        "breaker_opened": breaker.open_events > 0,
        "fails_fast_when_open": rejected,
        "breaker": breaker.stats(),
    }


def collect_bench_chaos(nx: int = 8, stencil: str = "27pt",
                        bsize: int = 4, quick: bool = False,
                        seed: int = 2024) -> dict:
    """Run every scenario and assemble the ``BENCH_chaos.json`` report."""
    scenarios = default_scenarios(quick=quick)
    records = [run_scenario(s, nx=nx, stencil=stencil, bsize=bsize,
                            rhs_seed=seed)
               for s in scenarios]
    breaker_record = run_breaker_scenario(nx=nx, stencil=stencil,
                                          bsize=bsize)

    n = len(records)
    n_recovered = sum(r["recovered"] and r["bit_identical"]
                      for r in records)
    depth_hist = {str(d): 0 for d in range(len(LADDER))}
    for r in records:
        if r["fallback_depth"] is not None:
            depth_hist[str(r["fallback_depth"])] += 1
    added_by_depth: dict[str, list] = {}
    for r in records:
        if r["recovered"]:
            added_by_depth.setdefault(
                str(r["fallback_depth"]), []).append(r["added_seconds"])
    return {
        "schema": "dbsr-repro/bench-chaos/v1",
        "bench": "chaos",
        "grid": [nx, nx, nx],
        "stencil": stencil,
        "bsize": bsize,
        "quick": quick,
        "n_scenarios": n,
        "recovery_rate": n_recovered / n if n else 0.0,
        "bit_identical_rate": n_recovered / n if n else 0.0,
        "fallback_depth_histogram": depth_hist,
        "mean_added_seconds_by_depth": {
            d: sum(v) / len(v) for d, v in sorted(added_by_depth.items())
        },
        "scenarios": records,
        "circuit_breaker": breaker_record,
    }
