"""Machine identity for per-host perf references.

Perf numbers only compare meaningfully against the same hardware, so
reference files are keyed by a **machine id** derived from a CPU
fingerprint: ISA name, logical core count, and a short digest of the
CPU model string. The id is deliberately coarse — two identical boxes
share one reference file; a container migrating between CPU models
does not silently compare apples to oranges.
"""

from __future__ import annotations

import hashlib
import os
import platform


def _cpu_model() -> str:
    """Best-effort CPU model string (empty when undiscoverable)."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith(("model name", "hardware",
                                            "processor\t: 0")):
                    _, _, value = line.partition(":")
                    value = value.strip()
                    if value and not value.isdigit():
                        return value
    except OSError:
        pass
    return platform.processor() or ""


def machine_fingerprint() -> dict:
    """The raw facts the machine id digests (recorded in reports)."""
    return {
        "arch": platform.machine() or "unknown",
        "cores": os.cpu_count() or 1,
        "cpu_model": _cpu_model(),
        "system": platform.system().lower() or "unknown",
    }


def machine_id(fingerprint: dict | None = None) -> str:
    """Stable short id, e.g. ``x86_64-8c-3fe2a1``.

    The trailing hex digest covers the CPU model string, so same-arch
    hosts with different silicon get distinct reference files.
    """
    fp = machine_fingerprint() if fingerprint is None else fingerprint
    blob = f"{fp['arch']}|{fp['cores']}|{fp['cpu_model']}|{fp['system']}"
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:6]
    return f"{fp['arch']}-{fp['cores']}c-{digest}"
