"""`repro bench all` — run every emitter, judge every check.

One entrypoint drives the whole bench fleet through the registry,
validates each report against its checked-in schema, merges them into
``BENCH_all.json``, and evaluates the standing
:mod:`~repro.regress.default_checks` suite against the per-machine
reference file. Nonzero exit — with each offending check named — is
the regression signal CI keys off.

The merged report also carries two self-verifying sections:

* ``autotune`` — differential evidence that roofline-pruned autotune
  (:func:`repro.simd.autotune.autotune_bsize_result` with
  ``prune="roofline"``) picks the same bsize as exhaustive
  measurement on the seed grids while building ≤ 2 candidate
  structures, plus the measured cold-compile reduction.
* ``fault`` — when a synthetic fault is injected (``--inject-fault
  kernel_delay``), the run records it; committed references must then
  fail, which is how the check layer's teeth are tested end to end.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from .checks import evaluate_checks
from .default_checks import default_checks
from .machine import machine_fingerprint
from .machine import machine_id as _machine_id
from .references import resolve_references, store_references
from .registry import REGISTRY, run_emitter

BENCH_ALL_SCHEMA = "dbsr-repro/bench-all/v1"

#: Grids for the autotune differential section: 7pt keeps several
#: bsizes feasible on small grids, so pruning has real work to do.
AUTOTUNE_GRIDS = ((8, "7pt"), (9, "7pt"), (12, "7pt"))
AUTOTUNE_GRIDS_QUICK = ((8, "7pt"),)

#: Delay injected per kernel execution under ``fault="kernel_delay"``
#: — orders of magnitude above the quick-mode solve times, so the
#: perf checks trip deterministically.
FAULT_DELAY_SECONDS = 0.05


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def _validate(report: dict, schema_path: str) -> str:
    """Schema-validate one report; returns a status string."""
    from repro.observe.schema_check import (
        TraceSchemaError,
        validate_report,
    )
    path = _repo_root() / schema_path
    if not path.is_file():
        return f"schema file missing: {schema_path}"
    try:
        validate_report(report, str(path))
    except TraceSchemaError as exc:
        return f"INVALID: {exc}"
    return "valid"


def _fault_plan(fault: str):
    from repro.resilience.faults import FaultPlan, FaultSpec
    if fault != "kernel_delay":
        raise ValueError(f"unknown fault {fault!r} "
                         "(only 'kernel_delay' is supported)")
    return FaultPlan((FaultSpec(
        "kernel_delay", strategies=None, max_fires=None,
        delay_seconds=FAULT_DELAY_SECONDS),))


def run_emitters(names, quick: bool = False, seed: int = 2024,
                 backend: str = "numpy-fast", parallel: bool = False,
                 registry: dict | None = None) -> tuple:
    """Run the named emitters; returns ``(reports, elapsed)`` dicts.

    ``parallel=True`` runs non-exclusive emitters concurrently on a
    thread pool; emitters flagged ``exclusive`` (global tracer, global
    fault injector) always run sequentially afterwards, so the merged
    report is identical either way.
    """
    table = REGISTRY if registry is None else registry
    reports: dict = {}
    elapsed: dict = {}

    def _run(name: str) -> None:
        t0 = time.perf_counter()
        reports[name] = run_emitter(name, quick=quick, seed=seed,
                                    backend=backend, registry=table)
        elapsed[name] = time.perf_counter() - t0

    shared = [n for n in names if not table[n].exclusive]
    exclusive = [n for n in names if table[n].exclusive]
    if parallel and len(shared) > 1:
        with ThreadPoolExecutor(max_workers=len(shared)) as pool:
            futures = [pool.submit(_run, n) for n in shared]
            for future in futures:
                future.result()  # surface the first failure
    else:
        for name in shared:
            _run(name)
    for name in exclusive:
        _run(name)
    return reports, elapsed


def run_autotune_section(quick: bool = False,
                         machine: str = "kp920",
                         n_workers: int = 2) -> dict:
    """Differential roofline-vs-exhaustive autotune evidence."""
    from repro.experiments.base import machine_by_name
    from repro.grids.grid import StructuredGrid
    from repro.grids.stencils import stencil_by_name
    from repro.simd.autotune import autotune_bsize_result

    model = machine_by_name(machine)
    grids = AUTOTUNE_GRIDS_QUICK if quick else AUTOTUNE_GRIDS
    rows = []
    for nx, stencil in grids:
        grid = StructuredGrid((nx,) * 3)
        st = stencil_by_name(stencil)
        exhaustive = autotune_bsize_result(
            grid, st, model, n_workers=n_workers,
            prune="exhaustive")
        roofline = autotune_bsize_result(
            grid, st, model, n_workers=n_workers,
            prune="roofline")
        rows.append({
            "grid": [nx] * 3,
            "stencil": stencil,
            "exhaustive_bsize": exhaustive.bsize,
            "roofline_bsize": roofline.bsize,
            "picks_match": exhaustive.bsize == roofline.bsize,
            "exhaustive_measured": exhaustive.measured_candidates,
            "roofline_measured": roofline.measured_candidates,
            "exhaustive_seconds": exhaustive.seconds,
            "roofline_seconds": roofline.seconds,
            "ranked": roofline.ranked,
        })
    total_exhaustive = sum(r["exhaustive_seconds"] for r in rows)
    total_roofline = sum(r["roofline_seconds"] for r in rows)
    gates = {
        "picks_match": all(r["picks_match"] for r in rows),
        "pruned_measures_at_most_2": all(
            r["roofline_measured"] <= 2 for r in rows),
        "compile_time_reduced": total_roofline < total_exhaustive,
    }
    return {
        "machine": machine,
        "grids": rows,
        "exhaustive_seconds": total_exhaustive,
        "roofline_seconds": total_roofline,
        "compile_reduction": (1.0 - total_roofline / total_exhaustive
                              if total_exhaustive > 0 else 0.0),
        "gates": gates,
        "ok": all(gates.values()),
    }


def run_bench_all(quick: bool = False, seed: int = 2024,
                  backend: str = "numpy-fast",
                  out: str | None = "BENCH_all.json",
                  emit_individual: bool = True,
                  only=None, skip=(), parallel: bool = False,
                  references_dir: str = "references",
                  machine_id: str | None = None,
                  tolerance_scale: float = 1.0,
                  update_references: bool = False,
                  autotune: bool = True,
                  fault: str | None = None,
                  registry: dict | None = None,
                  checks: list | None = None) -> dict:
    """Run the fleet, evaluate checks, emit the merged report.

    Returns the merged report dict; ``report["ok"]`` is the exit
    signal (regressions, gate failures, schema mismatches, or a
    failed autotune differential all clear it).
    """
    from repro.resilience.faults import inject
    from repro.runtime.metrics import write_bench_json

    table = REGISTRY if registry is None else registry
    names = [n for n in (only if only else table)
             if n in table and n not in set(skip or ())]
    unknown = [n for n in (only or ()) if n not in table]
    if unknown:
        raise KeyError(f"unknown emitters {unknown}; "
                       f"known: {', '.join(table)}")

    mode = "quick" if quick else "full"
    mid = machine_id or _machine_id()
    t0 = time.perf_counter()

    if fault is not None:
        with inject(_fault_plan(fault)):
            reports, elapsed = run_emitters(
                names, quick=quick, seed=seed, backend=backend,
                parallel=parallel, registry=table)
    else:
        reports, elapsed = run_emitters(
            names, quick=quick, seed=seed, backend=backend,
            parallel=parallel, registry=table)

    validation = {name: _validate(reports[name],
                                  table[name].schema_path)
                  for name in names}

    autotune_section = (run_autotune_section(quick=quick)
                        if autotune else None)

    suite = list(default_checks() if checks is None else checks)
    suite = [c for c in suite if c.report in reports]
    references, ref_source = resolve_references(
        references_dir, mid, mode)
    results, updated = evaluate_checks(
        suite, reports, references,
        tolerance_scale=tolerance_scale, update=update_references)
    if update_references:
        store_references(references_dir, mid, mode, updated,
                         fingerprint=machine_fingerprint()
                         if machine_id is None else None)

    regressions = [r.check.name for r in results if r.failed]
    schema_ok = all(v == "valid" for v in validation.values())
    checks_ok = not regressions
    autotune_ok = autotune_section is None or autotune_section["ok"]

    report = {
        "schema": BENCH_ALL_SCHEMA,
        "machine": {"id": mid, "fingerprint": machine_fingerprint()},
        "config": {
            "mode": mode,
            "seed": seed,
            "backend": backend,
            "parallel": parallel,
            "tolerance_scale": tolerance_scale,
            "update_references": update_references,
            "references_source": ref_source,
            "fault": fault,
            "emitters": names,
        },
        "reports": reports,
        "validation": validation,
        "autotune": autotune_section,
        "checks": [r.to_dict() for r in results],
        "regressions": regressions,
        "elapsed_seconds": {**elapsed,
                            "total": time.perf_counter() - t0},
        "ok": schema_ok and checks_ok and autotune_ok,
    }

    if emit_individual:
        for name in names:
            write_bench_json(reports[name], table[name].out_default)
    if out:
        write_bench_json(report, out)
    return report


def summarize(report: dict) -> str:
    """Human-readable outcome for the CLI."""
    lines = []
    counts: dict = {}
    for c in report["checks"]:
        counts[c["status"]] = counts.get(c["status"], 0) + 1
    status = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    lines.append(f"bench all [{report['config']['mode']}] on "
                 f"{report['machine']['id']}: {status or 'no checks'}")
    for name, verdict in sorted(report["validation"].items()):
        if verdict != "valid":
            lines.append(f"  schema {name}: {verdict}")
    auto = report.get("autotune")
    if auto:
        lines.append(
            f"  autotune: picks_match={auto['gates']['picks_match']} "
            f"compile_reduction={auto['compile_reduction']:.1%}")
    for c in report["checks"]:
        if c["status"] in ("fail", "gate_fail", "missing_value"):
            lines.append(f"  REGRESSION {c['name']}: "
                         f"{c['message'] or c['status']}")
    lines.append(f"  ok={report['ok']}")
    return "\n".join(lines)
