"""Perf-regression harness: bench registry, checks, references.

``repro bench all`` runs every BENCH emitter through one registry,
merges the reports into ``BENCH_all.json``, and judges a declarative
:class:`~repro.regress.checks.PerfCheck` suite against per-machine
reference files — the standing tier-2 verify for every PR. See
``docs/regression.md``.
"""

from .bench_all import run_bench_all, summarize
from .checks import (
    CheckResult,
    PerfCheck,
    compare,
    evaluate_checks,
    extract_path,
    is_missing,
    ratchet,
    tolerance_bounds,
)
from .default_checks import default_checks
from .machine import machine_fingerprint, machine_id
from .references import (
    load_reference_file,
    resolve_references,
    store_references,
)
from .registry import (
    REGISTRY,
    BenchEmitter,
    add_common_bench_args,
    get_emitter,
    resolve_common_kwargs,
    run_emitter,
)

__all__ = [
    "BenchEmitter",
    "CheckResult",
    "PerfCheck",
    "REGISTRY",
    "add_common_bench_args",
    "compare",
    "default_checks",
    "evaluate_checks",
    "extract_path",
    "get_emitter",
    "is_missing",
    "load_reference_file",
    "machine_fingerprint",
    "machine_id",
    "ratchet",
    "resolve_common_kwargs",
    "resolve_references",
    "run_bench_all",
    "run_emitter",
    "store_references",
    "summarize",
    "tolerance_bounds",
]
