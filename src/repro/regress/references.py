"""Per-machine perf reference files.

One JSON file per machine id under ``references/``, holding the
baseline scalar for every perf check, keyed by run mode (``full`` vs
``quick`` configs measure different workloads, so their baselines
never mix):

.. code-block:: json

    {
      "schema": "dbsr-repro/perf-references/v1",
      "machine_id": "x86_64-8c-3fe2a1",
      "fingerprint": {"arch": "x86_64", "cores": 8, ...},
      "values": {
        "full":  {"runtime.sptrsv_lower.seconds": 0.0012, ...},
        "quick": {"runtime.sptrsv_lower.seconds": 0.0004, ...}
      }
    }

Resolution order when loading: the exact machine file, then the
``ci-default.json`` fallback (CI runners are ephemeral hardware;
their checks run with widened tolerances instead of per-host
baselines). A missing file is not an error — every check simply lands
on ``no_reference`` until ``--update-references`` captures one.
"""

from __future__ import annotations

import json
from pathlib import Path

from .machine import machine_fingerprint, machine_id

REFERENCES_SCHEMA = "dbsr-repro/perf-references/v1"

#: Shared fallback baseline for hosts without their own file.
FALLBACK_ID = "ci-default"


def reference_path(references_dir, mid: str) -> Path:
    return Path(references_dir) / f"{mid}.json"


def load_reference_file(path) -> dict | None:
    """Parse one reference file; ``None`` when absent."""
    path = Path(path)
    if not path.is_file():
        return None
    with path.open() as fh:
        doc = json.load(fh)
    if doc.get("schema") != REFERENCES_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {REFERENCES_SCHEMA!r}, "
            f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("values"), dict):
        raise ValueError(f"{path}: missing values mapping")
    return doc


def resolve_references(references_dir, mid: str,
                       mode: str) -> tuple:
    """Reference values for ``(machine, mode)`` plus their provenance.

    Returns ``(values, source)`` where ``source`` names which file
    supplied them (``mid``, ``"ci-default"``, or ``None`` when neither
    file exists).
    """
    for candidate in (mid, FALLBACK_ID):
        doc = load_reference_file(
            reference_path(references_dir, candidate))
        if doc is not None:
            values = doc["values"].get(mode, {})
            return dict(values), candidate
    return {}, None


def store_references(references_dir, mid: str, mode: str,
                     values: dict,
                     fingerprint: dict | None = None) -> Path:
    """Write ``values`` for one ``(machine, mode)``, keeping the other
    mode's entries intact, and return the file path."""
    path = reference_path(references_dir, mid)
    doc = load_reference_file(path)
    if doc is None:
        doc = {"schema": REFERENCES_SCHEMA, "machine_id": mid,
               "fingerprint": fingerprint
               or (machine_fingerprint()
                   if mid == machine_id() else {}),
               "values": {}}
    doc["values"][mode] = {
        name: values[name] for name in sorted(values)
        if values[name] is not None
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
