"""The standing check suite `repro bench all` evaluates.

Two families:

* **perf** checks — machine-dependent scalars (kernel seconds, cache
  hit rates) judged against ``references/<machine-id>.json`` with
  asymmetric tolerances. Timings get a tight-ish upper bound (a
  regression) and a very loose lower bound (faster is suspicious only
  when extreme); rates invert.
* **gate** checks — machine-independent invariants the emitters
  already compute (bitwise identity, recovery rates, admission
  behaviour). Gates need no reference file and fail identically on
  every host.

Names are stable identifiers: they key the reference files, so rename
one only with a reference migration.
"""

from __future__ import annotations

from .checks import PerfCheck

#: Wide-but-real timing band: flag a 2x slowdown, tolerate wobble.
_TIME = {"lower": -0.9, "upper": 1.0, "better": "lower"}
#: Rates are tight: deterministic workloads barely move them.
_RATE = {"lower": -0.05, "upper": 0.10, "better": "higher"}


def default_checks() -> list:
    """Fresh list of the standing checks (callers may extend)."""
    return [
        # -- runtime kernels ------------------------------------------------
        PerfCheck("runtime.sptrsv_lower.seconds", "runtime",
                  "kernels.sptrsv_dbsr_lower.seconds", **_TIME),
        PerfCheck("runtime.sptrsv_upper.seconds", "runtime",
                  "kernels.sptrsv_dbsr_upper.seconds", **_TIME),
        PerfCheck("runtime.spmv_dbsr.seconds", "runtime",
                  "kernels.spmv_dbsr.seconds", **_TIME),
        PerfCheck("runtime.symgs_dbsr.seconds", "runtime",
                  "kernels.symgs_dbsr.seconds", **_TIME),
        PerfCheck("runtime.spmv_dbsr.gather_free", "runtime",
                  "kernels.spmv_dbsr.counts.ops.vgather",
                  kind="gate", equals=0),
        # -- serving --------------------------------------------------------
        PerfCheck("serve.solve.seconds", "serve",
                  "phases.solve.seconds", **_TIME),
        PerfCheck("serve.compile.seconds", "serve",
                  "phases.compile.seconds", **_TIME),
        PerfCheck("serve.cache.hit_rate", "serve",
                  "cache.hit_rate", **_RATE),
        PerfCheck("serve.amortized_setup.seconds", "serve",
                  "amortization.amortized_setup_seconds_per_request",
                  **_TIME),
        PerfCheck("serve.batch.bitwise", "serve",
                  "batch_scaling.all_bitwise_equal", kind="gate"),
        # -- ILU serving ----------------------------------------------------
        PerfCheck("ilu.cold_compile.seconds", "ilu",
                  "repack.cold_compile_seconds", **_TIME),
        PerfCheck("ilu.refresh.seconds", "ilu",
                  "repack.refresh_seconds_mean", **_TIME),
        PerfCheck("ilu.cache.hit_rate", "ilu",
                  "cache.hit_rate", **_RATE),
        PerfCheck("ilu.repack.amortized", "ilu",
                  "repack.refresh_le_half_cold", kind="gate"),
        PerfCheck("ilu.repack.bitwise", "ilu",
                  "repack.repack_bitwise_equals_cold", kind="gate"),
        PerfCheck("ilu.rung.bitwise", "ilu",
                  "repack.apply_bitwise_equals_csr_rung", kind="gate"),
        PerfCheck("ilu.sibling.isolated", "ilu",
                  "sibling_isolation.isolated", kind="gate"),
        # -- chaos ----------------------------------------------------------
        PerfCheck("chaos.recovery_rate", "chaos",
                  "recovery_rate", kind="gate", equals=1.0),
        PerfCheck("chaos.bit_identical_rate", "chaos",
                  "bit_identical_rate", kind="gate", equals=1.0),
        PerfCheck("chaos.breaker_opened", "chaos",
                  "circuit_breaker.breaker_opened", kind="gate"),
        # -- trace ----------------------------------------------------------
        PerfCheck("trace.n_spans", "trace", "n_spans",
                  lower=-0.1, upper=0.1, better=None),
        # -- shard ----------------------------------------------------------
        PerfCheck("shard.ok", "shard", "ok", kind="gate"),
        PerfCheck("shard.hit_rate_min", "shard",
                  "per_shard_hit_rate_min", **_RATE),
        # -- gateway --------------------------------------------------------
        PerfCheck("gateway.ok", "gateway", "ok", kind="gate"),
        PerfCheck("gateway.admission.rejected", "gateway",
                  "admission.rejected", kind="gate"),
        PerfCheck("gateway.streaming.partial_first", "gateway",
                  "streaming.partial_before_complete", kind="gate"),
        # -- gateway chaos --------------------------------------------------
        PerfCheck("gateway_chaos.ok", "gateway-chaos", "ok",
                  kind="gate"),
        PerfCheck("gateway_chaos.crash_recovery", "gateway-chaos",
                  "crash_storm.recovery_rate", kind="gate",
                  equals=1.0),
        PerfCheck("gateway_chaos.hedge_bitwise", "gateway-chaos",
                  "hedging.bitwise", kind="gate"),
    ]
