"""ReFrame-style perf checks: extract, compare, ratchet.

A :class:`PerfCheck` names one scalar in one bench report (a
*path* into the JSON), and how to judge it:

* ``kind="gate"`` — the value must equal ``equals`` (defaulting to
  truthiness). Gates are machine-independent invariants — recovery
  rates, bit-identity flags — and need no reference file.
* ``kind="perf"`` — the value compares against a per-machine
  *reference* under asymmetric relative ``(lower, upper)`` tolerances,
  the ReFrame idiom (``(ref, -0.1, 0.5)`` == "no more than 10% below,
  50% above"). References live in ``references/<machine-id>.json``
  and only ever *tighten* automatically (see :func:`ratchet`).

Paths are dot-separated with two extensions over plain keys: a bare
integer segment indexes a list (``scenarios.0.recovered``) and a
``[key=value]`` segment selects the first object in a list whose
``key`` stringifies to ``value`` (``table.[name=serve.solve].calls``
— note the selector may itself contain dots).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field, replace

#: Sentinel distinguishing "path missing" from a legitimate ``None``.
_MISSING = object()

_SELECTOR = re.compile(r"^\[([^=\[\]]+)=(.*)\]$")

#: Statuses a check evaluation can land on.
CHECK_STATUSES = ("pass", "fail", "no_reference", "captured",
                  "missing_value", "gate_pass", "gate_fail")


def split_path(path: str) -> list:
    """Tokenize a check path: keys, integer indices, ``[k=v]`` selectors.

    Selectors are atomic — the dots inside ``[name=serve.solve]`` do
    not split — so bracket segments are carved out first and the
    remainder splits on dots.
    """
    tokens: list = []
    rest = path
    while rest:
        if rest.startswith("["):
            end = rest.find("]")
            if end < 0:
                raise ValueError(f"unclosed selector in path {path!r}")
            tokens.append(rest[:end + 1])
            rest = rest[end + 1:].lstrip(".")
            continue
        head, bracket, tail = rest.partition(".[")
        if bracket:
            tokens.extend(t for t in head.split(".") if t != "")
            rest = "[" + tail
        else:
            tokens.extend(t for t in head.split(".") if t != "")
            rest = ""
    if not tokens:
        raise ValueError(f"empty check path {path!r}")
    return tokens


def extract_path(obj, path: str):
    """Walk ``path`` into ``obj``; returns ``_MISSING`` when absent.

    Never raises on absent/mistyped steps — a missing scalar is a
    *reportable* condition (status ``missing_value``), not a crash in
    the middle of a bench run.
    """
    node = obj
    for token in split_path(path):
        sel = _SELECTOR.match(token)
        if sel is not None:
            key, want = sel.group(1), sel.group(2)
            if not isinstance(node, list):
                return _MISSING
            for item in node:
                if isinstance(item, dict) and str(item.get(key)) == want:
                    node = item
                    break
            else:
                return _MISSING
            continue
        if isinstance(node, list):
            try:
                index = int(token)
            except ValueError:
                return _MISSING
            if not -len(node) <= index < len(node):
                return _MISSING
            node = node[index]
            continue
        if isinstance(node, dict):
            if token not in node:
                return _MISSING
            node = node[token]
            continue
        return _MISSING
    return node


def is_missing(value) -> bool:
    return value is _MISSING


@dataclass(frozen=True)
class PerfCheck:
    """One named scalar extraction + judgment rule.

    Attributes
    ----------
    name:
        Unique check id; also the key in reference files.
    report:
        Emitter name whose report the path walks (see
        :mod:`repro.regress.registry`).
    path:
        Path into the report (see module docstring for syntax).
    kind:
        ``"perf"`` (reference + tolerance) or ``"gate"`` (invariant).
    lower, upper:
        Asymmetric relative tolerances, ``lower <= 0 <= upper``. The
        admissible band around reference ``r`` is
        ``[r + lower*|r|, r + upper*|r|]``.
    better:
        ``"lower"`` / ``"higher"`` — which direction is an improvement
        (drives reference ratcheting); ``None`` pins a two-sided
        deterministic quantity whose reference never auto-moves.
    equals:
        Gate expectation; ``None`` means plain truthiness.
    required:
        A failing optional check is reported but does not fail the run.
    """

    name: str
    report: str
    path: str
    kind: str = "perf"
    lower: float = -0.5
    upper: float = 0.5
    better: str | None = None
    equals: object = None
    required: bool = True

    def __post_init__(self):
        if self.kind not in ("perf", "gate"):
            raise ValueError(f"unknown check kind {self.kind!r}")
        if self.kind == "perf":
            if not (self.lower <= 0.0 <= self.upper):
                raise ValueError(
                    f"{self.name}: tolerances must satisfy "
                    f"lower <= 0 <= upper, got ({self.lower}, "
                    f"{self.upper})")
            if self.better not in (None, "lower", "higher"):
                raise ValueError(
                    f"{self.name}: better must be None/'lower'/"
                    f"'higher', got {self.better!r}")
        split_path(self.path)  # fail fast on malformed paths

    def scaled(self, tolerance_scale: float) -> "PerfCheck":
        """Widen the band by ``tolerance_scale`` (loose-CI mode)."""
        if tolerance_scale == 1.0 or self.kind != "perf":
            return self
        if tolerance_scale <= 0:
            raise ValueError("tolerance_scale must be positive")
        return replace(self, lower=self.lower * tolerance_scale,
                       upper=self.upper * tolerance_scale)


def tolerance_bounds(reference: float, lower: float,
                     upper: float) -> tuple:
    """Admissible ``(lo, hi)`` band around ``reference``.

    Relative to ``|reference|`` so the band orients the same way for
    negative references; a zero reference collapses the band to the
    point ``{0}`` — the only value "within relative tolerance of
    zero" is zero itself.
    """
    spread = abs(reference)
    return (reference + lower * spread, reference + upper * spread)


def compare(value, reference, lower: float, upper: float) -> bool:
    """Does ``value`` sit inside the tolerance band of ``reference``?

    Non-finite values never pass (a NaN timing is a broken
    measurement, not a fast one); a non-finite reference admits
    nothing — it must be repaired, not matched.
    """
    try:
        value = float(value)
        reference = float(reference)
    except (TypeError, ValueError):
        return False
    if not (math.isfinite(value) and math.isfinite(reference)):
        return False
    lo, hi = tolerance_bounds(reference, lower, upper)
    return lo <= value <= hi


def ratchet(old: float | None, measured: float,
            better: str | None) -> float | None:
    """The reference value after observing ``measured``.

    References only ever *tighten*: a lower-is-better reference moves
    down to a faster measurement and never back up; higher-is-better
    mirrors. Direction-less references stick at first capture. A
    non-finite measurement never replaces anything. Returns ``None``
    only when there is nothing to store (no old value, bad sample).
    """
    measured = float(measured)
    if not math.isfinite(measured):
        return old
    if old is None:
        return measured
    old = float(old)
    if not math.isfinite(old):
        return measured
    if better == "lower":
        return min(old, measured)
    if better == "higher":
        return max(old, measured)
    return old


@dataclass
class CheckResult:
    """Outcome of evaluating one check against one report set."""

    check: PerfCheck
    status: str
    value: object = None
    reference: object = None
    bounds: tuple | None = None
    message: str = ""

    @property
    def ok(self) -> bool:
        """Does this result keep the run green?"""
        if self.status in ("pass", "gate_pass", "captured",
                           "no_reference"):
            return True
        return not self.check.required

    @property
    def failed(self) -> bool:
        return self.status in ("fail", "gate_fail", "missing_value") \
            and self.check.required

    def to_dict(self) -> dict:
        def _num(v):
            if isinstance(v, float) and not math.isfinite(v):
                return str(v)
            return v

        return {
            "name": self.check.name,
            "report": self.check.report,
            "path": self.check.path,
            "kind": self.check.kind,
            "status": self.status,
            "value": _num(self.value),
            "reference": _num(self.reference),
            "bounds": (None if self.bounds is None
                       else [_num(self.bounds[0]), _num(self.bounds[1])]),
            "required": self.check.required,
            "message": self.message,
        }


def evaluate_check(check: PerfCheck, reports: dict,
                   references: dict,
                   tolerance_scale: float = 1.0,
                   update: bool = False) -> CheckResult:
    """Judge one check; pure function of its inputs."""
    report = reports.get(check.report)
    if report is None:
        return CheckResult(check, "missing_value",
                           message=f"report {check.report!r} absent")
    value = extract_path(report, check.path)
    if is_missing(value):
        return CheckResult(check, "missing_value",
                           message=f"path {check.path!r} absent from "
                                   f"{check.report} report")
    if check.kind == "gate":
        expected = True if check.equals is None else check.equals
        passed = (bool(value) if check.equals is None
                  else value == expected)
        return CheckResult(
            check, "gate_pass" if passed else "gate_fail",
            value=value, reference=expected,
            message="" if passed
            else f"gate expected {expected!r}, got {value!r}")

    scaled = check.scaled(tolerance_scale)
    reference = references.get(check.name)
    if update:
        return CheckResult(check, "captured", value=value,
                           reference=ratchet(reference, float(value),
                                             check.better)
                           if _is_number(value) else reference,
                           message="reference captured")
    if reference is None:
        return CheckResult(check, "no_reference", value=value,
                           message="no reference for this machine "
                                   "(run with --update-references)")
    if not _is_number(value):
        return CheckResult(check, "fail", value=value,
                           reference=reference,
                           message=f"non-numeric value {value!r}")
    bounds = tolerance_bounds(float(reference), scaled.lower,
                              scaled.upper)
    passed = compare(float(value), float(reference), scaled.lower,
                     scaled.upper)
    return CheckResult(
        check, "pass" if passed else "fail", value=value,
        reference=reference, bounds=bounds,
        message="" if passed else
        f"{check.name}: value {value} outside "
        f"[{bounds[0]:.6g}, {bounds[1]:.6g}] "
        f"(reference {reference}, tolerances ({scaled.lower:+g}, "
        f"{scaled.upper:+g}))")


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) \
        and not isinstance(value, bool) \
        and math.isfinite(float(value))


def evaluate_checks(checks, reports: dict, references: dict,
                    tolerance_scale: float = 1.0,
                    update: bool = False) -> tuple:
    """Judge every check; returns ``(results, updated_references)``.

    ``updated_references`` is the reference mapping after ratcheting
    the measured values in (only meaningful under ``update=True``, but
    always returned so callers need no branching).
    """
    results = []
    updated = dict(references)
    names = [c.name for c in checks]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise ValueError(f"duplicate check names: {sorted(dupes)}")
    for check in checks:
        result = evaluate_check(check, reports, references,
                                tolerance_scale=tolerance_scale,
                                update=update)
        results.append(result)
        if update and check.kind == "perf" \
                and result.status == "captured" \
                and _is_number(result.value):
            updated[check.name] = ratchet(references.get(check.name),
                                          float(result.value),
                                          check.better)
    return results, updated
