"""Unified registry of every bench emitter in the repo.

Eight subsystems each grew their own ``BENCH_*.json`` emitter across
the PR stack; this registry is the single table describing all of them —
how to import the collector lazily, which CLI command fronts it,
where its artifact lands, which schema validates it, and the
*full*/*quick* kwarg presets — so ``repro bench all`` (and the CI
smoke job) can drive the whole fleet uniformly instead of shelling
out to seven hand-rolled subcommands.

Emitters marked ``exclusive`` mutate process-global state while they
run (the trace emitter installs the global tracer; the chaos emitters
arm the global fault injector) and must never execute concurrently
with any other emitter.
"""

from __future__ import annotations

import argparse
import importlib
from dataclasses import dataclass, field

#: Common flags hoisted out of the per-command CLI handlers.
COMMON_FLAGS = ("--out", "--seed", "--backend")

DEFAULT_SEED = 2024
DEFAULT_BACKEND = "numpy-fast"


@dataclass(frozen=True)
class BenchEmitter:
    """One bench emitter: collector + CLI surface + presets."""

    name: str
    cli_command: str
    out_default: str
    schema_path: str
    # Lazy "module:function" spec, imported at call time so the CLI
    # stays import-light; tests may pass a plain callable instead.
    collect: object = None
    full_kwargs: dict = field(default_factory=dict)
    quick_kwargs: dict = field(default_factory=dict)
    supports_seed: bool = True
    supports_backend: bool = False
    exclusive: bool = False

    def collector(self):
        if callable(self.collect):
            return self.collect
        module_name, _, func_name = self.collect.partition(":")
        module = importlib.import_module(module_name)
        return getattr(module, func_name)

    def kwargs(self, quick: bool = False) -> dict:
        return dict(self.quick_kwargs if quick else self.full_kwargs)


REGISTRY: dict = {}


def register(emitter: BenchEmitter) -> BenchEmitter:
    if emitter.name in REGISTRY:
        raise ValueError(f"duplicate bench emitter {emitter.name!r}")
    REGISTRY[emitter.name] = emitter
    return emitter


register(BenchEmitter(
    name="runtime",
    cli_command="bench-runtime",
    out_default="BENCH_runtime.json",
    schema_path="tests/runtime/bench_runtime.schema.json",
    collect="repro.runtime.metrics:collect_bench_runtime",
    quick_kwargs={"nx": 6, "repeats": 1},
    supports_backend=True,
))
register(BenchEmitter(
    name="serve",
    cli_command="serve-bench",
    out_default="BENCH_serve.json",
    schema_path="tests/serve/bench_serve.schema.json",
    collect="repro.serve.bench:collect_bench_serve",
    quick_kwargs={"nx": 6, "n_requests": 12},
    supports_backend=True,
))
register(BenchEmitter(
    name="chaos",
    cli_command="chaos-bench",
    out_default="BENCH_chaos.json",
    schema_path="tests/resilience/bench_chaos.schema.json",
    collect="repro.resilience.chaos:collect_bench_chaos",
    quick_kwargs={"nx": 6, "quick": True},
    exclusive=True,  # arms the process-global fault injector
))
register(BenchEmitter(
    name="trace",
    cli_command="trace",
    out_default="BENCH_trace.json",
    schema_path="tests/observe/bench_trace.schema.json",
    collect="repro.observe.report:collect_bench_trace",
    quick_kwargs={"nx": 6, "k": 2},
    exclusive=True,  # installs the process-global tracer
))
register(BenchEmitter(
    name="shard",
    cli_command="shard-bench",
    out_default="BENCH_shard.json",
    schema_path="tests/shard/bench_shard.schema.json",
    collect="repro.shard.bench:collect_bench_shard",
    quick_kwargs={"nx": 6, "n_ranks": 8, "n_requests": 12},
))
register(BenchEmitter(
    name="gateway",
    cli_command="gateway-bench",
    out_default="BENCH_gateway.json",
    schema_path="tests/gateway/bench_gateway.schema.json",
    collect="repro.gateway.bench:collect_bench_gateway",
    quick_kwargs={"nx": 5, "n_requests": 10, "k_stream": 4},
))
register(BenchEmitter(
    name="ilu",
    cli_command="ilu-bench",
    out_default="BENCH_ilu.json",
    schema_path="tests/serve/bench_ilu.schema.json",
    collect="repro.serve.ilu_bench:collect_bench_ilu",
    quick_kwargs={"nx": 6, "n_values": 2, "n_requests": 8},
    supports_backend=True,
))
register(BenchEmitter(
    name="gateway-chaos",
    cli_command="gateway-chaos-bench",
    out_default="BENCH_gateway_chaos.json",
    schema_path="tests/supervise/bench_gateway_chaos.schema.json",
    collect="repro.supervise.bench:collect_bench_gateway_chaos",
    quick_kwargs={"nx": 4, "n_requests": 6},
    exclusive=True,  # injects faults through the global injector
))

#: Canonical run order: exclusive emitters interleave fine
#: sequentially; the parallel runner serialises them explicitly.
EMITTER_ORDER = tuple(REGISTRY)


def get_emitter(name: str) -> BenchEmitter:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown bench emitter {name!r}; "
            f"known: {', '.join(REGISTRY)}") from None


def run_emitter(name: str, quick: bool = False,
                seed: int | None = None,
                backend: str | None = None,
                overrides: dict | None = None,
                registry: dict | None = None) -> dict:
    """Import the collector lazily and run one emitter's preset.

    ``seed``/``backend`` apply only where the emitter supports them;
    ``overrides`` (last) win over the preset kwargs. ``registry``
    swaps in a scoped emitter table for tests.
    """
    table = REGISTRY if registry is None else registry
    emitter = table[name] if name in table else get_emitter(name)
    kwargs = emitter.kwargs(quick)
    if seed is not None and emitter.supports_seed:
        kwargs["seed"] = seed
    if backend is not None and emitter.supports_backend:
        kwargs["backend"] = backend
    if overrides:
        kwargs.update(overrides)
    return emitter.collector()(**kwargs)


def add_common_bench_args(parser: argparse.ArgumentParser,
                          emitter: BenchEmitter) -> None:
    """Attach the hoisted ``--out/--seed/--backend`` flags.

    Every bench subcommand gets the same three spellings; ``--backend``
    only appears where the collector accepts one, so ``--help`` stays
    honest.
    """
    parser.add_argument("--out", default=emitter.out_default,
                        help=f"output path "
                             f"(default {emitter.out_default})")
    if emitter.supports_seed:
        parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                            help="workload RNG seed "
                                 f"(default {DEFAULT_SEED})")
    if emitter.supports_backend:
        parser.add_argument("--backend", default=DEFAULT_BACKEND,
                            choices=("numpy-counted", "numpy-fast",
                                     "numba"),
                            help="kernel backend tier "
                                 f"(default {DEFAULT_BACKEND})")


def resolve_common_kwargs(emitter: BenchEmitter, args) -> dict:
    """Map parsed common flags back onto collector kwargs."""
    kwargs: dict = {}
    if emitter.supports_seed:
        kwargs["seed"] = args.seed
    if emitter.supports_backend:
        kwargs["backend"] = args.backend
    return kwargs
