"""AST lint guarding the instrumented kernels' op accounting.

The paper's core claim is an instruction-mix argument: DBSR kernels
issue contiguous loads where CSR/SELL kernels gather. That claim is
only as good as the accounting, so any *raw* fancy-indexing
(``arr[idx_array]``) inside an engine-instrumented kernel is traffic
the :class:`~repro.simd.counters.OpCounter` never sees — op counts
silently drift from what the kernel does.

This linter walks every function in ``src/repro/kernels/`` that takes
an ``engine`` parameter and flags Load-context subscripts whose index
is an *array expression* (an index-stream slice like
``csr.indices[lo:hi]``, or a name bound to one) instead of a scalar —
those accesses must route through :meth:`VectorEngine.gather` (or be
explicitly accounted and waived with a ``# gather-ok`` comment on the
same line).

Invoked by the test suite (``tests/test_kernel_lint.py``) and runnable
standalone::

    PYTHONPATH=src python -m repro.utils.kernel_lint
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass

WAIVER_TOKEN = "gather-ok"

_SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
KERNELS_DIR = os.path.join(_SRC_ROOT, "kernels")
#: The backend tiers' kernel bodies (numba loop nests included) carry
#: the same gather-free claim; the suite lints them with
#: ``require_engine=False`` since those bodies take no engine.
BACKENDS_DIR = os.path.join(_SRC_ROOT, "backends")


@dataclass
class LintViolation:
    """One un-accounted fancy-indexing site."""

    path: str
    line: int
    function: str
    snippet: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: in {self.function}(): raw "
                f"fancy-indexing `{self.snippet}` bypasses "
                f"VectorEngine.gather (add `# {WAIVER_TOKEN}: <why>` "
                f"if the traffic is accounted another way)")


def _is_array_index(node: ast.expr, array_names: set[str]) -> bool:
    """Is this index expression an array (fancy indexing) rather than
    a scalar/slice?"""
    if isinstance(node, ast.Subscript):
        # Slicing an array yields an array: ``x[cols[lo:hi]]``.
        return isinstance(node.slice, ast.Slice)
    if isinstance(node, ast.Name):
        return node.id in array_names
    return False


def _collect_array_names(fn: ast.FunctionDef) -> set[str]:
    """Names bound (anywhere in the function) to array-slice
    expressions — the ``cols = sell.colidx[pos:pos+lanes]`` pattern."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_arr = (isinstance(value, ast.Subscript)
                  and isinstance(value.slice, ast.Slice))
        if not is_arr:
            continue
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                names.add(tgt.id)
    return names


def _takes_engine(fn: ast.FunctionDef) -> bool:
    return any(a.arg == "engine" for a in fn.args.args)


def _is_engine_is_none(test: ast.expr) -> bool:
    """Match the ``if engine is None:`` fast-path guard."""
    return (isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "engine"
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None)


def _walk_instrumented(node: ast.AST):
    """Like ``ast.walk`` but prunes ``if engine is None:`` bodies —
    the *uninstrumented* fast-path twin inside a dual-mode kernel."""
    if isinstance(node, ast.If) and _is_engine_is_none(node.test):
        children = node.orelse
    else:
        children = list(ast.iter_child_nodes(node))
    for child in children:
        yield child
        yield from _walk_instrumented(child)


def lint_source(source: str, path: str = "<string>",
                require_engine: bool = True) -> list[LintViolation]:
    """Lint one module's source; returns the violations found.

    ``require_engine=False`` widens the walk to *every* function —
    used for the backend kernel bodies, which carry the gather-free
    contract without threading an engine parameter.
    """
    tree = ast.parse(source)
    lines = source.splitlines()
    out: list[LintViolation] = []
    for fn in ast.walk(tree):
        if not isinstance(fn, ast.FunctionDef):
            continue
        if require_engine and not _takes_engine(fn):
            continue
        array_names = _collect_array_names(fn)
        for node in _walk_instrumented(fn):
            if not isinstance(node, ast.Subscript):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue  # stores surface as vstore/vscatter tallies
            if not _is_array_index(node.slice, array_names):
                continue
            # Waiver on the flagged line or the line directly above.
            line_text = lines[node.lineno - 1]
            prev_text = lines[node.lineno - 2] if node.lineno > 1 else ""
            if WAIVER_TOKEN in line_text or WAIVER_TOKEN in prev_text:
                continue
            out.append(LintViolation(
                path=path, line=node.lineno, function=fn.name,
                snippet=ast.unparse(node)))
    return out


def lint_kernels(directory: str = KERNELS_DIR,
                 require_engine: bool = True) -> list[LintViolation]:
    """Lint every module in one package directory."""
    out: list[LintViolation] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".py"):
            continue
        path = os.path.join(directory, name)
        with open(path) as fh:
            out.extend(lint_source(fh.read(), path=path,
                                   require_engine=require_engine))
    return out


def main(argv=None) -> int:  # pragma: no cover - exercised via tests
    import sys

    args = sys.argv[1:] if argv is None else argv
    directory = args[0] if args else KERNELS_DIR
    violations = lint_kernels(directory)
    for v in violations:
        print(v)
    print(f"{len(violations)} violation(s) in {directory}")
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
