"""ASCII sparklines for convergence histories.

Renders residual curves in the terminal on a log scale, so examples
and CLI output can show *how* a solve converged, not just how many
iterations it took.
"""

from __future__ import annotations

import math

from repro.utils.validation import require

_BLOCKS = " .:-=+*#%@"


def sparkline(values, width: int = 60, log: bool = True) -> str:
    """Render a sequence as a one-line sparkline.

    Parameters
    ----------
    values:
        Positive sequence (e.g. residual norms).
    width:
        Maximum characters; longer sequences are subsampled.
    log:
        Plot ``log10`` of the values (the right scale for residuals).
    """
    vals = [float(v) for v in values]
    require(bool(vals), "no values to plot")
    if log:
        floor = min((v for v in vals if v > 0), default=1.0) * 1e-2
        vals = [math.log10(max(v, floor)) for v in vals]
    if len(vals) > width:
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    glyphs = []
    for v in vals:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        glyphs.append(_BLOCKS[idx])
    return "".join(glyphs)


def convergence_panel(history, width: int = 60) -> str:
    """Multi-line summary of a :class:`ConvergenceHistory`."""
    line = sparkline(history.residuals, width=width)
    return (
        f"residual |{line}|\n"
        f"  iters={history.iterations}  "
        f"first={history.initial_residual:.2e}  "
        f"last={history.final_residual:.2e}  "
        f"rate={history.reduction_per_iteration():.3f}/iter  "
        f"converged={history.converged}"
    )
