"""ASCII sparsity visualization.

Renders matrix patterns in the terminal the way the paper's Fig. 2
shows the reordered structure — handy for eyeballing what a reordering
did without a plotting stack.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def spy(matrix, max_size: int = 64, charset: str = " .:*#") -> str:
    """Render a sparse matrix pattern as ASCII art.

    Parameters
    ----------
    matrix:
        Any object with ``to_dense()`` (or a dense ndarray).
    max_size:
        Matrices larger than this are downsampled by block counting;
        denser cells get darker glyphs.
    charset:
        Density ramp, lightest first.
    """
    check_positive(max_size, "max_size")
    dense = matrix if isinstance(matrix, np.ndarray) \
        else matrix.to_dense()
    pattern = (dense != 0).astype(np.float64)
    n_rows, n_cols = pattern.shape
    if max(n_rows, n_cols) <= max_size:
        cells = pattern
    else:
        factor = int(np.ceil(max(n_rows, n_cols) / max_size))
        pad_r = (-n_rows) % factor
        pad_c = (-n_cols) % factor
        padded = np.pad(pattern, ((0, pad_r), (0, pad_c)))
        cells = padded.reshape(
            padded.shape[0] // factor, factor,
            padded.shape[1] // factor, factor).mean(axis=(1, 3))
    levels = len(charset) - 1
    out_lines = []
    for row in cells:
        idx = np.minimum((row > 0) + np.floor(row * (levels - 1)),
                         levels).astype(int)
        out_lines.append("".join(charset[i] for i in idx))
    return "\n".join(out_lines)


def spy_blocks(dbsr, max_size: int = 64) -> str:
    """Render a DBSR matrix at tile granularity: one glyph per tile
    position, showing the block-diagonal structure of the vectorized
    BMC ordering."""
    brow = dbsr.brow
    bcol = (dbsr.n_cols + dbsr.bsize - 1) // dbsr.bsize
    grid = np.zeros((brow, bcol))
    for i in range(brow):
        for t in range(dbsr.blk_ptr[i], dbsr.blk_ptr[i + 1]):
            j = int(dbsr.blk_ind[t])
            if 0 <= j < bcol:
                grid[i, j] = 1.0
    return spy(grid, max_size=max_size)
