"""Shared utilities: validation, RNG, timing, and table rendering."""

from repro.utils.validation import (
    check_1d,
    check_dtype,
    check_positive,
    check_power_of_two,
    check_square,
    require,
)
from repro.utils.rng import make_rng
from repro.utils.timing import Timer, timeit_median
from repro.utils.tables import format_table
from repro.utils.spy import spy, spy_blocks
from repro.utils.sparkline import convergence_panel, sparkline

__all__ = [
    "check_1d",
    "check_dtype",
    "check_positive",
    "check_power_of_two",
    "check_square",
    "require",
    "make_rng",
    "Timer",
    "timeit_median",
    "format_table",
    "spy",
    "spy_blocks",
    "sparkline",
    "convergence_panel",
]
