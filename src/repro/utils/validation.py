"""Validation helpers used across the library.

These raise early with precise messages; hot kernels assume inputs were
validated at construction time and never re-check inside loops.
"""

from __future__ import annotations

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    value = check_positive(value, name)
    if value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")
    return value


def check_1d(arr: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``arr`` is a contiguous 1-D ndarray and return it."""
    arr = np.ascontiguousarray(arr)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_square(shape: tuple, name: str = "matrix") -> int:
    """Validate a square shape and return its dimension."""
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"{name} must be square, got shape {shape}")
    return int(shape[0])


def check_dtype(arr: np.ndarray, allowed: tuple, name: str) -> np.ndarray:
    """Validate ``arr.dtype`` is one of ``allowed`` numpy dtypes."""
    if arr.dtype not in [np.dtype(d) for d in allowed]:
        raise ValueError(
            f"{name} dtype must be one of {allowed}, got {arr.dtype}"
        )
    return arr
