"""Deterministic random number generation.

All stochastic pieces of the library (synthetic right-hand sides, random
initial guesses, fuzzed matrices in tests) draw from generators created
here so experiments are reproducible bit-for-bit across runs.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20240804  # SC'24 submission era; arbitrary but fixed.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically.

    Parameters
    ----------
    seed:
        Optional seed. ``None`` uses the library-wide default so that
        "unseeded" callers are still reproducible.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
