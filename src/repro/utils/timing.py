"""Small timing helpers for benchmarks and examples."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager wall-clock timer.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = field(default=0.0)
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def timeit_median(fn, repeats: int = 5, *args, **kwargs) -> float:
    """Run ``fn(*args, **kwargs)`` ``repeats`` times, return median seconds."""
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn(*args, **kwargs)
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]
