"""Coverage-gate check for CI (like :mod:`repro.utils.kernel_lint`).

Reads a ``coverage json`` report and a recorded baseline file, then
fails (exit 1) when either

* the aggregate coverage of ``src/repro/observe/`` falls below the
  baseline's ``observe_min`` (the observability subsystem ships with a
  90% floor), or
* total coverage falls below the recorded ``total_min``.

Usage (CI)::

    coverage run --source=src/repro -m pytest -q -m "not bench"
    coverage json -o coverage.json
    python -m repro.utils.coverage_gate coverage.json \\
        tests/observe/coverage_baseline.json
"""

from __future__ import annotations

import json
import sys

OBSERVE_PREFIXES = ("src/repro/observe/", "repro/observe/")


def _observe_percent(files: dict) -> float | None:
    """Aggregate line coverage over the observe package, or ``None``."""
    covered = statements = 0
    for path, entry in files.items():
        norm = path.replace("\\", "/")
        if not any(p in norm for p in OBSERVE_PREFIXES):
            continue
        summary = entry.get("summary", {})
        covered += summary.get("covered_lines", 0)
        statements += summary.get("num_statements", 0)
    if statements == 0:
        return None
    return 100.0 * covered / statements


def check_coverage(report: dict, baseline: dict) -> list:
    """Return violation messages (empty list = gate passes)."""
    problems = []
    total = report.get("totals", {}).get("percent_covered")
    if total is None:
        return ["coverage report has no totals.percent_covered"]
    total_min = float(baseline["total_min"])
    if total < total_min:
        problems.append(
            f"total coverage {total:.2f}% is below the recorded "
            f"baseline {total_min:.2f}%")
    observe_min = float(baseline["observe_min"])
    observe = _observe_percent(report.get("files", {}))
    if observe is None:
        problems.append(
            "no src/repro/observe/ files in the coverage report "
            "(was the suite run with --source=src/repro?)")
    elif observe < observe_min:
        problems.append(
            f"src/repro/observe/ coverage {observe:.2f}% is below "
            f"the {observe_min:.2f}% floor")
    return problems


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        print("usage: python -m repro.utils.coverage_gate "
              "coverage.json baseline.json", file=sys.stderr)
        return 2
    with open(argv[0]) as fh:
        report = json.load(fh)
    with open(argv[1]) as fh:
        baseline = json.load(fh)
    problems = check_coverage(report, baseline)
    if problems:
        for p in problems:
            print(f"COVERAGE GATE: {p}", file=sys.stderr)
        return 1
    total = report["totals"]["percent_covered"]
    observe = _observe_percent(report.get("files", {}))
    print(f"coverage gate ok: total {total:.2f}% "
          f"(floor {baseline['total_min']}%), observe {observe:.2f}% "
          f"(floor {baseline['observe_min']}%)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
