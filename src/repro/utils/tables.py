"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper's figures
report; this module renders them in aligned monospace tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
