"""Convergence tracking shared by all iterative solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ConvergenceHistory:
    """Residual history of one iterative solve.

    Attributes
    ----------
    residuals:
        2-norm of the residual per iteration, starting with the
        initial residual.
    tol:
        Relative tolerance the solve targeted.
    converged:
        Whether the tolerance was met within the iteration budget.
    """

    residuals: list = field(default_factory=list)
    tol: float = 0.0
    converged: bool = False

    @property
    def iterations(self) -> int:
        """Iterations performed (excludes the initial residual)."""
        return max(0, len(self.residuals) - 1)

    @property
    def initial_residual(self) -> float:
        return self.residuals[0] if self.residuals else float("nan")

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")

    def record(self, rnorm: float) -> None:
        self.residuals.append(float(rnorm))

    def reduction_per_iteration(self) -> float:
        """Geometric mean residual reduction factor (convergence rate)."""
        if self.iterations == 0 or self.initial_residual == 0:
            return 1.0
        ratio = self.final_residual / self.initial_residual
        return float(ratio ** (1.0 / self.iterations))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ConvergenceHistory(iters={self.iterations}, "
                f"final={self.final_residual:.3e}, "
                f"converged={self.converged})")


def rel_residual_norm(A, x: np.ndarray, b: np.ndarray) -> float:
    """Relative residual ``||b - A x|| / ||b||``."""
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return float(np.linalg.norm(A.matvec(x)))
    return float(np.linalg.norm(b - A.matvec(x))) / bnorm
