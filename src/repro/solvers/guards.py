"""Breakdown guards shared by the iterative solvers.

Krylov loops silently produce garbage when fed a corrupted operator or
preconditioner: one NaN in the matrix turns every later iterate into
NaN while the loop keeps "iterating" to ``maxiter``. These checks turn
that into a typed, early failure —
:class:`~repro.resilience.errors.NonFiniteError` for non-finite
residuals and :class:`~repro.resilience.errors.SolverBreakdown` for
curvature/rho breakdowns — each carrying the iteration index and the
last residual norm known to be finite, so callers (and the fallback
chain) can report exactly where the solve died.

Every guard is O(1) on scalars already computed by the loop; the
per-iteration cost is a couple of comparisons.
"""

from __future__ import annotations

import math

from repro.resilience.errors import NonFiniteError, SolverBreakdown


def check_residual(rnorm: float, iteration: int,
                   last_good: float) -> float:
    """Residual norm must be finite; returns it as the new last-good."""
    if not math.isfinite(rnorm):
        raise NonFiniteError("residual norm became non-finite",
                             iteration=iteration,
                             last_residual=last_good)
    return rnorm


def check_curvature(pAp: float, iteration: int,
                    last_good: float) -> None:
    """CG curvature ``p . A p`` must be finite and positive.

    Zero or negative curvature means the operator is no longer SPD as
    seen by the iteration (corruption, or a broken preconditioner) and
    the next ``alpha`` would be meaningless or a division by zero.
    """
    if not math.isfinite(pAp):
        raise NonFiniteError("curvature p.Ap became non-finite",
                             iteration=iteration,
                             last_residual=last_good)
    if pAp <= 0.0:
        raise SolverBreakdown(
            f"non-positive curvature p.Ap = {pAp:.6e}",
            iteration=iteration, last_residual=last_good,
            reason="indefinite_operator")


def check_rho(rz: float, iteration: int, last_good: float) -> None:
    """PCG's ``rho = r . z`` must be finite and non-zero.

    ``rho == 0`` with a non-zero residual means the preconditioner
    annihilated the residual direction — ``beta`` would divide by zero
    next iteration.
    """
    if not math.isfinite(rz):
        raise NonFiniteError("rho = r.z became non-finite",
                             iteration=iteration,
                             last_residual=last_good)
    if rz == 0.0:
        raise SolverBreakdown(
            "rho breakdown: r.z == 0 with a non-converged residual",
            iteration=iteration, last_residual=last_good,
            reason="rho_breakdown")
