"""Preconditioned conjugate gradients — HPCG's outer iteration."""

from __future__ import annotations

import numpy as np

from repro.solvers.convergence import ConvergenceHistory
from repro.solvers.guards import check_curvature, check_residual, check_rho


def pcg(A, b: np.ndarray, precond, x0: np.ndarray | None = None,
        tol: float = 1e-8, maxiter: int = 1000, session=None) -> tuple:
    """Solve SPD ``A x = b`` with left-preconditioned CG.

    Parameters
    ----------
    A:
        Operator with ``matvec``.
    b:
        Right-hand side.
    precond:
        Callable ``z = precond(r)`` applying ``M^{-1}`` (HPCG: one
        multigrid V-cycle).
    tol, maxiter:
        Relative residual tolerance and iteration cap.
    session:
        Optional :class:`~repro.runtime.session.SolverSession`; each
        ``A.matvec`` then runs under its ``"spmv"`` phase timer (the
        preconditioner is expected to phase itself, e.g.
        :class:`~repro.multigrid.vcycle.MGPreconditioner`).

    Returns
    -------
    (x, history)

    Notes
    -----
    Matches HPCG's ``CG()`` reference loop: the convergence test uses
    the true residual 2-norm relative to ``||b||``.
    """
    matvec = (A.matvec if session is None
              else session.timed("spmv", A.matvec))
    b = np.asarray(b, dtype=float)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
    r = b - matvec(x)
    bnorm = float(np.linalg.norm(b)) or 1.0
    hist = ConvergenceHistory(tol=tol)
    last_good = check_residual(float(np.linalg.norm(r)), -1,
                               float("nan"))
    hist.record(last_good)
    z = precond(r)
    p = z.copy()
    rz = float(r @ z)
    for it in range(maxiter):
        if np.linalg.norm(r) / bnorm <= tol:
            hist.converged = True
            break
        check_rho(rz, it, last_good)
        Ap = matvec(p)
        pAp = float(p @ Ap)
        check_curvature(pAp, it, last_good)
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        last_good = check_residual(float(np.linalg.norm(r)), it,
                                   last_good)
        hist.record(np.linalg.norm(r))
        z = precond(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        p = z + beta * p
        rz = rz_new
    else:
        hist.converged = float(np.linalg.norm(r)) / bnorm <= tol
    return x, hist
