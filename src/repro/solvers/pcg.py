"""Preconditioned conjugate gradients — HPCG's outer iteration."""

from __future__ import annotations

import numpy as np

from repro.solvers.convergence import ConvergenceHistory


def pcg(A, b: np.ndarray, precond, x0: np.ndarray | None = None,
        tol: float = 1e-8, maxiter: int = 1000, session=None) -> tuple:
    """Solve SPD ``A x = b`` with left-preconditioned CG.

    Parameters
    ----------
    A:
        Operator with ``matvec``.
    b:
        Right-hand side.
    precond:
        Callable ``z = precond(r)`` applying ``M^{-1}`` (HPCG: one
        multigrid V-cycle).
    tol, maxiter:
        Relative residual tolerance and iteration cap.
    session:
        Optional :class:`~repro.runtime.session.SolverSession`; each
        ``A.matvec`` then runs under its ``"spmv"`` phase timer (the
        preconditioner is expected to phase itself, e.g.
        :class:`~repro.multigrid.vcycle.MGPreconditioner`).

    Returns
    -------
    (x, history)

    Notes
    -----
    Matches HPCG's ``CG()`` reference loop: the convergence test uses
    the true residual 2-norm relative to ``||b||``.
    """
    matvec = (A.matvec if session is None
              else session.timed("spmv", A.matvec))
    b = np.asarray(b, dtype=float)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
    r = b - matvec(x)
    bnorm = float(np.linalg.norm(b)) or 1.0
    hist = ConvergenceHistory(tol=tol)
    hist.record(np.linalg.norm(r))
    z = precond(r)
    p = z.copy()
    rz = float(r @ z)
    for _ in range(maxiter):
        if np.linalg.norm(r) / bnorm <= tol:
            hist.converged = True
            break
        Ap = matvec(p)
        alpha = rz / float(p @ Ap)
        x += alpha * p
        r -= alpha * Ap
        hist.record(np.linalg.norm(r))
        z = precond(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        p = z + beta * p
        rz = rz_new
    else:
        hist.converged = float(np.linalg.norm(r)) / bnorm <= tol
    return x, hist
