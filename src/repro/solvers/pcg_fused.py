"""Preconditioned CG with fused SpMV+dot (the CPO PCG of [25]).

Numerically identical to :func:`repro.solvers.pcg.pcg` (same update
order, same floating-point operations) but obtains ``p . Ap`` from the
fused kernel, removing one full re-read of ``p`` and ``Ap`` per
iteration — the PCG-side counterpart of the SYMGS+residual fusion.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.fused import fused_spmv_dot
from repro.solvers.convergence import ConvergenceHistory
from repro.solvers.guards import check_curvature, check_residual, check_rho


def pcg_fused(A, b: np.ndarray, precond, x0: np.ndarray | None = None,
              tol: float = 1e-8, maxiter: int = 1000) -> tuple:
    """Solve SPD ``A x = b`` with left-preconditioned CG, fused dots.

    Same signature and same iterates as
    :func:`repro.solvers.pcg.pcg`; only the kernel organization
    differs.
    """
    b = np.asarray(b, dtype=float)
    x = np.zeros_like(b) if x0 is None else np.asarray(
        x0, dtype=float).copy()
    r = b - A.matvec(x)
    bnorm = float(np.linalg.norm(b)) or 1.0
    hist = ConvergenceHistory(tol=tol)
    last_good = check_residual(float(np.linalg.norm(r)), -1,
                               float("nan"))
    hist.record(last_good)
    z = precond(r)
    p = z.copy()
    rz = float(r @ z)
    for it in range(maxiter):
        if np.linalg.norm(r) / bnorm <= tol:
            hist.converged = True
            break
        check_rho(rz, it, last_good)
        Ap, pAp, _ = fused_spmv_dot(A, p)
        check_curvature(pAp, it, last_good)
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        last_good = check_residual(float(np.linalg.norm(r)), it,
                                   last_good)
        hist.record(np.linalg.norm(r))
        z = precond(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        p = z + beta * p
        rz = rz_new
    else:
        hist.converged = float(np.linalg.norm(r)) / bnorm <= tol
    return x, hist
