"""Preconditioned stationary (Richardson) iteration.

``x <- x + M^{-1} (b - A x)`` — the smoothing-style iteration used to
compare ILU(0) parallel strategies at *equal residual* (the paper's
Fig. 9 protocol: "All methods stop iterating when equal and
sufficiently small residuals are reached").
"""

from __future__ import annotations

import numpy as np

from repro.solvers.convergence import ConvergenceHistory
from repro.solvers.guards import check_residual


def preconditioned_richardson(A, b: np.ndarray, precond,
                              x0: np.ndarray | None = None,
                              tol: float = 1e-6,
                              maxiter: int = 500) -> tuple:
    """Iterate ``x += M^{-1}(b - A x)`` until the relative residual
    drops below ``tol``.

    Returns ``(x, history)``; ``history.iterations`` is the
    iteration count the Fig. 9 model multiplies by per-iteration cost.
    """
    b = np.asarray(b, dtype=float)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
    bnorm = float(np.linalg.norm(b)) or 1.0
    hist = ConvergenceHistory(tol=tol)
    r = b - A.matvec(x)
    last_good = check_residual(float(np.linalg.norm(r)), -1,
                               float("nan"))
    hist.record(last_good)
    for it in range(maxiter):
        if np.linalg.norm(r) / bnorm <= tol:
            hist.converged = True
            break
        x += precond(r)
        r = b - A.matvec(x)
        last_good = check_residual(float(np.linalg.norm(r)), it,
                                   last_good)
        hist.record(np.linalg.norm(r))
    else:
        hist.converged = float(np.linalg.norm(r)) / bnorm <= tol
    return x, hist
