"""Unpreconditioned conjugate gradients."""

from __future__ import annotations

import numpy as np

from repro.solvers.convergence import ConvergenceHistory


def cg(A, b: np.ndarray, x0: np.ndarray | None = None,
       tol: float = 1e-8, maxiter: int = 1000) -> tuple:
    """Solve SPD ``A x = b`` with plain CG.

    Parameters
    ----------
    A:
        Any object with ``matvec``.
    b:
        Right-hand side.
    x0:
        Initial guess (zeros by default).
    tol:
        Relative residual tolerance.
    maxiter:
        Iteration cap.

    Returns
    -------
    (x, history):
        Solution estimate and its :class:`ConvergenceHistory`.
    """
    b = np.asarray(b, dtype=float)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
    r = b - A.matvec(x)
    p = r.copy()
    rs = float(r @ r)
    bnorm = float(np.linalg.norm(b)) or 1.0
    hist = ConvergenceHistory(tol=tol)
    hist.record(np.sqrt(rs))
    for _ in range(maxiter):
        if np.sqrt(rs) / bnorm <= tol:
            hist.converged = True
            break
        Ap = A.matvec(p)
        alpha = rs / float(p @ Ap)
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        hist.record(np.sqrt(rs_new))
        beta = rs_new / rs
        p = r + beta * p
        rs = rs_new
    else:
        hist.converged = np.sqrt(rs) / bnorm <= tol
    return x, hist
