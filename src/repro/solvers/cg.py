"""Unpreconditioned conjugate gradients."""

from __future__ import annotations

import numpy as np

from repro.solvers.convergence import ConvergenceHistory
from repro.solvers.guards import check_curvature, check_residual


def cg(A, b: np.ndarray, x0: np.ndarray | None = None,
       tol: float = 1e-8, maxiter: int = 1000) -> tuple:
    """Solve SPD ``A x = b`` with plain CG.

    Parameters
    ----------
    A:
        Any object with ``matvec``.
    b:
        Right-hand side.
    x0:
        Initial guess (zeros by default).
    tol:
        Relative residual tolerance.
    maxiter:
        Iteration cap.

    Returns
    -------
    (x, history):
        Solution estimate and its :class:`ConvergenceHistory`.

    Raises
    ------
    NonFiniteError
        When the residual norm goes NaN/Inf (carries the iteration and
        the last finite residual).
    SolverBreakdown
        On non-positive curvature ``p . A p``.
    """
    b = np.asarray(b, dtype=float)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
    r = b - A.matvec(x)
    p = r.copy()
    rs = float(r @ r)
    bnorm = float(np.linalg.norm(b)) or 1.0
    hist = ConvergenceHistory(tol=tol)
    last_good = check_residual(np.sqrt(rs), -1, float("nan"))
    hist.record(last_good)
    for it in range(maxiter):
        if np.sqrt(rs) / bnorm <= tol:
            hist.converged = True
            break
        Ap = A.matvec(p)
        pAp = float(p @ Ap)
        check_curvature(pAp, it, last_good)
        alpha = rs / pAp
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        last_good = check_residual(np.sqrt(rs_new), it, last_good)
        hist.record(np.sqrt(rs_new))
        beta = rs_new / rs
        p = r + beta * p
        rs = rs_new
    else:
        hist.converged = np.sqrt(rs) / bnorm <= tol
    return x, hist
