"""Iterative solvers: CG, preconditioned CG, stationary iteration.

These drive the convergence-rate measurements behind the evaluation:
the ILU(0) strategies of Fig. 9 stop "when equal and sufficiently
small residuals are reached", and HPCG's driver is a preconditioned CG.
"""

from repro.resilience.errors import NonFiniteError, SolverBreakdown
from repro.solvers.convergence import ConvergenceHistory
from repro.solvers.cg import cg
from repro.solvers.guards import check_curvature, check_residual, check_rho
from repro.solvers.pcg import pcg
from repro.solvers.pcg_fused import pcg_fused
from repro.solvers.stationary import preconditioned_richardson

__all__ = [
    "ConvergenceHistory",
    "NonFiniteError",
    "SolverBreakdown",
    "cg",
    "check_curvature",
    "check_residual",
    "check_rho",
    "pcg",
    "pcg_fused",
    "preconditioned_richardson",
]
