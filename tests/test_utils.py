"""Unit tests for shared utilities."""

import numpy as np
import pytest

from repro.utils.rng import make_rng
from repro.utils.tables import format_table
from repro.utils.timing import Timer, timeit_median
from repro.utils.validation import (
    check_1d,
    check_positive,
    check_power_of_two,
    check_square,
    require,
)


def test_require():
    require(True, "fine")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_check_positive():
    assert check_positive(3, "x") == 3
    with pytest.raises(ValueError):
        check_positive(0, "x")
    with pytest.raises(ValueError):
        check_positive(-2, "x")


def test_check_power_of_two():
    assert check_power_of_two(8, "x") == 8
    assert check_power_of_two(1, "x") == 1
    with pytest.raises(ValueError):
        check_power_of_two(6, "x")


def test_check_1d():
    arr = check_1d([1, 2, 3], "a")
    assert arr.ndim == 1
    with pytest.raises(ValueError):
        check_1d(np.zeros((2, 2)), "a")


def test_check_square():
    assert check_square((4, 4)) == 4
    with pytest.raises(ValueError):
        check_square((4, 5))


def test_make_rng_deterministic():
    a = make_rng(7).standard_normal(5)
    b = make_rng(7).standard_normal(5)
    assert np.array_equal(a, b)
    c = make_rng().standard_normal(5)
    d = make_rng().standard_normal(5)
    assert np.array_equal(c, d)  # default seed is fixed


def test_timer():
    with Timer() as t:
        sum(range(1000))
    assert t.elapsed >= 0.0


def test_timeit_median_returns_seconds():
    sec = timeit_median(lambda: sum(range(100)), repeats=3)
    assert sec >= 0.0


def test_format_table_alignment():
    text = format_table(["name", "value"],
                        [["a", 1.23456], ["bb", 42]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    # All data lines share the header width.
    assert len(lines[3]) == len(lines[1])
