"""Unit tests for the Table I machine models."""

import pytest

from repro.simd.counters import OpCounter
from repro.simd.machine import (
    INTEL_XEON,
    KUNPENG_920,
    PHYTIUM_2000,
    TABLE1_MACHINES,
    THUNDER_X2,
)


def test_table1_topology():
    """The exact Table I numbers."""
    assert INTEL_XEON.sockets == 2 and INTEL_XEON.cores_per_socket == 28
    assert KUNPENG_920.cores == 64 and KUNPENG_920.numa_domains == 2
    assert THUNDER_X2.cores == 32 and THUNDER_X2.numa_domains == 1
    assert PHYTIUM_2000.sockets == 8 and PHYTIUM_2000.cores == 64
    assert INTEL_XEON.freq_ghz == 2.6
    assert THUNDER_X2.freq_ghz == 2.5
    assert PHYTIUM_2000.freq_ghz == 2.2


def test_table1_simd():
    assert INTEL_XEON.simd_bits == 512
    for m in (KUNPENG_920, THUNDER_X2, PHYTIUM_2000):
        assert m.simd_bits == 128
    assert PHYTIUM_2000.l3_mb == 0  # no L3 on Phytium


def test_lanes():
    assert INTEL_XEON.lanes(8) == 8
    assert INTEL_XEON.lanes(4) == 16
    assert KUNPENG_920.lanes(8) == 2


def test_bandwidth_monotone_saturating():
    prev = 0.0
    for t in (1, 2, 4, 8, 16, 32, 56):
        bw = INTEL_XEON.effective_bandwidth(t)
        assert bw >= prev
        prev = bw
    assert prev <= INTEL_XEON.bw_gbs * 1e9 * 1.001


def test_compute_scales_with_threads():
    c = OpCounter(bsize=8, vload=10_000, vfma=10_000)
    t1 = INTEL_XEON.compute_seconds(c, threads=1)
    t8 = INTEL_XEON.compute_seconds(c, threads=8)
    assert abs(t1 / t8 - 8) < 1e-9


def test_parallelism_caps_threads():
    c = OpCounter(bsize=8, vload=10_000)
    capped = INTEL_XEON.compute_seconds(c, threads=56, parallelism=4)
    assert capped == pytest.approx(
        INTEL_XEON.compute_seconds(c, threads=4))


def test_kernel_seconds_roofline():
    # Compute-heavy counter: compute time dominates.
    heavy = OpCounter(bsize=8, vfma=10**7)
    t = INTEL_XEON.kernel_seconds(heavy, threads=1)
    assert t >= INTEL_XEON.compute_seconds(heavy, threads=1)
    # Traffic-heavy counter: memory time dominates.
    stream = OpCounter(bsize=8, bytes_vector=10**9)
    t2 = INTEL_XEON.kernel_seconds(stream, threads=56)
    assert t2 == pytest.approx(
        INTEL_XEON.memory_seconds(10**9, threads=56))


def test_gather_overfetch_inflates_traffic():
    base = OpCounter(bytes_vector=10**9)
    gath = OpCounter(bytes_gathered=10**9)
    assert INTEL_XEON.kernel_seconds(gath, threads=56) > \
        INTEL_XEON.kernel_seconds(base, threads=56)


def test_cache_residency_discount():
    c = OpCounter(bytes_vector=10**9)
    slow = INTEL_XEON.kernel_seconds(c, threads=56)
    fast = INTEL_XEON.kernel_seconds(c, threads=56,
                                     cache_resident_fraction=0.9)
    assert fast < slow / 5


def test_sync_cost_grows_with_threads_and_barriers():
    s1 = INTEL_XEON.sync_seconds(10, threads=2)
    s2 = INTEL_XEON.sync_seconds(10, threads=56)
    assert s2 > s1
    assert INTEL_XEON.sync_seconds(20, 8) == pytest.approx(
        2 * INTEL_XEON.sync_seconds(10, 8))


def test_vectorization_speeds_up_vector_counters():
    c = OpCounter(bsize=8, vload=10**6, vfma=10**6)
    vec = INTEL_XEON.compute_seconds(c, threads=1, vectorized=True)
    sca = INTEL_XEON.compute_seconds(c, threads=1, vectorized=False)
    assert sca > vec


def test_machines_tuple():
    assert len(TABLE1_MACHINES) == 4
