"""Unit tests for OpCounter."""

import pytest

from repro.simd.counters import OpCounter
from repro.simd.isa import AVX512, NEON, SCALAR_ISA


def test_merge_accumulates():
    a = OpCounter(bsize=4, vload=2, vfma=1, bytes_values=32)
    b = OpCounter(bsize=4, vload=3, vstore=1, bytes_values=8)
    a.merge(b)
    assert a.vload == 5
    assert a.vstore == 1
    assert a.bytes_values == 40


def test_merge_mismatched_bsize_rejected():
    with pytest.raises(ValueError):
        OpCounter(bsize=4, vload=1).merge(OpCounter(bsize=8, vload=1))


def test_merge_scalar_counter_allowed():
    a = OpCounter(bsize=4, vload=1)
    a.merge(OpCounter(bsize=1, sload=5))
    assert a.sload == 5


def test_scaled():
    c = OpCounter(bsize=2, vload=10, bytes_vector=100)
    d = c.scaled(2.5)
    assert d.vload == 25
    assert d.bytes_vector == 250
    assert c.vload == 10  # original untouched


def test_total_bytes_includes_gathered():
    c = OpCounter(bytes_values=10, bytes_index=5, bytes_vector=3,
                  bytes_gathered=7)
    assert c.total_bytes == 25


def test_flops_fma_counts_double():
    c = OpCounter(bsize=4, vfma=3, vadd=2, sflop=5)
    assert c.flops() == (2 * 3 + 2) * 4 + 5


def test_cycles_wide_bsize_expands():
    c = OpCounter(bsize=8, vload=10, vfma=10)
    cyc_avx = c.cycles_on(AVX512, dtype_bytes=8)
    cyc_neon = c.cycles_on(NEON, dtype_bytes=8)
    # NEON (2 lanes) needs 4x the instructions of AVX512 (8 lanes).
    assert cyc_neon > cyc_avx


def test_cycles_float32_cheaper():
    c = OpCounter(bsize=8, vload=10, vfma=10)
    assert c.cycles_on(NEON, dtype_bytes=4) < c.cycles_on(
        NEON, dtype_bytes=8)


def test_gather_dominates_when_present():
    lo = OpCounter(bsize=8, vload=10)
    hi = OpCounter(bsize=8, vgather=10)
    assert hi.cycles_on(AVX512) > lo.cycles_on(AVX512)


def test_gather_software_expansion_costlier_than_hw():
    c = OpCounter(bsize=8, vgather=10)
    hw = c.cycles_on(AVX512, use_gather_hw=True)
    sw = c.cycles_on(AVX512, use_gather_hw=False)
    assert sw > hw


def test_scalar_ops_cycles():
    c = OpCounter(bsize=1, sload=100, sflop=50, sdiv=2)
    cyc = c.cycles_on(SCALAR_ISA)
    assert cyc == (150 * 1.0 + 2 * 8.0) / SCALAR_ISA.issue_width
