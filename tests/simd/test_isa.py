"""Unit tests for VectorISA."""

import numpy as np
import pytest

from repro.simd.isa import AVX512, NEON, SCALAR_ISA, VectorISA


def test_lanes_avx512():
    assert AVX512.lanes(np.float64) == 8
    assert AVX512.lanes(np.float32) == 16


def test_lanes_neon():
    assert NEON.lanes(np.float64) == 2
    assert NEON.lanes(np.float32) == 4


def test_lanes_requires_divisibility():
    odd = VectorISA(name="odd", bits=100)
    with pytest.raises(ValueError):
        odd.lanes(np.float64)


def test_vector_ops_for_wide_logical_vectors():
    # bsize 8 on NEON (2 lanes f64) needs 4 instructions (§III-B:
    # bsize is not limited by the hardware SIMD width).
    assert NEON.vector_ops_for(8, np.float64) == 4
    assert AVX512.vector_ops_for(8, np.float64) == 1
    assert AVX512.vector_ops_for(12, np.float64) == 2


def test_gather_more_expensive_than_load():
    for isa in (AVX512, NEON):
        lanes = isa.lanes(np.float64)
        assert isa.gather_cost_per_lane * lanes > isa.load_cost
