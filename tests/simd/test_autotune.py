"""Tests for automatic bsize selection."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.grids.stencils import box27_3d, star5_2d
from repro.ordering.blocks import auto_block_dims
from repro.simd.autotune import (
    autotune_bsize,
    candidate_bsizes,
    min_blocks_per_color,
)
from repro.simd.machine import INTEL_XEON, KUNPENG_920


def test_candidates_respect_lanes():
    # AVX512: 8 f64 lanes -> 8,16,32,64.
    assert candidate_bsizes(INTEL_XEON, 8) == [8, 16, 32, 64]
    # NEON: 2 f64 lanes -> 2,...,64.
    assert candidate_bsizes(KUNPENG_920, 8)[0] == 2
    # f32 doubles the lane count.
    assert candidate_bsizes(INTEL_XEON, 4)[0] == 16


def _machine_with_bits(bits: int):
    from dataclasses import replace

    from repro.simd.isa import VectorISA

    isa = VectorISA(name=f"wide{bits}", bits=bits)
    return replace(INTEL_XEON, isa=isa)


def test_candidates_wider_than_ceiling_fall_back_to_one_register():
    """Regression: lanes > MAX_BSIZE used to silently return [1]
    (scalar), discarding vectorization entirely; the sane fallback is
    a single full register."""
    from repro.simd.autotune import MAX_BSIZE

    wide = _machine_with_bits(8192)  # 128 f64 lanes > MAX_BSIZE
    lanes = wide.lanes(8)
    assert lanes > MAX_BSIZE
    assert candidate_bsizes(wide, 8) == [lanes]


def test_candidates_non_power_of_two_lanes_stay_register_multiples():
    """A 384-bit (SVE-style) register has 6 f64 lanes; candidates must
    be multiples of 6 capped at MAX_BSIZE, never silently empty."""
    sve = _machine_with_bits(384)
    cands = candidate_bsizes(sve, 8)
    assert cands == [6, 12, 24, 48]
    assert all(b % 6 == 0 for b in cands)


def test_candidates_never_empty():
    from repro.simd.autotune import MAX_BSIZE

    for bits in (64, 128, 256, 384, 512, 1024, 4096, 8192, 16384):
        for dtype_bytes in (4, 8):
            cands = candidate_bsizes(_machine_with_bits(bits),
                                     dtype_bytes)
            assert cands, (bits, dtype_bytes)
            lanes = _machine_with_bits(bits).lanes(dtype_bytes)
            assert all(b % lanes == 0 for b in cands)
            assert all(b <= max(MAX_BSIZE, lanes) for b in cands)


def test_autotune_survives_ultra_wide_machine():
    """autotune_bsize must stay well-defined with one huge candidate."""
    g = StructuredGrid((8, 8, 8))
    b = autotune_bsize(g, box27_3d(), _machine_with_bits(8192),
                       n_workers=1)
    assert b >= 1  # falls back rather than crashing


def test_large_grid_gets_large_bsize():
    g = StructuredGrid((32, 32, 32))
    b = autotune_bsize(g, box27_3d(), INTEL_XEON, n_workers=1)
    assert b >= 8


def test_coarse_level_shrinks_bsize():
    """The paper's multigrid rule: coarse levels cannot feed wide
    vectors, so bsize scales down with the level size."""
    fine = StructuredGrid((32, 32, 32))
    coarse = StructuredGrid((4, 4, 4))
    b_fine = autotune_bsize(fine, box27_3d(), INTEL_XEON, n_workers=2)
    b_coarse = autotune_bsize(coarse, box27_3d(), INTEL_XEON,
                              n_workers=2)
    assert b_coarse <= b_fine


def test_more_workers_shrink_bsize():
    g = StructuredGrid((16, 16, 16))
    b_few = autotune_bsize(g, box27_3d(), KUNPENG_920, n_workers=1)
    b_many = autotune_bsize(g, box27_3d(), KUNPENG_920, n_workers=64)
    assert b_many <= b_few


def test_fallback_to_one_on_tiny_grids():
    g = StructuredGrid((2, 2))
    b = autotune_bsize(g, star5_2d(), INTEL_XEON, n_workers=8)
    assert b == 1


def test_result_is_valid_vbmc_config():
    """The tuned bsize must actually build a working ordering."""
    from repro.formats.dbsr import DBSRMatrix
    from repro.grids.assembly import assemble_csr
    from repro.ordering.blocks import auto_block_dims
    from repro.ordering.vbmc import build_vbmc

    g = StructuredGrid((16, 16, 16))
    st = box27_3d()
    b = autotune_bsize(g, st, KUNPENG_920, n_workers=4)
    dims = auto_block_dims(g, 4, bsize=b)
    vb = build_vbmc(g, st, dims, b)
    A = assemble_csr(g, st)
    dbsr = DBSRMatrix.from_csr(vb.apply_matrix(A), b)
    assert dbsr.n_tiles > 0


def test_non_monotone_feasibility_takes_largest_feasible():
    """Regression: feasibility is not monotone in ``b``. On KunPeng
    920 over a 9x9x9 box27 grid with one worker the candidate
    feasibility sequence is [F, T, F, F, F, F] (b = 2 is infeasible
    because its finer partition's smallest color class has only one
    block). The pick must be 4 — a greedy scan-until-first-failure
    returns 1.
    """
    machine = KUNPENG_920
    grid = StructuredGrid((9, 9, 9))
    stencil = box27_3d()
    assert candidate_bsizes(machine, 8)[:2] == [2, 4]

    def feasible(b):
        block_dims = auto_block_dims(grid, 1, bsize=b, n_colors=8)
        if np.prod(block_dims) < 8 and grid.n_points >= 64:
            return False
        return min_blocks_per_color(grid, stencil, block_dims) >= b

    flags = [feasible(b) for b in candidate_bsizes(machine, 8)]
    assert flags[0] is False and flags[1] is True  # non-monotone front
    assert autotune_bsize(grid, stencil, machine, n_workers=1) == 4
