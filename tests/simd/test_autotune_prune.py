"""Differential tests for roofline-pruned bsize autotuning."""

import pytest

from repro.grids.grid import StructuredGrid
from repro.grids.stencils import stencil_by_name
from repro.serve.plan import PlanConfig, compile_plan
from repro.simd.autotune import (
    MEASURE_TOP,
    autotune_bsize,
    autotune_bsize_result,
    modeled_sptrsv_seconds,
    rank_bsizes_roofline,
    sptrsv_model_counter,
)
from repro.simd.machine import INTEL_XEON, KUNPENG_920

#: Seed grids the differential pins (7pt keeps several bsizes
#: feasible even at these sizes, so pruning has real choices).
SEED_GRIDS = ((8, "7pt"), (9, "7pt"))


def _result(nx, stencil, machine=KUNPENG_920, **kwargs):
    return autotune_bsize_result(
        StructuredGrid((nx,) * 3), stencil_by_name(stencil), machine,
        n_workers=2, **kwargs)


# -- model internals -------------------------------------------------------

def test_model_counter_charges_padding():
    grid = StructuredGrid((8, 8, 8))
    st = stencil_by_name("7pt")
    # 512 points over 2 colors = 256 rows/color: bsize 64 pads
    # nothing, but an uneven bsize like 24 must charge padded rows.
    even = sptrsv_model_counter(grid, st, 64)
    uneven = sptrsv_model_counter(grid, st, 24)
    assert even.bytes_vector > 0
    padded_rows_per_color = 264 - 256  # ceil(256/24)*24 - 256
    assert uneven.vdiv == pytest.approx(
        (512 + 2 * padded_rows_per_color) / 24, abs=1)


def test_modeled_seconds_positive_and_finite():
    grid = StructuredGrid((8, 8, 8))
    st = stencil_by_name("27pt")
    for b in (2, 4, 8, 16):
        s = modeled_sptrsv_seconds(grid, st, b, KUNPENG_920,
                                   n_workers=2)
        assert 0 < s < 1


def test_rank_is_permutation_and_deterministic():
    grid = StructuredGrid((8, 8, 8))
    st = stencil_by_name("7pt")
    ranked = rank_bsizes_roofline(grid, st, KUNPENG_920,
                                  [2, 4, 8, 16], n_workers=2)
    assert sorted(ranked) == [2, 4, 8, 16]
    assert ranked == rank_bsizes_roofline(grid, st, KUNPENG_920,
                                          [16, 8, 4, 2], n_workers=2)


# -- differential: pruned pick == exhaustive pick --------------------------

@pytest.mark.bench
@pytest.mark.parametrize("nx,stencil", SEED_GRIDS)
def test_roofline_matches_exhaustive_on_seed_grids(nx, stencil):
    exhaustive = _result(nx, stencil, prune="exhaustive")
    roofline = _result(nx, stencil, prune="roofline")
    assert roofline.bsize == exhaustive.bsize
    assert roofline.measured_candidates <= MEASURE_TOP
    assert exhaustive.measured_candidates == len(exhaustive.feasible)
    assert roofline.feasible == exhaustive.feasible


def test_differential_with_injected_measurements():
    """Deterministic variant: with a synthetic cost surface, pruned
    and exhaustive must agree whenever the model ranks the true
    argmin into the measured top-2."""
    costs = {2: 5.0, 4: 2.0, 8: 1.0, 16: 3.0}
    exhaustive = _result(8, "7pt", prune="exhaustive",
                         measure_fn=costs.__getitem__)
    assert exhaustive.measured_candidates == len(exhaustive.feasible)
    assert exhaustive.bsize == min(exhaustive.measured,
                                   key=costs.__getitem__)
    roofline = _result(8, "7pt", prune="roofline",
                       measure_fn=costs.__getitem__)
    assert set(roofline.measured) == set(roofline.ranked[:2])
    assert roofline.bsize == min(roofline.measured,
                                 key=costs.__getitem__)


def test_measured_ties_break_to_larger_bsize():
    result = _result(8, "7pt", prune="exhaustive",
                     measure_fn=lambda b: 1.0)
    assert result.bsize == max(result.feasible)


# -- legacy behaviour unchanged --------------------------------------------

def test_prune_none_is_legacy_largest_feasible():
    result = _result(8, "7pt", prune=None)
    assert result.bsize == max(result.feasible)
    assert result.measured == {} and result.ranked == []
    assert autotune_bsize(StructuredGrid((8,) * 3),
                          stencil_by_name("7pt"), KUNPENG_920,
                          n_workers=2) == result.bsize


def test_infeasible_grid_still_picks_1():
    # Intel AVX-512 lanes are too wide for a tiny 27pt grid.
    for prune in (None, "roofline", "exhaustive"):
        result = _result(4, "27pt", machine=INTEL_XEON, prune=prune)
        assert result.feasible == []
        assert result.bsize == 1
        assert result.measured == {}


def test_unknown_prune_mode_rejected():
    with pytest.raises(ValueError):
        _result(8, "7pt", prune="vibes")


# -- serving integration ---------------------------------------------------

def test_plan_config_validates_prune():
    assert PlanConfig(autotune_prune="roofline").autotune_prune == \
        "roofline"
    with pytest.raises(ValueError):
        PlanConfig(autotune_prune="vibes")


def test_prune_not_in_structural_fingerprint():
    from repro.serve.plan import structural_fingerprint

    grid = StructuredGrid((6, 6, 6))
    base = structural_fingerprint(grid, "27pt", PlanConfig())
    pruned = structural_fingerprint(
        grid, "27pt", PlanConfig(autotune_prune="roofline"))
    assert base == pruned


@pytest.mark.bench
def test_compile_plan_roofline_prune_matches_legacy_pick():
    grid = StructuredGrid((8, 8, 8))
    legacy = compile_plan(grid, "7pt", PlanConfig(n_workers=2))
    pruned = compile_plan(grid, "7pt",
                          PlanConfig(n_workers=2,
                                     autotune_prune="roofline"))
    assert pruned.bsize == legacy.bsize
    assert pruned.autotuned and legacy.autotuned
