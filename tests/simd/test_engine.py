"""Unit tests for the instrumented VectorEngine."""

import numpy as np

from repro.simd.engine import VectorEngine


def test_load_counts_and_returns_slice():
    eng = VectorEngine(4)
    arr = np.arange(10.0)
    v = eng.load(arr, 2)
    assert np.array_equal(v, [2.0, 3.0, 4.0, 5.0])
    assert eng.counter.vload == 1
    assert eng.counter.bytes_vector == 4 * 8


def test_load_values_separate_stream():
    eng = VectorEngine(4)
    arr = np.arange(8.0)
    eng.load_values(arr, 0)
    assert eng.counter.bytes_values == 32
    assert eng.counter.bytes_vector == 0


def test_gather_counts_gathered_bytes():
    eng = VectorEngine(4)
    arr = np.arange(10.0)
    v = eng.gather(arr, np.array([0, 5, 9, 2]))
    assert np.array_equal(v, [0.0, 5.0, 9.0, 2.0])
    assert eng.counter.vgather == 1
    assert eng.counter.bytes_gathered == 32


def test_store_writes():
    eng = VectorEngine(4)
    arr = np.zeros(8)
    eng.store(arr, 2, np.ones(4))
    assert np.array_equal(arr, [0, 0, 1, 1, 1, 1, 0, 0])
    assert eng.counter.vstore == 1


def test_scatter_writes():
    eng = VectorEngine(4)
    arr = np.zeros(6)
    eng.scatter(arr, np.array([1, 4]), np.array([7.0, 8.0]))
    assert arr[1] == 7.0 and arr[4] == 8.0
    assert eng.counter.vscatter == 1


def test_arithmetic_counts():
    eng = VectorEngine(2)
    a = np.array([1.0, 2.0])
    b = np.array([3.0, 4.0])
    acc = np.zeros(2)
    out = eng.fma(acc, a, b)
    assert np.array_equal(out, [3.0, 8.0])
    out = eng.fnma(out, a, b)
    assert np.allclose(out, 0.0)
    eng.mul(a, b)
    eng.add(a, b)
    eng.div(a, b)
    c = eng.counter
    assert (c.vfma, c.vmul, c.vadd, c.vdiv) == (2, 1, 1, 1)


def test_scalar_streams():
    eng = VectorEngine(1)
    eng.scalar_load(3, 8, stream="values")
    eng.scalar_load(2, 4, stream="index")
    eng.scalar_load(5, 8, stream="gathered")
    eng.scalar_load(1, 8, stream="vector")
    eng.scalar_store(2, 8)
    c = eng.counter
    assert c.bytes_values == 24
    assert c.bytes_index == 8
    assert c.bytes_gathered == 40
    assert c.bytes_vector == 8 + 16
    assert c.sload == 11 and c.sstore == 2


def test_load_index():
    eng = VectorEngine(4)
    arr = np.array([5, 6, 7], dtype=np.int32)
    assert eng.load_index(arr, 1) == 6
    assert eng.counter.bytes_index == 4


# Tail-load and dtype-itemsize accounting regressions ---------------------

def test_ragged_tail_load_charges_actual_bytes():
    """A load clipped at the array tail charges only the lanes moved."""
    eng = VectorEngine(4)
    arr = np.arange(10.0)
    v = eng.load(arr, 8)  # only 2 elements remain
    assert len(v) == 2
    assert eng.counter.bytes_vector == 2 * 8


def test_ragged_tail_load_values_charges_actual_bytes():
    eng = VectorEngine(4)
    arr = np.arange(6.0)
    v = eng.load_values(arr, 4)
    assert len(v) == 2
    assert eng.counter.bytes_values == 2 * 8


def test_tail_load_and_store_charge_symmetrically():
    """Loads and stores of the same ragged tail charge equal bytes."""
    eng = VectorEngine(8)
    arr = np.zeros(12)
    v = eng.load(arr, 8)  # 4 lanes survive
    eng.store(arr, 8, v)
    assert eng.counter.bytes_vector == 2 * 4 * 8


def test_float32_tail_load():
    eng = VectorEngine(4, dtype=np.float32)
    arr = np.arange(5, dtype=np.float32)
    eng.load(arr, 4)  # 1 element remains, 4 bytes each
    assert eng.counter.bytes_vector == 4


def test_scalar_ops_default_to_engine_dtype_itemsize():
    """f32 engines must not overcount scalar traffic at 8 B/element."""
    eng = VectorEngine(1, dtype=np.float32)
    eng.scalar_load(10)
    eng.scalar_store(5)
    assert eng.counter.bytes_vector == 10 * 4 + 5 * 4


def test_scalar_ops_explicit_itemsize_still_honored():
    eng = VectorEngine(1, dtype=np.float32)
    eng.scalar_load(3, itemsize=8, stream="values")
    assert eng.counter.bytes_values == 24


def test_f64_default_unchanged():
    eng = VectorEngine(1)
    eng.scalar_load(2)
    assert eng.counter.bytes_vector == 16
