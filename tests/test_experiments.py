"""Tests for the experiments package (fast configurations)."""

import numpy as np
import pytest

from repro.experiments import ALL_EXPERIMENTS, fig9, fig10, fig12, table1
from repro.experiments.base import ExperimentResult, machine_by_name


def test_registry_complete():
    assert set(ALL_EXPERIMENTS) == {
        "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fig12",
    }


def test_machine_by_name():
    assert machine_by_name("intel").name.startswith("Intel")
    assert machine_by_name("KP920").cores == 64
    with pytest.raises(ValueError):
        machine_by_name("riscv")


def test_table1_render():
    r = table1.generate()
    text = r.render()
    assert "Phytium 2000+" in text
    assert "AVX512-512" in text
    assert len(r.rows) == 4


def test_result_render_with_notes():
    r = ExperimentResult(name="x", title="T", headers=["a"],
                         rows=[[1]], notes=["note line"])
    assert r.render().endswith("note line")


def test_fig9_small_config():
    r = fig9.generate(nx=8, machine_name="intel", stencil="7pt",
                      precision="f64", thread_counts=(1, 8),
                      strategies=("bj", "bmc-fix", "simd-fix"))
    assert set(r.series) >= {"bj", "bmc-fix", "simd-fix"}
    assert len(r.series["bj"]) == 2
    assert all(v > 0 for v in r.series["bj"])
    assert "fig9" in r.name


def test_fig10_small_config():
    r = fig10.generate(nx=8, bsizes=(1, 4), threads=8)
    assert set(r.series["seconds"]) == {1, 4}


def test_fig12_small_config():
    r = fig12.generate(nx=8, thread_counts=(4,),
                       strategies=("mc", "simd-auto"))
    assert r.series["simd-auto"][0] > 0


def test_hpcg_experiments_share_models():
    """fig5/6/7/8 accept prebuilt models so one build serves all."""
    from repro.experiments import fig5, fig7

    models = fig5.build_models(nx=8, n_levels=2, bsize=4, n_workers=4,
                               variants=("cpo", "dbsr", "mkl", "arm",
                                         "reference", "sell"))
    panels = fig5.generate(models, nx_model=8)
    assert any("ratios" in p.name for p in panels)
    ws = fig7.generate(models, nx_model=8, node_counts=(1, 4))
    assert len(ws.rows) == 2


def test_cli_figures_command(capsys):
    from repro.cli import main

    assert main(["figures", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert main(["figures", "nope"]) == 2
